// Figure 13 — Seattle bus trace under the MANHATTAN GRID scenario
// (Section IV): flows choose among all of their shortest paths and reroute
// through RAPs for the free advertisement. Same settings as Fig. 12
// (shop in the city; {threshold, linear} x D in {2,500, 1,000} ft), with
// the two-stage Algorithms 3/4 joining the comparison.
//
// The paper's two headline observations to look for in the output:
//   * more customers than Fig. 12 at identical settings (route
//     flexibility), and
//   * Algorithms 3/4 competitive despite Seattle being only partially
//     grid-based ("some performance degradations").
//
// Flags: --reps (default 100), --seed, --journeys, --csv-dir.
#include <iostream>

#include "bench/common.h"
#include "src/util/cli.h"

int main(int argc, char** argv) {
  using namespace rap;
  const util::CliFlags flags(argc, argv);
  const auto reps = static_cast<std::size_t>(flags.get_int("reps", 100));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto journeys =
      static_cast<std::size_t>(flags.get_int("journeys", 100));
  const auto threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  const std::filesystem::path csv_dir =
      flags.get_string("csv-dir", "bench_results");
  for (const std::string& flag : flags.unused()) {
    std::cerr << "unknown flag --" << flag << "\n";
    return 2;
  }

  std::cout << "fig13: Seattle, MANHATTAN scenario (flexible routing), "
               "shop=city, utility x threshold sweep, reps="
            << reps << "\n\n";
  const bench::CityWorkload city = bench::build_seattle(seed, journeys);
  std::cout << "city: " << city.net->num_nodes() << " intersections, "
            << city.workload.flows.size() << " traffic flows\n\n";

  const std::pair<const char*, traffic::UtilityKind> panels[] = {
      {"fig13a-threshold", traffic::UtilityKind::kThreshold},
      {"fig13b-linear", traffic::UtilityKind::kLinear},
  };
  std::vector<eval::ExperimentConfig> configs;
  for (const auto& [name, kind] : panels) {
    for (const double d : {2'500.0, 1'000.0}) {
      eval::ExperimentConfig config;
      config.name = std::string(name) + "-d" +
                    std::to_string(static_cast<int>(d));
      config.utility = kind;
      config.range = d;
      config.shop_class = trace::LocationClass::kCity;
      config.repetitions = reps;
      config.seed = seed;
      config.threads = threads;
      config.manhattan_scenario = true;
      config.algorithms = bench::manhattan_algorithms();
      configs.push_back(std::move(config));
    }
  }
  bench::run_and_report(city.workload, configs, csv_dir);
  return 0;
}
