// Figure 11 — Dublin bus trace, general scenario, impact of the shop
// location and the threshold D. Decreasing utility i (linear); panels
// (a) city centre, (b) city, (c) suburb, each with D = 20,000 ft (top) and
// D = 10,000 ft (bottom).
//
// Flags: --reps (default 200), --seed, --journeys, --csv-dir.
#include <iostream>

#include "bench/common.h"
#include "src/util/cli.h"

int main(int argc, char** argv) {
  using namespace rap;
  const util::CliFlags flags(argc, argv);
  const auto reps = static_cast<std::size_t>(flags.get_int("reps", 200));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto journeys =
      static_cast<std::size_t>(flags.get_int("journeys", 120));
  const auto threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  const std::filesystem::path csv_dir =
      flags.get_string("csv-dir", "bench_results");
  for (const std::string& flag : flags.unused()) {
    std::cerr << "unknown flag --" << flag << "\n";
    return 2;
  }

  std::cout << "fig11: Dublin, general scenario, linear utility, shop "
               "location x threshold sweep, reps="
            << reps << "\n\n";
  const bench::CityWorkload city = bench::build_dublin(seed, journeys);
  std::cout << "city: " << city.net->num_nodes() << " intersections, "
            << city.workload.flows.size() << " traffic flows\n\n";

  const std::pair<const char*, trace::LocationClass> locations[] = {
      {"center", trace::LocationClass::kCityCenter},
      {"city", trace::LocationClass::kCity},
      {"suburb", trace::LocationClass::kSuburb},
  };
  std::vector<eval::ExperimentConfig> configs;
  for (const auto& [label, location] : locations) {
    for (const double d : {20'000.0, 10'000.0}) {
      eval::ExperimentConfig config;
      config.name = std::string("fig11-") + label + "-d" +
                    std::to_string(static_cast<int>(d));
      config.utility = traffic::UtilityKind::kLinear;
      config.range = d;
      config.shop_class = location;
      config.repetitions = reps;
      config.seed = seed;
      config.threads = threads;
      config.algorithms = bench::general_algorithms();
      configs.push_back(std::move(config));
    }
  }
  bench::run_and_report(city.workload, configs, csv_dir);
  return 0;
}
