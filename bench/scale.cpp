// Metro-scale placement bench (DESIGN.md §13): a ~10^5-intersection grid
// city with 10^5 corridor flows, priced by the oracle-backed detour engine
// (ALT oracle + sparse distance cache + parallel warm) and placed with the
// lazy greedy — end to end without ever materialising the n^2 distance
// matrix, which at this scale would be ~80 GB.
//
// Writes BENCH_scale.json in the rap.bench.v1 schema (bench/common.h) so
// tools/bench_compare gates the numbers against bench/baselines/: node and
// flow counts, the objective, warm/cache accounting and the oracle's
// preprocessing footprint are deterministic (strict tolerance); wall times
// and the rss-vs-dense ratio are loose. --max-wall-s / --max-rss-mb turn
// the run into a hard budget check (exit 1 on breach) — the CI scale-smoke
// job runs a reduced instance under exactly that contract.
//
//   scale [--side=317] [--flows=100000] [--k=8] [--landmarks=8]
//         [--max-trip=60] [--out=BENCH_scale.json]
//         [--max-wall-s=0] [--max-rss-mb=0]
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.h"
#include "src/citygen/grid_city.h"
#include "src/core/lazy_greedy.h"
#include "src/core/problem.h"
#include "src/graph/oracle.h"
#include "src/graph/oracle_cache.h"
#include "src/traffic/oracle_detour.h"
#include "src/traffic/utility.h"
#include "src/util/cli.h"
#include "src/util/rng.h"

namespace {

using namespace rap;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Peak resident set size in MiB (VmHWM from /proc/self/status); 0 when the
/// platform does not expose it.
double peak_rss_mb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    std::istringstream fields(line.substr(6));
    double kb = 0.0;
    fields >> kb;
    return kb / 1024.0;
  }
  return 0.0;
}

/// Corridor flows on the grid: bounded-length L-shaped trips (column leg
/// then row leg — a valid walk on the grid, and a shortest path under
/// uniform spacing). Generated directly from coordinates, so flow
/// construction costs no graph searches at all.
std::vector<traffic::TrafficFlow> corridor_flows(const citygen::GridCity& city,
                                                 std::size_t count,
                                                 std::size_t max_trip,
                                                 util::Rng& rng) {
  const std::size_t cols = city.spec().cols;
  const std::size_t rows = city.spec().rows;
  std::vector<traffic::TrafficFlow> flows;
  flows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t c0 = rng.next_below(cols);
    const std::size_t r0 = rng.next_below(rows);
    // Trip extents in [-max_trip/2, max_trip/2], clamped to the grid; a
    // degenerate zero-length trip is nudged one block east/west.
    const auto leg = [&](std::size_t at, std::size_t limit) {
      const auto span = static_cast<std::int64_t>(max_trip / 2);
      const std::int64_t delta =
          static_cast<std::int64_t>(rng.next_below(
              static_cast<std::uint64_t>(2 * span + 1))) -
          span;
      const std::int64_t target = static_cast<std::int64_t>(at) + delta;
      if (target < 0) return std::size_t{0};
      if (target >= static_cast<std::int64_t>(limit)) return limit - 1;
      return static_cast<std::size_t>(target);
    };
    std::size_t c1 = leg(c0, cols);
    const std::size_t r1 = leg(r0, rows);
    if (c1 == c0 && r1 == r0) c1 = c0 + 1 < cols ? c0 + 1 : c0 - 1;

    traffic::TrafficFlow flow;
    flow.origin = city.node_at(c0, r0);
    flow.destination = city.node_at(c1, r1);
    flow.path.reserve((c0 > c1 ? c0 - c1 : c1 - c0) +
                      (r0 > r1 ? r0 - r1 : r1 - r0) + 1);
    for (std::size_t c = c0;; c = c < c1 ? c + 1 : c - 1) {
      flow.path.push_back(city.node_at(c, r0));
      if (c == c1) break;
    }
    for (std::size_t r = r0; r != r1;) {
      r = r < r1 ? r + 1 : r - 1;
      flow.path.push_back(city.node_at(c1, r));
    }
    flow.daily_vehicles = 1.0 + static_cast<double>(rng.next_below(50));
    flows.push_back(std::move(flow));
  }
  return flows;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::CliFlags flags(argc, argv);
    const std::string out = flags.get_string("out", "BENCH_scale.json");
    const auto side = static_cast<std::size_t>(flags.get_int("side", 317));
    const auto flow_count =
        static_cast<std::size_t>(flags.get_int("flows", 100'000));
    const auto k = static_cast<std::size_t>(flags.get_int("k", 8));
    const auto landmarks =
        static_cast<std::size_t>(flags.get_int("landmarks", 8));
    const auto max_trip =
        static_cast<std::size_t>(flags.get_int("max-trip", 60));
    const double max_wall_s = flags.get_double("max-wall-s", 0.0);
    const double max_rss_mb = flags.get_double("max-rss-mb", 0.0);

    const auto bench_start = Clock::now();

    auto stage = Clock::now();
    const citygen::GridCity city({side, side, 100.0});
    const graph::RoadNetwork& net = city.network();
    const double city_build_ms = ms_since(stage);

    stage = Clock::now();
    util::Rng rng(1);
    std::vector<traffic::TrafficFlow> flows =
        corridor_flows(city, flow_count, max_trip, rng);
    const double flows_build_ms = ms_since(stage);

    const graph::NodeId shop = city.center_node();

    // Oracle engine: ALT preprocessing (2L Dijkstra tables, O(L*n) memory)
    // plus a parallel cache warm of every distance the flows will query.
    stage = Clock::now();
    const auto oracle = std::make_shared<graph::AltOracle>(
        net, graph::AltParams{landmarks, 1});
    const auto cache = std::make_shared<graph::SparseDistanceCache>();
    auto engine = std::make_unique<traffic::OracleDetourCalculator>(
        net, oracle, shop, traffic::DetourMode::kAlongPath, cache);
    engine->warm(flows);
    const double engine_build_ms = ms_since(stage);

    stage = Clock::now();
    const traffic::LinearUtility utility(3'000.0);
    const core::PlacementProblem problem(net, std::move(flows), shop, utility,
                                         std::move(engine));
    const double problem_build_ms = ms_since(stage);

    stage = Clock::now();
    core::LazyGreedyStats greedy_stats;
    const core::PlacementResult placement =
        core::lazy_marginal_greedy_placement(problem, k, &greedy_stats);
    const double place_ms = ms_since(stage);

    const double total_ms = ms_since(bench_start);
    const double rss_mb = peak_rss_mb();
    const double n = static_cast<double>(net.num_nodes());
    // What the dense n^2 double matrix alone would occupy, in MiB — the
    // memory this subsystem exists to avoid. The headline ratio must stay
    // far below 1 (i.e. peak RSS sublinear in n^2).
    const double dense_matrix_mb = n * n * 8.0 / (1024.0 * 1024.0);
    const double rss_vs_dense = rss_mb > 0.0 ? rss_mb / dense_matrix_mb : 0.0;
    const graph::SparseDistanceCache::Stats cache_stats = cache->stats();

    std::vector<bench::BenchMetric> metrics;
    metrics.push_back({"scale.nodes", n, "count", false});
    metrics.push_back({"scale.flows", static_cast<double>(problem.num_flows()),
                       "count", false});
    metrics.push_back({"scale.customers", placement.customers, "customers",
                       false});
    metrics.push_back({"scale.warm_pairs",
                       static_cast<double>(cache_stats.insertions), "count",
                       false});
    metrics.push_back({"scale.gain_evaluations",
                       static_cast<double>(greedy_stats.gain_evaluations),
                       "count", true});
    metrics.push_back({"scale.oracle_memory_mb",
                       static_cast<double>(oracle->memory_bytes()) /
                           (1024.0 * 1024.0),
                       "mb", true});
    metrics.push_back({"scale.city_build_ms", city_build_ms, "ms", true});
    metrics.push_back({"scale.flows_build_ms", flows_build_ms, "ms", true});
    metrics.push_back({"scale.engine_build_ms", engine_build_ms, "ms", true});
    metrics.push_back({"scale.problem_build_ms", problem_build_ms, "ms",
                       true});
    metrics.push_back({"scale.place_ms", place_ms, "ms", true});
    metrics.push_back({"scale.total_ms", total_ms, "ms", true});
    // Unit "ratio" (not "mb"): RSS is allocator- and machine-dependent, so
    // it belongs in bench_compare's loose tolerance class; the
    // rss_vs_dense_matrix ratio below is the sublinearity contract proper.
    metrics.push_back({"scale.peak_rss_mb", rss_mb, "ratio", true});
    metrics.push_back({"scale.rss_vs_dense_matrix", rss_vs_dense, "ratio",
                       true});
    bench::write_bench_json(out, "scale",
                            {{"side", std::to_string(side)},
                             {"flows", std::to_string(flow_count)},
                             {"k", std::to_string(k)},
                             {"landmarks", std::to_string(landmarks)},
                             {"max_trip", std::to_string(max_trip)},
                             {"engine", "alt"}},
                            metrics);

    std::cout << "scale: " << net.num_nodes() << " nodes, "
              << problem.num_flows() << " flows, k=" << k << "\n"
              << "  city " << city_build_ms << " ms, flows " << flows_build_ms
              << " ms, engine " << engine_build_ms << " ms (warm "
              << cache_stats.insertions << " pairs), problem "
              << problem_build_ms << " ms, place " << place_ms << " ms\n"
              << "  objective " << placement.customers << " customers, "
              << greedy_stats.gain_evaluations << " gain evaluation(s)\n"
              << "  peak RSS " << rss_mb << " MiB vs " << dense_matrix_mb
              << " MiB dense matrix (ratio " << rss_vs_dense << "); wrote "
              << out << "\n";

    bool over_budget = false;
    if (max_wall_s > 0.0 && total_ms > max_wall_s * 1'000.0) {
      std::cerr << "scale: BUDGET EXCEEDED: wall " << total_ms / 1'000.0
                << " s > " << max_wall_s << " s\n";
      over_budget = true;
    }
    if (max_rss_mb > 0.0 && rss_mb > max_rss_mb) {
      std::cerr << "scale: BUDGET EXCEEDED: peak RSS " << rss_mb << " MiB > "
                << max_rss_mb << " MiB\n";
      over_budget = true;
    }
    return over_budget ? 1 : 0;
  } catch (const std::exception& error) {
    std::cerr << "scale: " << error.what() << "\n";
    return 1;
  }
}
