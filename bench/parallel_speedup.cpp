// Parallel speedup bench: times the three parallelised kernels — APSP, the
// coverage greedy (Algorithm 1), and the composite greedy (Algorithm 2) —
// on a 20x20 grid city at threads=1 vs threads=4 and writes the wall-clock
// ratios to BENCH_parallel.json in the rap.bench.v1 schema (bench/common.h).
// Determinism means the parallel runs also double as a correctness check:
// the bench aborts if any result differs from the serial run.
//
//   parallel_speedup [--out=BENCH_parallel.json] [--threads=4] [--trials=5]
#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/citygen/grid_city.h"
#include "src/core/composite_greedy.h"
#include "src/core/greedy.h"
#include "src/core/problem.h"
#include "src/graph/apsp.h"
#include "src/traffic/utility.h"
#include "src/util/cli.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace {

using namespace rap;

constexpr std::size_t kK = 8;

/// Best-of-N wall-clock time of `fn` in milliseconds.
template <typename Fn>
double time_best_ms(std::size_t trials, Fn&& fn) {
  double best = 1e300;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return best;
}

struct KernelTiming {
  std::string name;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  [[nodiscard]] double speedup() const {
    return parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  }
};

std::vector<traffic::TrafficFlow> make_flows(const graph::RoadNetwork& net,
                                             std::size_t count,
                                             util::Rng& rng) {
  std::vector<traffic::TrafficFlow> flows;
  while (flows.size() < count) {
    const auto i = static_cast<graph::NodeId>(rng.next_below(net.num_nodes()));
    const auto j = static_cast<graph::NodeId>(rng.next_below(net.num_nodes()));
    if (i == j) continue;
    flows.push_back(traffic::make_shortest_path_flow(
        net, i, j, static_cast<double>(1 + rng.next_below(20)), 1.0, 0.5));
  }
  return flows;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::CliFlags flags(argc, argv);
    const std::string out = flags.get_string("out", "BENCH_parallel.json");
    const auto threads =
        static_cast<std::size_t>(flags.get_int("threads", 4));
    const auto trials = static_cast<std::size_t>(flags.get_int("trials", 5));

    const citygen::GridCity city({20, 20, 500.0, {0.0, 0.0}});
    const graph::RoadNetwork& net = city.network();
    util::Rng rng(1);
    auto flows = make_flows(net, 300, rng);
    const traffic::LinearUtility utility(6'000.0);
    const core::PlacementProblem problem(net, std::move(flows), 0, utility);

    std::vector<KernelTiming> timings;

    // APSP: 400 Dijkstra sources, 16-row chunks.
    {
      KernelTiming t{"apsp", 0.0, 0.0};
      util::set_parallel_config({1});
      const graph::DistanceMatrix serial = graph::all_pairs_shortest_paths(net);
      t.serial_ms =
          time_best_ms(trials, [&] { (void)graph::all_pairs_shortest_paths(net); });
      util::set_parallel_config({threads});
      const graph::DistanceMatrix parallel =
          graph::all_pairs_shortest_paths(net);
      t.parallel_ms =
          time_best_ms(trials, [&] { (void)graph::all_pairs_shortest_paths(net); });
      for (graph::NodeId i = 0; i < serial.size(); ++i) {
        for (graph::NodeId j = 0; j < serial.size(); ++j) {
          if (serial(i, j) != parallel(i, j)) {
            std::cerr << "determinism violation in apsp at (" << i << "," << j
                      << ")\n";
            return 1;
          }
        }
      }
      timings.push_back(t);
    }

    // The two placement algorithms (Algorithm 1 and Algorithm 2).
    const auto bench_alg = [&](const std::string& name, auto&& run) {
      KernelTiming t{name, 0.0, 0.0};
      util::set_parallel_config({1});
      const core::PlacementResult serial = run();
      t.serial_ms = time_best_ms(trials, [&] { (void)run(); });
      util::set_parallel_config({threads});
      const core::PlacementResult parallel = run();
      t.parallel_ms = time_best_ms(trials, [&] { (void)run(); });
      if (serial.nodes != parallel.nodes ||
          serial.customers != parallel.customers) {
        std::cerr << "determinism violation in " << name << "\n";
        std::exit(1);
      }
      timings.push_back(t);
    };
    bench_alg("greedy_coverage",
              [&] { return core::greedy_coverage_placement(problem, kK); });
    bench_alg("composite_greedy",
              [&] { return core::composite_greedy_placement(problem, kK); });

    const unsigned hw = std::thread::hardware_concurrency();
    std::vector<std::pair<std::string, std::string>> context = {
        {"city", "grid-20x20"},
        {"k", std::to_string(kK)},
        {"threads", std::to_string(threads)},
        {"trials", std::to_string(trials)},
        {"hardware_concurrency", std::to_string(hw)}};
    if (hw < threads) {
      // Speedup is bounded by physical cores; flag runs where the requested
      // thread count oversubscribes the host so readers don't misread the
      // ratios as the engine's ceiling.
      context.push_back({"note", "host has only " + std::to_string(hw) +
                                     " hardware thread(s); expect ~1x here, "
                                     ">=2x needs >= " +
                                     std::to_string(threads) + " cores"});
    }
    std::vector<bench::BenchMetric> metrics;
    for (const KernelTiming& t : timings) {
      metrics.push_back({t.name + ".serial_ms", t.serial_ms, "ms", true});
      metrics.push_back({t.name + ".parallel_ms", t.parallel_ms, "ms", true});
      metrics.push_back({t.name + ".speedup", t.speedup(), "x", false});
      std::cout << t.name << ": serial " << t.serial_ms << " ms, " << threads
                << " threads " << t.parallel_ms << " ms (" << t.speedup()
                << "x)\n";
    }
    bench::write_bench_json(out, "parallel_speedup", context, metrics);
    std::cout << "wrote " << out << "\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "parallel_speedup: " << error.what() << "\n";
    return 1;
  }
}
