// Figure 12 — Seattle bus trace, general scenario (Section III, fixed
// paths). Shop in the city; panels (a) threshold utility, (b) decreasing
// utility i (linear), each with D = 2,500 ft (top) and D = 1,000 ft
// (bottom).
//
// Flags: --reps (default 200), --seed, --journeys, --csv-dir.
#include <iostream>

#include "bench/common.h"
#include "src/util/cli.h"

int main(int argc, char** argv) {
  using namespace rap;
  const util::CliFlags flags(argc, argv);
  const auto reps = static_cast<std::size_t>(flags.get_int("reps", 200));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto journeys =
      static_cast<std::size_t>(flags.get_int("journeys", 100));
  const auto threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  const std::filesystem::path csv_dir =
      flags.get_string("csv-dir", "bench_results");
  for (const std::string& flag : flags.unused()) {
    std::cerr << "unknown flag --" << flag << "\n";
    return 2;
  }

  std::cout << "fig12: Seattle, general scenario, shop=city, utility x "
               "threshold sweep, reps="
            << reps << "\n\n";
  const bench::CityWorkload city = bench::build_seattle(seed, journeys);
  std::cout << "city: " << city.net->num_nodes() << " intersections, "
            << city.workload.flows.size() << " traffic flows\n\n";

  const std::pair<const char*, traffic::UtilityKind> panels[] = {
      {"fig12a-threshold", traffic::UtilityKind::kThreshold},
      {"fig12b-linear", traffic::UtilityKind::kLinear},
  };
  std::vector<eval::ExperimentConfig> configs;
  for (const auto& [name, kind] : panels) {
    for (const double d : {2'500.0, 1'000.0}) {
      eval::ExperimentConfig config;
      config.name = std::string(name) + "-d" +
                    std::to_string(static_cast<int>(d));
      config.utility = kind;
      config.range = d;
      config.shop_class = trace::LocationClass::kCity;
      config.repetitions = reps;
      config.seed = seed;
      config.threads = threads;
      config.algorithms = bench::general_algorithms();
      configs.push_back(std::move(config));
    }
  }
  bench::run_and_report(city.workload, configs, csv_dir);
  return 0;
}
