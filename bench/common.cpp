#include "bench/common.h"

#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/citygen/partial_grid_city.h"
#include "src/obs/json.h"
#include "src/obs/telemetry.h"
#include "src/citygen/radial_city.h"
#include "src/trace/flow_extractor.h"
#include "src/trace/generator.h"
#include "src/util/rng.h"

namespace rap::bench {
namespace {

eval::Workload assemble(const graph::RoadNetwork& net, std::string name,
                        const trace::TraceGenSpec& spec, double snap_radius,
                        util::Rng& rng) {
  const trace::SyntheticTrace trace = trace::generate_trace(net, spec, rng);
  const trace::MapMatcher matcher(net, snap_radius);
  trace::ExtractionOptions options;
  options.passengers_per_vehicle = spec.passengers_per_vehicle;
  options.alpha = spec.alpha;
  auto flows = trace::extract_flows(matcher, trace.records, options);
  return eval::make_workload(net, std::move(flows), std::move(name));
}

}  // namespace

CityWorkload build_dublin(std::uint64_t seed, std::size_t journeys) {
  util::Rng rng(seed);
  // ~80,000 ft across: 12 rings spaced 3,300 ft -> radius ~39,600 ft.
  citygen::RadialSpec city;
  city.rings = 12;
  city.nodes_on_first_ring = 8;
  city.nodes_per_ring_step = 5;
  city.ring_spacing = 3'300.0;
  city.angular_jitter = 0.12;
  city.radial_jitter = 0.08;
  city.chord_prob = 0.06;
  city.oneway_prob = 0.06;
  CityWorkload out;
  out.net = std::make_unique<graph::RoadNetwork>(build_radial_city(city, rng));

  trace::TraceGenSpec spec;
  spec.num_journeys = journeys;
  spec.mean_runs_per_journey = 40.0;  // buses per journey pattern per day
  spec.sample_spacing = 900.0;
  spec.gps_noise = 150.0;
  spec.drop_prob = 0.05;
  spec.speed = 30.0;
  spec.passengers_per_vehicle = 100.0;  // Dublin: 100 passengers per bus
  spec.alpha = 0.001;
  spec.min_trip_fraction = 0.2;
  // Tight snap radius relative to the ~3,000 ft block size: mid-block
  // samples are discarded (the matcher's shortest-path stitching bridges
  // them) instead of snapping noisily to the nearest endpoint.
  out.workload = assemble(*out.net, "dublin", spec, /*snap_radius=*/450.0, rng);
  return out;
}

CityWorkload build_seattle(std::uint64_t seed, std::size_t journeys) {
  util::Rng rng(seed);
  // 10,000 x 10,000 ft central area: 21 x 21 grid, 500 ft blocks, with the
  // partial-grid irregularities Seattle's plan exhibits.
  citygen::PartialGridSpec city;
  city.grid = {21, 21, 500.0, {0.0, 0.0}};
  city.edge_removal_prob = 0.08;
  city.node_removal_prob = 0.03;
  city.oneway_prob = 0.05;
  city.position_jitter = 0.0;
  citygen::PartialGridCity built(city, rng);
  CityWorkload out;
  out.net = std::make_unique<graph::RoadNetwork>(built.network());

  trace::TraceGenSpec spec;
  spec.num_journeys = journeys;
  spec.mean_runs_per_journey = 30.0;
  spec.sample_spacing = 350.0;
  spec.gps_noise = 60.0;
  spec.drop_prob = 0.05;
  spec.speed = 30.0;
  spec.passengers_per_vehicle = 200.0;  // Seattle: 200 passengers per bus
  spec.alpha = 0.001;
  spec.min_trip_fraction = 0.25;
  out.workload = assemble(*out.net, "seattle", spec, /*snap_radius=*/230.0, rng);
  return out;
}

void run_and_report(const eval::Workload& workload,
                    const std::vector<eval::ExperimentConfig>& configs,
                    const std::filesystem::path& csv_dir) {
  for (const eval::ExperimentConfig& config : configs) {
    obs::Telemetry telemetry;
    std::optional<eval::ExperimentResult> result;
    {
      const obs::TelemetryScope scope(telemetry);
      const obs::Span span("experiment:" + config.name);
      result = eval::run_experiment(workload, config);
    }
    std::cout << eval::format_table(*result) << "\n";
    if (!csv_dir.empty()) {
      eval::write_csv(*result, csv_dir / (config.name + ".csv"));
      obs::write_json(csv_dir / (config.name + ".telemetry.json"), telemetry);
    }
  }
}

std::vector<eval::AlgorithmId> general_algorithms() {
  return {eval::AlgorithmId::kGreedyCoverage, eval::AlgorithmId::kCompositeGreedy,
          eval::AlgorithmId::kMaxCardinality, eval::AlgorithmId::kMaxVehicles,
          eval::AlgorithmId::kMaxCustomers,   eval::AlgorithmId::kRandom};
}

std::vector<eval::AlgorithmId> manhattan_algorithms() {
  return {eval::AlgorithmId::kTwoStageCorners,
          eval::AlgorithmId::kTwoStageMidpoints,
          eval::AlgorithmId::kGreedyCoverage,
          eval::AlgorithmId::kCompositeGreedy,
          eval::AlgorithmId::kMaxCustomers,
          eval::AlgorithmId::kRandom};
}

void write_bench_json(
    const std::filesystem::path& path, const std::string& bench,
    const std::vector<std::pair<std::string, std::string>>& context,
    const std::vector<BenchMetric>& metrics) {
  std::map<std::string, std::string> sorted_context(context.begin(),
                                                    context.end());
  std::ostringstream out;
  out << "{\n  \"schema\": \"" << kBenchSchema << "\",\n  \"bench\": "
      << obs::json_quote(bench) << ",\n  \"context\": {";
  bool first = true;
  for (const auto& [key, value] : sorted_context) {
    out << (first ? "\n" : ",\n") << "    " << obs::json_quote(key) << ": "
        << obs::json_quote(value);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"metrics\": [";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const BenchMetric& metric = metrics[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"name\": "
        << obs::json_quote(metric.name)
        << ", \"value\": " << obs::json_number_repr(metric.value)
        << ", \"unit\": " << obs::json_quote(metric.unit)
        << ", \"lower_is_better\": "
        << (metric.lower_is_better ? "true" : "false") << "}";
  }
  out << (metrics.empty() ? "" : "\n  ") << "]\n}\n";

  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("write_bench_json: cannot open " + path.string());
  }
  file << out.str();
  if (!file) {
    throw std::runtime_error("write_bench_json: write failed for " +
                             path.string());
  }
}

}  // namespace rap::bench
