// Ablation bench for the design choices DESIGN.md calls out:
//
//   1. Composite greedy (Algorithm 2) vs the naive total-marginal-gain
//      greedy vs the coverage-only greedy (factor (i) alone) vs the exact
//      optimum on small instances — quantifies what the overlap-aware
//      candidate (ii) buys and how close each lands to optimal.
//   2. Detour d''' mode: along-path vs shortest-path on trace-extracted
//      (imperfect) paths — justifies the default.
//   3. Route flexibility: the same placements valued under fixed-path vs
//      flexible routing — the Fig. 12 vs Fig. 13 mechanism in isolation.
//   4. Lazy (CELF) greedy: identical output to the eager greedy with a
//      fraction of the gain evaluations — the k|V||T| term in practice.
//   5. Detour preprocessing: the paper's O(|V|^3) all-pairs matrix vs the
//      per-shop Dijkstra engine, per-shop build time.
//
// Flags: --instances (default 30), --seed, --k (default 6).
#include <chrono>
#include <iostream>

#include "bench/common.h"
#include "src/core/composite_greedy.h"
#include "src/core/evaluator.h"
#include "src/core/exhaustive.h"
#include "src/core/greedy.h"
#include "src/core/lazy_greedy.h"
#include "src/core/local_search.h"
#include "src/manhattan/flexible_eval.h"
#include "src/traffic/apsp_detour.h"
#include "src/util/cli.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/strings.h"

namespace {

using namespace rap;

void print_row(const std::string& label, const util::RunningStats& stats) {
  std::cout << util::pad(label, -28) << util::pad(util::format_fixed(stats.mean(), 3), 10)
            << util::pad(util::format_fixed(stats.min(), 3), 10)
            << util::pad(util::format_fixed(stats.max(), 3), 10) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliFlags flags(argc, argv);
  const auto instances = static_cast<std::size_t>(flags.get_int("instances", 30));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto k = static_cast<std::size_t>(flags.get_int("k", 6));
  for (const std::string& flag : flags.unused()) {
    std::cerr << "unknown flag --" << flag << "\n";
    return 2;
  }

  // ---- Ablation 1: greedy variants vs optimum on small Seattle workloads.
  // Tight k and D make RAP overlaps matter (the Fig. 4 phenomenon) so the
  // variants actually separate from the optimum.
  const std::size_t k_small = 3;
  std::cout << "# ablation 1: greedy objective (values normalised by the "
               "exact optimum; k="
            << k_small << ", linear utility, D=1200 ft)\n";
  util::RunningStats composite_ratio;
  util::RunningStats naive_ratio;
  util::RunningStats coverage_ratio;
  util::RunningStats refined_ratio;
  for (std::size_t i = 0; i < instances; ++i) {
    const bench::CityWorkload city = bench::build_seattle(seed + i, 25);
    const traffic::LinearUtility utility(1'200.0);
    util::Rng rng(seed + i);
    const auto shop = static_cast<graph::NodeId>(
        rng.next_below(city.net->num_nodes()));
    const core::PlacementProblem problem(*city.net, city.workload.flows, shop,
                                         utility);
    double opt = 0.0;
    try {
      opt = core::exhaustive_optimal_placement(problem, k_small, {2'000'000})
                .customers;
    } catch (const std::runtime_error&) {
      continue;  // instance too dense for the exact oracle — skip
    }
    if (opt <= 0.0) continue;
    composite_ratio.add(
        core::composite_greedy_placement(problem, k_small).customers / opt);
    naive_ratio.add(
        core::naive_marginal_greedy_placement(problem, k_small).customers / opt);
    coverage_ratio.add(
        core::greedy_coverage_placement(problem, k_small).customers / opt);
    refined_ratio.add(
        core::greedy_with_local_search(problem, k_small).placement.customers /
        opt);
  }
  std::cout << util::pad("variant", -28) << util::pad("mean", 10)
            << util::pad("min", 10) << util::pad("max", 10) << "\n";
  print_row("Algorithm2 (composite)", composite_ratio);
  print_row("naive marginal greedy", naive_ratio);
  print_row("coverage-only greedy", coverage_ratio);
  print_row("Algorithm2 + local search", refined_ratio);
  std::cout << "(1 - 1/sqrt(e) = 0.393 is Algorithm 2's worst-case bound)\n\n";

  // ---- Ablation 2: d''' along-path vs shortest-path on one workload.
  std::cout << "# ablation 2: detour d''' mode (composite greedy value, "
               "Dublin workload, linear, D=20000 ft)\n";
  {
    const bench::CityWorkload city = bench::build_dublin(seed, 80);
    const traffic::LinearUtility utility(20'000.0);
    util::RunningStats along;
    util::RunningStats shortest;
    util::Rng rng(seed);
    for (std::size_t i = 0; i < std::min<std::size_t>(instances, 10); ++i) {
      const auto shop = static_cast<graph::NodeId>(
          rng.next_below(city.net->num_nodes()));
      const core::PlacementProblem a(*city.net, city.workload.flows, shop,
                                     utility, traffic::DetourMode::kAlongPath);
      const core::PlacementProblem s(*city.net, city.workload.flows, shop,
                                     utility, traffic::DetourMode::kShortestPath);
      along.add(core::composite_greedy_placement(a, k).customers);
      shortest.add(core::composite_greedy_placement(s, k).customers);
    }
    std::cout << util::pad("mode", -28) << util::pad("mean", 10)
              << util::pad("min", 10) << util::pad("max", 10) << "\n";
    print_row("d''' along path", along);
    print_row("d''' shortest path", shortest);
    std::cout << "(identical on perfectly shortest paths; extraction noise "
                 "creates the gap)\n\n";
  }

  // ---- Ablation 3: fixed-path vs flexible routing for the same placement.
  std::cout << "# ablation 3: route flexibility (Algorithm 2 placement "
               "valued under both models, Seattle, threshold, D=2500 ft)\n";
  {
    const bench::CityWorkload city = bench::build_seattle(seed, 60);
    const traffic::ThresholdUtility utility(2'500.0);
    util::RunningStats fixed_value;
    util::RunningStats flexible_value;
    util::Rng rng(seed + 99);
    for (std::size_t i = 0; i < std::min<std::size_t>(instances, 10); ++i) {
      const auto shop = static_cast<graph::NodeId>(
          rng.next_below(city.net->num_nodes()));
      const core::PlacementProblem fixed(*city.net, city.workload.flows, shop,
                                         utility);
      const manhattan::FlexibleProblem flexible(*city.net, city.workload.flows,
                                                shop, utility);
      const core::Placement placement =
          core::composite_greedy_placement(fixed, k).nodes;
      fixed_value.add(core::evaluate_placement(fixed, placement));
      flexible_value.add(core::evaluate_placement(flexible, placement));
    }
    std::cout << util::pad("routing model", -28) << util::pad("mean", 10)
              << util::pad("min", 10) << util::pad("max", 10) << "\n";
    print_row("fixed paths (Fig. 12)", fixed_value);
    print_row("flexible routing (Fig. 13)", flexible_value);
    std::cout << "(flexibility never reduces a placement's value)\n\n";
  }

  // ---- Ablation 4: lazy vs eager greedy work.
  std::cout << "# ablation 4: lazy (CELF) greedy vs eager gain evaluations "
               "(Dublin workload, k=10)\n";
  {
    const bench::CityWorkload city = bench::build_dublin(seed, 120);
    const traffic::LinearUtility utility(20'000.0);
    util::Rng rng(seed + 7);
    util::RunningStats eager_evals;
    util::RunningStats lazy_evals;
    for (std::size_t i = 0; i < std::min<std::size_t>(instances, 10); ++i) {
      const auto shop = static_cast<graph::NodeId>(
          rng.next_below(city.net->num_nodes()));
      const core::PlacementProblem problem(*city.net, city.workload.flows,
                                           shop, utility);
      core::LazyGreedyStats stats;
      const auto lazy = core::lazy_marginal_greedy_placement(problem, 10, &stats);
      const auto eager = core::naive_marginal_greedy_placement(problem, 10);
      if (lazy.nodes != eager.nodes) {
        std::cerr << "lazy/eager divergence — bug!\n";
        return 1;
      }
      // Eager evaluates every unplaced node per step.
      eager_evals.add(static_cast<double>(10 * city.net->num_nodes()));
      lazy_evals.add(static_cast<double>(stats.gain_evaluations));
    }
    std::cout << util::pad("variant", -28) << util::pad("mean evals", 12) << "\n";
    std::cout << util::pad("eager greedy", -28)
              << util::pad(util::format_fixed(eager_evals.mean(), 0), 12) << "\n";
    std::cout << util::pad("lazy (CELF) greedy", -28)
              << util::pad(util::format_fixed(lazy_evals.mean(), 0), 12) << "\n";
    std::cout << "(identical placements; see tests/core/lazy_greedy_test)\n\n";
  }

  // ---- Ablation 5: detour preprocessing strategy.
  std::cout << "# ablation 5: detour preprocessing (Dublin network, "
               "wall-clock per shop)\n";
  {
    const bench::CityWorkload city = bench::build_dublin(seed, 80);
    const auto time_of = [](auto&& fn) {
      const auto start = std::chrono::steady_clock::now();
      fn();
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - start)
          .count();
    };
    const double dijkstra_ms = time_of([&] {
      for (graph::NodeId shop = 0; shop < 20; ++shop) {
        const traffic::DetourCalculator calc(*city.net, shop);
        for (const auto& flow : city.workload.flows) {
          (void)calc.detours_along_path(flow);
        }
      }
    });
    const graph::DistanceMatrix matrix =
        graph::all_pairs_shortest_paths(*city.net);
    const double apsp_ms = time_of([&] {
      for (graph::NodeId shop = 0; shop < 20; ++shop) {
        const traffic::ApspDetourCalculator calc(*city.net, matrix, shop);
        for (const auto& flow : city.workload.flows) {
          (void)calc.detours_along_path(flow);
        }
      }
    });
    std::cout << util::pad("per-shop Dijkstra engine", -30)
              << util::pad(util::format_fixed(dijkstra_ms / 20.0, 3), 10)
              << " ms/shop\n";
    std::cout << util::pad("shared APSP matrix (paper)", -30)
              << util::pad(util::format_fixed(apsp_ms / 20.0, 3), 10)
              << " ms/shop (after one APSP build)\n";
  }
  return 0;
}
