// Audit-hook overhead bench: times PlacementState-heavy kernels (evaluation
// sweeps, Algorithm 1, the naive marginal greedy) on the Seattle-like
// workload with and without an installed ScopedAuditor, and writes
// BENCH_audit.json. Two regimes:
//   * RAP_AUDIT=OFF (the default build): the hook call site does not exist,
//     so "with auditor" must cost the same as "without" — the structural
//     zero-overhead claim, cross-checked by
//     tests/integration/audit_overhead_test.cpp;
//   * RAP_AUDIT=ON: the ratio reported here is the price of machine-checking
//     every add(), for deciding where audit builds are affordable.
// Writes BENCH_audit.json in the rap.bench.v1 schema (bench/common.h).
//
//   audit_overhead [--out=BENCH_audit.json] [--trials=5] [--k=8]
#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.h"
#include "src/check/audit.h"
#include "src/core/evaluator.h"
#include "src/core/greedy.h"
#include "src/core/composite_greedy.h"
#include "src/core/problem.h"
#include "src/traffic/utility.h"
#include "src/util/cli.h"

namespace {

using namespace rap;

template <typename Fn>
double time_best_ms(std::size_t trials, Fn&& fn) {
  double best = 1e300;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return best;
}

struct Timing {
  std::string name;
  double plain_ms = 0.0;
  double audited_ms = 0.0;
  [[nodiscard]] double ratio() const {
    return plain_ms > 0.0 ? audited_ms / plain_ms : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::CliFlags flags(argc, argv);
    const std::string out = flags.get_string("out", "BENCH_audit.json");
    const auto trials = static_cast<std::size_t>(flags.get_int("trials", 5));
    const auto k = static_cast<std::size_t>(flags.get_int("k", 8));

    const bench::CityWorkload city = bench::build_seattle(/*seed=*/7);
    const traffic::LinearUtility utility(3'000.0);
    const graph::NodeId shop = city.workload.flows.front().origin;
    const core::PlacementProblem problem(*city.net, city.workload.flows, shop,
                                         utility);

    const core::Placement greedy_nodes =
        core::greedy_coverage_placement(problem, k).nodes;
    std::vector<Timing> timings;
    const auto bench_case = [&](const std::string& name, auto&& run) {
      Timing t{name, 0.0, 0.0};
      t.plain_ms = time_best_ms(trials, run);
      {
        const check::ScopedAuditor auditor;
        t.audited_ms = time_best_ms(trials, run);
      }
      timings.push_back(t);
      std::cout << name << ": plain " << t.plain_ms << " ms, audited "
                << t.audited_ms << " ms (x" << t.ratio() << ")\n";
    };

    bench_case("evaluate_sweep", [&] {
      // Many short add() sequences: the hook-dominated regime.
      double sink = 0.0;
      for (int rep = 0; rep < 50; ++rep) {
        sink += core::evaluate_placement(problem, greedy_nodes);
      }
      if (sink < 0.0) std::abort();  // keep the work observable
    });
    bench_case("greedy_coverage", [&] {
      (void)core::greedy_coverage_placement(problem, k);
    });
    bench_case("naive_marginal_greedy", [&] {
      (void)core::naive_marginal_greedy_placement(problem, k);
    });

    std::vector<bench::BenchMetric> metrics;
    for (const Timing& t : timings) {
      metrics.push_back({t.name + ".plain_ms", t.plain_ms, "ms", true});
      metrics.push_back({t.name + ".audited_ms", t.audited_ms, "ms", true});
      metrics.push_back({t.name + ".ratio", t.ratio(), "ratio", true});
    }
    metrics.push_back({"audits_run",
                       static_cast<double>(check::hook_audits_run()), "count",
                       false});
    bench::write_bench_json(
        out, "audit_overhead",
        {{"city", city.workload.name},
         {"audit_compiled_in", core::kAuditCompiledIn ? "true" : "false"},
         {"k", std::to_string(k)},
         {"trials", std::to_string(trials)}},
        metrics);
    std::cout << "wrote " << out
              << (core::kAuditCompiledIn
                      ? " (RAP_AUDIT build: ratio is the audit price)"
                      : " (hookless build: ratios should be ~1.0)")
              << "\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "audit_overhead: " << error.what() << "\n";
    return 1;
  }
}
