// Micro-benchmarks backing the paper's complexity claims. Algorithms 1 and
// 2 are stated as O(|V|^3 + k |V| |T|): the |V|^3 term is the all-pairs
// shortest-path preprocessing (here per-shop Dijkstras + the incidence
// build, asymptotically cheaper on sparse road graphs), the k |V| |T| term
// the greedy sweep. These benches sweep |V|, |T| and k independently so the
// scaling of each stage is visible.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/citygen/grid_city.h"
#include "src/core/composite_greedy.h"
#include "src/core/evaluator.h"
#include "src/core/greedy.h"
#include "src/graph/apsp.h"
#include "src/graph/dijkstra.h"
#include "src/manhattan/flexible_eval.h"
#include "src/obs/telemetry.h"
#include "src/traffic/utility.h"
#include "src/util/rng.h"

namespace {

using namespace rap;

graph::RoadNetwork make_city(std::size_t side) {
  return citygen::GridCity({side, side, 500.0, {0.0, 0.0}}).network();
}

std::vector<traffic::TrafficFlow> make_flows(const graph::RoadNetwork& net,
                                             std::size_t count,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<traffic::TrafficFlow> flows;
  while (flows.size() < count) {
    const auto i = static_cast<graph::NodeId>(rng.next_below(net.num_nodes()));
    const auto j = static_cast<graph::NodeId>(rng.next_below(net.num_nodes()));
    if (i == j) continue;
    flows.push_back(
        traffic::make_shortest_path_flow(net, i, j, 10.0, 100.0, 0.001));
  }
  return flows;
}

void BM_DijkstraSingleSource(benchmark::State& state) {
  const auto net = make_city(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::dijkstra(net, 0));
  }
  state.SetComplexityN(static_cast<std::int64_t>(net.num_nodes()));
}
BENCHMARK(BM_DijkstraSingleSource)->Arg(10)->Arg(20)->Arg(40)->Complexity();

void BM_AllPairsShortestPaths(benchmark::State& state) {
  const auto net = make_city(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::all_pairs_shortest_paths(net));
  }
  state.SetComplexityN(static_cast<std::int64_t>(net.num_nodes()));
}
BENCHMARK(BM_AllPairsShortestPaths)->Arg(8)->Arg(16)->Arg(24)->Complexity();

void BM_FloydWarshallOracle(benchmark::State& state) {
  const auto net = make_city(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::floyd_warshall(net));
  }
  state.SetComplexityN(static_cast<std::int64_t>(net.num_nodes()));
}
BENCHMARK(BM_FloydWarshallOracle)->Arg(8)->Arg(12)->Arg(16)->Complexity();

void BM_ProblemBuild(benchmark::State& state) {
  const auto net = make_city(15);
  const auto flows = make_flows(net, static_cast<std::size_t>(state.range(0)), 1);
  const traffic::LinearUtility utility(4'000.0);
  for (auto _ : state) {
    const core::PlacementProblem problem(net, flows, 7, utility);
    benchmark::DoNotOptimize(&problem);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ProblemBuild)->Arg(50)->Arg(100)->Arg(200)->Complexity();

// Greedy sweep cost vs k (the k |V| |T| term).
void BM_GreedyCoverageVsK(benchmark::State& state) {
  const auto net = make_city(15);
  const auto flows = make_flows(net, 150, 2);
  const traffic::ThresholdUtility utility(4'000.0);
  const core::PlacementProblem problem(net, flows, 7, utility);
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_coverage_placement(
        problem, static_cast<std::size_t>(state.range(0)),
        {.stop_when_no_gain = false}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GreedyCoverageVsK)->Arg(2)->Arg(8)->Arg(32)->Complexity();

void BM_CompositeGreedyVsK(benchmark::State& state) {
  const auto net = make_city(15);
  const auto flows = make_flows(net, 150, 3);
  const traffic::LinearUtility utility(4'000.0);
  const core::PlacementProblem problem(net, flows, 7, utility);
  for (auto _ : state) {
    benchmark::DoNotOptimize(composite_greedy_placement(
        problem, static_cast<std::size_t>(state.range(0)),
        {.stop_when_no_gain = false}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CompositeGreedyVsK)->Arg(2)->Arg(8)->Arg(32)->Complexity();

// Greedy sweep cost vs |T| at fixed k.
void BM_CompositeGreedyVsFlows(benchmark::State& state) {
  const auto net = make_city(15);
  const auto flows =
      make_flows(net, static_cast<std::size_t>(state.range(0)), 4);
  const traffic::LinearUtility utility(4'000.0);
  const core::PlacementProblem problem(net, flows, 7, utility);
  for (auto _ : state) {
    benchmark::DoNotOptimize(composite_greedy_placement(problem, 10));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CompositeGreedyVsFlows)->Arg(50)->Arg(100)->Arg(200)->Complexity();

// Greedy sweep cost vs |V| at fixed k and |T|.
void BM_CompositeGreedyVsNodes(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const auto net = make_city(side);
  const auto flows = make_flows(net, 100, 5);
  const traffic::LinearUtility utility(4'000.0);
  const core::PlacementProblem problem(net, flows, 0, utility);
  for (auto _ : state) {
    benchmark::DoNotOptimize(composite_greedy_placement(problem, 10));
  }
  state.SetComplexityN(static_cast<std::int64_t>(net.num_nodes()));
}
BENCHMARK(BM_CompositeGreedyVsNodes)->Arg(10)->Arg(15)->Arg(20)->Complexity();

void BM_EvaluatePlacement(benchmark::State& state) {
  const auto net = make_city(15);
  const auto flows = make_flows(net, 150, 6);
  const traffic::LinearUtility utility(4'000.0);
  const core::PlacementProblem problem(net, flows, 7, utility);
  util::Rng rng(7);
  core::Placement placement;
  for (int i = 0; i < 10; ++i) {
    placement.push_back(
        static_cast<graph::NodeId>(rng.next_below(net.num_nodes())));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::evaluate_placement(problem, placement));
  }
}
BENCHMARK(BM_EvaluatePlacement);

// Telemetry fast path: micro_algorithms runs without a TelemetryScope, so
// every instrumented kernel above already pays (only) this per-event cost —
// a thread-local load and a branch. These pin the absolute number.
void BM_DisabledTelemetryCounter(benchmark::State& state) {
  for (auto _ : state) {
    obs::add_counter("bench.noop");
  }
}
BENCHMARK(BM_DisabledTelemetryCounter);

void BM_DisabledTelemetrySpan(benchmark::State& state) {
  for (auto _ : state) {
    const obs::Span span("bench.noop");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_DisabledTelemetrySpan);

// Enabled-path comparison point for BM_CompositeGreedyVsK at k = 8.
void BM_CompositeGreedyTelemetryEnabled(benchmark::State& state) {
  const auto net = make_city(15);
  const auto flows = make_flows(net, 150, 3);
  const traffic::LinearUtility utility(4'000.0);
  const core::PlacementProblem problem(net, flows, 7, utility);
  obs::Telemetry telemetry;
  const obs::TelemetryScope scope(telemetry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(composite_greedy_placement(
        problem, 8, {.stop_when_no_gain = false}));
  }
}
BENCHMARK(BM_CompositeGreedyTelemetryEnabled);

// Manhattan-scenario model build: per-endpoint Dijkstras + DAG reach.
void BM_FlexibleProblemBuild(benchmark::State& state) {
  const auto net = make_city(15);
  const auto flows =
      make_flows(net, static_cast<std::size_t>(state.range(0)), 8);
  const traffic::ThresholdUtility utility(4'000.0);
  for (auto _ : state) {
    const manhattan::FlexibleProblem model(net, flows, 7, utility);
    benchmark::DoNotOptimize(&model);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FlexibleProblemBuild)->Arg(25)->Arg(50)->Arg(100)->Complexity();

}  // namespace

BENCHMARK_MAIN();
