// Figure 10 — Dublin bus trace, general scenario, impact of the utility
// function. Shop in the *city* class, D = 20,000 ft; panels (a) threshold,
// (b) decreasing utility i (linear), (c) decreasing utility ii (sqrt).
// Series: Algorithms 1/2 vs MaxCardinality, MaxVehicles, MaxCustomers,
// Random; x-axis k = 1..10; values = expected attracted customers/day.
//
// Flags: --reps (default 200; paper uses 1000), --seed, --journeys,
//        --csv-dir (default bench_results), --d (default 20000).
#include <iostream>

#include "bench/common.h"
#include "src/util/cli.h"

int main(int argc, char** argv) {
  using namespace rap;
  const util::CliFlags flags(argc, argv);
  const auto reps = static_cast<std::size_t>(flags.get_int("reps", 200));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto journeys =
      static_cast<std::size_t>(flags.get_int("journeys", 120));
  const double d = flags.get_double("d", 20'000.0);
  const auto threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  const std::filesystem::path csv_dir =
      flags.get_string("csv-dir", "bench_results");
  for (const std::string& flag : flags.unused()) {
    std::cerr << "unknown flag --" << flag << "\n";
    return 2;
  }

  std::cout << "fig10: Dublin, general scenario, shop=city, D=" << d
            << " ft, reps=" << reps << "\n\n";
  const bench::CityWorkload city = bench::build_dublin(seed, journeys);
  std::cout << "city: " << city.net->num_nodes() << " intersections, "
            << city.net->num_edges() << " directed streets, "
            << city.workload.flows.size() << " traffic flows\n\n";

  std::vector<eval::ExperimentConfig> configs;
  const std::pair<const char*, traffic::UtilityKind> panels[] = {
      {"fig10a-threshold", traffic::UtilityKind::kThreshold},
      {"fig10b-linear", traffic::UtilityKind::kLinear},
      {"fig10c-sqrt", traffic::UtilityKind::kSqrt},
  };
  for (const auto& [name, kind] : panels) {
    eval::ExperimentConfig config;
    config.name = name;
    config.utility = kind;
    config.range = d;
    config.shop_class = trace::LocationClass::kCity;
    config.repetitions = reps;
    config.seed = seed;
    config.threads = threads;
    config.algorithms = bench::general_algorithms();
    configs.push_back(std::move(config));
  }
  bench::run_and_report(city.workload, configs, csv_dir);
  return 0;
}
