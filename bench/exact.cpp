// Certified-optimality-gap bench (DESIGN.md §16): on the Seattle-like
// gravity workload, price the composite greedy against the exact tier's
// certified upper bound at the real budgets k in {8, 16, 32} — where the
// exhaustive oracle is hopeless and the Lagrangian/flow machinery is the
// only source of truth. EXPERIMENTS.md's gap table is this bench's output.
//
// Writes BENCH_exact.json in the rap.bench.v1 schema (bench/common.h) so
// tools/bench_compare gates the numbers against bench/baselines/: the
// greedy objective, bound value, gap, tier, and iteration count are fully
// deterministic (strict tolerance); wall times are loose.
//
//   exact [--seed=1] [--journeys=100] [--range=2500]
//         [--iterations=100] [--out=BENCH_exact.json]
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/core/composite_greedy.h"
#include "src/core/problem.h"
#include "src/exact/bound.h"
#include "src/trace/classify.h"
#include "src/traffic/utility.h"
#include "src/util/cli.h"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rap;
  try {
    const util::CliFlags flags(argc, argv);
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    const auto journeys =
        static_cast<std::size_t>(flags.get_int("journeys", 100));
    const double range = flags.get_double("range", 2'500.0);
    const auto iterations =
        static_cast<std::size_t>(flags.get_int("iterations", 100));
    const std::string out = flags.get_string("out", "BENCH_exact.json");
    for (const std::string& flag : flags.unused()) {
      std::cerr << "unknown flag --" << flag << "\n";
      return 2;
    }

    const bench::CityWorkload city = bench::build_seattle(seed, journeys);
    // Deterministic shop: the first city-class intersection, matching the
    // shop pool the figure benches draw from.
    const std::vector<graph::NodeId> pool =
        trace::nodes_in_class(city.workload.classes,
                              trace::LocationClass::kCity);
    if (pool.empty()) {
      std::cerr << "exact: no city-class intersection in the workload\n";
      return 1;
    }
    const graph::NodeId shop = pool.front();
    const traffic::LinearUtility utility(range);
    const core::PlacementProblem problem(*city.net, city.workload.flows, shop,
                                         utility);

    std::cout << "exact: Seattle, " << city.net->num_nodes()
              << " intersections, " << problem.num_flows()
              << " flows, shop=" << shop << ", D=" << range << " ft\n\n";

    // Real budgets: exhaustive is infeasible, so force the flow/Lagrangian
    // machinery (the auto tier would refuse anyway at these C(n, k)).
    exact::BoundOptions options;
    options.exhaustive_tier = false;
    options.max_iterations = iterations;

    std::vector<bench::BenchMetric> metrics;
    for (const std::size_t k : {std::size_t{8}, std::size_t{16},
                                std::size_t{32}}) {
      auto stage = Clock::now();
      const core::PlacementResult greedy =
          core::composite_greedy_placement(problem, k);
      const double greedy_ms = ms_since(stage);

      stage = Clock::now();
      const exact::Bound bound =
          exact::certified_upper_bound(problem, k, options);
      const double bound_ms = ms_since(stage);
      const double gap = exact::optimality_gap(greedy.customers, bound);

      const std::string prefix = "exact.k" + std::to_string(k) + ".";
      metrics.push_back({prefix + "greedy", greedy.customers, "customers",
                         false});
      metrics.push_back({prefix + "upper_bound", bound.value, "customers",
                         true});
      metrics.push_back({prefix + "gap", gap, "gap", true});
      metrics.push_back({prefix + "iterations",
                         static_cast<double>(bound.iterations), "count",
                         true});
      metrics.push_back({prefix + "bound_ms", bound_ms, "ms", true});
      metrics.push_back({prefix + "greedy_ms", greedy_ms, "ms", true});

      std::cout << "k=" << k << ": greedy " << greedy.customers
                << " customers, bound " << bound.value << " ("
                << exact::to_string(bound.kind) << " tier, "
                << bound.iterations << " iteration(s)"
                << (bound.optimal ? ", provably optimal" : "") << ")\n"
                << "  gap <= " << gap * 100.0 << "%  [greedy " << greedy_ms
                << " ms, bound " << bound_ms << " ms]\n";
    }

    bench::write_bench_json(out, "exact",
                            {{"city", "seattle"},
                             {"journeys", std::to_string(journeys)},
                             {"seed", std::to_string(seed)},
                             {"range_ft", std::to_string(
                                 static_cast<int>(range))},
                             {"iterations", std::to_string(iterations)},
                             {"utility", "linear"}},
                            metrics);
    std::cout << "\nwrote " << out << "\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "exact: " << error.what() << "\n";
    return 1;
  }
}
