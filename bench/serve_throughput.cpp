// Serve-path throughput bench: requests/second through Server::handle_line
// on the Seattle-grid preset, across the three regimes the scenario cache
// and warm-start engine are built for:
//   * cold   — every load misses the cache (cache disabled), so each
//              request pays the full scenario build (Dijkstras) plus a
//              from-scratch greedy;
//   * cached — load hits the scenario cache, so the request pays only
//              session setup plus a from-scratch greedy;
//   * warm   — repeated place on a live session, reusing warm-start state.
// Writes BENCH_serve.json in the rap.bench.v1 schema (bench/common.h), so
// tools/bench_compare can gate regressions against bench/baselines/.
// The acceptance bar: cached place >= 5x cold.
//
// With --net-out the networked regimes run too and land in a second
// document (BENCH_serve_net.json):
//   * net.single      — one socket client, requests/second + p50/p99;
//   * net.concurrent  — N clients (--clients) hammering one listener
//                       concurrently; aggregate throughput must hold the
//                       single-client baseline (concurrent_over_single
//                       gates >= 1x within tolerance on multi-core hosts);
//   * store.*         — kill-and-restart against --store-dir segments:
//                       every scenario rehydrates (strict count) and
//                       re-loading them costs zero rebuilds (strict zero).
//
//   serve_throughput [--out=BENCH_serve.json] [--iters=5] [--k=8]
//                    [--net-out=BENCH_serve_net.json] [--clients=4]
//                    [--net-requests=40]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench/common.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/serve/transport.h"
#include "src/util/cli.h"

namespace {

using namespace rap;

struct Regime {
  std::string name;
  double ms_per_request = 0.0;
  [[nodiscard]] double requests_per_second() const {
    return ms_per_request > 0.0 ? 1'000.0 / ms_per_request : 0.0;
  }
};

std::string expect_ok(serve::Server& server, const std::string& line) {
  std::string response = server.handle_line(line);
  const serve::JsonValue parsed = serve::parse_json(response);
  if (!parsed.as_object().at("ok").as_bool()) {
    throw std::runtime_error("request failed: " + response);
  }
  return response;
}

/// Best-of-iters wall time for one request, in ms.
template <typename Fn>
double time_best_ms(std::size_t iters, Fn&& fn) {
  double best = 1e300;
  for (std::size_t i = 0; i < iters; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return best;
}

double percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(rank, sorted_ms.size() - 1)];
}

std::string expect_ok(serve::UnixClient& client, const std::string& line) {
  std::string response = client.request(line);
  const serve::JsonValue parsed = serve::parse_json(response);
  if (!parsed.as_object().at("ok").as_bool()) {
    throw std::runtime_error("request failed: " + response);
  }
  return response;
}

/// One socket client: load once, then `requests` timed places/evaluates.
/// Appends per-request latencies to `latencies_ms`.
void run_client(const std::string& socket, const std::string& load_line,
                std::size_t requests, std::size_t k,
                std::vector<double>& latencies_ms) {
  serve::UnixClient client(socket);
  (void)expect_ok(client, load_line);
  latencies_ms.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    const std::string line =
        i % 2 == 0 ? R"({"op":"place","k":)" + std::to_string(1 + i % k) + "}"
                   : R"({"op":"evaluate","nodes":[0]})";
    const auto start = std::chrono::steady_clock::now();
    (void)expect_ok(client, line);
    const auto stop = std::chrono::steady_clock::now();
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
}

/// The networked + persistence regimes; writes its own rap.bench.v1 doc.
void run_net_bench(const std::string& out, std::size_t clients,
                   std::size_t requests, std::size_t k) {
  const std::string socket =
      "/tmp/rap_bench_serve_" + std::to_string(::getpid()) + ".sock";
  const std::string store_dir =
      std::filesystem::temp_directory_path() /
      ("rap_bench_store_" + std::to_string(::getpid()));
  std::filesystem::remove_all(store_dir);
  const std::string load_line =
      R"({"op":"load","city":"grid","seed":1,"journeys":60,"d":2500})";

  std::vector<bench::BenchMetric> metrics;

  // --- single-client baseline over the socket ---------------------------
  double single_req_s = 0.0;
  {
    serve::Server server;
    serve::UnixListener listener(socket);
    std::thread serving([&] { (void)listener.serve(server); });
    {
      std::vector<double> latencies;
      const auto start = std::chrono::steady_clock::now();
      run_client(socket, load_line, requests, k, latencies);
      const auto stop = std::chrono::steady_clock::now();
      const double wall_s =
          std::chrono::duration<double>(stop - start).count();
      single_req_s =
          wall_s > 0.0 ? static_cast<double>(requests) / wall_s : 0.0;
    }
    listener.stop();
    serving.join();
  }
  metrics.push_back({"net.single.req_s", single_req_s, "req_s", false});

  // --- N concurrent clients ---------------------------------------------
  double concurrent_req_s = 0.0;
  std::vector<double> all_latencies;
  {
    serve::Server server;
    serve::UnixListener listener(socket);
    std::thread serving([&] { (void)listener.serve(server); });
    {
      std::vector<std::vector<double>> latencies(clients);
      std::vector<std::thread> threads;
      std::atomic<bool> failed{false};
      threads.reserve(clients);
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c]() {
          try {
            run_client(socket, load_line, requests, k, latencies[c]);
          } catch (const std::exception&) {
            failed.store(true);
          }
        });
      }
      for (std::thread& thread : threads) thread.join();
      const auto stop = std::chrono::steady_clock::now();
      if (failed.load()) throw std::runtime_error("a bench client failed");
      const double wall_s =
          std::chrono::duration<double>(stop - start).count();
      concurrent_req_s =
          wall_s > 0.0
              ? static_cast<double>(clients * requests) / wall_s
              : 0.0;
      for (std::vector<double>& client_latencies : latencies) {
        all_latencies.insert(all_latencies.end(), client_latencies.begin(),
                             client_latencies.end());
      }
    }
    listener.stop();
    serving.join();
  }
  std::sort(all_latencies.begin(), all_latencies.end());
  metrics.push_back({"net.concurrent.req_s", concurrent_req_s, "req_s",
                     false});
  metrics.push_back(
      {"net.concurrent.p50_ms", percentile(all_latencies, 50.0), "ms", true});
  metrics.push_back(
      {"net.concurrent.p99_ms", percentile(all_latencies, 99.0), "ms", true});
  metrics.push_back({"net.clients", static_cast<double>(clients), "count",
                     false});
  // The tentpole bar: N clients together must sustain at least the
  // single-client rate (tolerance applies; ~1x on a single-core host,
  // above it with real cores).
  metrics.push_back({"concurrent_over_single_throughput",
                     single_req_s > 0.0 ? concurrent_req_s / single_req_s
                                        : 0.0,
                     "x", false});

  // --- kill-and-restart rehydration -------------------------------------
  constexpr std::size_t kStoredScenarios = 3;
  {
    serve::ServerOptions options;
    options.store_dir = store_dir;
    serve::Server server(options);
    for (std::size_t seed = 1; seed <= kStoredScenarios; ++seed) {
      (void)expect_ok(
          server, R"({"op":"load","city":"grid","seed":)" +
                      std::to_string(seed) + R"(,"journeys":60,"d":2500})");
    }
  }  // the only survivors are the segment files
  {
    serve::ServerOptions options;
    options.store_dir = store_dir;
    const auto start = std::chrono::steady_clock::now();
    serve::Server restarted(options);
    const auto stop = std::chrono::steady_clock::now();
    for (std::size_t seed = 1; seed <= kStoredScenarios; ++seed) {
      (void)expect_ok(
          restarted, R"({"op":"load","city":"grid","seed":)" +
                         std::to_string(seed) + R"(,"journeys":60,"d":2500})");
    }
    const std::string stats = expect_ok(restarted, R"({"op":"stats"})");
    const double rebuilds = serve::parse_json(stats)
                                .as_object()
                                .at("server")
                                .as_object()
                                .at("scenario_builds")
                                .as_number();
    metrics.push_back({"store.rehydrated",
                       static_cast<double>(restarted.rehydrated_at_start()),
                       "count", false});
    metrics.push_back({"store.rebuilds_after_restart", rebuilds, "count",
                       true});
    metrics.push_back(
        {"store.rehydrate_ms",
         std::chrono::duration<double, std::milli>(stop - start).count(),
         "ms", true});
  }
  std::filesystem::remove_all(store_dir);

  bench::write_bench_json(out, "serve_net",
                          {{"city", "grid"},
                           {"clients", std::to_string(clients)},
                           {"requests", std::to_string(requests)},
                           {"k", std::to_string(k)}},
                          metrics);
  for (const bench::BenchMetric& metric : metrics) {
    std::cout << metric.name << ": " << metric.value << " " << metric.unit
              << "\n";
  }
  std::cout << "wrote " << out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::CliFlags flags(argc, argv);
    const std::string out = flags.get_string("out", "BENCH_serve.json");
    const auto iters = static_cast<std::size_t>(flags.get_int("iters", 5));
    const auto k = static_cast<std::size_t>(flags.get_int("k", 8));
    const std::string net_out = flags.get_string("net-out", "");
    const auto clients =
        static_cast<std::size_t>(flags.get_int("clients", 4));
    const auto net_requests =
        static_cast<std::size_t>(flags.get_int("net-requests", 40));

    const std::string load_line =
        R"({"op":"load","city":"seattle","seed":7,"journeys":100,"d":2500})";
    const std::string place_line =
        R"({"op":"place","k":)" + std::to_string(k) + "}";

    std::vector<Regime> regimes;

    {
      serve::ServerOptions options;
      options.cache_bytes = 0;  // every load rebuilds the scenario
      serve::Server server(options);
      regimes.push_back({"cold", time_best_ms(iters, [&] {
                           expect_ok(server, load_line);
                           expect_ok(server, place_line);
                         })});
    }
    {
      serve::Server server;
      expect_ok(server, load_line);  // prime the cache
      regimes.push_back({"cached", time_best_ms(iters, [&] {
                           expect_ok(server, load_line);
                           expect_ok(server, place_line);
                         })});
      // Warm regime: same session, place only; after the first place every
      // further one reuses warm-start state.
      expect_ok(server, place_line);
      regimes.push_back({"warm", time_best_ms(iters, [&] {
                           expect_ok(server, place_line);
                         })});
    }

    const double speedup = regimes[0].ms_per_request > 0.0
                               ? regimes[0].ms_per_request /
                                     regimes[1].ms_per_request
                               : 0.0;

    std::vector<bench::BenchMetric> metrics;
    for (const Regime& regime : regimes) {
      metrics.push_back({regime.name + ".ms_per_request",
                         regime.ms_per_request, "ms", true});
      metrics.push_back({regime.name + ".requests_per_second",
                         regime.requests_per_second(), "req_s", false});
    }
    metrics.push_back({"cached_over_cold_speedup", speedup, "x", false});
    bench::write_bench_json(out, "serve_throughput",
                            {{"city", "seattle"},
                             {"k", std::to_string(k)},
                             {"iters", std::to_string(iters)}},
                            metrics);

    for (const Regime& regime : regimes) {
      std::cout << regime.name << ": " << regime.ms_per_request
                << " ms/request (" << regime.requests_per_second()
                << " req/s)\n";
    }
    std::cout << "cached place is " << speedup << "x cold; wrote " << out
              << "\n";
    if (!net_out.empty()) {
      run_net_bench(net_out, clients, net_requests, k);
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "serve_throughput: " << error.what() << "\n";
    return 1;
  }
}
