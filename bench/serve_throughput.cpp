// Serve-path throughput bench: requests/second through Server::handle_line
// on the Seattle-grid preset, across the three regimes the scenario cache
// and warm-start engine are built for:
//   * cold   — every load misses the cache (cache disabled), so each
//              request pays the full scenario build (Dijkstras) plus a
//              from-scratch greedy;
//   * cached — load hits the scenario cache, so the request pays only
//              session setup plus a from-scratch greedy;
//   * warm   — repeated place on a live session, reusing warm-start state.
// Writes BENCH_serve.json in the rap.bench.v1 schema (bench/common.h), so
// tools/bench_compare can gate regressions against bench/baselines/.
// The acceptance bar: cached place >= 5x cold.
//
//   serve_throughput [--out=BENCH_serve.json] [--iters=5] [--k=8]
#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/util/cli.h"

namespace {

using namespace rap;

struct Regime {
  std::string name;
  double ms_per_request = 0.0;
  [[nodiscard]] double requests_per_second() const {
    return ms_per_request > 0.0 ? 1'000.0 / ms_per_request : 0.0;
  }
};

std::string expect_ok(serve::Server& server, const std::string& line) {
  std::string response = server.handle_line(line);
  const serve::JsonValue parsed = serve::parse_json(response);
  if (!parsed.as_object().at("ok").as_bool()) {
    throw std::runtime_error("request failed: " + response);
  }
  return response;
}

/// Best-of-iters wall time for one request, in ms.
template <typename Fn>
double time_best_ms(std::size_t iters, Fn&& fn) {
  double best = 1e300;
  for (std::size_t i = 0; i < iters; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::CliFlags flags(argc, argv);
    const std::string out = flags.get_string("out", "BENCH_serve.json");
    const auto iters = static_cast<std::size_t>(flags.get_int("iters", 5));
    const auto k = static_cast<std::size_t>(flags.get_int("k", 8));

    const std::string load_line =
        R"({"op":"load","city":"seattle","seed":7,"journeys":100,"d":2500})";
    const std::string place_line =
        R"({"op":"place","k":)" + std::to_string(k) + "}";

    std::vector<Regime> regimes;

    {
      serve::ServerOptions options;
      options.cache_bytes = 0;  // every load rebuilds the scenario
      serve::Server server(options);
      regimes.push_back({"cold", time_best_ms(iters, [&] {
                           expect_ok(server, load_line);
                           expect_ok(server, place_line);
                         })});
    }
    {
      serve::Server server;
      expect_ok(server, load_line);  // prime the cache
      regimes.push_back({"cached", time_best_ms(iters, [&] {
                           expect_ok(server, load_line);
                           expect_ok(server, place_line);
                         })});
      // Warm regime: same session, place only; after the first place every
      // further one reuses warm-start state.
      expect_ok(server, place_line);
      regimes.push_back({"warm", time_best_ms(iters, [&] {
                           expect_ok(server, place_line);
                         })});
    }

    const double speedup = regimes[0].ms_per_request > 0.0
                               ? regimes[0].ms_per_request /
                                     regimes[1].ms_per_request
                               : 0.0;

    std::vector<bench::BenchMetric> metrics;
    for (const Regime& regime : regimes) {
      metrics.push_back({regime.name + ".ms_per_request",
                         regime.ms_per_request, "ms", true});
      metrics.push_back({regime.name + ".requests_per_second",
                         regime.requests_per_second(), "req_s", false});
    }
    metrics.push_back({"cached_over_cold_speedup", speedup, "x", false});
    bench::write_bench_json(out, "serve_throughput",
                            {{"city", "seattle"},
                             {"k", std::to_string(k)},
                             {"iters", std::to_string(iters)}},
                            metrics);

    for (const Regime& regime : regimes) {
      std::cout << regime.name << ": " << regime.ms_per_request
                << " ms/request (" << regime.requests_per_second()
                << " req/s)\n";
    }
    std::cout << "cached place is " << speedup << "x cold; wrote " << out
              << "\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "serve_throughput: " << error.what() << "\n";
    return 1;
  }
}
