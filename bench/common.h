// Shared workload construction for the figure benches: the Dublin-like and
// Seattle-like cities with synthetic bus traces, matching Section V-A's
// stated scales (Dublin central area 80,000 x 80,000 ft, 100 passengers per
// bus; Seattle central area 10,000 x 10,000 ft, 200 passengers per bus,
// alpha = 0.001).
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/eval/report.h"
#include "src/eval/runner.h"
#include "src/graph/road_network.h"

namespace rap::bench {

/// A workload plus ownership of its road network.
struct CityWorkload {
  std::unique_ptr<graph::RoadNetwork> net;
  eval::Workload workload;
};

/// Dublin-like substrate: irregular radial city across ~80,000 ft,
/// journey-pattern trace, 100 passengers/bus.
[[nodiscard]] CityWorkload build_dublin(std::uint64_t seed,
                                        std::size_t journeys = 120);

/// Seattle-like substrate: partially grid-based city across ~10,000 ft,
/// route-id trace, 200 passengers/bus.
[[nodiscard]] CityWorkload build_seattle(std::uint64_t seed,
                                         std::size_t journeys = 100);

/// Runs each experiment, prints its table to stdout, and writes one CSV per
/// experiment under `csv_dir` (skipped when empty). Each run records
/// telemetry (per-stage spans, algorithm work counters — see src/obs/) and
/// writes it next to the CSV as `<name>.telemetry.json` in the
/// rap.telemetry.v1 schema, so result directories carry a perf trajectory
/// alongside the quality numbers.
void run_and_report(const eval::Workload& workload,
                    const std::vector<eval::ExperimentConfig>& configs,
                    const std::filesystem::path& csv_dir);

/// The paper's evaluation algorithm set for the general scenario.
[[nodiscard]] std::vector<eval::AlgorithmId> general_algorithms();

/// The algorithm set for the Manhattan scenario (adds Algorithms 3/4).
[[nodiscard]] std::vector<eval::AlgorithmId> manhattan_algorithms();

// ---------------------------------------------------------------------------
// rap.bench.v1 — the standard bench result schema.
//
// Every bench/* executable writes its --out file in this shape so
// tools/bench_compare can diff any result against a committed baseline
// (bench/baselines/) without per-bench parsers:
//
//   {
//     "schema": "rap.bench.v1",
//     "bench": "serve_throughput",
//     "context": { "city": "seattle", "k": "8", ... },   // strings, sorted
//     "metrics": [
//       { "name": "cached.ms_per_request", "value": 1.9,
//         "unit": "ms", "lower_is_better": true },
//       ...
//     ]
//   }
//
// "context" is descriptive only (machine, parameters, notes) — comparers
// must ignore it for pass/fail. Units drive tolerance classification in
// bench_compare: wall-clock-derived units (ms, s, x, ratio, req_s) are
// noisy across machines and get the loose --time-tolerance; anything else
// (count, bytes) is treated as deterministic and compared strictly.
// ---------------------------------------------------------------------------

/// Name of the schema, also the "schema" field's value.
inline constexpr const char* kBenchSchema = "rap.bench.v1";

/// One measured value. `name` is dotted-lowercase like telemetry names.
struct BenchMetric {
  std::string name;
  double value = 0.0;
  std::string unit = "ms";
  bool lower_is_better = true;
};

/// Writes a rap.bench.v1 document. `context` entries are emitted sorted by
/// key; metrics keep their given order. Throws std::runtime_error when the
/// file cannot be written.
void write_bench_json(
    const std::filesystem::path& path, const std::string& bench,
    const std::vector<std::pair<std::string, std::string>>& context,
    const std::vector<BenchMetric>& metrics);

}  // namespace rap::bench
