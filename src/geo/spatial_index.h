// Uniform-grid spatial index over a fixed point set. The trace map matcher
// issues one nearest-intersection query per GPS sample, so this needs to be
// O(1)-ish per query instead of a linear scan over all intersections.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/geo/bbox.h"
#include "src/geo/point.h"

namespace rap::geo {

class SpatialIndex {
 public:
  /// Builds an index over `points` (copied). `cell_size` must be > 0 unless
  /// the point set is empty; a good choice is the typical query radius
  /// (e.g. the average street-block length).
  SpatialIndex(std::span<const Point> points, double cell_size);

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }

  /// Index of the nearest point to `query`; std::nullopt when empty.
  [[nodiscard]] std::optional<std::size_t> nearest(const Point& query) const;

  /// Nearest point within `radius` of `query`, if any.
  [[nodiscard]] std::optional<std::size_t> nearest_within(const Point& query,
                                                          double radius) const;

  /// All point indices within `radius` of `query` (unsorted).
  [[nodiscard]] std::vector<std::size_t> within_radius(const Point& query,
                                                       double radius) const;

  /// All point indices inside the closed box (unsorted).
  [[nodiscard]] std::vector<std::size_t> within_box(const BBox& box) const;

 private:
  struct CellCoord {
    std::int64_t cx = 0;
    std::int64_t cy = 0;
  };

  [[nodiscard]] CellCoord cell_of(const Point& p) const noexcept;
  [[nodiscard]] std::size_t cell_index(CellCoord c) const noexcept;
  [[nodiscard]] std::optional<std::size_t> nearest_in_ring(
      const Point& query, std::int64_t ring, double& best_dist2) const;

  std::vector<Point> points_;
  double cell_size_ = 1.0;
  BBox bounds_;
  std::int64_t cols_ = 0;
  std::int64_t rows_ = 0;
  // CSR-style bucket layout: cell_start_[c]..cell_start_[c+1] indexes into
  // bucket_entries_.
  std::vector<std::uint32_t> cell_start_;
  std::vector<std::uint32_t> bucket_entries_;
};

}  // namespace rap::geo
