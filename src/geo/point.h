// Planar geometry primitives. Coordinates are in feet to match the paper's
// evaluation (Dublin central area: 80,000 x 80,000 ft; Seattle central area:
// 10,000 x 10,000 ft).
#pragma once

#include <cmath>
#include <compare>

namespace rap::geo {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point&, const Point&) = default;

  constexpr Point operator+(const Point& other) const noexcept {
    return {x + other.x, y + other.y};
  }
  constexpr Point operator-(const Point& other) const noexcept {
    return {x - other.x, y - other.y};
  }
  constexpr Point operator*(double scale) const noexcept {
    return {x * scale, y * scale};
  }
};

/// Euclidean (straight-line) distance.
[[nodiscard]] double euclidean_distance(const Point& a, const Point& b) noexcept;

/// Manhattan (L1) distance — the natural street metric in grid cities.
[[nodiscard]] double manhattan_distance(const Point& a, const Point& b) noexcept;

/// Squared Euclidean distance (comparison without the sqrt).
[[nodiscard]] constexpr double squared_distance(const Point& a,
                                                const Point& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Linear interpolation: t=0 -> a, t=1 -> b (t may lie outside [0,1]).
[[nodiscard]] constexpr Point lerp(const Point& a, const Point& b,
                                   double t) noexcept {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

/// Midpoint of the segment ab.
[[nodiscard]] constexpr Point midpoint(const Point& a, const Point& b) noexcept {
  return lerp(a, b, 0.5);
}

/// Closest point on segment [a, b] to p, and the distance to it.
struct SegmentProjection {
  Point closest;
  double distance = 0.0;
  double t = 0.0;  ///< Parameter along the segment in [0, 1].
};
[[nodiscard]] SegmentProjection project_onto_segment(const Point& p,
                                                     const Point& a,
                                                     const Point& b) noexcept;

}  // namespace rap::geo
