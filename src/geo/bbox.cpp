#include "src/geo/bbox.h"

#include <algorithm>
#include <stdexcept>

namespace rap::geo {

BBox::BBox(const Point& a, const Point& b) noexcept
    : min_{std::min(a.x, b.x), std::min(a.y, b.y)},
      max_{std::max(a.x, b.x), std::max(a.y, b.y)} {}

BBox BBox::centered_square(const Point& center, double side) {
  if (side < 0.0) {
    throw std::invalid_argument("BBox::centered_square: side must be >= 0");
  }
  const double half = side / 2.0;
  return BBox({center.x - half, center.y - half},
              {center.x + half, center.y + half});
}

Point BBox::center() const noexcept {
  return {(min_.x + max_.x) / 2.0, (min_.y + max_.y) / 2.0};
}

double BBox::width() const noexcept { return empty() ? 0.0 : max_.x - min_.x; }
double BBox::height() const noexcept { return empty() ? 0.0 : max_.y - min_.y; }

bool BBox::contains(const Point& p) const noexcept {
  return !empty() && p.x >= min_.x && p.x <= max_.x && p.y >= min_.y &&
         p.y <= max_.y;
}

void BBox::expand(const Point& p) noexcept {
  if (empty()) {
    min_ = p;
    max_ = p;
    return;
  }
  min_.x = std::min(min_.x, p.x);
  min_.y = std::min(min_.y, p.y);
  max_.x = std::max(max_.x, p.x);
  max_.y = std::max(max_.y, p.y);
}

BBox BBox::inflated(double margin) const {
  if (margin < 0.0) {
    throw std::invalid_argument("BBox::inflated: margin must be >= 0");
  }
  if (empty()) return {};
  return BBox({min_.x - margin, min_.y - margin},
              {max_.x + margin, max_.y + margin});
}

bool BBox::intersects(const BBox& other) const noexcept {
  if (empty() || other.empty()) return false;
  return min_.x <= other.max_.x && other.min_.x <= max_.x &&
         min_.y <= other.max_.y && other.min_.y <= max_.y;
}

}  // namespace rap::geo
