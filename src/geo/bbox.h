// Axis-aligned bounding boxes. Used for the paper's D x D placement square
// around the shop (the Random baseline and the Manhattan region) and for the
// Manhattan bounding-rectangle shortest-path test.
#pragma once

#include "src/geo/point.h"

namespace rap::geo {

class BBox {
 public:
  /// Empty box: contains nothing until expanded.
  constexpr BBox() noexcept = default;

  /// Box spanning the two corner points (any orientation).
  BBox(const Point& a, const Point& b) noexcept;

  /// Square of side `side` centred at `center`. Throws if side < 0.
  [[nodiscard]] static BBox centered_square(const Point& center, double side);

  [[nodiscard]] constexpr bool empty() const noexcept { return min_.x > max_.x; }
  [[nodiscard]] constexpr Point min() const noexcept { return min_; }
  [[nodiscard]] constexpr Point max() const noexcept { return max_; }
  [[nodiscard]] Point center() const noexcept;
  [[nodiscard]] double width() const noexcept;
  [[nodiscard]] double height() const noexcept;

  /// Closed containment test (boundary points are inside).
  [[nodiscard]] bool contains(const Point& p) const noexcept;

  /// Grows the box to include p.
  void expand(const Point& p) noexcept;

  /// Grows the box outward by `margin` on all sides (margin >= 0).
  [[nodiscard]] BBox inflated(double margin) const;

  [[nodiscard]] bool intersects(const BBox& other) const noexcept;

 private:
  Point min_{1.0, 1.0};
  Point max_{-1.0, -1.0};  // min > max encodes "empty"
};

}  // namespace rap::geo
