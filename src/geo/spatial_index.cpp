#include "src/geo/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rap::geo {

SpatialIndex::SpatialIndex(std::span<const Point> points, double cell_size)
    : points_(points.begin(), points.end()), cell_size_(cell_size) {
  if (points_.empty()) return;
  if (!(cell_size > 0.0)) {
    throw std::invalid_argument("SpatialIndex: cell_size must be > 0");
  }
  for (const Point& p : points_) bounds_.expand(p);
  cols_ = static_cast<std::int64_t>(bounds_.width() / cell_size_) + 1;
  rows_ = static_cast<std::int64_t>(bounds_.height() / cell_size_) + 1;

  const std::size_t cell_count = static_cast<std::size_t>(cols_ * rows_);
  std::vector<std::uint32_t> counts(cell_count + 1, 0);
  std::vector<std::size_t> home(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    home[i] = cell_index(cell_of(points_[i]));
    ++counts[home[i] + 1];
  }
  for (std::size_t c = 1; c <= cell_count; ++c) counts[c] += counts[c - 1];
  cell_start_ = counts;
  bucket_entries_.resize(points_.size());
  std::vector<std::uint32_t> cursor(counts.begin(), counts.end() - 1);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    bucket_entries_[cursor[home[i]]++] = static_cast<std::uint32_t>(i);
  }
}

SpatialIndex::CellCoord SpatialIndex::cell_of(const Point& p) const noexcept {
  const auto clamp_cell = [](double v, std::int64_t hi) {
    const auto c = static_cast<std::int64_t>(v);
    return std::clamp<std::int64_t>(c, 0, hi - 1);
  };
  return {clamp_cell((p.x - bounds_.min().x) / cell_size_, cols_),
          clamp_cell((p.y - bounds_.min().y) / cell_size_, rows_)};
}

std::size_t SpatialIndex::cell_index(CellCoord c) const noexcept {
  return static_cast<std::size_t>(c.cy * cols_ + c.cx);
}

std::optional<std::size_t> SpatialIndex::nearest_in_ring(
    const Point& query, std::int64_t ring, double& best_dist2) const {
  const CellCoord origin = cell_of(query);
  std::optional<std::size_t> best;
  const auto visit_cell = [&](std::int64_t cx, std::int64_t cy) {
    if (cx < 0 || cx >= cols_ || cy < 0 || cy >= rows_) return;
    const std::size_t c = cell_index({cx, cy});
    for (std::uint32_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
      const std::uint32_t idx = bucket_entries_[k];
      const double d2 = squared_distance(points_[idx], query);
      if (d2 < best_dist2) {
        best_dist2 = d2;
        best = idx;
      }
    }
  };
  if (ring == 0) {
    visit_cell(origin.cx, origin.cy);
    return best;
  }
  for (std::int64_t dx = -ring; dx <= ring; ++dx) {
    visit_cell(origin.cx + dx, origin.cy - ring);
    visit_cell(origin.cx + dx, origin.cy + ring);
  }
  for (std::int64_t dy = -ring + 1; dy <= ring - 1; ++dy) {
    visit_cell(origin.cx - ring, origin.cy + dy);
    visit_cell(origin.cx + ring, origin.cy + dy);
  }
  return best;
}

std::optional<std::size_t> SpatialIndex::nearest(const Point& query) const {
  if (points_.empty()) return std::nullopt;
  double best_dist2 = std::numeric_limits<double>::infinity();
  std::optional<std::size_t> best;
  const std::int64_t max_ring = std::max(cols_, rows_);
  for (std::int64_t ring = 0; ring <= max_ring; ++ring) {
    if (const auto found = nearest_in_ring(query, ring, best_dist2)) {
      best = found;
    }
    // Once a candidate exists, any point in a ring further than the current
    // best distance cannot win; rings are `ring * cell_size_` away at least
    // (minus one cell of slack for the query's offset within its cell).
    if (best &&
        static_cast<double>(ring - 1) * cell_size_ > std::sqrt(best_dist2)) {
      break;
    }
  }
  return best;
}

std::optional<std::size_t> SpatialIndex::nearest_within(const Point& query,
                                                        double radius) const {
  const auto best = nearest(query);
  if (!best) return std::nullopt;
  if (euclidean_distance(points_[*best], query) > radius) return std::nullopt;
  return best;
}

std::vector<std::size_t> SpatialIndex::within_radius(const Point& query,
                                                     double radius) const {
  std::vector<std::size_t> out;
  if (points_.empty() || radius < 0.0) return out;
  const double r2 = radius * radius;
  for (const std::size_t idx :
       within_box(BBox({query.x - radius, query.y - radius},
                       {query.x + radius, query.y + radius}))) {
    if (squared_distance(points_[idx], query) <= r2) out.push_back(idx);
  }
  return out;
}

std::vector<std::size_t> SpatialIndex::within_box(const BBox& box) const {
  std::vector<std::size_t> out;
  if (points_.empty() || box.empty() || !box.intersects(bounds_)) return out;
  const CellCoord lo = cell_of(box.min());
  const CellCoord hi = cell_of(box.max());
  for (std::int64_t cy = lo.cy; cy <= hi.cy; ++cy) {
    for (std::int64_t cx = lo.cx; cx <= hi.cx; ++cx) {
      const std::size_t c = cell_index({cx, cy});
      for (std::uint32_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
        const std::uint32_t idx = bucket_entries_[k];
        if (box.contains(points_[idx])) out.push_back(idx);
      }
    }
  }
  return out;
}

}  // namespace rap::geo
