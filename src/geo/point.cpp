#include "src/geo/point.h"

#include <algorithm>

namespace rap::geo {

double euclidean_distance(const Point& a, const Point& b) noexcept {
  return std::hypot(a.x - b.x, a.y - b.y);
}

double manhattan_distance(const Point& a, const Point& b) noexcept {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

SegmentProjection project_onto_segment(const Point& p, const Point& a,
                                       const Point& b) noexcept {
  const double len2 = squared_distance(a, b);
  SegmentProjection out;
  if (len2 == 0.0) {
    out.closest = a;
    out.t = 0.0;
  } else {
    const double t =
        ((p.x - a.x) * (b.x - a.x) + (p.y - a.y) * (b.y - a.y)) / len2;
    out.t = std::clamp(t, 0.0, 1.0);
    out.closest = lerp(a, b, out.t);
  }
  out.distance = euclidean_distance(p, out.closest);
  return out;
}

}  // namespace rap::geo
