// A serve session: one loaded scenario plus the mutable flow state built on
// top of it by delta operations.
//
// The session never mutates its (shared, possibly cached) ServeScenario.
// Delta operations copy-on-write the flow vector and rebuild a private
// PlacementProblem over it — cheaply, because the scenario's shop detour
// engine (two Dijkstras) is shared via SharedDetours and only the incidence
// index is rebuilt. Between placements the session carries the warm-start
// state (src/serve/delta.h): the first `place` runs cold and records exact
// round-0 gains; every delta loosens them by an audited upper bound; later
// `place` calls re-optimize warm and fall back to a full run only when the
// bound check fails.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/core/problem.h"
#include "src/serve/delta.h"
#include "src/serve/scenario_cache.h"

namespace rap::serve {

class Session {
 public:
  struct Stats {
    std::uint64_t places = 0;
    std::uint64_t deltas = 0;
    std::uint64_t warm_attempts = 0;  ///< places entered with valid warm state
    std::uint64_t warm_reused = 0;    ///< completed on the warm path
    std::uint64_t warm_fallbacks = 0; ///< bound violations -> full re-run
  };

  explicit Session(std::shared_ptr<const ServeScenario> scenario);

  [[nodiscard]] const ServeScenario& scenario() const noexcept {
    return *scenario_;
  }
  /// The active coverage model: the scenario's base problem until the first
  /// delta, the private rebuilt problem afterwards.
  [[nodiscard]] const core::CoverageModel& model() const noexcept;
  [[nodiscard]] const std::vector<traffic::TrafficFlow>& flows()
      const noexcept {
    return flows_;
  }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  /// Whether the next place() can start from warm round-0 gains.
  [[nodiscard]] bool warm_valid() const noexcept { return warm_.valid; }

  /// Applies one delta: validates it against the current flow state (throws
  /// std::invalid_argument / std::out_of_range on a bad op), loosens the
  /// warm bounds, and rebuilds the private problem.
  void apply_delta(const DeltaOp& op);

  /// Warm-start lazy greedy placement — bit-identical to
  /// core::lazy_marginal_greedy_placement on the current model. Updates the
  /// session's warm state.
  [[nodiscard]] WarmStartResult place(std::size_t k, Deadline deadline = {});

  /// Read-only placement for concurrent batch use: uses (but does not
  /// refresh) the warm state and does not touch session counters. Safe to
  /// call from several threads at once on a quiescent session.
  [[nodiscard]] WarmStartResult place_const(std::size_t k,
                                            Deadline deadline = {}) const;

  /// Objective value of an explicit placement on the current model. Throws
  /// std::out_of_range on an invalid node id.
  [[nodiscard]] double evaluate(std::span<const graph::NodeId> nodes) const;

 private:
  void rebuild_problem();

  std::shared_ptr<const ServeScenario> scenario_;
  std::vector<traffic::TrafficFlow> flows_;  // current (post-delta) flow set
  /// Private problem over flows_; null while flows_ still equals the
  /// scenario's base flows (the scenario's own problem serves then).
  std::unique_ptr<core::PlacementProblem> delta_problem_;
  WarmState warm_;
  Stats stats_;
};

}  // namespace rap::serve
