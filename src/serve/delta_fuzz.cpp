#include "src/serve/delta_fuzz.h"

#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "src/check/scenario.h"
#include "src/core/evaluator.h"
#include "src/core/lazy_greedy.h"
#include "src/serve/session.h"
#include "src/util/rng.h"

namespace rap::serve {
namespace {

/// Adopts a generated check::Scenario as a pinned ServeScenario (moving the
/// network, flows and utility; the scenario's own problem is dropped and a
/// serve-style problem with a shared detour engine is built instead).
std::shared_ptr<const ServeScenario> adopt_scenario(
    std::unique_ptr<check::Scenario> scenario) {
  auto serve = std::make_shared<ServeScenario>();
  serve->key = scenario->seed;
  serve->summary = "fuzz scenario seed " + std::to_string(scenario->seed);
  scenario->problem.reset();  // held pointers into net/utility; drop first
  serve->net = std::move(scenario->net);
  serve->flows = std::move(scenario->flows);
  serve->utility = std::move(scenario->utility);
  serve->shop = scenario->shop;
  serve->detours = std::make_shared<const traffic::DetourCalculator>(
      serve->net, serve->shop);
  serve->problem = std::make_unique<core::PlacementProblem>(
      serve->net, serve->flows, serve->shop, *serve->utility,
      std::make_unique<SharedDetours>(serve->detours));
  return serve;
}

/// Draws the next delta op, or nothing when the drawn op is infeasible
/// (unreachable OD pair, empty flow set).
bool draw_op(util::Rng& rng, const Session& session, DeltaOp& op) {
  const graph::RoadNetwork& net = session.scenario().net;
  const std::size_t flows = session.flows().size();
  switch (rng.next_below(3)) {
    case 0: {  // add_flow over a random reachable OD pair
      const auto origin = static_cast<graph::NodeId>(
          rng.next_below(net.num_nodes()));
      const auto destination = static_cast<graph::NodeId>(
          rng.next_below(net.num_nodes()));
      const double vehicles = 0.5 + rng.next_double() * 20.0;
      const double passengers = 1.0 + rng.next_double() * 4.0;
      const double alpha = 0.001 + rng.next_double() * 0.5;
      if (origin == destination) return false;
      try {
        op.kind = DeltaOp::Kind::kAddFlow;
        op.flow = traffic::make_shortest_path_flow(net, origin, destination,
                                                   vehicles, passengers, alpha);
        return true;
      } catch (const std::exception&) {
        return false;  // unreachable pair; the round just draws fewer ops
      }
    }
    case 1: {  // remove_flow
      if (flows == 0) return false;
      op.kind = DeltaOp::Kind::kRemoveFlow;
      op.index = rng.next_below(flows);
      return true;
    }
    default: {  // scale_flow, both up and down
      if (flows == 0) return false;
      op.kind = DeltaOp::Kind::kScaleFlow;
      op.index = rng.next_below(flows);
      op.factor = 0.25 + rng.next_double() * 2.75;
      return true;
    }
  }
}

/// One warm-vs-scratch comparison on the session's current flow state.
/// Returns false and fills `message` on divergence.
bool compare_round(Session& session, std::size_t k, std::size_t round,
                   std::string& message) {
  const WarmStartResult warm = session.place(k);

  const ServeScenario& scenario = session.scenario();
  const core::PlacementProblem reference(scenario.net, session.flows(),
                                         scenario.shop, *scenario.utility);
  const core::PlacementResult scratch =
      core::lazy_marginal_greedy_placement(reference, k);

  std::ostringstream error;
  if (warm.placement.nodes != scratch.nodes) {
    error << "round " << round << ": placement diverged (warm [";
    for (const graph::NodeId v : warm.placement.nodes) error << " " << v;
    error << " ] vs scratch [";
    for (const graph::NodeId v : scratch.nodes) error << " " << v;
    error << " ])";
    message = error.str();
    return false;
  }
  if (warm.placement.customers != scratch.customers) {
    error.precision(17);
    error << "round " << round << ": value diverged (warm "
          << warm.placement.customers << " vs scratch " << scratch.customers
          << ")";
    message = error.str();
    return false;
  }
  const double warm_eval = session.evaluate(warm.placement.nodes);
  const double scratch_eval =
      core::evaluate_placement(reference, scratch.nodes);
  if (warm_eval != scratch_eval) {
    error.precision(17);
    error << "round " << round << ": evaluate diverged (session " << warm_eval
          << " vs scratch " << scratch_eval << ")";
    message = error.str();
    return false;
  }
  return true;
}

}  // namespace

DeltaFuzzReport fuzz_delta_one(std::uint64_t seed,
                               const DeltaFuzzOptions& options) {
  DeltaFuzzReport report;
  report.seed = seed;

  std::unique_ptr<check::Scenario> generated = check::generate_scenario(seed);
  if (!check::is_monotone(generated->utility_kind)) {
    report.skipped = true;
    return report;
  }
  const std::size_t k = generated->k;
  Session session(adopt_scenario(std::move(generated)));

  // Distinct stream from the scenario generator so op draws never correlate
  // with instance structure.
  util::Rng rng(seed ^ 0xde17a5eedULL);

  // Round 0: cold parity before any delta.
  if (!compare_round(session, k, 0, report.message)) {
    report.ok = false;
    return report;
  }
  ++report.rounds_run;

  for (std::size_t round = 1; round <= options.rounds; ++round) {
    for (std::size_t i = 0; i < options.ops_per_round; ++i) {
      DeltaOp op;
      if (!draw_op(rng, session, op)) continue;
      session.apply_delta(op);
      ++report.deltas_applied;
    }
    if (!compare_round(session, k, round, report.message)) {
      report.ok = false;
      break;
    }
    ++report.rounds_run;
  }
  report.warm_reused = session.stats().warm_reused;
  report.warm_fallbacks = session.stats().warm_fallbacks;
  return report;
}

}  // namespace rap::serve
