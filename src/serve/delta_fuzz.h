// Differential fuzzing of the incremental update engine.
//
// One fuzz case: generate a random placement instance (check/scenario.h),
// open a serve Session on it, and replay a seed-derived random sequence of
// delta operations. After every round the session's warm-start placement
// and evaluation are compared against a from-scratch rebuild of the
// problem solved by core::lazy_marginal_greedy_placement — node lists must
// match exactly and objective values bit-for-bit (==, no tolerance), the
// same contract the core differential fuzzer enforces.
//
// Scenarios drawn with the adversarial (non-monotone) utility are skipped:
// warm-start CELF, like plain CELF, is only valid in the paper's monotone
// world (check/scenario.h documents the gate). The step family stays in —
// plateaus and jump discontinuities are exactly where stale-bound bugs
// would hide.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace rap::serve {

struct DeltaFuzzOptions {
  std::size_t rounds = 6;        ///< delta+place rounds per case
  std::size_t ops_per_round = 3; ///< delta ops applied before each place
};

struct DeltaFuzzReport {
  std::uint64_t seed = 0;
  bool ok = true;
  bool skipped = false;       ///< non-monotone utility family drawn
  std::size_t rounds_run = 0;
  std::size_t deltas_applied = 0;
  std::size_t warm_reused = 0;
  std::size_t warm_fallbacks = 0;
  std::string message;        ///< failure description (empty when ok)
};

/// Runs one seeded fuzz case. Deterministic: the same seed always replays
/// the same scenario and delta sequence.
[[nodiscard]] DeltaFuzzReport fuzz_delta_one(std::uint64_t seed,
                                             const DeltaFuzzOptions& options = {});

}  // namespace rap::serve
