#include "src/serve/session.h"

#include <stdexcept>

#include "src/core/evaluator.h"
#include "src/obs/telemetry.h"
#include "src/traffic/flow.h"

namespace rap::serve {

Session::Session(std::shared_ptr<const ServeScenario> scenario)
    : scenario_(std::move(scenario)), flows_(scenario_->flows) {}

const core::CoverageModel& Session::model() const noexcept {
  return delta_problem_ != nullptr
             ? static_cast<const core::CoverageModel&>(*delta_problem_)
             : *scenario_->problem;
}

void Session::rebuild_problem() {
  // The expensive inputs — network and the shop's two Dijkstra trees — are
  // shared from the scenario; only the incidence index is rebuilt here.
  delta_problem_ = std::make_unique<core::PlacementProblem>(
      scenario_->net, flows_, scenario_->shop, *scenario_->utility,
      std::make_unique<SharedDetours>(scenario_->detours));
}

void Session::apply_delta(const DeltaOp& op) {
  const obs::Span span("serve.delta");
  switch (op.kind) {
    case DeltaOp::Kind::kAddFlow: {
      traffic::validate_flow(scenario_->net, op.flow);
      apply_delta_bound(warm_, op, flows_, *scenario_->utility);
      flows_.push_back(op.flow);
      break;
    }
    case DeltaOp::Kind::kRemoveFlow: {
      if (op.index >= flows_.size()) {
        throw std::out_of_range("remove_flow: index " +
                                std::to_string(op.index) + " out of range (" +
                                std::to_string(flows_.size()) + " flows)");
      }
      apply_delta_bound(warm_, op, flows_, *scenario_->utility);
      flows_.erase(flows_.begin() +
                   static_cast<std::ptrdiff_t>(op.index));
      break;
    }
    case DeltaOp::Kind::kScaleFlow: {
      if (op.index >= flows_.size()) {
        throw std::out_of_range("scale_flow: index " +
                                std::to_string(op.index) + " out of range (" +
                                std::to_string(flows_.size()) + " flows)");
      }
      if (!(op.factor > 0.0)) {
        throw std::invalid_argument("scale_flow: factor must be > 0");
      }
      apply_delta_bound(warm_, op, flows_, *scenario_->utility);
      flows_[op.index].daily_vehicles *= op.factor;
      break;
    }
  }
  rebuild_problem();
  ++stats_.deltas;
  obs::add_counter("serve.deltas_applied");
}

WarmStartResult Session::place(std::size_t k, Deadline deadline) {
  const obs::Span span("serve.place");
  const bool warm_in = warm_.valid;
  if (warm_in) {
    ++stats_.warm_attempts;
    obs::add_counter("serve.warm_start.attempts");
  }
  const WarmStartResult result =
      warm_start_marginal_greedy(model(), k, warm_, &warm_, deadline);
  ++stats_.places;
  if (result.reused) {
    ++stats_.warm_reused;
    obs::add_counter("serve.warm_start.reused");
  }
  if (result.fell_back) {
    ++stats_.warm_fallbacks;
    obs::add_counter("serve.warm_start.fallbacks");
    obs::record_instant("serve.warm_start.fallback");
  }
  obs::add_counter("serve.warm_start.gain_evaluations",
                   result.gain_evaluations);
  return result;
}

WarmStartResult Session::place_const(std::size_t k, Deadline deadline) const {
  return warm_start_marginal_greedy(model(), k, warm_, nullptr, deadline);
}

double Session::evaluate(std::span<const graph::NodeId> nodes) const {
  const obs::Span span("serve.evaluate");
  for (const graph::NodeId node : nodes) {
    if (node >= scenario_->net.num_nodes()) {
      throw std::out_of_range("evaluate: node " + std::to_string(node) +
                              " out of range");
    }
  }
  return core::evaluate_placement(model(), nodes);
}

}  // namespace rap::serve
