// Incremental updates and warm-start re-optimization (the serve hot path).
//
// A session mutates its flow set through three delta operations — add_flow,
// remove_flow, scale_flow — and re-places after each batch. Re-running the
// lazy greedy from scratch repeats the expensive part: the initial full
// gain scan over every intersection. The warm-start engine skips it by
// seeding the CELF heap with *audited upper bounds* on the round-0 gains:
//
//   seed[v] = stored round-0 gain of v  (exact after any full run)
//           + Σ per-delta gain-increase bounds applied since
//           + a small fp slack
//
// For the paper's monotone utilities the objective is monotone submodular,
// so every marginal gain of v is ≤ its round-0 gain, which is ≤ seed[v]:
// the seeds are valid CELF upper bounds and the warm run selects EXACTLY
// the placement of lazy_marginal_greedy_placement (equal gains still break
// towards the lowest node id), with the value bit-identical because the
// PlacementState::add sequence is identical.
//
// The bound is *audited*, not trusted: every re-evaluation checks the fresh
// gain against the node's seed. A fresh gain above seed + slack means the
// stored bounds were wrong (a delta was not accounted, or the utility is
// not monotone) — the engine then discards the warm state and falls back to
// a full from-scratch run, so a violated assumption costs time, never
// correctness. Fallbacks are counted ("serve.warm_start.fallbacks").
//
// Per-delta gain-increase bounds (gain_increase_bound):
//   add_flow f        — a new flow can raise a round-0 gain by at most its
//                       zero-detour customers, f(0, alpha) * population;
//   scale_flow (c>1)  — volumes scale linearly, so at most
//                       (c-1) * f(0, alpha) * population of the old flow;
//   remove / scale-down — gains only shrink; bound 0.
// Bounds apply only to the nodes on the affected flow's path; everywhere
// else gains cannot increase.
#pragma once

#include <chrono>
#include <cstddef>
#include <optional>
#include <stdexcept>
#include <vector>

#include "src/core/problem.h"
#include "src/traffic/flow.h"
#include "src/traffic/utility.h"

namespace rap::serve {

/// One flow-set mutation.
struct DeltaOp {
  enum class Kind { kAddFlow, kRemoveFlow, kScaleFlow };
  Kind kind = Kind::kAddFlow;
  traffic::TrafficFlow flow;  ///< kAddFlow: the flow to append
  std::size_t index = 0;      ///< kRemoveFlow/kScaleFlow: flow position
  double factor = 1.0;        ///< kScaleFlow: daily_vehicles multiplier
};

/// Warm-start state carried between placements of one session. `gains[v]`
/// is an upper bound on v's round-0 gain for the *current* flow set — exact
/// right after a full run, loosened by apply-delta bounds afterwards.
struct WarmState {
  bool valid = false;
  std::vector<double> gains;  ///< per node, size num_nodes when valid

  void invalidate() {
    valid = false;
    gains.clear();
  }
};

/// Raises `state.gains` on the nodes of `op`'s affected path by the
/// documented gain-increase bound. `flows_before` is the flow set the delta
/// is applied to (kRemoveFlow/kScaleFlow index into it). No-op when the
/// state is invalid.
void apply_delta_bound(WarmState& state, const DeltaOp& op,
                       const std::vector<traffic::TrafficFlow>& flows_before,
                       const traffic::UtilityFunction& utility);

/// Thrown when a request's deadline expires inside the optimizer. The
/// server maps it to error code "deadline_exceeded".
class DeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

using Deadline = std::optional<std::chrono::steady_clock::time_point>;

struct WarmStartResult {
  core::PlacementResult placement;
  bool reused = false;     ///< warm seeds were available and used
  bool fell_back = false;  ///< seed bound violated; re-ran from scratch
  std::size_t gain_evaluations = 0;
};

/// Lazy greedy placement seeded from `warm` when valid, full scan otherwise.
/// Bit-identical to core::lazy_marginal_greedy_placement(model, k) in both
/// placement and value, warm or cold (the fallback guarantees this even
/// under a violated bound). When `refresh` is non-null it receives the
/// updated warm state for the model's current flow set (exact round-0 gains
/// where re-evaluated, prior bounds elsewhere) — pass nullptr for read-only
/// concurrent use. Budget contract: core/k_policy.h. Throws
/// DeadlineExceeded when `deadline` passes mid-run (the state of `refresh`
/// is then unspecified but safe: it is only written on success).
[[nodiscard]] WarmStartResult warm_start_marginal_greedy(
    const core::CoverageModel& model, std::size_t k, const WarmState& warm,
    WarmState* refresh = nullptr, Deadline deadline = {});

}  // namespace rap::serve
