// Request scheduler: per-client session slots for the concurrent server.
//
// The stdio loop of PR 5 had exactly one session and one big lock. The
// scheduler generalizes that to N clients: every transport connection (and
// the stdio loop itself, as kStdioClient) owns a ClientSlot holding its
// Session plus a per-slot mutex. Requests of ONE client are serialized in
// arrival order — sessions are stateful, and the rap.serve.v1 contract
// promises responses in request order per connection — while requests of
// DISTINCT clients run concurrently: the slot lock is all a placement
// holds, so two clients can price, delta and place at the same time.
//
// What makes that safe is the read-mostly scenario discipline
// (src/serve/scenario_cache.h): built scenarios are pinned behind
// shared_ptr<const ServeScenario> and never mutated, sessions copy-on-write
// their private flow state, and every shared engine a session touches
// (RoadNetwork adjacency, DetourCalculator trees, oracle + sparse cache) is
// documented safe for concurrent const access. Cross-client shared state —
// the scenario cache, the server's stats — is the Server's problem and is
// guarded by its own short-lived locks, never held across a placement.
//
// The locking contracts themselves are stated as Thread Safety Analysis
// annotations (GUARDED_BY / EXCLUDES below) and machine-checked under the
// `thread-safety` preset; comments describe intent only. The one exception
// is ClientLock, whose ownership-transferring guard the analysis cannot
// follow — see its class comment. (DESIGN.md §15.)
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "src/serve/session.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace rap::serve {

/// Identifies one client (= one transport connection, or the stdio loop).
using ClientId = std::uint64_t;

/// The stdio loop's pre-registered client. Server::handle_line(line)
/// forwards here, so single-client callers never see client ids.
inline constexpr ClientId kStdioClient = 0;

class SessionScheduler {
 public:
  /// Constructs with kStdioClient already open.
  SessionScheduler();

  /// Registers a new client slot (no session until its first load).
  [[nodiscard]] ClientId open_client() RAP_EXCLUDES(mutex_);

  /// Drops a client and its session. Unknown ids are ignored; a concurrent
  /// in-flight request on the slot finishes first (the slot is shared).
  void close_client(ClientId id) RAP_EXCLUDES(mutex_);

  /// Open client count (kStdioClient included).
  [[nodiscard]] std::size_t client_count() const RAP_EXCLUDES(mutex_);

  /// Exclusive access to one client's session slot for the lifetime of the
  /// guard. Obtained at dispatch time and held across the whole request, so
  /// one client's requests are processed serially in arrival order.
  ///
  /// This guard transfers lock ownership by value (lock_client returns it),
  /// which is the one locking pattern in the repo that Clang Thread Safety
  /// Analysis is structurally blind to — a scoped capability cannot move
  /// between objects — so its members carry per-function suppressions with
  /// justifications instead of ACQUIRE/RELEASE annotations. The invariant
  /// they stand in for: slot_->session is only ever touched while
  /// slot_->mutex is held, and a live (truthy) ClientLock holds it.
  class ClientLock {
   public:
    /// Ownership transfer: the moved-from guard forgets the slot (its
    /// shared_ptr is nulled), so exactly one live guard unlocks in ~ClientLock.
    ClientLock(ClientLock&& other) noexcept = default;
    ClientLock(const ClientLock&) = delete;
    ClientLock& operator=(const ClientLock&) = delete;
    ClientLock& operator=(ClientLock&&) = delete;

    // Releases the slot mutex the (possibly moved) constructor acquired —
    // invisible to the analysis, which never saw the acquire either.
    ~ClientLock() RAP_NO_THREAD_SAFETY_ANALYSIS {
      if (slot_ != nullptr) slot_->mutex.unlock();
    }

    /// False when the client id was never opened (or already closed).
    [[nodiscard]] explicit operator bool() const noexcept {
      return slot_ != nullptr;
    }
    /// The client's session; nullptr before its first successful load.
    // A truthy guard holds slot_->mutex by construction (see class comment).
    [[nodiscard]] Session* session() const noexcept
        RAP_NO_THREAD_SAFETY_ANALYSIS {
      return slot_ == nullptr ? nullptr : slot_->session.get();
    }
    // A truthy guard holds slot_->mutex by construction (see class comment).
    void set_session(std::unique_ptr<Session> session)
        RAP_NO_THREAD_SAFETY_ANALYSIS {
      slot_->session = std::move(session);
    }

   private:
    friend class SessionScheduler;
    struct Slot {
      util::Mutex mutex;
      std::unique_ptr<Session> session RAP_GUARDED_BY(mutex);
    };
    ClientLock() = default;
    // Acquires the slot mutex for the guard's lifetime; the matching release
    // lives in the destructor of whichever guard ends up owning the slot.
    explicit ClientLock(std::shared_ptr<Slot> slot)
        RAP_NO_THREAD_SAFETY_ANALYSIS : slot_(std::move(slot)) {
      slot_->mutex.lock();
    }

    std::shared_ptr<Slot> slot_;
  };

  /// Locks `id`'s slot (blocking behind any in-flight request of the same
  /// client). The returned lock is falsy for unknown ids.
  [[nodiscard]] ClientLock lock_client(ClientId id) RAP_EXCLUDES(mutex_);

 private:
  // Guards the registry only — never held across a request; per-request
  // serialization is the slot mutex inside ClientLock.
  mutable util::Mutex mutex_;
  std::unordered_map<ClientId, std::shared_ptr<ClientLock::Slot>> clients_
      RAP_GUARDED_BY(mutex_);
  ClientId next_id_ RAP_GUARDED_BY(mutex_) = kStdioClient + 1;
};

}  // namespace rap::serve
