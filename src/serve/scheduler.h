// Request scheduler: per-client session slots for the concurrent server.
//
// The stdio loop of PR 5 had exactly one session and one big lock. The
// scheduler generalizes that to N clients: every transport connection (and
// the stdio loop itself, as kStdioClient) owns a ClientSlot holding its
// Session plus a per-slot mutex. Requests of ONE client are serialized in
// arrival order — sessions are stateful, and the rap.serve.v1 contract
// promises responses in request order per connection — while requests of
// DISTINCT clients run concurrently: the slot lock is all a placement
// holds, so two clients can price, delta and place at the same time.
//
// What makes that safe is the read-mostly scenario discipline
// (src/serve/scenario_cache.h): built scenarios are pinned behind
// shared_ptr<const ServeScenario> and never mutated, sessions copy-on-write
// their private flow state, and every shared engine a session touches
// (RoadNetwork adjacency, DetourCalculator trees, oracle + sparse cache) is
// documented safe for concurrent const access. Cross-client shared state —
// the scenario cache, the server's stats — is the Server's problem and is
// guarded by its own short-lived locks, never held across a placement.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/serve/session.h"

namespace rap::serve {

/// Identifies one client (= one transport connection, or the stdio loop).
using ClientId = std::uint64_t;

/// The stdio loop's pre-registered client. Server::handle_line(line)
/// forwards here, so single-client callers never see client ids.
inline constexpr ClientId kStdioClient = 0;

class SessionScheduler {
 public:
  /// Constructs with kStdioClient already open.
  SessionScheduler();

  /// Registers a new client slot (no session until its first load).
  [[nodiscard]] ClientId open_client();

  /// Drops a client and its session. Unknown ids are ignored; a concurrent
  /// in-flight request on the slot finishes first (the slot is shared).
  void close_client(ClientId id);

  /// Open client count (kStdioClient included).
  [[nodiscard]] std::size_t client_count() const;

  /// Exclusive access to one client's session slot for the lifetime of the
  /// guard. Obtained at dispatch time and held across the whole request, so
  /// one client's requests are processed serially in arrival order.
  class ClientLock {
   public:
    /// False when the client id was never opened (or already closed).
    [[nodiscard]] explicit operator bool() const noexcept {
      return slot_ != nullptr;
    }
    /// The client's session; nullptr before its first successful load.
    [[nodiscard]] Session* session() const noexcept {
      return slot_ == nullptr ? nullptr : slot_->session.get();
    }
    void set_session(std::unique_ptr<Session> session) {
      slot_->session = std::move(session);
    }

   private:
    friend class SessionScheduler;
    struct Slot {
      std::mutex mutex;
      std::unique_ptr<Session> session;
    };
    ClientLock() = default;
    explicit ClientLock(std::shared_ptr<Slot> slot)
        : slot_(std::move(slot)), lock_(slot_->mutex) {}

    std::shared_ptr<Slot> slot_;
    std::unique_lock<std::mutex> lock_;
  };

  /// Locks `id`'s slot (blocking behind any in-flight request of the same
  /// client). The returned lock is falsy for unknown ids.
  [[nodiscard]] ClientLock lock_client(ClientId id);

 private:
  mutable std::mutex mutex_;  // guards the registry, never held across requests
  std::unordered_map<ClientId, std::shared_ptr<ClientLock::Slot>> clients_;
  ClientId next_id_ = kStdioClient + 1;
};

}  // namespace rap::serve
