#include "src/serve/scenario_cache.h"

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/citygen/grid_city.h"
#include "src/citygen/partial_grid_city.h"
#include "src/citygen/radial_city.h"
#include "src/graph/io.h"
#include "src/obs/events.h"
#include "src/obs/telemetry.h"
#include "src/trace/classify.h"
#include "src/trace/flow_extractor.h"
#include "src/trace/generator.h"
#include "src/trace/io.h"
#include "src/util/rng.h"

namespace rap::serve {
namespace {

std::string cache_key_hex(std::uint64_t key) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(key));
  return buffer;
}

std::string read_file_or_throw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("serve: cannot read '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

traffic::UtilityKind utility_kind_or_throw(const std::string& name) {
  if (name == "threshold") return traffic::UtilityKind::kThreshold;
  if (name == "linear") return traffic::UtilityKind::kLinear;
  if (name == "sqrt") return traffic::UtilityKind::kSqrt;
  throw std::invalid_argument("unknown utility '" + name +
                              "' (threshold|linear|sqrt)");
}

trace::LocationClass shop_class_or_throw(const std::string& name) {
  if (name == "center") return trace::LocationClass::kCityCenter;
  if (name == "city") return trace::LocationClass::kCity;
  if (name == "suburb") return trace::LocationClass::kSuburb;
  throw std::invalid_argument("unknown shop class '" + name +
                              "' (center|city|suburb)");
}

/// Full-precision double rendering for the canonical key string.
std::string key_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

/// The canonical parameter prefix hashed into every key. File/inline
/// content is folded in separately by scenario_key().
std::string key_prefix(const ScenarioSpec& spec) {
  std::string prefix = "rap.serve.scenario.v1|utility=";
  prefix += spec.utility;
  prefix += "|d=";
  prefix += key_double(spec.range);
  prefix += "|shop=";
  if (spec.shop != graph::kInvalidNode) {
    prefix += std::to_string(spec.shop);
  } else {
    prefix += "class:" + spec.shop_class;
  }
  prefix += "|seed=" + std::to_string(spec.seed);
  return prefix;
}

/// City generation mirrors rap_cli's presets exactly, so the CLI and the
/// server agree on what "seattle seed 1" means.
void generate_city_inputs(const ScenarioSpec& spec, ServeScenario& out) {
  util::Rng rng(spec.seed);
  trace::TraceGenSpec gen;
  gen.num_journeys = spec.journeys;
  gen.alpha = 0.001;
  double snap_radius = 0.0;
  if (spec.city == "dublin") {
    citygen::RadialSpec city;
    city.rings = 12;
    city.nodes_on_first_ring = 8;
    city.nodes_per_ring_step = 5;
    city.ring_spacing = 3'300.0;
    out.net = citygen::build_radial_city(city, rng);
    gen.mean_runs_per_journey = 40.0;
    gen.sample_spacing = 900.0;
    gen.gps_noise = 150.0;
    gen.passengers_per_vehicle = 100.0;
    snap_radius = 450.0;
  } else if (spec.city == "seattle") {
    citygen::PartialGridSpec city;
    city.grid = {21, 21, 500.0, {0.0, 0.0}};
    const citygen::PartialGridCity built(city, rng);
    out.net = built.network();
    gen.mean_runs_per_journey = 30.0;
    gen.sample_spacing = 350.0;
    gen.gps_noise = 60.0;
    gen.passengers_per_vehicle = 200.0;
    snap_radius = 230.0;
  } else {
    out.net = citygen::GridCity({15, 15, 500.0, {0.0, 0.0}}).network();
    gen.mean_runs_per_journey = 30.0;
    gen.sample_spacing = 350.0;
    gen.gps_noise = 60.0;
    gen.passengers_per_vehicle = 200.0;
    snap_radius = 230.0;
  }
  const trace::SyntheticTrace day = trace::generate_trace(out.net, gen, rng);
  const trace::MapMatcher matcher(out.net, snap_radius);
  trace::ExtractionOptions extract;
  extract.passengers_per_vehicle = gen.passengers_per_vehicle;
  extract.alpha = gen.alpha;
  out.flows = trace::extract_flows(matcher, day.records, extract);
}

graph::NodeId pick_shop(const ScenarioSpec& spec, const graph::RoadNetwork& net,
                        const std::vector<traffic::TrafficFlow>& flows) {
  if (spec.shop != graph::kInvalidNode) {
    net.check_node(spec.shop);
    return spec.shop;
  }
  const trace::LocationClass cls = shop_class_or_throw(spec.shop_class);
  const auto classes = trace::classify_intersections(net, flows);
  const auto pool = trace::nodes_in_class(classes, cls);
  if (pool.empty()) {
    throw std::runtime_error("no intersection in shop class '" +
                             spec.shop_class + "'");
  }
  // Seed-deterministic pick matching rap_cli's shop selection stream.
  util::Rng rng(spec.seed ^ 0x5eed);
  return pool[rng.next_below(pool.size())];
}

/// Approximate resident footprint for LRU accounting: network CSR, flow
/// paths, the two shop shortest-path trees, and the incidence index (one
/// entry per (flow, path node) pair). Order-of-magnitude is all eviction
/// needs.
std::size_t estimate_bytes(const ServeScenario& scenario) {
  std::size_t bytes = sizeof(ServeScenario);
  bytes += scenario.net.num_nodes() * 48;
  bytes += scenario.net.num_edges() * 24;
  std::size_t path_nodes = 0;
  for (const traffic::TrafficFlow& flow : scenario.flows) {
    path_nodes += flow.path.size();
    bytes += sizeof(traffic::TrafficFlow);
  }
  bytes += path_nodes * sizeof(graph::NodeId);  // the paths themselves
  bytes += scenario.net.num_nodes() * 2 * 16;   // to-shop + from-shop trees
  bytes += path_nodes * 2 * 16;                 // incidence index, both axes
  if (scenario.oracle != nullptr) bytes += scenario.oracle->memory_bytes();
  if (scenario.oracle_cache != nullptr) {
    // Post-warm resident entries (key + value + bucket overhead).
    bytes += scenario.oracle_cache->size() * 24;
  }
  return bytes;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void validate_spec(const ScenarioSpec& spec) {
  const int sources = static_cast<int>(!spec.city.empty()) +
                      static_cast<int>(!spec.network_path.empty()) +
                      static_cast<int>(!spec.network_csv.empty());
  if (sources != 1) {
    throw std::invalid_argument(
        "scenario spec needs exactly one input source: city, network_path, or "
        "network_csv");
  }
  if (!spec.city.empty() && spec.city != "dublin" && spec.city != "seattle" &&
      spec.city != "grid") {
    throw std::invalid_argument("unknown city '" + spec.city +
                                "' (dublin|seattle|grid)");
  }
  if (!spec.network_path.empty() && spec.flows_path.empty()) {
    throw std::invalid_argument("network_path requires flows_path");
  }
  if (!spec.network_csv.empty() && spec.flows_csv.empty()) {
    throw std::invalid_argument("network_csv requires flows_csv");
  }
  if (!(spec.range > 0.0)) {
    throw std::invalid_argument("utility range d must be > 0");
  }
  utility_kind_or_throw(spec.utility);
  if (spec.shop == graph::kInvalidNode) shop_class_or_throw(spec.shop_class);
}

std::uint64_t scenario_key(const ScenarioSpec& spec) {
  validate_spec(spec);
  std::uint64_t key = fnv1a64(key_prefix(spec));
  if (!spec.city.empty()) {
    key = fnv1a64("|city=" + spec.city +
                      "|journeys=" + std::to_string(spec.journeys),
                  key);
  } else if (!spec.network_path.empty()) {
    key = fnv1a64("|net-file:", key);
    key = fnv1a64(read_file_or_throw(spec.network_path), key);
    key = fnv1a64("|flows-file:", key);
    key = fnv1a64(read_file_or_throw(spec.flows_path), key);
  } else {
    key = fnv1a64("|net-inline:", key);
    key = fnv1a64(spec.network_csv, key);
    key = fnv1a64("|flows-inline:", key);
    key = fnv1a64(spec.flows_csv, key);
  }
  return key;
}

std::shared_ptr<const ServeScenario> build_scenario(
    const ScenarioSpec& spec, std::uint64_t key,
    const traffic::DetourEnginePolicy& policy) {
  validate_spec(spec);
  const obs::Span span("serve.scenario_build");
  auto scenario = std::make_shared<ServeScenario>();
  scenario->key = key;
  std::string source;
  if (!spec.city.empty()) {
    generate_city_inputs(spec, *scenario);
    source = spec.city + " seed " + std::to_string(spec.seed);
  } else if (!spec.network_path.empty()) {
    scenario->net = graph::network_from_csv(
        read_file_or_throw(spec.network_path), spec.network_path);
    scenario->flows = trace::flows_from_csv(
        scenario->net, read_file_or_throw(spec.flows_path), spec.flows_path);
    source = spec.network_path;
  } else {
    scenario->net = graph::network_from_csv(spec.network_csv, "<network_csv>");
    scenario->flows =
        trace::flows_from_csv(scenario->net, spec.flows_csv, "<flows_csv>");
    source = "inline csv";
  }
  scenario->utility =
      traffic::make_utility(utility_kind_or_throw(spec.utility), spec.range);
  scenario->shop = pick_shop(spec, scenario->net, scenario->flows);
  traffic::DetourEngine engine = traffic::make_detour_engine(
      scenario->net, scenario->shop, scenario->flows, policy);
  scenario->detours = std::move(engine.detours);
  scenario->detour_engine = std::move(engine.engine);
  scenario->oracle = std::move(engine.oracle);
  scenario->oracle_cache = std::move(engine.cache);
  scenario->problem = std::make_unique<core::PlacementProblem>(
      scenario->net, scenario->flows, scenario->shop, *scenario->utility,
      std::make_unique<SharedDetours>(scenario->detours));
  scenario->bytes = estimate_bytes(*scenario);
  scenario->summary = source + ": " +
                      std::to_string(scenario->net.num_nodes()) +
                      " intersections, " + std::to_string(scenario->flows.size()) +
                      " flows, utility " + scenario->utility->name();
  // The classic engine keeps the historical summary byte-identical; oracle
  // engines announce themselves.
  if (scenario->detour_engine != "dijkstra") {
    scenario->summary += ", detours " + scenario->detour_engine;
  }
  return scenario;
}

std::shared_ptr<const ServeScenario> ScenarioCache::lookup(std::uint64_t key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    obs::add_counter("serve.cache.misses");
    obs::record_instant("serve.cache.miss", "key", cache_key_hex(key));
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  obs::add_counter("serve.cache.hits");
  obs::record_instant("serve.cache.hit", "key", cache_key_hex(key));
  return it->second->scenario;
}

void ScenarioCache::insert(std::shared_ptr<const ServeScenario> scenario) {
  if (max_bytes_ == 0 || scenario == nullptr) return;
  const std::uint64_t key = scenario->key;
  const std::size_t inserted_bytes = scenario->bytes;
  if (const auto it = index_.find(key); it != index_.end()) {
    stats_.bytes -= it->second->scenario->bytes;
    stats_.bytes += scenario->bytes;
    it->second->scenario = std::move(scenario);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    stats_.bytes += scenario->bytes;
    lru_.push_front(Entry{key, std::move(scenario)});
    index_.emplace(key, lru_.begin());
  }
  obs::record_instant("serve.cache.insert", "key", cache_key_hex(key));
  if (log_ != nullptr) {
    log_->log(obs::LogLevel::kInfo, "cache.insert",
              {obs::log_str("key", cache_key_hex(key)),
               obs::log_num("bytes", static_cast<double>(inserted_bytes))});
  }
  // Evict from the cold end; the entry just touched is at the front and is
  // never evicted by its own insertion.
  while (stats_.bytes > max_bytes_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    stats_.bytes -= victim.scenario->bytes;
    const std::string victim_key = cache_key_hex(victim.key);
    const std::size_t victim_bytes = victim.scenario->bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
    obs::add_counter("serve.cache.evictions");
    obs::record_instant("serve.cache.evict", "key", victim_key);
    if (log_ != nullptr) {
      log_->log(obs::LogLevel::kInfo, "cache.evict",
                {obs::log_str("key", victim_key),
                 obs::log_num("bytes", static_cast<double>(victim_bytes))});
    }
  }
  stats_.entries = lru_.size();
  obs::set_gauge("serve.cache.bytes", static_cast<double>(stats_.bytes));
  obs::set_gauge("serve.cache.entries", static_cast<double>(stats_.entries));
}

}  // namespace rap::serve
