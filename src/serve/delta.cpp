#include "src/serve/delta.h"

#include <cmath>
#include <queue>

#include "src/core/evaluator.h"
#include "src/core/k_policy.h"

namespace rap::serve {
namespace {

/// Stamp marking a heap entry as a warm seed (an upper bound, not a cached
/// evaluation). Never equal to a selection count: budgets clamp to
/// num_nodes < 2^32 - 1.
constexpr std::uint32_t kSeedStamp = 0xffffffffU;

/// Relative inflation applied to every seed. Stored gains are exact for the
/// pre-delta model; recomputing them on the post-delta model can differ in
/// the last ulps, so the seeds get a margin far above fp noise (1e-9
/// relative vs ~1e-16) yet far below any real gain difference. A fresh gain
/// above the inflated seed is a genuine bound violation.
constexpr double kSeedSlack = 1e-9;

struct Entry {
  double gain;
  graph::NodeId node;
  std::uint32_t stamp;
};

// Identical ordering to core/lazy_greedy.cpp: ties break to the lowest node
// id, which is what keeps warm selections bit-identical to the eager greedy.
struct EntryLess {
  bool operator()(const Entry& a, const Entry& b) const {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.node > b.node;
  }
};

using Heap = std::priority_queue<Entry, std::vector<Entry>, EntryLess>;

void check_deadline(const Deadline& deadline) {
  if (deadline.has_value() &&
      std::chrono::steady_clock::now() > *deadline) {
    throw DeadlineExceeded("placement deadline exceeded");
  }
}

/// From-scratch run: full round-0 scan (recorded as exact warm gains), then
/// the CELF loop exactly as core/lazy_greedy.cpp runs it.
WarmStartResult run_cold(const core::CoverageModel& model, std::size_t k,
                         WarmState* refresh, const Deadline& deadline) {
  WarmStartResult out;
  core::PlacementState state(model);
  Heap heap;
  const auto n = static_cast<graph::NodeId>(model.num_nodes());
  std::vector<double> round0(n, 0.0);
  for (graph::NodeId v = 0; v < n; ++v) {
    const double gain = state.gain_if_added(v);
    round0[v] = gain;
    heap.push({gain, v, 0});
    ++out.gain_evaluations;
  }
  std::uint32_t selections = 0;
  while (state.placement().size() < k && !heap.empty()) {
    check_deadline(deadline);
    const Entry top = heap.top();
    heap.pop();
    if (top.stamp != selections) {
      const double gain = state.gain_if_added(top.node);
      ++out.gain_evaluations;
      if (gain > 0.0) heap.push({gain, top.node, selections});
      continue;
    }
    if (top.gain <= 0.0) break;
    state.add(top.node);
    ++selections;
  }
  out.placement = {state.placement(), state.value()};
  if (refresh != nullptr) {
    refresh->valid = true;
    refresh->gains = std::move(round0);
  }
  return out;
}

/// Seeded run. Returns false on a bound violation (caller falls back); only
/// then is `out` unusable.
bool run_warm(const core::CoverageModel& model, std::size_t k,
              const WarmState& warm, WarmState* refresh,
              const Deadline& deadline, WarmStartResult& out) {
  core::PlacementState state(model);
  Heap heap;
  const auto n = static_cast<graph::NodeId>(model.num_nodes());
  std::vector<double> round0 = warm.gains;  // refined where re-evaluated
  for (graph::NodeId v = 0; v < n; ++v) {
    const double seed =
        warm.gains[v] + kSeedSlack * (std::fabs(warm.gains[v]) + 1.0);
    heap.push({seed, v, kSeedStamp});
  }
  std::uint32_t selections = 0;
  while (state.placement().size() < k && !heap.empty()) {
    check_deadline(deadline);
    const Entry top = heap.top();
    heap.pop();
    if (top.stamp != selections) {
      const double gain = state.gain_if_added(top.node);
      ++out.gain_evaluations;
      // The audited bound: a marginal gain can never exceed the node's seed
      // (round-0 bound plus slack). Exceeding it means a delta was not
      // accounted for — discard the warm state rather than risk a wrong
      // placement.
      if (top.stamp == kSeedStamp && gain > top.gain) return false;
      if (selections == 0) round0[top.node] = gain;  // exact round-0 value
      if (gain > 0.0) heap.push({gain, top.node, selections});
      continue;
    }
    if (top.gain <= 0.0) break;
    state.add(top.node);
    ++selections;
  }
  out.placement = {state.placement(), state.value()};
  out.reused = true;
  if (refresh != nullptr) {
    refresh->valid = true;
    refresh->gains = std::move(round0);
  }
  return true;
}

}  // namespace

void apply_delta_bound(WarmState& state, const DeltaOp& op,
                       const std::vector<traffic::TrafficFlow>& flows_before,
                       const traffic::UtilityFunction& utility) {
  if (!state.valid) return;
  double bound = 0.0;
  const std::vector<graph::NodeId>* path = nullptr;
  switch (op.kind) {
    case DeltaOp::Kind::kAddFlow:
      bound = utility.probability(0.0, op.flow.alpha) * op.flow.population();
      path = &op.flow.path;
      break;
    case DeltaOp::Kind::kRemoveFlow:
      return;  // gains can only shrink
    case DeltaOp::Kind::kScaleFlow: {
      if (op.factor <= 1.0) return;  // scale-down: gains can only shrink
      const traffic::TrafficFlow& flow = flows_before.at(op.index);
      bound = (op.factor - 1.0) * utility.probability(0.0, flow.alpha) *
              flow.population();
      path = &flow.path;
      break;
    }
  }
  for (const graph::NodeId node : *path) {
    if (node < state.gains.size()) state.gains[node] += bound;
  }
}

WarmStartResult warm_start_marginal_greedy(const core::CoverageModel& model,
                                           std::size_t k, const WarmState& warm,
                                           WarmState* refresh,
                                           Deadline deadline) {
  k = core::checked_budget(model, k, "serve warm-start placement");
  if (warm.valid && warm.gains.size() == model.num_nodes()) {
    WarmStartResult out;
    if (run_warm(model, k, warm, refresh, deadline, out)) return out;
    // Audited bound violated: the warm state lied. Recover with a full run
    // (which also rebuilds exact warm gains).
    WarmStartResult cold = run_cold(model, k, refresh, deadline);
    cold.fell_back = true;
    return cold;
  }
  return run_cold(model, k, refresh, deadline);
}

}  // namespace rap::serve
