#include "src/serve/transport.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace rap::serve {
namespace {

/// Accept-loop poll interval: the shutdown latency ceiling.
constexpr int kPollMs = 50;

void close_quietly(int fd) noexcept {
  if (fd >= 0) ::close(fd);
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof address.sun_path) {
    throw std::runtime_error("socket path too long: '" + path + "'");
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ::ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_line(int fd, const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  return send_all(fd, out.data(), out.size());
}

/// The fixed response for an over-long request line — built by hand because
/// the line never reaches the parser.
const std::string& oversize_response() {
  static const std::string response =
      std::string(R"({"schema":"rap.serve.v1","ok":false,"error":)") +
      R"({"code":"bad_request","message":"request line exceeds )" +
      std::to_string(kMaxLineBytes) + R"( bytes"}})";
  return response;
}

/// One connection: read lines, answer each via the server, until EOF, a
/// dropped write, an oversize line, or server shutdown. The fd stays open —
/// the accept loop owns it (closing here would race its shutdown() sweep
/// against kernel fd-number reuse).
void serve_connection(Server& server, int fd, std::atomic<bool>& done) {
  const ClientId client = server.open_client();
  std::string buffer;
  char chunk[64 * 1024];
  bool open = true;
  while (open && !server.shutdown_requested()) {
    const ::ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error: the client is gone
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t newline = buffer.find('\n', start);
         newline != std::string::npos;
         newline = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (line.size() > kMaxLineBytes) {  // complete but over the cap
        (void)send_line(fd, oversize_response());
        open = false;
        break;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (!send_line(fd, server.handle_line(client, line))) {
        open = false;
        break;
      }
    }
    buffer.erase(0, start);
    if (buffer.size() > kMaxLineBytes) {
      (void)send_line(fd, oversize_response());
      break;
    }
  }
  server.close_client(client);
  (void)::shutdown(fd, SHUT_RDWR);
  done.store(true, std::memory_order_release);
}

}  // namespace

UnixListener::UnixListener(std::string socket_path)
    : path_(std::move(socket_path)) {
  const sockaddr_un address = make_address(path_);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw std::runtime_error("cannot create unix socket");
  }
  // A previous process that crashed leaves its socket file behind; binding
  // over it needs the unlink (connect() to the stale file fails, so this
  // cannot steal a live listener's clients by accident in normal use).
  (void)::unlink(path_.c_str());
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof address) != 0 ||
      ::listen(fd_, 64) != 0) {
    const std::string reason = std::strerror(errno);
    close_quietly(fd_);
    fd_ = -1;
    throw std::runtime_error("cannot listen on '" + path_ + "': " + reason);
  }
}

UnixListener::~UnixListener() {
  close_quietly(fd_);
  (void)::unlink(path_.c_str());
}

void UnixListener::stop() noexcept {
  stop_.store(true, std::memory_order_relaxed);
}

int UnixListener::serve(Server& server) {
  // Only the accept loop touches this list; handler threads signal `done`
  // and the loop reaps (join + close) between accepts, so a long-lived
  // server does not accumulate dead threads or fds.
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::unique_ptr<std::atomic<bool>> done;
  };
  std::vector<Connection> connections;
  const auto reap = [&connections](bool all) {
    for (Connection& connection : connections) {
      if (!all && !connection.done->load(std::memory_order_acquire)) continue;
      if (connection.thread.joinable()) connection.thread.join();
      close_quietly(connection.fd);
      connection.fd = -1;
    }
    std::erase_if(connections,
                  [](const Connection& connection) {
                    return connection.fd < 0;
                  });
  };

  while (!server.shutdown_requested() &&
         !stop_.load(std::memory_order_relaxed)) {
    pollfd poll_fd{};
    poll_fd.fd = fd_;
    poll_fd.events = POLLIN;
    const int ready = ::poll(&poll_fd, 1, kPollMs);
    if (ready < 0 && errno != EINTR) break;
    reap(/*all=*/false);
    if (ready <= 0 || (poll_fd.revents & POLLIN) == 0) continue;
    const int connection_fd = ::accept(fd_, nullptr, nullptr);
    if (connection_fd < 0) continue;
    // Bound send() so a client that stops reading cannot pin its handler
    // thread forever (the exit sweep only shuts the read side down).
    timeval send_timeout{};
    send_timeout.tv_sec = 30;
    (void)::setsockopt(connection_fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                       sizeof send_timeout);
    auto done = std::make_unique<std::atomic<bool>>(false);
    // One of the two sanctioned raw-thread sites in the tree (with
    // util/thread_pool — rap_lint RAP009): handler threads are per-connection
    // and joined by the reap sweep, never detached.
    std::thread thread([&server, connection_fd, flag = done.get()]() {
      serve_connection(server, connection_fd, *flag);
    });
    connections.push_back(
        {connection_fd, std::move(thread), std::move(done)});
  }

  // Unblock every connection still waiting in recv(), then join them all.
  // Read side only: a handler mid-request must still deliver its response
  // (the `shutdown` acknowledgement in particular); it closes the write
  // side itself once its loop exits.
  for (Connection& connection : connections) {
    (void)::shutdown(connection.fd, SHUT_RD);
  }
  reap(/*all=*/true);
  return 0;
}

UnixClient::UnixClient(const std::string& socket_path) {
  const sockaddr_un address = make_address(socket_path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw std::runtime_error("cannot create unix socket");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                sizeof address) != 0) {
    const std::string reason = std::strerror(errno);
    close_quietly(fd_);
    fd_ = -1;
    throw std::runtime_error("cannot connect to '" + socket_path +
                             "': " + reason);
  }
}

UnixClient::~UnixClient() { close_quietly(fd_); }

void UnixClient::shutdown_write() noexcept {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_WR);
}

std::string UnixClient::request(const std::string& line) {
  if (fd_ < 0 || !send_line(fd_, line)) {
    throw std::runtime_error("serve connection closed while sending");
  }
  char chunk[64 * 1024];
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string response = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return response;
    }
    const ::ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      throw std::runtime_error("serve connection closed before a response");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace rap::serve
