// Request/response grammar of the placement service — schema "rap.serve.v1".
//
// The wire format is line-delimited JSON: one request object per line in,
// one response object per line out. Every response carries
// {"schema":"rap.serve.v1","ok":true|false} plus the request's "id" echoed
// verbatim when present. Failures are structured:
//   {"schema":"rap.serve.v1","ok":false,"id":...,
//    "error":{"code":"bad_request","message":"..."}}
// Stable error codes: bad_request, unknown_op, no_session, bad_scenario,
// resource_limit, deadline_exceeded, internal. "resource_limit" means the
// request asked for more than the server will allocate (e.g. a dense
// distance matrix on a city over the configured node limit — retry with a
// sparse oracle engine); the server itself stays healthy.
//
// This header owns the JSON value model (parse + serialize) and the error
// vocabulary; src/serve/server.h owns dispatch. The parser is deliberately
// small (objects, arrays, strings, finite numbers, true/false/null; UTF-8
// passed through verbatim) — exactly the subset the grammar emits. Object
// keys are kept in a sorted map, so serialization is deterministic
// regardless of request key order.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace rap::serve {

/// Schema tag stamped on every response line.
inline constexpr const char* kServeSchema = "rap.serve.v1";

/// Maximum container nesting the parser accepts. The grammar is at most a
/// few levels deep; the cap exists so a hostile `[[[[...` line a few
/// thousand brackets long becomes a parse error (-> bad_request) instead of
/// a stack overflow in the recursive-descent parser.
inline constexpr int kMaxJsonDepth = 96;

/// A parsed JSON document. Numbers are doubles (the grammar never needs
/// integers beyond 2^53); object keys sort lexicographically.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue, std::less<>>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}  // NOLINT(*-explicit-*)
  JsonValue(bool value) : value_(value) {}        // NOLINT(*-explicit-*)
  JsonValue(double value) : value_(value) {}      // NOLINT(*-explicit-*)
  JsonValue(std::string value) : value_(std::move(value)) {}  // NOLINT(*-explicit-*)
  JsonValue(const char* value) : value_(std::string(value)) {}  // NOLINT(*-explicit-*)
  JsonValue(Array value) : value_(std::move(value)) {}    // NOLINT(*-explicit-*)
  JsonValue(Object value) : value_(std::move(value)) {}   // NOLINT(*-explicit-*)

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const noexcept {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const noexcept {
    return std::holds_alternative<Array>(value_);
  }
  [[nodiscard]] bool is_object() const noexcept {
    return std::holds_alternative<Object>(value_);
  }

  /// Typed accessors; throw std::invalid_argument naming the expected kind
  /// on mismatch (the server maps that to a bad_request reply).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] Object& as_object();

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

/// Parses one JSON document (surrounding whitespace allowed, trailing
/// garbage rejected). Throws std::invalid_argument with a character offset
/// on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Compact, deterministic serialization. Doubles round-trip exactly
/// (shortest form via %.17g with an integer fast path); non-finite numbers
/// serialize as null (JSON has no literals for them).
[[nodiscard]] std::string to_json(const JsonValue& value);

/// A request failure with a stable machine-readable code. The server turns
/// any RequestError into a structured error reply; everything else escaping
/// a handler becomes code "internal".
class RequestError : public std::runtime_error {
 public:
  RequestError(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}
  [[nodiscard]] const std::string& code() const noexcept { return code_; }

 private:
  std::string code_;
};

/// Field lookup in a request object; nullptr when absent.
[[nodiscard]] const JsonValue* find_field(const JsonValue::Object& object,
                                          std::string_view key);

/// Typed field extraction helpers used by the request layer. The require_*
/// forms throw RequestError{"bad_request"} when the field is missing or the
/// wrong kind; the get_* forms substitute a fallback when absent.
[[nodiscard]] double require_number(const JsonValue::Object& object,
                                    std::string_view key);
[[nodiscard]] const std::string& require_string(const JsonValue::Object& object,
                                                std::string_view key);
[[nodiscard]] double get_number(const JsonValue::Object& object,
                                std::string_view key, double fallback);
[[nodiscard]] std::string get_string(const JsonValue::Object& object,
                                     std::string_view key,
                                     std::string_view fallback);

}  // namespace rap::serve
