#include "src/serve/scheduler.h"

#include <utility>

namespace rap::serve {

SessionScheduler::SessionScheduler() {
  clients_.emplace(kStdioClient, std::make_shared<ClientLock::Slot>());
}

ClientId SessionScheduler::open_client() {
  const util::MutexLock lock(mutex_);
  const ClientId id = next_id_++;
  clients_.emplace(id, std::make_shared<ClientLock::Slot>());
  return id;
}

void SessionScheduler::close_client(ClientId id) {
  std::shared_ptr<ClientLock::Slot> slot;
  {
    const util::MutexLock lock(mutex_);
    const auto it = clients_.find(id);
    if (it == clients_.end()) return;
    slot = std::move(it->second);
    clients_.erase(it);
  }
  // Destroy the session outside the registry lock, after any in-flight
  // request of this client releases the slot.
  const util::MutexLock drain(slot->mutex);
  slot->session.reset();
}

std::size_t SessionScheduler::client_count() const {
  const util::MutexLock lock(mutex_);
  return clients_.size();
}

SessionScheduler::ClientLock SessionScheduler::lock_client(ClientId id) {
  std::shared_ptr<ClientLock::Slot> slot;
  {
    const util::MutexLock lock(mutex_);
    const auto it = clients_.find(id);
    if (it == clients_.end()) return ClientLock();
    slot = it->second;
  }
  return ClientLock(std::move(slot));
}

}  // namespace rap::serve
