// Crash-safe on-disk scenario store: memory-mapped segments keyed by
// scenario content.
//
// Building a ServeScenario is the expensive part of serving a load request
// — city generation or CSV parsing, map matching, and the shop's two
// Dijkstras. The store persists everything that pass produces, so a
// restarted server REHYDRATES its LRU cache from disk instead of
// recomputing: the road network (positions + edges), the flow set (paths
// included — no map matching), the shop, and the shop's two shortest-path
// distance arrays d'/d'' (no Dijkstras). Rebuilding a scenario from a
// segment costs one mmap plus the O(total path nodes) incidence index —
// placements on a rehydrated scenario are bitwise identical to placements
// on a freshly built one (tests/serve/store_test.cpp holds this).
//
// Segment format ("rap.store.v1", tools/rap_serve --store-dir):
//   <dir>/<%016x key>.rseg
//   SegmentHeader (fixed size, magic "RAPSEG1\n", format version, payload
//   byte count + FNV-1a 64 checksum, scalar scenario fields) followed by a
//   packed payload:
//     positions   num_nodes x { f64 x, f64 y }
//     edges       num_edges x { u32 from, u32 to, f64 length }
//     to_shop     num_nodes x f64     (d' — distance v -> shop)
//     from_shop   num_nodes x f64     (d'' — distance shop -> v)
//     flows       per flow: u32 origin, u32 destination, f64 vehicles,
//                 f64 passengers_per_vehicle, f64 alpha, u64 path_len,
//                 path_len x u32 path nodes
//     strings     summary, engine name, utility name (raw bytes)
// The content key IS the index: the directory of *.rseg files is the
// content-keyed lookup structure, and the filename must match the header
// key. Writes are crash-safe by construction — serialize to <name>.tmp,
// fsync, rename over the final name, fsync the directory — so a segment is
// either fully present and checksum-valid or invisible; torn writes are
// detected on load (magic/version/size/checksum) and counted as corrupt,
// never crashed on. Loads mmap the segment read-only and parse straight
// out of the mapping.
//
// Versioning: bump kStoreFormatVersion on any layout change; loaders
// reject other versions (counted corrupt), so a downgraded server treats
// new-format segments as absent and rebuilds — never misreads.
//
// Only scenarios priced by the classic "dijkstra" engine are persisted:
// their d'/d'' arrays are O(n) and fully determine every detour, including
// detours of flows added later by deltas. Oracle-backed scenarios
// (bidijkstra/alt/dense) price distances on demand and have no compact
// exact state to persist; put() skips them (counted in Stats::skipped).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/serve/scenario_cache.h"
#include "src/traffic/detour.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace rap::serve {

/// Current segment layout version (header field; see file comment).
inline constexpr std::uint64_t kStoreFormatVersion = 1;

/// Detour source rebuilt from a segment's stored d'/d'' arrays. Replicates
/// DetourCalculator's kAlongPath pricing bit-for-bit (same inputs, same
/// arithmetic), and — like the live calculator — prices ANY flow on the
/// network, so delta-added flows work on rehydrated scenarios. Safe for
/// concurrent use (const arrays, const network access).
class StoredDetours final : public traffic::DetourSource {
 public:
  /// `net` must outlive the source (the owning ServeScenario pins both).
  /// The arrays hold one distance per node; kUnreachable where
  /// disconnected.
  StoredDetours(const graph::RoadNetwork& net, std::vector<double> to_shop,
                std::vector<double> from_shop);

  [[nodiscard]] std::vector<double> detours_along_path(
      const traffic::TrafficFlow& flow) const override;

  [[nodiscard]] const std::vector<double>& to_shop() const noexcept {
    return to_shop_;
  }
  [[nodiscard]] const std::vector<double>& from_shop() const noexcept {
    return from_shop_;
  }

 private:
  const graph::RoadNetwork* net_;
  std::vector<double> to_shop_;    // d' per node
  std::vector<double> from_shop_;  // d'' per node
};

/// The persistent segment store. Thread-safe: transports and the stdio loop
/// may put/load concurrently (one internal mutex; segment IO is quick
/// relative to scenario builds).
class ScenarioStore {
 public:
  struct Stats {
    std::uint64_t persisted = 0;   ///< segments written by put()
    std::uint64_t skipped = 0;     ///< put() refusals (non-dijkstra engine)
    std::uint64_t rehydrated = 0;  ///< scenarios rebuilt from segments
    std::uint64_t corrupt = 0;     ///< segments rejected by validation
    std::uint64_t io_errors = 0;   ///< write/rename/read failures
  };

  /// Opens (and creates, if needed) the store directory. Throws
  /// std::runtime_error when the directory cannot be created.
  explicit ScenarioStore(std::string directory);

  /// Persists one built scenario under its content key. Returns true when a
  /// segment was written; false when the scenario's engine is not
  /// persistable, the key is already stored, or IO failed (see stats()).
  bool put(const ServeScenario& scenario) RAP_EXCLUDES(mutex_);

  /// Rehydrates one scenario by content key. Returns nullptr when the key
  /// is absent or the segment fails validation (counted corrupt).
  [[nodiscard]] std::shared_ptr<const ServeScenario> load(std::uint64_t key)
      RAP_EXCLUDES(mutex_);

  /// Content keys of every segment on disk, sorted ascending — the
  /// deterministic rehydration order.
  [[nodiscard]] std::vector<std::uint64_t> keys() const;

  /// Rehydrates every segment into `cache` in sorted key order (the cache's
  /// own LRU budget applies). Returns the number of scenarios rehydrated.
  std::size_t rehydrate_into(ScenarioCache& cache);

  [[nodiscard]] Stats stats() const RAP_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t segment_count() const;
  [[nodiscard]] const std::string& directory() const noexcept {
    return directory_;
  }

 private:
  [[nodiscard]] std::string segment_path(std::uint64_t key) const;

  std::string directory_;
  // Guards the counters AND serializes put()'s serialize-check-write-rename
  // sequence (two racing put()s for one key must not both pass the exists
  // check). load()/keys() read the filesystem lock-free: the atomic rename
  // makes a segment either fully visible or absent.
  mutable util::Mutex mutex_;
  Stats stats_ RAP_GUARDED_BY(mutex_);
};

}  // namespace rap::serve
