#include "src/serve/protocol.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace rap::serve {
namespace {

[[noreturn]] void type_error(const char* expected) {
  throw std::invalid_argument(std::string("json value is not ") + expected);
}

/// Recursive-descent parser over a string_view with an explicit cursor.
/// Errors carry the byte offset so malformed requests are debuggable.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument("json parse error at offset " +
                                std::to_string(pos_) + ": " + message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  /// Bumps the container depth for one object/array frame; parse depth is
  /// bounded by kMaxJsonDepth so adversarial nesting cannot exhaust the
  /// call stack.
  class DepthFrame {
   public:
    explicit DepthFrame(Parser& parser) : parser_(parser) {
      if (++parser_.depth_ > kMaxJsonDepth) {
        parser_.fail("nesting deeper than " + std::to_string(kMaxJsonDepth) +
                     " levels");
      }
    }
    ~DepthFrame() { --parser_.depth_; }
    DepthFrame(const DepthFrame&) = delete;
    DepthFrame& operator=(const DepthFrame&) = delete;

   private:
    Parser& parser_;
  };

  JsonValue parse_object() {
    const DepthFrame frame(*this);
    expect('{');
    JsonValue::Object object;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(object));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object.insert_or_assign(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue(std::move(object));
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    const DepthFrame frame(*this);
    expect('[');
    JsonValue::Array array;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue(std::move(array));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("invalid escape character");
      }
    }
  }

  std::string parse_unicode_escape() {
    // \uXXXX only; surrogate pairs are rejected rather than silently
    // mangled — the serve grammar never needs astral-plane text.
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4U;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    if (code >= 0xD800 && code <= 0xDFFF) {
      fail("surrogate \\u escapes are not supported");
    }
    std::string out;
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0U | (code >> 6U)));
      out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
    } else {
      out.push_back(static_cast<char>(0xE0U | (code >> 12U)));
      out.push_back(static_cast<char>(0x80U | ((code >> 6U) & 0x3FU)));
      out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("invalid value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      fail("invalid number '" + token + "'");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void append_json(const JsonValue& value, std::string& out);

void append_quoted(std::string_view text, std::string& out) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(double value, std::string& out) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  // Integer fast path keeps ids and counters readable ("42", not "42.0").
  const double rounded = std::nearbyint(value);
  if (rounded == value && std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.0f", value);
    out += buffer;
    return;
  }
  // Shortest representation that round-trips: try increasing precision.
  char buffer[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
    char* end = nullptr;
    if (std::strtod(buffer, &end) == value) break;
  }
  out += buffer;
}

void append_json(const JsonValue& value, std::string& out) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_number()) {
    append_number(value.as_number(), out);
  } else if (value.is_string()) {
    append_quoted(value.as_string(), out);
  } else if (value.is_array()) {
    out.push_back('[');
    bool first = true;
    for (const JsonValue& item : value.as_array()) {
      if (!first) out.push_back(',');
      first = false;
      append_json(item, out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [key, item] : value.as_object()) {
      if (!first) out.push_back(',');
      first = false;
      append_quoted(key, out);
      out.push_back(':');
      append_json(item, out);
    }
    out.push_back('}');
  }
}

}  // namespace

bool JsonValue::as_bool() const {
  if (const bool* value = std::get_if<bool>(&value_)) return *value;
  type_error("a bool");
}

double JsonValue::as_number() const {
  if (const double* value = std::get_if<double>(&value_)) return *value;
  type_error("a number");
}

const std::string& JsonValue::as_string() const {
  if (const std::string* value = std::get_if<std::string>(&value_)) {
    return *value;
  }
  type_error("a string");
}

const JsonValue::Array& JsonValue::as_array() const {
  if (const Array* value = std::get_if<Array>(&value_)) return *value;
  type_error("an array");
}

const JsonValue::Object& JsonValue::as_object() const {
  if (const Object* value = std::get_if<Object>(&value_)) return *value;
  type_error("an object");
}

JsonValue::Array& JsonValue::as_array() {
  if (Array* value = std::get_if<Array>(&value_)) return *value;
  type_error("an array");
}

JsonValue::Object& JsonValue::as_object() {
  if (Object* value = std::get_if<Object>(&value_)) return *value;
  type_error("an object");
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

std::string to_json(const JsonValue& value) {
  std::string out;
  append_json(value, out);
  return out;
}

const JsonValue* find_field(const JsonValue::Object& object,
                            std::string_view key) {
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

double require_number(const JsonValue::Object& object, std::string_view key) {
  const JsonValue* field = find_field(object, key);
  if (field == nullptr || !field->is_number()) {
    throw RequestError("bad_request", "missing or non-numeric field '" +
                                          std::string(key) + "'");
  }
  return field->as_number();
}

const std::string& require_string(const JsonValue::Object& object,
                                  std::string_view key) {
  const JsonValue* field = find_field(object, key);
  if (field == nullptr || !field->is_string()) {
    throw RequestError("bad_request", "missing or non-string field '" +
                                          std::string(key) + "'");
  }
  return field->as_string();
}

double get_number(const JsonValue::Object& object, std::string_view key,
                  double fallback) {
  const JsonValue* field = find_field(object, key);
  if (field == nullptr) return fallback;
  if (!field->is_number()) {
    throw RequestError("bad_request",
                       "field '" + std::string(key) + "' must be a number");
  }
  return field->as_number();
}

std::string get_string(const JsonValue::Object& object, std::string_view key,
                       std::string_view fallback) {
  const JsonValue* field = find_field(object, key);
  if (field == nullptr) return std::string(fallback);
  if (!field->is_string()) {
    throw RequestError("bad_request",
                       "field '" + std::string(key) + "' must be a string");
  }
  return field->as_string();
}

}  // namespace rap::serve
