// Socket transport for the placement server: a unix-domain listener that
// serves N concurrent connections over the same line-delimited
// "rap.serve.v1" protocol the stdio loop speaks (tools/rap_serve --listen).
//
// Model: one accept loop, one handler thread per connection, one server
// client per connection (Server::open_client / close_client), so every
// connection gets its own session slot and its requests are answered in
// arrival order while distinct connections run concurrently — the
// concurrency itself lives in Server::handle_line(client, line), the
// transport just feeds it. Unix-domain sockets keep the transport
// dependency-free (no address parsing, no TLS) while exercising the full
// N-client path; anything that can open a socket — netcat, a Python
// client, another rap_serve process — can talk to it.
//
// Shutdown: the accept loop polls at a short interval and exits once the
// server reports shutdown_requested() (any client's shutdown request, so
// one connection can stop the whole service) or stop() is called; live
// connections are then shut down (unblocking their reads) and joined, and
// the socket file is unlinked. A connection line longer than kMaxLineBytes
// gets one bad_request response and the connection is closed — the cap
// bounds per-connection memory against a client that never sends '\n'.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>

#include "src/serve/server.h"

namespace rap::serve {

/// Per-connection request-line cap (8 MiB): inline-CSV scenarios fit with
/// room to spare, unbounded buffering does not.
inline constexpr std::size_t kMaxLineBytes = 8ULL * 1024 * 1024;

/// Listening unix-domain socket bound at construction. Non-copyable; the
/// destructor closes the socket and unlinks the path.
class UnixListener {
 public:
  /// Binds + listens on `socket_path` (an existing socket file left by a
  /// crashed process is replaced). Throws std::runtime_error on failure.
  explicit UnixListener(std::string socket_path);
  ~UnixListener();
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Accepts and serves connections until the server requests shutdown or
  /// stop() is called; joins every connection thread before returning.
  /// Returns 0.
  int serve(Server& server);

  /// Makes serve() return after its current poll interval (thread-safe;
  /// callable from signal-ish contexts or another thread).
  void stop() noexcept;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
  std::atomic<bool> stop_{false};
};

/// Blocking client for tests and the throughput bench: connects at
/// construction, then request() sends one line and reads one response line.
class UnixClient {
 public:
  /// Throws std::runtime_error when the socket cannot be reached.
  explicit UnixClient(const std::string& socket_path);
  ~UnixClient();
  UnixClient(const UnixClient&) = delete;
  UnixClient& operator=(const UnixClient&) = delete;

  /// Sends `line` (newline appended) and blocks for the one response line
  /// (returned without its newline). Throws std::runtime_error when the
  /// connection drops first.
  [[nodiscard]] std::string request(const std::string& line);

  /// Half-closes the write side so the server sees EOF and drops this
  /// client; further request() calls throw.
  void shutdown_write() noexcept;

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes received past the last returned line
};

}  // namespace rap::serve
