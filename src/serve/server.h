// The placement server: line-delimited JSON requests over stdio or a unix
// socket (src/serve/transport.h). One request per line in, one response per
// line out, schema "rap.serve.v1" (src/serve/protocol.h).
//
// Operations:
//   load        — build, cache-fetch or store-rehydrate a scenario, open a
//                 session on it for the requesting client
//   place       — warm-start lazy greedy placement for one budget k
//   place_batch — many budgets at once, placed concurrently on the
//                 deterministic thread pool (results independent of the
//                 thread count, like everything else in librap)
//   evaluate    — objective value of an explicit placement
//   delta       — apply add_flow / remove_flow / scale_flow mutations
//   stats       — live introspection snapshot: cache hit/miss/eviction
//                 rates, store persistence/rehydration counts, client
//                 count, warm-start vs full-rerun counts, per-verb latency
//                 percentiles, thread-pool utilization, uptime, recorder
//                 and clock state (all deterministic under the virtual
//                 clock — see below)
//   shutdown    — acknowledge and stop every run loop and transport
//
// Concurrency. Every client (one transport connection, or the stdio loop as
// kStdioClient) owns a session slot in the SessionScheduler
// (src/serve/scheduler.h). handle_line(client, line) locks ONLY that
// client's slot for the duration of the request, so distinct clients place,
// price and delta concurrently while one client's requests stay serialized
// in arrival order (the per-connection response-order contract). Shared
// state is guarded by two short-lived locks, never held across a placement:
// cache_mutex_ (scenario cache + store index) and stats_mutex_ (request
// counters, verb histograms, merged telemetry). Scenario builds — the
// expensive part — run outside every lock; two clients racing to build the
// same key both succeed and the second insert refreshes the first (benign,
// keys are content-addressed so the results are interchangeable).
//
// Persistence. With ServerOptions::store_dir set, built scenarios are
// persisted to a crash-safe memory-mapped segment store
// (src/serve/store.h) and the constructor rehydrates the cache from disk,
// so a restarted server serves every previously stored scenario without
// re-running city generation, map matching or the shop Dijkstras. A load
// response reports where its scenario came from ("source": cache | store |
// built).
//
// Observability. Request latencies are measured on obs::EventClock, so
// under a VirtualClockGuard — where the server advances the clock by
// exactly one millisecond tick per request — every latency, uptime and
// percentile in the stats snapshot is a pure function of the request
// sequence: byte-identical output for identical single-client inputs,
// serial or with RAP_THREADS=4 (tests/serve/server_stats_test.cpp holds
// this as a golden contract). Each request records into a private Telemetry
// merged into the server's under stats_mutex_, so concurrent clients never
// share a sink. An optional EventLog (ServerOptions::log) receives
// structured request start/finish/error lines plus cache and warm-start
// events, and an installed FlightRecorder captures the raw span/instant
// timeline for rap.trace.v1 export.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>

#include "src/obs/event_log.h"
#include "src/obs/telemetry.h"
#include "src/serve/protocol.h"
#include "src/serve/scenario_cache.h"
#include "src/serve/scheduler.h"
#include "src/serve/session.h"
#include "src/serve/store.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"
#include "src/util/thread_pool.h"

namespace rap::serve {

struct ServerOptions {
  /// Scenario cache budget; 0 disables caching.
  std::size_t cache_bytes = 256ULL * 1024 * 1024;
  /// Threads for place_batch; 0 defers to the ambient ParallelConfig
  /// (RAP_THREADS env var, else hardware concurrency).
  std::size_t threads = 0;
  /// Structured JSONL sink for request/cache/warm-start events; nullptr
  /// disables logging. Must outlive the server.
  obs::EventLog* log = nullptr;
  /// Detour engine policy for every scenario this server builds (rap_serve
  /// --oracle* flags). The default "auto" keeps the classic per-shop
  /// Dijkstra engine on small cities and switches to a sparse oracle above
  /// the node threshold; a forced dense matrix over its node limit turns
  /// into a "resource_limit" error response.
  traffic::DetourEnginePolicy detours;
  /// Segment store directory (rap_serve --store-dir); empty disables
  /// persistence. The constructor opens the store and rehydrates the cache
  /// from it, and every "dijkstra"-engine scenario built afterwards is
  /// persisted under its content key.
  std::string store_dir;
};

class Server {
 public:
  /// Throws std::runtime_error when options.store_dir is set but cannot be
  /// created.
  explicit Server(ServerOptions options = {});

  /// Handles one request line for the stdio client and returns the response
  /// line (no trailing newline). Never throws: every failure becomes a
  /// structured error response. Thread-safe.
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// Handles one request line for `client`. Requests of the same client are
  /// processed serially in call order; requests of distinct clients run
  /// concurrently. Thread-safe, never throws.
  [[nodiscard]] std::string handle_line(ClientId client,
                                        const std::string& line);

  /// Registers a transport connection as a new client with its own session
  /// slot. Pair with close_client.
  [[nodiscard]] ClientId open_client() { return scheduler_.open_client(); }

  /// Drops a client and destroys its session (after any in-flight request
  /// of that client finishes).
  void close_client(ClientId client) { scheduler_.close_client(client); }

  /// Open clients, the stdio client included.
  [[nodiscard]] std::size_t client_count() const {
    return scheduler_.client_count();
  }

  /// Reads request lines from `in` until EOF or a shutdown request, writing
  /// one response line per request to `out` (flushed per line, so clients
  /// can pipeline over a pipe). Runs as kStdioClient. Returns 0.
  int run(std::istream& in, std::ostream& out);

  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_relaxed);
  }

  /// Server-lifetime telemetry (all requests), for --metrics-out export.
  /// Take no reference while handle_line may run concurrently.
  // Documented quiescent read: callers export after every run loop has
  // stopped, so the stats_mutex_ guard is deliberately not taken here.
  [[nodiscard]] const obs::Telemetry& telemetry() const noexcept
      RAP_NO_THREAD_SAFETY_ANALYSIS {
    return telemetry_;
  }

  /// The segment store, or nullptr when persistence is disabled.
  [[nodiscard]] const ScenarioStore* store() const noexcept {
    return store_.get();
  }

  /// Scenarios rehydrated from the store by the constructor.
  [[nodiscard]] std::size_t rehydrated_at_start() const noexcept {
    return rehydrated_at_start_;
  }

 private:
  using ClientLock = SessionScheduler::ClientLock;

  JsonValue dispatch(ClientLock& client, const JsonValue::Object& request);
  JsonValue handle_load(ClientLock& client, const JsonValue::Object& request);
  JsonValue handle_place(ClientLock& client, const JsonValue::Object& request);
  JsonValue handle_place_batch(ClientLock& client,
                               const JsonValue::Object& request);
  JsonValue handle_evaluate(ClientLock& client,
                            const JsonValue::Object& request);
  JsonValue handle_delta(ClientLock& client, const JsonValue::Object& request);
  JsonValue handle_stats(ClientLock& client, const JsonValue::Object& request);

  /// The client's open session, or a no_session error.
  static Session& session_or_throw(ClientLock& client);

  /// Folds one request's latency into the per-verb histogram. REQUIRES the
  /// stats lock: callers batch this with their other counter updates in a
  /// single micro-critical section.
  void record_verb_latency(const char* verb, double elapsed_ms)
      RAP_REQUIRES(stats_mutex_);

  ServerOptions options_;
  // Guards cache_ (and store_ put/load stay internally synchronized); held
  // only around lookup/insert/stats, never across a build or placement.
  mutable util::Mutex cache_mutex_;
  ScenarioCache cache_ RAP_GUARDED_BY(cache_mutex_);
  std::unique_ptr<ScenarioStore> store_;
  SessionScheduler scheduler_;
  // Guards every member below it; held only for counter/histogram updates.
  mutable util::Mutex stats_mutex_;
  obs::Telemetry telemetry_ RAP_GUARDED_BY(stats_mutex_);
  std::uint64_t requests_ RAP_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t errors_ RAP_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t scenario_builds_ RAP_GUARDED_BY(stats_mutex_) = 0;
  // Latency distribution per validated verb ("other" buckets unknown ops
  // and unparseable lines). Sorted map -> deterministic stats field order.
  std::map<std::string, obs::Histogram, std::less<>> verb_latency_
      RAP_GUARDED_BY(stats_mutex_);
  std::size_t rehydrated_at_start_ = 0;
  std::uint64_t start_ns_ = 0;        // EventClock at construction
  util::PoolCounters pool_baseline_;  // counters at construction
  std::atomic<bool> shutdown_{false};
  std::atomic<std::int64_t> pending_{0};
};

}  // namespace rap::serve
