// The placement server: line-delimited JSON requests over any istream/
// ostream pair (rap_serve wires stdio). One request per line in, one
// response per line out, schema "rap.serve.v1" (src/serve/protocol.h).
//
// Operations:
//   load        — build or cache-fetch a scenario, open a session on it
//   place       — warm-start lazy greedy placement for one budget k
//   place_batch — many budgets at once, placed concurrently on the
//                 deterministic thread pool (results independent of the
//                 thread count, like everything else in librap)
//   evaluate    — objective value of an explicit placement
//   delta       — apply add_flow / remove_flow / scale_flow mutations
//   stats       — live introspection snapshot: cache hit/miss/eviction
//                 rates, warm-start vs full-rerun counts, per-verb latency
//                 percentiles, thread-pool utilization, uptime, recorder
//                 and clock state (all deterministic under the virtual
//                 clock — see below)
//   shutdown    — acknowledge and stop the run loop
//
// handle_line() is thread-safe: a mutex serializes request processing
// (sessions are stateful), while an atomic pending counter exposes the
// resulting queue depth as the "serve.queue.depth" gauge. Within a
// place_batch, concurrency comes from util::parallel_for with one private
// telemetry sink per worker chunk, merged in chunk order.
//
// Observability. Request latencies are measured on obs::EventClock, so
// under a VirtualClockGuard — where the server advances the clock by
// exactly one millisecond tick per request — every latency, uptime and
// percentile in the stats snapshot is a pure function of the request
// sequence: byte-identical output for identical inputs, serial or with
// RAP_THREADS=4 (tests/serve/server_stats_test.cpp holds this as a golden
// contract). An optional EventLog (ServerOptions::log) receives structured
// request start/finish/error lines plus cache and warm-start events, and
// an installed FlightRecorder captures the raw span/instant timeline for
// rap.trace.v1 export.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/obs/event_log.h"
#include "src/obs/telemetry.h"
#include "src/serve/protocol.h"
#include "src/serve/scenario_cache.h"
#include "src/serve/session.h"
#include "src/util/thread_pool.h"

namespace rap::serve {

struct ServerOptions {
  /// Scenario cache budget; 0 disables caching.
  std::size_t cache_bytes = 256ULL * 1024 * 1024;
  /// Threads for place_batch; 0 defers to the ambient ParallelConfig
  /// (RAP_THREADS env var, else hardware concurrency).
  std::size_t threads = 0;
  /// Structured JSONL sink for request/cache/warm-start events; nullptr
  /// disables logging. Must outlive the server.
  obs::EventLog* log = nullptr;
  /// Detour engine policy for every scenario this server builds (rap_serve
  /// --oracle* flags). The default "auto" keeps the classic per-shop
  /// Dijkstra engine on small cities and switches to a sparse oracle above
  /// the node threshold; a forced dense matrix over its node limit turns
  /// into a "resource_limit" error response.
  traffic::DetourEnginePolicy detours;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});

  /// Handles one request line and returns the response line (no trailing
  /// newline). Never throws: every failure becomes a structured error
  /// response. Thread-safe.
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// Reads request lines from `in` until EOF or a shutdown request, writing
  /// one response line per request to `out` (flushed per line, so clients
  /// can pipeline over a pipe). Returns 0.
  int run(std::istream& in, std::ostream& out);

  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_relaxed);
  }

  /// Server-lifetime telemetry (all requests), for --metrics-out export.
  /// Take no reference while handle_line may run concurrently.
  [[nodiscard]] const obs::Telemetry& telemetry() const noexcept {
    return telemetry_;
  }

 private:
  JsonValue dispatch(const JsonValue::Object& request);
  JsonValue handle_load(const JsonValue::Object& request);
  JsonValue handle_place(const JsonValue::Object& request);
  JsonValue handle_place_batch(const JsonValue::Object& request);
  JsonValue handle_evaluate(const JsonValue::Object& request);
  JsonValue handle_delta(const JsonValue::Object& request);
  JsonValue handle_stats(const JsonValue::Object& request);

  /// The open session, or a no_session error.
  Session& session_or_throw();

  ServerOptions options_;
  mutable std::mutex mutex_;
  ScenarioCache cache_;
  std::unique_ptr<Session> session_;
  obs::Telemetry telemetry_;
  std::uint64_t requests_ = 0;
  std::uint64_t errors_ = 0;
  // Latency distribution per validated verb ("other" buckets unknown ops
  // and unparseable lines). Sorted map -> deterministic stats field order.
  std::map<std::string, obs::Histogram, std::less<>> verb_latency_;
  std::uint64_t start_ns_ = 0;                  // EventClock at construction
  util::PoolCounters pool_baseline_;            // counters at construction
  std::atomic<bool> shutdown_{false};
  std::atomic<std::int64_t> pending_{0};
};

}  // namespace rap::serve
