// Scenario loading + content-addressed caching for the placement service.
//
// A ServeScenario is a fully built, pinned problem instance: network, base
// flows, utility, shop, the shop's detour engine (two Dijkstras, or an
// oracle-backed engine per the server's DetourEnginePolicy) and the base
// PlacementProblem. Building one is the expensive part of serving a
// `load` request — city generation or CSV parsing, map matching, the shop
// Dijkstras, the incidence index — so scenarios are cached behind a 64-bit
// content key and shared (shared_ptr) between the cache and any live
// sessions.
//
// Cache keying is by *content*, not by request shape: file-based specs hash
// the bytes of the referenced files (editing a file in place is a cache
// miss, re-requesting an unchanged file is a hit); inline CSV specs hash the
// CSV text; generated-city specs hash the canonical parameter string (the
// generators are deterministic in their seed, so parameters ARE the
// content). Utility kind, range and shop selection are part of the key —
// they change the built model.
//
// Eviction is LRU by approximate resident bytes. The most recently inserted
// entry always survives, even when it alone exceeds the budget, so a session
// can always be served.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/core/problem.h"
#include "src/graph/oracle.h"
#include "src/graph/oracle_cache.h"
#include "src/graph/road_network.h"
#include "src/obs/event_log.h"
#include "src/traffic/detour.h"
#include "src/traffic/flow.h"
#include "src/traffic/oracle_detour.h"
#include "src/traffic/utility.h"

namespace rap::serve {

/// Detour source that forwards to a shared engine. The shop's
/// DetourCalculator depends only on the network and the shop node, so delta
/// rebuilds of the PlacementProblem (flows changed, network unchanged) can
/// share the scenario's calculator instead of re-running its two Dijkstras.
class SharedDetours final : public traffic::DetourSource {
 public:
  explicit SharedDetours(std::shared_ptr<const traffic::DetourSource> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] std::vector<double> detours_along_path(
      const traffic::TrafficFlow& flow) const override {
    return inner_->detours_along_path(flow);
  }

 private:
  std::shared_ptr<const traffic::DetourSource> inner_;
};

/// What a `load` request asks for. Exactly one input source must be set:
/// a generated city (`city` non-empty), input files (`network_path`
/// non-empty), or inline CSV text (`network_csv` non-empty).
struct ScenarioSpec {
  // Generated city: kind in {dublin, seattle, grid}, mirroring rap_cli.
  std::string city;
  std::uint64_t seed = 1;
  std::size_t journeys = 100;

  // File inputs (graph::read_network_csv / trace::read_flows_csv formats).
  std::string network_path;
  std::string flows_path;

  // Inline CSV text (same formats, for file-less clients and tests).
  std::string network_csv;
  std::string flows_csv;

  // Driver model.
  std::string utility = "linear";  ///< threshold | linear | sqrt
  double range = 2'500.0;          ///< the utility's D, feet

  // Shop: explicit node id, or a class drawn deterministically from
  // (content, seed) when shop == kInvalidNode.
  graph::NodeId shop = graph::kInvalidNode;
  std::string shop_class = "city";  ///< center | city | suburb
};

/// A built, pinned scenario. Non-copyable/non-movable: `problem` holds
/// pointers into `net` and `utility`, and sessions hold pointers into all of
/// it via shared_ptr<const ServeScenario>.
struct ServeScenario {
  std::uint64_t key = 0;
  std::string summary;  ///< human-readable one-liner for responses/logs
  graph::RoadNetwork net;
  std::vector<traffic::TrafficFlow> flows;  ///< base flows (pre-delta)
  std::unique_ptr<traffic::UtilityFunction> utility;
  graph::NodeId shop = graph::kInvalidNode;
  /// The shop detour engine, shared into delta rebuilds via SharedDetours.
  /// Classic per-shop DetourCalculator or an oracle-backed
  /// OracleDetourCalculator, per the build policy.
  std::shared_ptr<const traffic::DetourSource> detours;
  /// Resolved engine name: "dijkstra" | "dense" | "bidijkstra" | "alt".
  std::string detour_engine = "dijkstra";
  /// Oracle state behind an oracle engine (null for "dijkstra").
  std::shared_ptr<const graph::DistanceOracle> oracle;
  std::shared_ptr<graph::SparseDistanceCache> oracle_cache;
  /// Problem over the base flows (also built on SharedDetours).
  std::unique_ptr<core::PlacementProblem> problem;
  std::size_t bytes = 0;  ///< approximate resident footprint (LRU accounting)

  ServeScenario() = default;
  ServeScenario(const ServeScenario&) = delete;
  ServeScenario& operator=(const ServeScenario&) = delete;
};

/// FNV-1a 64-bit over `bytes`; the building block of scenario keys.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes,
                                    std::uint64_t seed = 0xcbf29ce484222325ULL);

/// The spec's content key. Reads the referenced files when the spec is
/// file-based (throws std::runtime_error naming the file when unreadable).
/// Two specs collide exactly when they would build the same scenario.
[[nodiscard]] std::uint64_t scenario_key(const ScenarioSpec& spec);

/// Validates the spec shape (exactly one input source, known utility/city/
/// shop-class names); throws std::invalid_argument otherwise.
void validate_spec(const ScenarioSpec& spec);

/// Builds the full scenario for `spec` (expensive: generation/parsing,
/// matching, Dijkstras, incidence). `key` must be scenario_key(spec). The
/// engine policy is server-level configuration, not scenario content, so it
/// is deliberately NOT part of the cache key: a server prices every
/// scenario with its one configured policy. Throws graph::DenseLimitError
/// (mapped to the "resource_limit" error code by the server) when the
/// policy forces a dense matrix on a city over its node limit.
[[nodiscard]] std::shared_ptr<const ServeScenario> build_scenario(
    const ScenarioSpec& spec, std::uint64_t key,
    const traffic::DetourEnginePolicy& policy = {});

/// LRU-by-bytes scenario cache. Thread-compatible (the server serializes
/// access); lookup/insert are O(1) amortised.
class ScenarioCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t bytes = 0;    ///< current resident total
    std::size_t entries = 0;  ///< current entry count
  };

  /// `max_bytes == 0` disables caching (every lookup misses, nothing is
  /// retained).
  explicit ScenarioCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}

  /// Returns the cached scenario and refreshes its recency, or nullptr
  /// (counted as hit/miss respectively).
  [[nodiscard]] std::shared_ptr<const ServeScenario> lookup(std::uint64_t key);

  /// Inserts `scenario` under its key and evicts least-recently-used entries
  /// until within budget (the new entry itself is never evicted here).
  /// Inserting an existing key refreshes the entry.
  void insert(std::shared_ptr<const ServeScenario> scenario);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t max_bytes() const noexcept { return max_bytes_; }

  /// Structured sink for insert/evict events (nullptr disables; the log
  /// must outlive the cache). Hits/misses stay on the metrics/recorder
  /// path only — they are too frequent for a per-line-flushed log.
  void set_event_log(obs::EventLog* log) noexcept { log_ = log; }

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::shared_ptr<const ServeScenario> scenario;
  };

  std::size_t max_bytes_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  Stats stats_;
  obs::EventLog* log_ = nullptr;
};

}  // namespace rap::serve
