#include "src/serve/server.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <utility>
#include <vector>

#include "src/graph/apsp.h"
#include "src/obs/events.h"
#include "src/traffic/flow.h"
#include "src/util/thread_pool.h"

namespace rap::serve {
namespace {

// One virtual-clock tick per request: under a VirtualClockGuard every
// request takes exactly this long, which pins latencies, percentiles and
// uptime to the request sequence alone.
constexpr std::uint64_t kVirtualTickNs = 1'000'000;

// Deadlines at or beyond this many milliseconds (~11.5 days) are treated as
// "no deadline": far enough out to never fire, small enough that the
// nanosecond arithmetic below cannot overflow std::int64_t.
constexpr double kMaxDeadlineMs = 1e9;

/// The request's verb for latency bucketing: a known op name, else "other"
/// (unknown ops, missing/ill-typed op fields). Returns a static literal so
/// callers can hold it across the dispatch.
const char* known_op_label(const JsonValue::Object& request) {
  const JsonValue* op = find_field(request, "op");
  if (op == nullptr || !op->is_string()) return "other";
  const std::string& name = op->as_string();
  for (const char* known : {"load", "place", "place_batch", "evaluate",
                            "delta", "stats", "shutdown"}) {
    if (name == known) return known;
  }
  return "other";
}

std::string hex_key(std::uint64_t key) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(key));
  return buffer;
}

JsonValue ok_base() {
  JsonValue::Object object;
  object.emplace("schema", kServeSchema);
  object.emplace("ok", true);
  return JsonValue(std::move(object));
}

JsonValue error_response(const JsonValue* id, const std::string& code,
                         const std::string& message) {
  JsonValue::Object error;
  error.emplace("code", code);
  error.emplace("message", message);
  JsonValue::Object object;
  object.emplace("schema", kServeSchema);
  object.emplace("ok", false);
  object.emplace("error", JsonValue(std::move(error)));
  if (id != nullptr) object.emplace("id", *id);
  return JsonValue(std::move(object));
}

/// The one checked double -> integer conversion: every numeric field that
/// ends up in an integer goes through here BEFORE any cast, because casting
/// an out-of-range double to an integer type is undefined behaviour — a
/// request carrying k=1e300 or seed=-2 must become a bad_request response,
/// not UB. `min`/`max` are inclusive and must be exactly representable as
/// doubles (everything up to 2^53). NaN fails the >= comparison.
std::uint64_t parse_integer(double raw, const char* what, double min,
                            double max) {
  if (!(raw >= min) || !(raw <= max) || raw != std::floor(raw)) {
    char bounds[64];
    std::snprintf(bounds, sizeof bounds, " must be an integer in [%.0f, %.0f]",
                  min, max);
    throw RequestError("bad_request", std::string(what) + bounds);
  }
  return static_cast<std::uint64_t>(raw);
}

/// parse_integer over a required numeric field.
std::uint64_t require_integer(const JsonValue::Object& request,
                              const char* field, double min, double max) {
  return parse_integer(require_number(request, field), field, min, max);
}

/// parse_integer over an optional numeric field with a default.
std::uint64_t get_integer(const JsonValue::Object& request, const char* field,
                          std::uint64_t fallback, double min, double max) {
  return parse_integer(
      get_number(request, field, static_cast<double>(fallback)), field, min,
      max);
}

/// Per-request deadline from the optional "deadline_ms" field. Non-positive
/// and NaN mean no deadline; huge values clamp to no-deadline instead of
/// overflowing into the past (a client asking for ~forever should wait, not
/// get an instant deadline_exceeded).
Deadline parse_deadline(const JsonValue::Object& request) {
  const double ms = get_number(request, "deadline_ms", 0.0);
  if (!(ms > 0.0) || ms >= kMaxDeadlineMs) return {};
  return std::chrono::steady_clock::now() +
         std::chrono::microseconds(static_cast<std::int64_t>(ms * 1000.0));
}

std::size_t parse_budget(const JsonValue::Object& request) {
  return static_cast<std::size_t>(require_integer(request, "k", 1.0, 1e12));
}

graph::NodeId parse_node(const JsonValue& value, const char* what) {
  if (!value.is_number()) {
    throw RequestError("bad_request", std::string(what) + " must be a number");
  }
  // Upper bound: the largest valid NodeId (kInvalidNode - 1).
  return static_cast<graph::NodeId>(
      parse_integer(value.as_number(), what, 0.0, 4294967294.0));
}

JsonValue placement_json(const WarmStartResult& result) {
  JsonValue::Object object;
  JsonValue::Array nodes;
  nodes.reserve(result.placement.nodes.size());
  for (const graph::NodeId node : result.placement.nodes) {
    nodes.emplace_back(static_cast<double>(node));
  }
  object.emplace("nodes", JsonValue(std::move(nodes)));
  object.emplace("customers", result.placement.customers);
  object.emplace("warm_reused", result.reused);
  object.emplace("warm_fell_back", result.fell_back);
  object.emplace("gain_evaluations",
                 static_cast<double>(result.gain_evaluations));
  return JsonValue(std::move(object));
}

DeltaOp parse_delta_op(const JsonValue& value, const graph::RoadNetwork& net) {
  if (!value.is_object()) {
    throw RequestError("bad_request", "delta ops must be objects");
  }
  const JsonValue::Object& object = value.as_object();
  const std::string& kind = require_string(object, "kind");
  DeltaOp op;
  if (kind == "add_flow") {
    op.kind = DeltaOp::Kind::kAddFlow;
    const JsonValue* origin = find_field(object, "origin");
    const JsonValue* destination = find_field(object, "destination");
    if (origin == nullptr || destination == nullptr) {
      throw RequestError("bad_request", "add_flow needs origin + destination");
    }
    const double vehicles = get_number(object, "vehicles", 1.0);
    const double passengers = get_number(object, "passengers_per_vehicle", 1.0);
    const double alpha = get_number(object, "alpha", 0.001);
    try {
      op.flow = traffic::make_shortest_path_flow(
          net, parse_node(*origin, "origin"),
          parse_node(*destination, "destination"), vehicles, passengers, alpha);
    } catch (const RequestError&) {
      throw;
    } catch (const std::exception& error) {
      throw RequestError("bad_request", error.what());
    }
  } else if (kind == "remove_flow" || kind == "scale_flow") {
    op.kind = kind == "remove_flow" ? DeltaOp::Kind::kRemoveFlow
                                    : DeltaOp::Kind::kScaleFlow;
    op.index = static_cast<std::size_t>(
        require_integer(object, "index", 0.0, 9e15));
    if (op.kind == DeltaOp::Kind::kScaleFlow) {
      op.factor = require_number(object, "factor");
    }
  } else {
    throw RequestError("bad_request", "unknown delta kind '" + kind +
                                          "' (add_flow|remove_flow|scale_flow)");
  }
  return op;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_bytes),
      start_ns_(obs::EventClock::now_ns()),
      pool_baseline_(util::pool_counters()) {
  cache_.set_event_log(options_.log);
  if (!options_.store_dir.empty()) {
    store_ = std::make_unique<ScenarioStore>(options_.store_dir);
    // Rehydration replaces the builds a warm cache would have absorbed: no
    // generation, no matching, no Dijkstras — just mmap + incidence.
    rehydrated_at_start_ = store_->rehydrate_into(cache_);
    if (options_.log != nullptr && rehydrated_at_start_ > 0) {
      options_.log->log(
          obs::LogLevel::kInfo, "store.rehydrate",
          {obs::log_num("scenarios",
                        static_cast<double>(rehydrated_at_start_))});
    }
  }
}

void Server::record_verb_latency(const char* verb, double elapsed_ms) {
  const auto verb_it = verb_latency_.find(verb);
  obs::Histogram& verb_hist =
      verb_it != verb_latency_.end()
          ? verb_it->second
          : verb_latency_.emplace(verb, obs::Histogram(std::vector<double>{}))
                .first->second;
  verb_hist.observe(elapsed_ms);
}

Session& Server::session_or_throw(ClientLock& client) {
  if (client.session() == nullptr) {
    throw RequestError("no_session", "no scenario loaded; send a load request");
  }
  return *client.session();
}

JsonValue Server::handle_load(ClientLock& client,
                              const JsonValue::Object& request) {
  ScenarioSpec spec;
  spec.city = get_string(request, "city", "");
  spec.seed = get_integer(request, "seed", 1, 0.0, 9e15);
  spec.journeys = static_cast<std::size_t>(
      get_integer(request, "journeys", 100, 0.0, 1e9));
  spec.network_path = get_string(request, "network_path", "");
  spec.flows_path = get_string(request, "flows_path", "");
  spec.network_csv = get_string(request, "network_csv", "");
  spec.flows_csv = get_string(request, "flows_csv", "");
  spec.utility = get_string(request, "utility", "linear");
  spec.range = get_number(request, "d", 2'500.0);
  if (const JsonValue* shop = find_field(request, "shop"); shop != nullptr) {
    spec.shop = parse_node(*shop, "shop");
  }
  spec.shop_class = get_string(request, "shop_class", "city");

  std::shared_ptr<const ServeScenario> scenario;
  const char* source = "built";
  try {
    const std::uint64_t key = scenario_key(spec);
    {
      const util::MutexLock lock(cache_mutex_);
      scenario = cache_.lookup(key);
    }
    if (scenario != nullptr) {
      source = "cache";
    } else if (store_ != nullptr) {
      // Disk beats rebuild: one mmap + incidence instead of generation,
      // matching and Dijkstras. load() is internally synchronized.
      scenario = store_->load(key);
      if (scenario != nullptr) {
        source = "store";
        const util::MutexLock lock(cache_mutex_);
        cache_.insert(scenario);
      }
    }
    if (scenario == nullptr) {
      // Build outside every lock: concurrent clients racing on the same key
      // both build, and the second insert refreshes the first — benign,
      // content-keyed results are interchangeable.
      scenario = build_scenario(spec, key, options_.detours);
      {
        const util::MutexLock lock(stats_mutex_);
        ++scenario_builds_;
      }
      {
        const util::MutexLock lock(cache_mutex_);
        cache_.insert(scenario);
      }
      if (store_ != nullptr) (void)store_->put(*scenario);
    }
  } catch (const RequestError&) {
    throw;
  } catch (const graph::DenseLimitError& error) {
    // A forced dense engine on a city over the matrix node limit: the guard
    // fires before the n^2 allocation, so the refusal is instant and the
    // server stays up.
    throw RequestError("resource_limit", error.what());
  } catch (const std::exception& error) {
    throw RequestError("bad_scenario", error.what());
  }
  client.set_session(std::make_unique<Session>(scenario));

  JsonValue response = ok_base();
  JsonValue::Object& object = response.as_object();
  object.emplace("key", hex_key(scenario->key));
  object.emplace("cached", source == std::string_view("cache"));
  object.emplace("source", source);
  object.emplace("engine", scenario->detour_engine);
  object.emplace("summary", scenario->summary);
  object.emplace("nodes", static_cast<double>(scenario->net.num_nodes()));
  object.emplace("flows", static_cast<double>(scenario->flows.size()));
  object.emplace("shop", static_cast<double>(scenario->shop));
  return response;
}

JsonValue Server::handle_place(ClientLock& client,
                               const JsonValue::Object& request) {
  Session& session = session_or_throw(client);
  const std::size_t k = parse_budget(request);
  const WarmStartResult result = session.place(k, parse_deadline(request));
  if (result.fell_back && options_.log != nullptr) {
    options_.log->log(obs::LogLevel::kWarn, "warm_start.fallback",
                      {obs::log_num("k", static_cast<double>(k))});
  }
  JsonValue response = ok_base();
  JsonValue::Object& object = response.as_object();
  object.emplace("result", placement_json(result));
  return response;
}

JsonValue Server::handle_place_batch(ClientLock& client,
                                     const JsonValue::Object& request) {
  Session& session = session_or_throw(client);
  const JsonValue* ks = find_field(request, "ks");
  if (ks == nullptr || !ks->is_array() || ks->as_array().empty()) {
    throw RequestError("bad_request", "ks must be a non-empty array");
  }
  std::vector<std::size_t> budgets;
  budgets.reserve(ks->as_array().size());
  for (const JsonValue& k : ks->as_array()) {
    if (!k.is_number()) {
      throw RequestError("bad_request", "ks entries must be positive integers");
    }
    budgets.push_back(static_cast<std::size_t>(
        parse_integer(k.as_number(), "ks entries", 1.0, 1e12)));
  }
  const Deadline deadline = parse_deadline(request);
  obs::observe("serve.batch.size", static_cast<double>(budgets.size()));

  // Warm the session once so the concurrent read-only placements all start
  // from exact round-0 gains instead of each running a cold full scan.
  if (!session.warm_valid()) (void)session.place(budgets.front(), deadline);

  // One private telemetry sink per chunk, merged in chunk order after the
  // join — workers never share a sink (src/obs/telemetry.h).
  std::vector<WarmStartResult> results(budgets.size());
  std::vector<obs::Telemetry> chunk_telemetry(budgets.size());
  std::exception_ptr first_error;
  util::Mutex error_mutex;
  util::parallel_for(
      0, budgets.size(), 1,
      [&](const util::ChunkRange& chunk) {
        obs::TelemetryScope scope(chunk_telemetry[chunk.index]);
        for (std::size_t i = chunk.first; i < chunk.last; ++i) {
          try {
            results[i] = session.place_const(budgets[i], deadline);
          } catch (...) {
            const util::MutexLock lock(error_mutex);
            if (first_error == nullptr) first_error = std::current_exception();
          }
        }
      },
      options_.threads);
  if (first_error != nullptr) std::rethrow_exception(first_error);
  // Merge into this request's ambient sink (installed by handle_line), NOT
  // the server's telemetry_ — concurrent requests each own their sink.
  if (obs::Telemetry* ambient = obs::ambient(); ambient != nullptr) {
    for (const obs::Telemetry& telemetry : chunk_telemetry) {
      ambient->merge(telemetry);
    }
  }

  JsonValue response = ok_base();
  JsonValue::Array out;
  out.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    JsonValue item = placement_json(results[i]);
    item.as_object().emplace("k", static_cast<double>(budgets[i]));
    out.push_back(std::move(item));
  }
  response.as_object().emplace("results", JsonValue(std::move(out)));
  return response;
}

JsonValue Server::handle_evaluate(ClientLock& client,
                                  const JsonValue::Object& request) {
  Session& session = session_or_throw(client);
  const JsonValue* nodes = find_field(request, "nodes");
  if (nodes == nullptr || !nodes->is_array()) {
    throw RequestError("bad_request", "nodes must be an array");
  }
  std::vector<graph::NodeId> placement;
  placement.reserve(nodes->as_array().size());
  for (const JsonValue& node : nodes->as_array()) {
    placement.push_back(parse_node(node, "nodes entry"));
  }
  JsonValue response = ok_base();
  response.as_object().emplace("customers", session.evaluate(placement));
  return response;
}

JsonValue Server::handle_delta(ClientLock& client,
                               const JsonValue::Object& request) {
  Session& session = session_or_throw(client);
  const JsonValue* ops = find_field(request, "ops");
  if (ops == nullptr || !ops->is_array() || ops->as_array().empty()) {
    throw RequestError("bad_request", "ops must be a non-empty array");
  }
  std::size_t applied = 0;
  for (const JsonValue& value : ops->as_array()) {
    const DeltaOp op = parse_delta_op(value, session.scenario().net);
    try {
      session.apply_delta(op);
    } catch (const std::exception& error) {
      // Earlier ops in the request stay applied; the error says how far the
      // batch got so the client can resynchronize.
      throw RequestError("bad_request",
                         "op " + std::to_string(applied) + ": " + error.what());
    }
    ++applied;
  }
  JsonValue response = ok_base();
  JsonValue::Object& object = response.as_object();
  object.emplace("applied", static_cast<double>(applied));
  object.emplace("flows", static_cast<double>(session.flows().size()));
  return response;
}

JsonValue Server::handle_stats(ClientLock& client, const JsonValue::Object&) {
  JsonValue response = ok_base();
  JsonValue::Object& object = response.as_object();

  ScenarioCache::Stats cache;
  std::size_t cache_max_bytes = 0;
  {
    const util::MutexLock lock(cache_mutex_);
    cache = cache_.stats();
    cache_max_bytes = cache_.max_bytes();
  }
  JsonValue::Object cache_json;
  cache_json.emplace("hits", static_cast<double>(cache.hits));
  cache_json.emplace("misses", static_cast<double>(cache.misses));
  const std::uint64_t lookups = cache.hits + cache.misses;
  cache_json.emplace("hit_rate",
                     lookups == 0 ? 0.0
                                  : static_cast<double>(cache.hits) /
                                        static_cast<double>(lookups));
  cache_json.emplace("evictions", static_cast<double>(cache.evictions));
  cache_json.emplace("bytes", static_cast<double>(cache.bytes));
  cache_json.emplace("entries", static_cast<double>(cache.entries));
  cache_json.emplace("max_bytes", static_cast<double>(cache_max_bytes));
  object.emplace("cache", JsonValue(std::move(cache_json)));

  JsonValue::Object store_json;
  store_json.emplace("configured", store_ != nullptr);
  if (store_ != nullptr) {
    const ScenarioStore::Stats store = store_->stats();
    store_json.emplace("persisted", static_cast<double>(store.persisted));
    store_json.emplace("skipped", static_cast<double>(store.skipped));
    store_json.emplace("rehydrated", static_cast<double>(store.rehydrated));
    store_json.emplace("corrupt", static_cast<double>(store.corrupt));
    store_json.emplace("io_errors", static_cast<double>(store.io_errors));
    store_json.emplace("segments", static_cast<double>(store_->segment_count()));
    store_json.emplace("rehydrated_at_start",
                       static_cast<double>(rehydrated_at_start_));
  }
  object.emplace("store", JsonValue(std::move(store_json)));

  // The requesting client's session — sessions are per-client now.
  JsonValue::Object session_json;
  Session* session = client.session();
  session_json.emplace("present", session != nullptr);
  if (session != nullptr) {
    const Session::Stats& stats = session->stats();
    session_json.emplace("key", hex_key(session->scenario().key));
    session_json.emplace("summary", session->scenario().summary);
    session_json.emplace("flows", static_cast<double>(session->flows().size()));
    session_json.emplace("places", static_cast<double>(stats.places));
    session_json.emplace("deltas", static_cast<double>(stats.deltas));
    session_json.emplace("warm_attempts",
                         static_cast<double>(stats.warm_attempts));
    session_json.emplace("warm_reused",
                         static_cast<double>(stats.warm_reused));
    session_json.emplace("warm_fallbacks",
                         static_cast<double>(stats.warm_fallbacks));
  }
  object.emplace("session", JsonValue(std::move(session_json)));

  JsonValue::Object server_json;
  {
    const util::MutexLock lock(stats_mutex_);
    server_json.emplace("requests", static_cast<double>(requests_));
    server_json.emplace("errors", static_cast<double>(errors_));
    server_json.emplace("scenario_builds",
                        static_cast<double>(scenario_builds_));
  }
  server_json.emplace("clients", static_cast<double>(client_count()));
  // Uptime in the EventClock domain: wall-clock normally, exactly one tick
  // per completed request under a VirtualClockGuard.
  server_json.emplace(
      "uptime_ms",
      static_cast<double>(obs::EventClock::now_ns() - start_ns_) / 1e6);
  object.emplace("server", JsonValue(std::move(server_json)));

  // Per-verb latency distributions; the sorted member map fixes field order.
  JsonValue::Object verbs_json;
  {
    const util::MutexLock lock(stats_mutex_);
    for (const auto& [verb, hist] : verb_latency_) {
      JsonValue::Object verb_json;
      verb_json.emplace("count", static_cast<double>(hist.count()));
      verb_json.emplace("mean_ms", hist.stats().mean());
      verb_json.emplace("p50_ms", hist.percentile(50.0));
      verb_json.emplace("p95_ms", hist.percentile(95.0));
      verb_json.emplace("p99_ms", hist.percentile(99.0));
      verbs_json.emplace(verb, JsonValue(std::move(verb_json)));
    }
  }
  object.emplace("verbs", JsonValue(std::move(verbs_json)));

  // Thread-pool utilization since this server was constructed. The counts
  // are deterministic for a fixed request sequence (static chunking);
  // `workers` describes the machine's shared pool.
  const util::PoolCounters pool = util::pool_counters();
  JsonValue::Object pool_json;
  pool_json.emplace("regions",
                    static_cast<double>(pool.regions - pool_baseline_.regions));
  pool_json.emplace("chunks",
                    static_cast<double>(pool.chunks - pool_baseline_.chunks));
  pool_json.emplace(
      "workers", static_cast<double>(util::ThreadPool::shared().worker_count()));
  pool_json.emplace("configured_threads",
                    static_cast<double>(options_.threads));
  object.emplace("pool", JsonValue(std::move(pool_json)));

  JsonValue::Object clock_json;
  clock_json.emplace("virtual", obs::EventClock::virtual_enabled());
  object.emplace("clock", JsonValue(std::move(clock_json)));

  JsonValue::Object recorder_json;
  const obs::FlightRecorder* recorder = obs::FlightRecorder::active();
  recorder_json.emplace("installed", recorder != nullptr);
  if (recorder != nullptr) {
    recorder_json.emplace("threads",
                          static_cast<double>(recorder->thread_count()));
    recorder_json.emplace("events",
                          static_cast<double>(recorder->total_events()));
    recorder_json.emplace("dropped",
                          static_cast<double>(recorder->total_dropped()));
    recorder_json.emplace(
        "ring_capacity",
        static_cast<double>(recorder->options().ring_capacity));
  }
  object.emplace("recorder", JsonValue(std::move(recorder_json)));
  return response;
}

JsonValue Server::dispatch(ClientLock& client,
                           const JsonValue::Object& request) {
  const std::string& op = require_string(request, "op");
  if (op == "load") return handle_load(client, request);
  if (op == "place") return handle_place(client, request);
  if (op == "place_batch") return handle_place_batch(client, request);
  if (op == "evaluate") return handle_evaluate(client, request);
  if (op == "delta") return handle_delta(client, request);
  if (op == "stats") return handle_stats(client, request);
  if (op == "shutdown") {
    shutdown_.store(true, std::memory_order_relaxed);
    return ok_base();
  }
  throw RequestError(
      "unknown_op",
      "unknown op '" + op +
          "' (load|place|place_batch|evaluate|delta|stats|shutdown)");
}

std::string Server::handle_line(const std::string& line) {
  return handle_line(kStdioClient, line);
}

std::string Server::handle_line(ClientId client_id, const std::string& line) {
  pending_.fetch_add(1, std::memory_order_relaxed);
  JsonValue response;
  {
    // Only this client's slot is held across the request: same-client
    // requests serialize in arrival order, distinct clients run
    // concurrently.
    ClientLock client = scheduler_.lock_client(client_id);
    // Latency on the EventClock: wall-clock normally; under a
    // VirtualClockGuard the advance below makes every request exactly one
    // tick long, so histograms and stats snapshots depend only on the
    // request sequence.
    const std::uint64_t start_ns = obs::EventClock::now_ns();
    // Request-private sink, merged into the server's under stats_mutex_ at
    // the end — concurrent requests never share ambient telemetry.
    obs::Telemetry request_telemetry;
    {
      const obs::TelemetryScope scope(request_telemetry);
      obs::set_gauge(
          "serve.queue.depth",
          static_cast<double>(pending_.load(std::memory_order_relaxed)));
      {
        const util::MutexLock lock(stats_mutex_);
        ++requests_;
      }
      obs::add_counter("serve.requests");

      const char* op_label = "other";
      std::string error_code;
      const JsonValue* id = nullptr;
      JsonValue id_storage;
      try {
        if (!client) {
          throw RequestError("no_session", "client is closed");
        }
        JsonValue request = parse_json(line);
        if (!request.is_object()) {
          throw RequestError("bad_request", "request must be a JSON object");
        }
        if (const JsonValue* found = find_field(request.as_object(), "id");
            found != nullptr) {
          id_storage = *found;
          id = &id_storage;
        }
        op_label = known_op_label(request.as_object());
        obs::record_instant("serve.request", "op", op_label);
        if (options_.log != nullptr) {
          options_.log->log(obs::LogLevel::kDebug, "request.start",
                            {obs::log_str("op", op_label)});
        }
        response = dispatch(client, request.as_object());
        if (id != nullptr) response.as_object().emplace("id", *id);
      } catch (const RequestError& error) {
        error_code = error.code();
        response = error_response(id, error.code(), error.what());
      } catch (const DeadlineExceeded& error) {
        error_code = "deadline_exceeded";
        response = error_response(id, error_code, error.what());
      } catch (const std::invalid_argument& error) {
        error_code = "bad_request";
        response = error_response(id, error_code, error.what());
      } catch (const std::out_of_range& error) {
        error_code = "bad_request";
        response = error_response(id, error_code, error.what());
      } catch (const std::exception& error) {
        error_code = "internal";
        response = error_response(id, error_code, error.what());
      }
      const bool ok = error_code.empty();
      if (!ok) {
        {
          const util::MutexLock lock(stats_mutex_);
          ++errors_;
        }
        obs::add_counter("serve.errors");
        if (options_.log != nullptr) {
          options_.log->log(obs::LogLevel::kError, "request.error",
                            {obs::log_str("op", op_label),
                             obs::log_str("code", error_code)});
        }
      }

      obs::EventClock::advance_virtual(kVirtualTickNs);
      const double elapsed_ms =
          static_cast<double>(obs::EventClock::now_ns() - start_ns) / 1e6;
      obs::observe("serve.request_ms", elapsed_ms);
      {
        const util::MutexLock lock(stats_mutex_);
        record_verb_latency(op_label, elapsed_ms);
      }
      if (options_.log != nullptr) {
        options_.log->log(obs::LogLevel::kInfo, "request.finish",
                          {obs::log_str("op", op_label),
                           obs::log_num("ms", elapsed_ms),
                           obs::log_bool("ok", ok)});
      }
    }
    {
      const util::MutexLock lock(stats_mutex_);
      telemetry_.merge(request_telemetry);
    }
  }
  pending_.fetch_sub(1, std::memory_order_relaxed);
  return to_json(response);
}

int Server::run(std::istream& in, std::ostream& out) {
  std::string line;
  while (!shutdown_requested() && std::getline(in, line)) {
    if (line.empty()) continue;
    out << handle_line(line) << '\n' << std::flush;
  }
  return 0;
}

}  // namespace rap::serve
