#include "src/serve/store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "src/core/problem.h"
#include "src/graph/path.h"
#include "src/obs/events.h"
#include "src/obs/telemetry.h"
#include "src/traffic/utility.h"

namespace rap::serve {
namespace {

constexpr char kMagic[8] = {'R', 'A', 'P', 'S', 'E', 'G', '1', '\n'};
/// Fixed header size; every scalar field is 8 bytes except shop/reserved.
constexpr std::size_t kHeaderBytes = 112;
/// The only engine whose exact pricing state is O(n) and persistable.
constexpr const char* kPersistableEngine = "dijkstra";

struct SegmentHeader {
  std::uint64_t version = 0;
  std::uint64_t key = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t payload_hash = 0;
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t num_flows = 0;
  std::uint64_t scenario_bytes = 0;
  double range = 0.0;
  std::uint32_t shop = 0;
  std::uint64_t summary_bytes = 0;
  std::uint64_t engine_bytes = 0;
  std::uint64_t utility_bytes = 0;
};

void append_raw(std::string& out, const void* data, std::size_t bytes) {
  out.append(static_cast<const char*>(data), bytes);
}
void append_u64(std::string& out, std::uint64_t value) {
  append_raw(out, &value, sizeof value);
}
void append_u32(std::string& out, std::uint32_t value) {
  append_raw(out, &value, sizeof value);
}
void append_f64(std::string& out, double value) {
  append_raw(out, &value, sizeof value);
}

/// Bounds-checked cursor over a mapped segment; any overrun throws (the
/// caller maps that to "corrupt", never UB).
class SegmentReader {
 public:
  SegmentReader(const char* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t value = 0;
    copy(&value, sizeof value);
    return value;
  }
  [[nodiscard]] std::uint32_t u32() {
    std::uint32_t value = 0;
    copy(&value, sizeof value);
    return value;
  }
  [[nodiscard]] double f64() {
    double value = 0.0;
    copy(&value, sizeof value);
    return value;
  }
  [[nodiscard]] std::string_view bytes(std::size_t n) {
    require(n);
    const std::string_view view(data_ + pos_, n);
    pos_ += n;
    return view;
  }
  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  void require(std::size_t n) const {
    if (n > size_ - pos_) {
      throw std::runtime_error("segment truncated");
    }
  }
  void copy(void* out, std::size_t n) {
    require(n);
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Read-only mapping of one segment file (RAII: munmap + close).
struct MappedSegment {
  const char* data = nullptr;
  std::size_t size = 0;
  int fd = -1;

  MappedSegment() = default;
  MappedSegment(const MappedSegment&) = delete;
  MappedSegment& operator=(const MappedSegment&) = delete;
  ~MappedSegment() {
    if (data != nullptr) {
      ::munmap(const_cast<char*>(data), size);  // NOLINT(*-const-cast)
    }
    if (fd >= 0) ::close(fd);
  }
};

/// Maps `path` read-only. Returns false (leaving `out` empty) when the file
/// does not exist; throws on IO errors and empty files.
bool map_segment(const std::string& path, MappedSegment& out) {
  out.fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);  // NOLINT(*-vararg)
  if (out.fd < 0) {
    if (errno == ENOENT) return false;
    throw std::runtime_error("store: cannot open '" + path + "'");
  }
  struct stat info {};
  if (::fstat(out.fd, &info) != 0 || info.st_size <= 0) {
    throw std::runtime_error("store: cannot stat '" + path + "'");
  }
  out.size = static_cast<std::size_t>(info.st_size);
  void* mapped = ::mmap(nullptr, out.size, PROT_READ, MAP_PRIVATE, out.fd, 0);
  if (mapped == MAP_FAILED) {  // NOLINT(*-int-to-ptr)
    throw std::runtime_error("store: mmap failed for '" + path + "'");
  }
  out.data = static_cast<const char*>(mapped);
  return true;
}

traffic::UtilityKind utility_kind_from_name(std::string_view name) {
  if (name == "threshold") return traffic::UtilityKind::kThreshold;
  if (name == "linear") return traffic::UtilityKind::kLinear;
  if (name == "sqrt") return traffic::UtilityKind::kSqrt;
  throw std::runtime_error("segment names unknown utility");
}

/// Serializes the scenario (with its extracted d'/d'' arrays) into the
/// on-disk byte layout.
std::string serialize_segment(const ServeScenario& scenario,
                              const std::vector<double>& to_shop,
                              const std::vector<double>& from_shop) {
  const std::string utility_name = scenario.utility->name();
  std::string payload;
  payload.reserve(scenario.net.num_nodes() * 32 +
                  scenario.net.num_edges() * 16);
  for (const geo::Point& position : scenario.net.positions()) {
    append_f64(payload, position.x);
    append_f64(payload, position.y);
  }
  for (const graph::Edge& edge : scenario.net.edges()) {
    append_u32(payload, edge.from);
    append_u32(payload, edge.to);
    append_f64(payload, edge.length);
  }
  for (const double distance : to_shop) append_f64(payload, distance);
  for (const double distance : from_shop) append_f64(payload, distance);
  for (const traffic::TrafficFlow& flow : scenario.flows) {
    append_u32(payload, flow.origin);
    append_u32(payload, flow.destination);
    append_f64(payload, flow.daily_vehicles);
    append_f64(payload, flow.passengers_per_vehicle);
    append_f64(payload, flow.alpha);
    append_u64(payload, flow.path.size());
    for (const graph::NodeId node : flow.path) append_u32(payload, node);
  }
  append_raw(payload, scenario.summary.data(), scenario.summary.size());
  append_raw(payload, scenario.detour_engine.data(),
             scenario.detour_engine.size());
  append_raw(payload, utility_name.data(), utility_name.size());

  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  append_raw(out, kMagic, sizeof kMagic);
  append_u64(out, kStoreFormatVersion);
  append_u64(out, scenario.key);
  append_u64(out, payload.size());
  append_u64(out, fnv1a64(payload));
  append_u64(out, scenario.net.num_nodes());
  append_u64(out, scenario.net.num_edges());
  append_u64(out, scenario.flows.size());
  append_u64(out, scenario.bytes);
  append_f64(out, scenario.utility->range());
  append_u32(out, scenario.shop);
  append_u32(out, 0);  // reserved
  append_u64(out, scenario.summary.size());
  append_u64(out, scenario.detour_engine.size());
  append_u64(out, utility_name.size());
  out += payload;
  return out;
}

/// Parses and validates the fixed header. Throws on any mismatch.
SegmentHeader parse_header(SegmentReader& reader, std::uint64_t expected_key,
                           std::size_t file_size) {
  if (reader.bytes(sizeof kMagic) != std::string_view(kMagic, sizeof kMagic)) {
    throw std::runtime_error("segment magic mismatch");
  }
  SegmentHeader header;
  header.version = reader.u64();
  if (header.version != kStoreFormatVersion) {
    throw std::runtime_error("segment format version mismatch");
  }
  header.key = reader.u64();
  if (header.key != expected_key) {
    throw std::runtime_error("segment key does not match its filename");
  }
  header.payload_bytes = reader.u64();
  if (header.payload_bytes != file_size - kHeaderBytes) {
    throw std::runtime_error("segment payload size mismatch");
  }
  header.payload_hash = reader.u64();
  header.num_nodes = reader.u64();
  header.num_edges = reader.u64();
  header.num_flows = reader.u64();
  header.scenario_bytes = reader.u64();
  header.range = reader.f64();
  header.shop = reader.u32();
  (void)reader.u32();  // reserved
  header.summary_bytes = reader.u64();
  header.engine_bytes = reader.u64();
  header.utility_bytes = reader.u64();
  // Count sanity before any count-driven loop: ids are 32-bit, and every
  // per-item size below must fit the payload.
  if (header.num_nodes >= graph::kInvalidNode ||
      header.num_edges > header.payload_bytes / 16 ||
      header.num_nodes > header.payload_bytes / 16 ||
      header.num_flows > header.payload_bytes / 40) {
    throw std::runtime_error("segment counts exceed payload");
  }
  return header;
}

/// Rebuilds a full ServeScenario from a validated mapping. Throws on any
/// inconsistency (bad ids, non-walk paths, string overruns).
std::shared_ptr<const ServeScenario> parse_segment(const MappedSegment& map,
                                                   std::uint64_t key) {
  SegmentReader header_reader(map.data, kHeaderBytes);
  const SegmentHeader header = parse_header(header_reader, key, map.size);
  const std::string_view payload(map.data + kHeaderBytes,
                                 map.size - kHeaderBytes);
  if (fnv1a64(payload) != header.payload_hash) {
    throw std::runtime_error("segment checksum mismatch");
  }

  SegmentReader reader(payload.data(), payload.size());
  auto scenario = std::make_shared<ServeScenario>();
  scenario->key = header.key;
  for (std::uint64_t i = 0; i < header.num_nodes; ++i) {
    const double x = reader.f64();
    const double y = reader.f64();
    (void)scenario->net.add_node(geo::Point{x, y});
  }
  for (std::uint64_t i = 0; i < header.num_edges; ++i) {
    const graph::NodeId from = reader.u32();
    const graph::NodeId to = reader.u32();
    const double length = reader.f64();
    (void)scenario->net.add_edge(from, to, length);
  }
  std::vector<double> to_shop(header.num_nodes);
  for (double& distance : to_shop) distance = reader.f64();
  std::vector<double> from_shop(header.num_nodes);
  for (double& distance : from_shop) distance = reader.f64();
  scenario->flows.reserve(header.num_flows);
  for (std::uint64_t i = 0; i < header.num_flows; ++i) {
    traffic::TrafficFlow flow;
    flow.origin = reader.u32();
    flow.destination = reader.u32();
    flow.daily_vehicles = reader.f64();
    flow.passengers_per_vehicle = reader.f64();
    flow.alpha = reader.f64();
    const std::uint64_t path_len = reader.u64();
    if (path_len > reader.remaining() / 4) {
      throw std::runtime_error("segment flow path exceeds payload");
    }
    flow.path.resize(path_len);
    for (graph::NodeId& node : flow.path) node = reader.u32();
    scenario->flows.push_back(std::move(flow));
  }
  scenario->summary = std::string(reader.bytes(header.summary_bytes));
  scenario->detour_engine = std::string(reader.bytes(header.engine_bytes));
  const std::string utility_name(reader.bytes(header.utility_bytes));
  if (reader.remaining() != 0) {
    throw std::runtime_error("segment has trailing bytes");
  }

  scenario->net.check_node(header.shop);
  scenario->shop = header.shop;
  scenario->utility =
      traffic::make_utility(utility_kind_from_name(utility_name), header.range);
  scenario->detours = std::make_shared<StoredDetours>(
      scenario->net, std::move(to_shop), std::move(from_shop));
  // The problem rebuild below revalidates every flow against the rebuilt
  // network, so a tampered path that survives the checksum still throws.
  scenario->problem = std::make_unique<core::PlacementProblem>(
      scenario->net, scenario->flows, scenario->shop, *scenario->utility,
      std::make_unique<SharedDetours>(scenario->detours));
  scenario->bytes = header.scenario_bytes;
  return scenario;
}

bool write_all(int fd, const std::string& bytes) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ::ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

/// Best-effort directory fsync so the rename itself is durable.
void sync_directory(const std::string& directory) {
  const int fd =
      ::open(directory.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);  // NOLINT(*-vararg)
  if (fd < 0) return;
  (void)::fsync(fd);
  (void)::close(fd);
}

std::string key_filename(std::uint64_t key) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%016llx.rseg",
                static_cast<unsigned long long>(key));
  return buffer;
}

}  // namespace

StoredDetours::StoredDetours(const graph::RoadNetwork& net,
                             std::vector<double> to_shop,
                             std::vector<double> from_shop)
    : net_(&net), to_shop_(std::move(to_shop)), from_shop_(std::move(from_shop)) {
  if (to_shop_.size() != net.num_nodes() ||
      from_shop_.size() != net.num_nodes()) {
    throw std::invalid_argument(
        "StoredDetours: distance arrays must cover every node");
  }
}

std::vector<double> StoredDetours::detours_along_path(
    const traffic::TrafficFlow& flow) const {
  // Mirrors DetourCalculator::detours_along_path (kAlongPath mode) term for
  // term, so rehydrated detours are bitwise identical to freshly priced
  // ones: d = max(0, d' + d'' - d''').
  traffic::validate_flow(*net_, flow);
  const double d2 = from_shop_[flow.destination];  // d''
  std::vector<double> out(flow.path.size(), graph::kUnreachable);
  if (d2 == graph::kUnreachable) return out;
  const std::vector<double> cum = graph::cumulative_lengths(*net_, flow.path);
  for (std::size_t i = 0; i < flow.path.size(); ++i) {
    const double direct = cum.back() - cum[i];  // d''' along the driver's route
    const double d1 = to_shop_[flow.path[i]];   // d'
    if (d1 == graph::kUnreachable) continue;
    out[i] = std::max(0.0, d1 + d2 - direct);
  }
  return out;
}

ScenarioStore::ScenarioStore(std::string directory)
    : directory_(std::move(directory)) {
  std::error_code error;
  std::filesystem::create_directories(directory_, error);
  if (error) {
    throw std::runtime_error("store: cannot create directory '" + directory_ +
                             "': " + error.message());
  }
}

std::string ScenarioStore::segment_path(std::uint64_t key) const {
  return directory_ + "/" + key_filename(key);
}

bool ScenarioStore::put(const ServeScenario& scenario) {
  // Extract the shop's d'/d'' arrays from a persistable engine. Rehydrated
  // scenarios (StoredDetours) re-persist losslessly, e.g. into a new store.
  const auto* calculator =
      dynamic_cast<const traffic::DetourCalculator*>(scenario.detours.get());
  const auto* stored =
      dynamic_cast<const StoredDetours*>(scenario.detours.get());
  if (scenario.detour_engine != kPersistableEngine ||
      (calculator == nullptr && stored == nullptr)) {
    const util::MutexLock lock(mutex_);
    ++stats_.skipped;
    return false;
  }
  std::vector<double> to_shop;
  std::vector<double> from_shop;
  if (stored != nullptr) {
    to_shop = stored->to_shop();
    from_shop = stored->from_shop();
  } else {
    const std::size_t n = scenario.net.num_nodes();
    to_shop.reserve(n);
    from_shop.reserve(n);
    for (graph::NodeId node = 0; node < n; ++node) {
      to_shop.push_back(calculator->distance_to_shop(node));
      from_shop.push_back(calculator->distance_from_shop(node));
    }
  }
  const std::string bytes = serialize_segment(scenario, to_shop, from_shop);

  const util::MutexLock lock(mutex_);
  const std::string path = segment_path(scenario.key);
  std::error_code ignored;
  if (std::filesystem::exists(path, ignored)) return false;
  // Crash safety: a segment becomes visible only via the atomic rename of a
  // fully written, fsynced temp file; a crash mid-write leaves a .tmp the
  // key scan ignores.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);  // NOLINT(*-vararg)
  if (fd < 0) {
    ++stats_.io_errors;
    return false;
  }
  const bool written = write_all(fd, bytes) && ::fsync(fd) == 0;
  (void)::close(fd);
  if (!written || ::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)::unlink(tmp.c_str());
    ++stats_.io_errors;
    return false;
  }
  sync_directory(directory_);
  ++stats_.persisted;
  obs::add_counter("serve.store.persisted");
  obs::record_instant("serve.store.persist", "key", key_filename(scenario.key));
  return true;
}

std::shared_ptr<const ServeScenario> ScenarioStore::load(std::uint64_t key) {
  MappedSegment map;
  try {
    if (!map_segment(segment_path(key), map)) return nullptr;  // absent
    std::shared_ptr<const ServeScenario> scenario = parse_segment(map, key);
    {
      const util::MutexLock lock(mutex_);
      ++stats_.rehydrated;
    }
    obs::add_counter("serve.store.rehydrated");
    obs::record_instant("serve.store.rehydrate", "key", key_filename(key));
    return scenario;
  } catch (const std::exception&) {
    const util::MutexLock lock(mutex_);
    ++stats_.corrupt;
    return nullptr;
  }
}

std::vector<std::uint64_t> ScenarioStore::keys() const {
  std::vector<std::uint64_t> out;
  std::error_code error;
  std::filesystem::directory_iterator it(directory_, error);
  if (error) return out;
  for (const std::filesystem::directory_entry& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.size() != 21 || name.substr(16) != ".rseg") continue;
    std::uint64_t key = 0;
    bool valid = true;
    for (std::size_t i = 0; i < 16; ++i) {
      const char c = name[i];
      key <<= 4U;
      if (c >= '0' && c <= '9') {
        key |= static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        key |= static_cast<std::uint64_t>(c - 'a' + 10);
      } else {
        valid = false;
        break;
      }
    }
    if (valid) out.push_back(key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t ScenarioStore::rehydrate_into(ScenarioCache& cache) {
  std::size_t rehydrated = 0;
  for (const std::uint64_t key : keys()) {
    std::shared_ptr<const ServeScenario> scenario = load(key);
    if (scenario == nullptr) continue;
    cache.insert(std::move(scenario));
    ++rehydrated;
  }
  return rehydrated;
}

ScenarioStore::Stats ScenarioStore::stats() const {
  const util::MutexLock lock(mutex_);
  return stats_;
}

std::size_t ScenarioStore::segment_count() const { return keys().size(); }

}  // namespace rap::serve
