// Small statistics toolkit used by the evaluation harness: streaming
// mean/variance (Welford), summaries with confidence intervals, and
// percentile helpers.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace rap::util {

/// Streaming accumulator for mean and variance (Welford's algorithm).
/// Numerically stable for long experiment runs.
class RunningStats {
 public:
  void add(double value) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  /// Mean of the observed samples; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 with fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean; 0 with fewer than two samples.
  [[nodiscard]] double stderr_mean() const noexcept;
  /// Smallest observed sample; +infinity when empty (the identity of min,
  /// so merge() and comparisons work without a count() guard).
  [[nodiscard]] double min() const noexcept { return min_; }
  /// Largest observed sample; -infinity when empty.
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merges another accumulator (parallel-combine rule).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Point summary of a sample set.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double stderr_mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Half-width of the ~95% normal-approximation confidence interval.
  double ci95_halfwidth = 0.0;
};

/// Summarises a sample set in one pass.
[[nodiscard]] Summary summarize(std::span<const double> samples) noexcept;

/// Linear-interpolated percentile, q in [0, 100]. Throws on empty input or
/// out-of-range q. The input need not be sorted (a sorted copy is made).
[[nodiscard]] double percentile(std::span<const double> samples, double q);

/// Same as percentile() but requires `sorted` to be ascending already and
/// makes no copy — for repeated queries over one sample set (e.g. the
/// telemetry histogram exporter's p50/p95/p99). Unsorted input gives an
/// unspecified (but in-range) value; validation stays on q and emptiness.
[[nodiscard]] double percentile_sorted(std::span<const double> sorted,
                                       double q);

/// Arithmetic mean; throws on empty input.
[[nodiscard]] double mean_of(std::span<const double> samples);

/// Pearson correlation of two equal-length samples; throws on mismatch or
/// fewer than two points; returns 0 when either side has zero variance.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

}  // namespace rap::util
