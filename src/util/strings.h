// String helpers shared by the CLI parser and the report formatter.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rap::util {

/// Splits on a delimiter; adjacent delimiters yield empty fields.
/// split("a,,b", ',') -> {"a", "", "b"}; split("", ',') -> {""}.
[[nodiscard]] std::vector<std::string> split(std::string_view text,
                                             char delimiter);

/// Trims ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// Joins parts with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view separator);

/// Formats a double with a fixed number of decimals (locale-independent).
[[nodiscard]] std::string format_fixed(double value, int decimals);

/// Left-pads (positive width) or right-pads (negative width) with spaces.
[[nodiscard]] std::string pad(std::string_view text, int width);

/// True if `text` starts with `prefix`.
[[nodiscard]] constexpr bool starts_with(std::string_view text,
                                         std::string_view prefix) noexcept {
  return text.substr(0, prefix.size()) == prefix;
}

}  // namespace rap::util
