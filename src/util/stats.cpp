#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rap::util {

void RunningStats::add(double value) noexcept {
  // min_/max_ start at the fold identities (±infinity), so no empty branch.
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

Summary summarize(std::span<const double> samples) noexcept {
  RunningStats acc;
  for (const double s : samples) acc.add(s);
  Summary out;
  out.count = acc.count();
  out.mean = acc.mean();
  out.stddev = acc.stddev();
  out.stderr_mean = acc.stderr_mean();
  if (acc.count() > 0) {  // keep the documented 0-when-empty Summary fields
    out.min = acc.min();
    out.max = acc.max();
  }
  out.ci95_halfwidth = 1.96 * acc.stderr_mean();
  return out;
}

double percentile(std::span<const double> samples, double q) {
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, q);
}

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("percentile: empty input");
  if (q < 0.0 || q > 100.0) {
    throw std::invalid_argument("percentile: q must be in [0, 100]");
  }
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double mean_of(std::span<const double> samples) {
  if (samples.empty()) throw std::invalid_argument("mean_of: empty input");
  RunningStats acc;
  for (const double s : samples) acc.add(s);
  return acc.mean();
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("pearson: size mismatch");
  }
  if (xs.size() < 2) throw std::invalid_argument("pearson: need >= 2 points");
  const double mx = mean_of(xs);
  const double my = mean_of(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace rap::util
