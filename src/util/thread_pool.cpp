#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <memory>
#include <stdexcept>

namespace rap::util {
namespace {

thread_local bool tls_on_worker = false;

std::size_t hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

// RAP_THREADS overrides the hardware default once at startup — how CI runs
// the whole suite under a fixed thread count without touching every test.
std::size_t initial_ambient_threads() noexcept {
  const char* env = std::getenv("RAP_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return 0;
  return static_cast<std::size_t>(parsed);
}

std::atomic<std::size_t>& ambient_threads() noexcept {
  static std::atomic<std::size_t> value{initial_ambient_threads()};
  return value;
}

// PoolCounters accumulators. Relaxed is enough: the values are monotonic
// tallies read by observability snapshots, never used for synchronization.
std::atomic<std::uint64_t> g_pool_regions{0};
std::atomic<std::uint64_t> g_pool_chunks{0};

}  // namespace

std::size_t ParallelConfig::effective() const noexcept {
  return threads != 0 ? threads : hardware_threads();
}

ParallelConfig parallel_config() noexcept {
  return {ambient_threads().load(std::memory_order_relaxed)};
}

void set_parallel_config(ParallelConfig config) noexcept {
  ambient_threads().store(config.threads, std::memory_order_relaxed);
}

// One run_chunks invocation. Helper workers hold a shared_ptr only while
// draining; each releases its reference *before* signalling helper_done, and
// run_chunks retracts unclaimed queue entries and waits for in-flight
// helpers, so by the time it returns (or rethrows) the caller owns the sole
// reference — the job, and any exception captured in it, is destroyed on
// the calling thread. `body` has caller lifetime and is only dereferenced
// for chunks claimed before completion.
struct ThreadPool::Job {
  std::size_t first = 0;
  std::size_t last = 0;
  std::size_t grain = 1;
  std::size_t chunks = 0;
  const std::function<void(const ChunkRange&)>* body = nullptr;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> remaining{0};
  Mutex done_mutex;  // guards error state + helpers, pairs with done_cv
  CondVar done_cv;
  std::exception_ptr error RAP_GUARDED_BY(done_mutex);
  std::size_t error_chunk RAP_GUARDED_BY(done_mutex) =
      std::numeric_limits<std::size_t>::max();
  // Enqueued-but-unfinished helper slots.
  std::size_t helpers RAP_GUARDED_BY(done_mutex) = 0;

  // Claims and runs chunks until none are left. Shared by the caller and
  // every helper worker; the atomic claim is the only scheduling decision,
  // so which thread runs a chunk can vary but the chunk set cannot.
  void drain() {
    for (;;) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= chunks) return;
      try {
        const std::size_t lo = first + index * grain;
        const std::size_t hi = std::min(last, lo + grain);
        (*body)({lo, hi, index});
      } catch (...) {
        const MutexLock lock(done_mutex);
        // Keep the lowest-indexed exception so which error surfaces does
        // not depend on thread timing.
        if (index < error_chunk) {
          error_chunk = index;
          error = std::current_exception();
        }
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const MutexLock lock(done_mutex);
        done_cv.notify_all();
      }
    }
  }

  // Called by a worker after it has dropped its shared_ptr (the caller's
  // wait on helpers == 0 keeps `this` alive until then), and by run_chunks
  // for every queue entry it retracts.
  void release_helpers(std::size_t count) RAP_EXCLUDES(done_mutex) {
    const MutexLock lock(done_mutex);
    helpers -= count;
    if (helpers == 0) done_cv.notify_all();
  }
};

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  tls_on_worker = true;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      const MutexLock lock(mutex_);
      while (!stopping_ && pending_.empty()) work_ready_.wait(mutex_);
      if (pending_.empty()) return;  // stopping_
      job = std::move(pending_.back());
      pending_.pop_back();
    }
    Job* const raw = job.get();
    job->drain();
    // Release the reference before signalling: once the caller unblocks, the
    // worker must not own any part of the job (otherwise the job — and an
    // exception the caller just rethrew — could be destroyed on this thread,
    // racing with the caller's use of it).
    job.reset();
    raw->release_helpers(1);
  }
}

bool ThreadPool::on_worker_thread() noexcept { return tls_on_worker; }

void ThreadPool::run_chunks(std::size_t first, std::size_t last,
                            std::size_t grain, std::size_t max_threads,
                            const std::function<void(const ChunkRange&)>& body) {
  if (last < first) {
    throw std::invalid_argument("ThreadPool::run_chunks: last < first");
  }
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t chunks = chunk_count(first, last, g);
  if (chunks == 0) return;
  g_pool_regions.fetch_add(1, std::memory_order_relaxed);
  g_pool_chunks.fetch_add(chunks, std::memory_order_relaxed);

  const std::size_t executors = std::min(std::max<std::size_t>(max_threads, 1),
                                         chunks);
  if (executors <= 1 || workers_.empty() || on_worker_thread()) {
    // Inline path — same chunk partition, ascending order, zero threading.
    for (std::size_t index = 0; index < chunks; ++index) {
      const std::size_t lo = first + index * g;
      const std::size_t hi = std::min(last, lo + g);
      body({lo, hi, index});
    }
    return;
  }

  auto job = std::make_shared<Job>();
  job->first = first;
  job->last = last;
  job->grain = g;
  job->chunks = chunks;
  job->body = &body;
  job->remaining.store(chunks, std::memory_order_relaxed);

  const std::size_t helpers = std::min(executors - 1, workers_.size());
  {
    // Nothing else can see the job yet, but helpers is guarded and the
    // analysis (correctly) has no notion of "not yet shared".
    const MutexLock lock(job->done_mutex);
    job->helpers = helpers;
  }
  {
    const MutexLock lock(mutex_);
    for (std::size_t i = 0; i < helpers; ++i) {
      pending_.push_back(job);
    }
  }
  if (helpers == 1) {
    work_ready_.notify_one();
  } else {
    work_ready_.notify_all();
  }

  job->drain();  // the caller participates

  // Retract helper slots no worker claimed (all chunks may already be done),
  // so no queue entry keeps the job alive past this call.
  std::size_t retracted = 0;
  {
    const MutexLock lock(mutex_);
    const auto unclaimed = std::remove(pending_.begin(), pending_.end(), job);
    retracted = static_cast<std::size_t>(pending_.end() - unclaimed);
    pending_.erase(unclaimed, pending_.end());
  }
  if (retracted > 0) job->release_helpers(retracted);

  {
    const MutexLock lock(job->done_mutex);
    while (job->remaining.load(std::memory_order_acquire) != 0 ||
           job->helpers != 0) {
      job->done_cv.wait(job->done_mutex);
    }
    if (job->error) std::rethrow_exception(job->error);
  }
}

ThreadPool& ThreadPool::shared() {
  // At least 3 workers even on single-core machines, so `threads=4`
  // differential and TSan tests exercise genuine cross-thread execution
  // everywhere; sleeping workers cost nothing measurable.
  static ThreadPool pool(std::max<std::size_t>(3, hardware_threads() - 1));
  return pool;
}

PoolCounters pool_counters() noexcept {
  return {g_pool_regions.load(std::memory_order_relaxed),
          g_pool_chunks.load(std::memory_order_relaxed)};
}

void parallel_for(std::size_t first, std::size_t last, std::size_t grain,
                  const std::function<void(const ChunkRange&)>& body,
                  std::size_t threads) {
  const std::size_t resolved =
      threads != 0 ? threads : parallel_config().effective();
  ThreadPool::shared().run_chunks(first, last, grain, resolved, body);
}

}  // namespace rap::util
