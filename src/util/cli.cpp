#include "src/util/cli.h"

#include <charconv>
#include <stdexcept>

#include "src/util/strings.h"

namespace rap::util {
namespace {

[[noreturn]] void fail(std::string_view message, std::string_view token) {
  throw std::invalid_argument(std::string(message) + ": '" +
                              std::string(token) + "'");
}

}  // namespace

CliFlags::CliFlags(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  tokens.reserve(argc > 0 ? static_cast<std::size_t>(argc - 1) : 0);
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  parse(tokens);
}

CliFlags::CliFlags(const std::vector<std::string>& tokens) { parse(tokens); }

void CliFlags::parse(const std::vector<std::string>& tokens) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (!token.starts_with("--")) fail("CliFlags: expected --flag", token);
    std::string body = token.substr(2);
    if (body.empty()) fail("CliFlags: empty flag", token);

    if (const auto eq = body.find('='); eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    if (body.starts_with("no-")) {
      values_[body.substr(3)] = "false";
      continue;
    }
    // `--name value` when the next token is not a flag; bare `--name`
    // otherwise (boolean true).
    if (i + 1 < tokens.size() && !tokens[i + 1].starts_with("--")) {
      values_[body] = tokens[++i];
    } else {
      values_[body] = "true";
    }
  }
}

std::optional<std::string> CliFlags::raw(std::string_view name) const {
  queried_[std::string(name)] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

bool CliFlags::has(std::string_view name) const { return raw(name).has_value(); }

std::string CliFlags::get_string(std::string_view name,
                                 std::string_view fallback) const {
  const auto value = raw(name);
  return value ? *value : std::string(fallback);
}

std::int64_t CliFlags::get_int(std::string_view name,
                               std::int64_t fallback) const {
  const auto value = raw(name);
  if (!value) return fallback;
  std::int64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value->data(), value->data() + value->size(), out);
  if (ec != std::errc{} || ptr != value->data() + value->size()) {
    fail("CliFlags: not an integer", *value);
  }
  return out;
}

double CliFlags::get_double(std::string_view name, double fallback) const {
  const auto value = raw(name);
  if (!value) return fallback;
  try {
    std::size_t used = 0;
    const double out = std::stod(*value, &used);
    if (used != value->size()) fail("CliFlags: not a number", *value);
    return out;
  } catch (const std::invalid_argument&) {
    fail("CliFlags: not a number", *value);
  } catch (const std::out_of_range&) {
    fail("CliFlags: number out of range", *value);
  }
}

bool CliFlags::get_bool(std::string_view name, bool fallback) const {
  const auto value = raw(name);
  if (!value) return fallback;
  if (*value == "true" || *value == "1" || *value == "yes") return true;
  if (*value == "false" || *value == "0" || *value == "no") return false;
  fail("CliFlags: not a boolean", *value);
}

std::vector<std::int64_t> CliFlags::get_int_list(
    std::string_view name, const std::vector<std::int64_t>& fallback) const {
  const auto value = raw(name);
  if (!value) return fallback;
  std::vector<std::int64_t> out;
  for (const auto& part : split(*value, ',')) {
    std::int64_t item = 0;
    const auto [ptr, ec] =
        std::from_chars(part.data(), part.data() + part.size(), item);
    if (ec != std::errc{} || ptr != part.data() + part.size()) {
      fail("CliFlags: not an integer list", *value);
    }
    out.push_back(item);
  }
  return out;
}

std::vector<std::string> CliFlags::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : values_) {
    if (!queried_.contains(name)) out.push_back(name);
  }
  return out;
}

}  // namespace rap::util
