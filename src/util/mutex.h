// Annotated mutex primitives: std::mutex and friends, carrying Clang Thread
// Safety Analysis capability attributes (src/util/thread_annotations.h).
//
// Every concurrent subsystem uses these instead of the raw std:: types
// (enforced by rap_lint RAP008), so `GUARDED_BY(mutex_)` on a data member is
// a compile-time contract under the `thread-safety` preset rather than a
// comment. The API is deliberately minimal — exclusive lock, scoped guard,
// condition variable — because that is all the repo's locking discipline
// uses: no shared/reader locks, no timed waits, no recursive mutexes.
//
// DESIGN.md §15 documents the conventions and the analysis' blind spots.
#pragma once

#include <condition_variable>
#include <mutex>

#include "src/util/thread_annotations.h"

namespace rap::util {

/// An exclusive mutex (std::mutex) that is a TSA capability. Prefer
/// MutexLock over calling lock()/unlock() directly.
class RAP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RAP_ACQUIRE() { mutex_.lock(); }
  void unlock() RAP_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() RAP_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

 private:
  std::mutex mutex_;
};

/// RAII scoped lock over Mutex (the annotated counterpart of
/// std::lock_guard). Not movable: ownership-transferring guards are exactly
/// what the analysis cannot follow (see serve::ClientLock for the one
/// sanctioned exception).
class RAP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) RAP_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() RAP_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable that waits on a util::Mutex. wait() REQUIRES the mutex
/// held — the analysis then accepts guarded reads in the caller's wait loop:
///
///   const MutexLock lock(mutex_);
///   while (!condition_over_guarded_state()) cv_.wait(mutex_);
///
/// (Predicate-lambda overloads are deliberately absent: a lambda body is
/// analyzed as its own function, which does not hold the capability, so
/// guarded reads inside it would need suppressions. The explicit loop keeps
/// the wait analyzable.)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex` and blocks; `mutex` is re-acquired before
  /// returning, so the capability is held on entry and on exit.
  void wait(Mutex& mutex) RAP_REQUIRES(mutex) { cv_.wait(mutex); }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  // condition_variable_any works with any BasicLockable, so it waits on the
  // annotated Mutex directly — no unannotated unique_lock escape needed.
  std::condition_variable_any cv_;
};

}  // namespace rap::util
