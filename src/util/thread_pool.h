// Deterministic parallel execution engine.
//
// A fixed-size ThreadPool drives `parallel_for` / `parallel_reduce` over
// *static* chunk partitions: chunk boundaries depend only on the index range
// and the grain, never on the worker count or on runtime timing. Reductions
// combine per-chunk results in ascending chunk order on the calling thread.
// Together those two rules are the determinism contract every parallel call
// site in librap relies on:
//
//   the result of a parallel region is bit-identical for any thread count,
//   including 1, because the same chunks are evaluated and their results are
//   combined in the same order.
//
// Argmax-style reductions additionally break score ties towards the lowest
// node id (see core/parallel_scan.h), which reproduces the serial ascending
// scan exactly. Telemetry-recording chunk bodies follow the runner's
// pattern: one private obs::Telemetry per chunk, merged in chunk order after
// the join (src/obs/telemetry.h documents why workers never share a sink).
//
// Thread count selection: call sites pass an explicit count or 0 to inherit
// the ambient ParallelConfig (default: RAP_THREADS env var when set, else
// std::thread::hardware_concurrency). Nested parallel regions — a chunk body
// that itself calls parallel_for — run inline on the worker, so the engine
// never oversubscribes and never deadlocks on its own pool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace rap::util {

/// How many threads parallel regions may use. `threads == 0` defers to the
/// machine (RAP_THREADS env var, else hardware_concurrency). Thread count
/// never affects results — only wall-clock — so this is purely a resource
/// knob.
struct ParallelConfig {
  std::size_t threads = 0;

  /// The resolved thread count (>= 1).
  [[nodiscard]] std::size_t effective() const noexcept;
};

/// The process-wide ambient config used when call sites pass `threads = 0`.
[[nodiscard]] ParallelConfig parallel_config() noexcept;
void set_parallel_config(ParallelConfig config) noexcept;

/// One static chunk of a parallel loop: indices [first, last) plus the
/// chunk's position in the partition (for order-deterministic reductions).
struct ChunkRange {
  std::size_t first = 0;
  std::size_t last = 0;
  std::size_t index = 0;
};

/// Number of chunks a range splits into; depends only on (first, last,
/// grain), never on the thread count. A zero grain counts as 1.
[[nodiscard]] constexpr std::size_t chunk_count(std::size_t first,
                                                std::size_t last,
                                                std::size_t grain) noexcept {
  if (last <= first) return 0;
  const std::size_t g = grain == 0 ? 1 : grain;
  return (last - first + g - 1) / g;
}

/// Fixed-size worker pool. Workers sleep on a condition variable between
/// jobs; the pool is cheap to keep around for the process lifetime (see
/// shared()).
class ThreadPool {
 public:
  /// Spawns `workers` threads (0 is allowed: every run_chunks call then
  /// executes inline on the caller).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  /// Runs `body(chunk)` for every static chunk of [first, last) with the
  /// given grain, using at most `max_threads` concurrent executors (the
  /// caller participates; at most max_threads - 1 pool workers join).
  /// Blocks until every chunk has finished.
  ///
  /// Guarantees:
  ///  * chunk boundaries and indices are those of chunk_count() — identical
  ///    for any max_threads;
  ///  * with max_threads <= 1, from inside a pool worker (nested
  ///    parallelism), or on a pool with no workers, all chunks run inline on
  ///    the calling thread in ascending order;
  ///  * if chunk bodies throw, every chunk still runs and the exception from
  ///    the lowest-indexed throwing chunk is rethrown (deterministic), except
  ///    inline execution which stops at the first throw like a plain loop.
  void run_chunks(std::size_t first, std::size_t last, std::size_t grain,
                  std::size_t max_threads,
                  const std::function<void(const ChunkRange&)>& body)
      RAP_EXCLUDES(mutex_);

  /// The process-wide pool used by parallel_for / parallel_reduce. Sized
  /// max(3, hardware_concurrency - 1) so differential tests exercise real
  /// cross-thread execution even on small machines; idle workers just sleep.
  [[nodiscard]] static ThreadPool& shared();

  /// True on a thread currently executing pool work. Nested parallel calls
  /// check this and run inline.
  [[nodiscard]] static bool on_worker_thread() noexcept;

 private:
  struct Job;

  void worker_loop() RAP_EXCLUDES(mutex_);

  // All mutable pool state behind one mutex; workers block on work_ready_.
  // Queue entries reference jobs directly so run_chunks can retract its
  // unclaimed helper slots on completion: when it returns, no worker holds a
  // reference to the job, so the job — including any captured exception — is
  // destroyed on the calling thread.
  mutable Mutex mutex_;
  CondVar work_ready_;
  std::vector<std::shared_ptr<Job>> pending_ RAP_GUARDED_BY(mutex_);
  bool stopping_ RAP_GUARDED_BY(mutex_) = false;
  // Written only by the constructor, joined only by the destructor; never
  // touched while workers run, so it needs no guard.
  std::vector<std::thread> workers_;
};

/// Cumulative accounting of parallel-region execution since process start,
/// for observability snapshots (the serve `stats` verb reports the delta
/// across a server's lifetime). Deterministic for a fixed workload: chunk
/// partitions are static, so neither value depends on the thread count or
/// on timing — only on which parallel regions ran.
struct PoolCounters {
  std::uint64_t regions = 0;  ///< run_chunks calls that executed >= 1 chunk
  std::uint64_t chunks = 0;   ///< total chunks executed across all regions
};

/// Process-wide counter snapshot (covers inline and pooled execution).
[[nodiscard]] PoolCounters pool_counters() noexcept;

/// Chunked loop on the shared pool. `threads == 0` resolves through the
/// ambient ParallelConfig.
void parallel_for(std::size_t first, std::size_t last, std::size_t grain,
                  const std::function<void(const ChunkRange&)>& body,
                  std::size_t threads = 0);

/// Deterministic map/reduce: `map_chunk(chunk) -> T` runs per static chunk
/// (possibly concurrently); `combine(acc, next) -> T` folds the per-chunk
/// results in ascending chunk order on the calling thread, so the reduction
/// tree — and therefore every floating-point rounding and tie-break — is
/// independent of the thread count. Returns T{} for an empty range.
template <typename T, typename MapFn, typename CombineFn>
[[nodiscard]] T parallel_reduce(std::size_t first, std::size_t last,
                                std::size_t grain, MapFn&& map_chunk,
                                CombineFn&& combine, std::size_t threads = 0) {
  const std::size_t chunks = chunk_count(first, last, grain);
  if (chunks == 0) return T{};
  std::vector<T> partial(chunks);
  parallel_for(
      first, last, grain,
      [&](const ChunkRange& chunk) { partial[chunk.index] = map_chunk(chunk); },
      threads);
  T acc = std::move(partial[0]);
  for (std::size_t i = 1; i < chunks; ++i) {
    acc = combine(std::move(acc), std::move(partial[i]));
  }
  return acc;
}

}  // namespace rap::util
