// Clang Thread Safety Analysis attribute macros.
//
// These wrap the `capability`-family attributes so locking contracts —
// which member a mutex guards, which helper requires a lock held, which
// function must NOT be called with a lock held — are stated in the type
// system and machine-checked at compile time under Clang with
// `-Wthread-safety` (the `RAP_THREAD_SAFETY` CMake option / `thread-safety`
// preset turn violations into errors). Off Clang every macro compiles to
// nothing, so GCC builds are unaffected.
//
// The annotated mutex types live in src/util/mutex.h; DESIGN.md §15
// documents the conventions, including when RAP_NO_THREAD_SAFETY_ANALYSIS
// is acceptable (structurally blind spots only, always with a one-line
// justification comment — rap_lint rejects the macro without one).
#pragma once

#if defined(__clang__)
#define RAP_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define RAP_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

/// Marks a class as a capability (a lockable resource). The string names the
/// capability kind in diagnostics — "mutex" for everything in this repo.
#define RAP_CAPABILITY(x) RAP_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases a
/// capability (util::MutexLock).
#define RAP_SCOPED_CAPABILITY RAP_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only while holding the named mutex.
#define RAP_GUARDED_BY(x) RAP_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the named mutex.
#define RAP_PT_GUARDED_BY(x) RAP_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function acquires the capability (held on return). With no argument on a
/// member function of a capability class, the capability is `this`.
#define RAP_ACQUIRE(...) \
  RAP_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releases the capability (must be held on entry).
#define RAP_RELEASE(...) \
  RAP_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define RAP_TRY_ACQUIRE(...) \
  RAP_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the capability for the duration of the call (held on
/// entry AND on exit — the convention for `*_locked` private helpers and for
/// CondVar::wait).
#define RAP_REQUIRES(...) \
  RAP_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it itself, or
/// calls something that does — documents "never held across" contracts and
/// catches self-deadlock at compile time).
#define RAP_EXCLUDES(...) \
  RAP_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held; informs the analysis
/// without acquiring anything.
#define RAP_ASSERT_CAPABILITY(x) \
  RAP_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Function returns a reference to the named capability.
#define RAP_RETURN_CAPABILITY(x) \
  RAP_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: the function's body is not analyzed. Reserved for code the
/// analysis is structurally blind to (ownership-transferring guards,
/// documented quiescent readers); every use needs a one-line justification
/// comment on the same line or the line above — enforced by rap_lint.
#define RAP_NO_THREAD_SAFETY_ANALYSIS \
  RAP_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
