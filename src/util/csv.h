// Minimal RFC-4180-style CSV writing and parsing, used by the benchmark
// harnesses to persist figure series next to the printed tables.
#pragma once

#include <filesystem>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rap::util {

/// Quotes a single CSV field if it contains a comma, quote, or newline.
[[nodiscard]] std::string csv_escape(std::string_view field);

/// Streams rows of string fields as CSV. The writer does not own the stream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes one row; fields are escaped as needed.
  void write_row(std::span<const std::string> fields);
  void write_row(std::initializer_list<std::string_view> fields);

  /// Convenience: header then repeated numeric rows with a leading label.
  void write_numeric_row(std::string_view label, std::span<const double> values,
                         int precision = 6);

 private:
  std::ostream* out_;
};

/// Parses CSV text into rows of fields. Handles quoted fields, embedded
/// commas/quotes/newlines, and both \n and \r\n terminators. Throws
/// std::invalid_argument on an unterminated quoted field.
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(
    std::string_view text);

/// One parsed row plus the 1-based line it started on — quoted fields may
/// span lines, so consumers that report errors positionally need the row's
/// own start, not a running count of '\n' seen.
struct CsvRecord {
  std::size_t line = 0;  ///< 1-based line number of the row's first character
  std::vector<std::string> fields;
};

/// parse_csv, but every row carries its 1-based source line so format
/// errors can name the offending line (see graph/io.cpp).
[[nodiscard]] std::vector<CsvRecord> parse_csv_records(std::string_view text);

/// Writes rows to a file, creating parent directories. Throws on I/O error.
void write_csv_file(const std::filesystem::path& path,
                    std::span<const std::vector<std::string>> rows);

}  // namespace rap::util
