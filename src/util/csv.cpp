#include "src/util/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rap::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(std::span<const std::string> fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) *out_ << ',';
    *out_ << csv_escape(fields[i]);
  }
  *out_ << '\n';
}

void CsvWriter::write_row(std::initializer_list<std::string_view> fields) {
  std::size_t i = 0;
  for (const auto field : fields) {
    if (i++ > 0) *out_ << ',';
    *out_ << csv_escape(field);
  }
  *out_ << '\n';
}

void CsvWriter::write_numeric_row(std::string_view label,
                                  std::span<const double> values,
                                  int precision) {
  std::ostringstream row;
  row.precision(precision);
  row << csv_escape(label);
  for (const double v : values) row << ',' << v;
  *out_ << row.str() << '\n';
}

std::vector<CsvRecord> parse_csv_records(std::string_view text) {
  std::vector<CsvRecord> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  std::size_t line = 1;       // current source line (1-based)
  std::size_t row_line = 1;   // line the in-progress row started on

  const auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  const auto end_row = [&] {
    end_field();
    rows.push_back({row_line, std::move(row)});
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // a comma implies a following (maybe empty) field
        break;
      case '\r':
        break;  // handled by the following \n (or ignored at EOF)
      case '\n':
        end_row();
        ++line;
        row_line = line;
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  if (in_quotes) {
    throw std::invalid_argument("parse_csv: unterminated quote in row starting on line " +
                                std::to_string(row_line));
  }
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

std::vector<std::vector<std::string>> parse_csv(std::string_view text) {
  std::vector<CsvRecord> records = parse_csv_records(text);
  std::vector<std::vector<std::string>> rows;
  rows.reserve(records.size());
  for (CsvRecord& record : records) rows.push_back(std::move(record.fields));
  return rows;
}

void write_csv_file(const std::filesystem::path& path,
                    std::span<const std::vector<std::string>> rows) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_csv_file: cannot open " + path.string());
  }
  CsvWriter writer(out);
  for (const auto& row : rows) writer.write_row(row);
  if (!out) {
    throw std::runtime_error("write_csv_file: write failed for " + path.string());
  }
}

}  // namespace rap::util
