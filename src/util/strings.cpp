#include "src/util/strings.h"

#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace rap::util {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) noexcept {
  const auto is_space = [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string format_fixed(double value, int decimals) {
  if (decimals < 0 || decimals > 17) {
    throw std::invalid_argument("format_fixed: decimals out of range");
  }
  char buffer[64];
  const int written =
      std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  if (written < 0 || written >= static_cast<int>(sizeof(buffer))) {
    throw std::runtime_error("format_fixed: formatting failed");
  }
  return std::string(buffer, static_cast<std::size_t>(written));
}

std::string pad(std::string_view text, int width) {
  const std::size_t target =
      static_cast<std::size_t>(width < 0 ? -width : width);
  if (text.size() >= target) return std::string(text);
  const std::string spaces(target - text.size(), ' ');
  return width < 0 ? std::string(text) + spaces : spaces + std::string(text);
}

}  // namespace rap::util
