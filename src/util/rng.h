// Deterministic random number generation for reproducible experiments.
//
// All randomness in librap flows through rap::util::Rng, seeded explicitly.
// The engine is xoshiro256++ (Blackman & Vigna), seeded via splitmix64, so a
// single 64-bit seed yields a full 256-bit state and results are identical
// across platforms and standard-library implementations (unlike
// std::mt19937 + std::uniform_int_distribution, whose distributions are not
// specified bit-exactly).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace rap::util {

/// Expands a 64-bit seed into a stream of well-mixed 64-bit values.
/// Used for seeding and for deriving independent child seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ engine with convenience sampling methods.
///
/// Satisfies std::uniform_random_bit_generator so it can also be handed to
/// standard algorithms, though the member samplers below are preferred for
/// cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs from a single seed; any seed (including 0) is valid.
  explicit Rng(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Raw 64 random bits.
  std::uint64_t operator()() noexcept { return next_u64(); }
  std::uint64_t next_u64() noexcept;

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double next_double() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double next_double(double lo, double hi);

  /// Standard normal via Marsaglia polar method.
  double next_gaussian() noexcept;

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double next_gaussian(double mean, double stddev);

  /// Bernoulli trial with success probability p in [0, 1].
  bool next_bool(double p);

  /// Exponential with the given rate (> 0).
  double next_exponential(double rate);

  /// Poisson-distributed count with the given mean (>= 0).
  /// Uses Knuth's method for small means and a normal approximation above 64.
  std::uint64_t next_poisson(double mean);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight; negative weights throw.
  std::size_t next_weighted(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[next_below(i)]);
    }
  }

  /// Samples `count` distinct indices from [0, population) (order arbitrary
  /// but deterministic). Requires count <= population.
  std::vector<std::size_t> sample_without_replacement(std::size_t population,
                                                      std::size_t count);

  /// Derives an independent child RNG; children with distinct stream ids are
  /// statistically independent of each other and of the parent.
  [[nodiscard]] Rng fork(std::uint64_t stream) const noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace rap::util
