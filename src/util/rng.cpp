#include "src/util/rng.h"

#include <bit>
#include <cmath>

namespace rap::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return std::rotl(x, k);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : state_) word = sm.next();
  // xoshiro256++ requires a nonzero state; splitmix64 makes an all-zero
  // expansion astronomically unlikely, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound must be > 0");
  // Lemire-style rejection sampling: unbiased for every bound.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::next_int: lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  if (span == ~std::uint64_t{0}) return static_cast<std::int64_t>(next_u64());
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   next_below(span + 1));
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("Rng::next_double: lo > hi");
  return lo + (hi - lo) * next_double();
}

double Rng::next_gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::next_gaussian(double mean, double stddev) {
  if (stddev < 0.0) {
    throw std::invalid_argument("Rng::next_gaussian: stddev must be >= 0");
  }
  return mean + stddev * next_gaussian();
}

bool Rng::next_bool(double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("Rng::next_bool: p must be in [0, 1]");
  }
  return next_double() < p;
}

double Rng::next_exponential(double rate) {
  if (rate <= 0.0) {
    throw std::invalid_argument("Rng::next_exponential: rate must be > 0");
  }
  // 1 - next_double() is in (0, 1], so the log is finite.
  return -std::log(1.0 - next_double()) / rate;
}

std::uint64_t Rng::next_poisson(double mean) {
  if (mean < 0.0) {
    throw std::invalid_argument("Rng::next_poisson: mean must be >= 0");
  }
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction; adequate for
    // workload-volume synthesis at these magnitudes.
    const double sample = next_gaussian(mean, std::sqrt(mean));
    return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
  }
  const double limit = std::exp(-mean);
  std::uint64_t count = 0;
  double product = next_double();
  while (product > limit) {
    ++count;
    product *= next_double();
  }
  return count;
}

std::size_t Rng::next_weighted(std::span<const double> weights) {
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument("Rng::next_weighted: weights must be finite and >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("Rng::next_weighted: total weight must be > 0");
  }
  double target = next_double() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t population,
                                                         std::size_t count) {
  if (count > population) {
    throw std::invalid_argument(
        "Rng::sample_without_replacement: count exceeds population");
  }
  // Partial Fisher-Yates over an index vector; O(population) setup which is
  // fine at the problem sizes used here (intersections per city <= ~10^4).
  std::vector<std::size_t> indices(population);
  for (std::size_t i = 0; i < population; ++i) indices[i] = i;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + next_below(population - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(count);
  return indices;
}

Rng Rng::fork(std::uint64_t stream) const noexcept {
  // Mix the current state with the stream id through splitmix64 so forks are
  // independent even for adjacent stream ids.
  SplitMix64 sm(state_[0] ^ rotl(state_[2], 31) ^ (stream * 0x9e3779b97f4a7c15ULL));
  return Rng(sm.next());
}

}  // namespace rap::util
