// Tiny command-line flag parser for the bench/example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name` /
// `--no-name`. Unknown flags throw, so typos fail fast instead of silently
// running the wrong experiment.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rap::util {

class CliFlags {
 public:
  /// Parses argv (argv[0] is skipped). Throws std::invalid_argument on
  /// malformed input such as a non-flag token.
  CliFlags(int argc, const char* const* argv);

  /// Builds directly from tokens (for tests).
  explicit CliFlags(const std::vector<std::string>& tokens);

  [[nodiscard]] bool has(std::string_view name) const;

  [[nodiscard]] std::string get_string(std::string_view name,
                                       std::string_view fallback) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view name, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view name, bool fallback) const;

  /// Comma-separated list of integers, e.g. --ks=1,2,5,10.
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      std::string_view name, const std::vector<std::int64_t>& fallback) const;

  /// Names that were provided but never queried; lets binaries reject typos.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  void parse(const std::vector<std::string>& tokens);
  [[nodiscard]] std::optional<std::string> raw(std::string_view name) const;

  std::map<std::string, std::string, std::less<>> values_;
  mutable std::map<std::string, bool, std::less<>> queried_;
};

}  // namespace rap::util
