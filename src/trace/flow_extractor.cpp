#include "src/trace/flow_extractor.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace rap::trace {

std::vector<traffic::TrafficFlow> extract_flows(
    const MapMatcher& matcher, std::span<const TraceRecord> records,
    const ExtractionOptions& options) {
  if (!(options.passengers_per_vehicle > 0.0)) {
    throw std::invalid_argument(
        "extract_flows: passengers_per_vehicle must be > 0");
  }
  if (options.alpha < 0.0 || options.alpha > 1.0) {
    throw std::invalid_argument("extract_flows: alpha must be in [0, 1]");
  }

  const std::vector<RunView> runs = split_runs(records);  // validates sorting

  // journey -> (walk -> multiplicity). std::map keeps journey order stable
  // and walks comparable without hashing.
  std::map<std::uint32_t, std::map<std::vector<graph::NodeId>, std::size_t>>
      walks_by_journey;
  std::map<std::uint32_t, std::size_t> matched_runs;
  for (const RunView& run : runs) {
    std::vector<graph::NodeId> walk = matcher.match_run(run.records);
    if (walk.size() < 2) continue;  // unmatched or trivial run
    ++walks_by_journey[run.journey_id][std::move(walk)];
    ++matched_runs[run.journey_id];
  }

  std::vector<traffic::TrafficFlow> flows;
  flows.reserve(walks_by_journey.size());
  for (const auto& [journey, walks] : walks_by_journey) {
    const std::size_t run_count = matched_runs[journey];
    if (run_count < options.min_runs) continue;
    // Representative path: the most frequent walk (ties: the first in
    // lexicographic walk order, deterministic).
    const auto representative = std::max_element(
        walks.begin(), walks.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    traffic::TrafficFlow flow;
    flow.path = representative->first;
    flow.origin = flow.path.front();
    flow.destination = flow.path.back();
    flow.daily_vehicles = static_cast<double>(run_count);
    flow.passengers_per_vehicle = options.passengers_per_vehicle;
    flow.alpha = options.alpha;
    traffic::validate_flow(matcher.network(), flow);
    flows.push_back(std::move(flow));
  }
  return flows;
}

}  // namespace rap::trace
