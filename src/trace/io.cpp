#include "src/trace/io.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/util/csv.h"
#include "src/util/strings.h"

namespace rap::trace {
namespace {

constexpr const char* kRecordHeader[] = {"vehicle_id", "journey_id", "run_id",
                                         "timestamp", "x", "y"};
constexpr const char* kFlowHeader[] = {
    "origin", "destination", "daily_vehicles", "passengers_per_vehicle",
    "alpha",  "path"};

// Positional error context: failures name the source (file name or
// "<string>") and the 1-based line of the row being parsed.
struct ParsePosition {
  std::string_view source;
  std::size_t line = 0;
};

[[noreturn]] void fail(const ParsePosition& at, const std::string& message) {
  throw std::invalid_argument(std::string(at.source) + ":" +
                              std::to_string(at.line) + ": " + message);
}

template <std::size_t N>
void check_header(const ParsePosition& at, const std::vector<std::string>& row,
                  const char* const (&expected)[N]) {
  if (row.size() != N) fail(at, "bad header width");
  for (std::size_t i = 0; i < N; ++i) {
    if (row[i] != expected[i]) {
      fail(at, "bad header column '" + row[i] + "' (expected '" + expected[i] +
                   "')");
    }
  }
}

std::uint32_t parse_u32(const ParsePosition& at, const std::string& text) {
  std::uint32_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    fail(at, "not an unsigned integer: '" + text + "'");
  }
  return out;
}

double parse_double(const ParsePosition& at, const std::string& text) {
  try {
    std::size_t used = 0;
    const double out = std::stod(text, &used);
    if (used != text.size()) fail(at, "not a number: '" + text + "'");
    return out;
  } catch (const std::logic_error&) {
    fail(at, "not a number: '" + text + "'");
  }
}

std::vector<util::CsvRecord> parse_records_or_rethrow(
    std::string_view text, std::string_view source_name) {
  try {
    return util::parse_csv_records(text);
  } catch (const std::invalid_argument& error) {
    throw std::invalid_argument(std::string(source_name) + ": " + error.what());
  }
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("trace io: cannot open " + path.string());
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::filesystem::path& path, const std::string& text) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("trace io: cannot open " + path.string());
  }
  out << text;
  if (!out) {
    throw std::runtime_error("trace io: write failed for " + path.string());
  }
}

}  // namespace

std::string records_to_csv(std::span<const TraceRecord> records) {
  std::ostringstream out;
  util::CsvWriter writer(out);
  writer.write_row({"vehicle_id", "journey_id", "run_id", "timestamp", "x", "y"});
  for (const TraceRecord& r : records) {
    writer.write_row({std::to_string(r.vehicle_id), std::to_string(r.journey_id),
                      std::to_string(r.run_id),
                      util::format_fixed(r.timestamp, 3),
                      util::format_fixed(r.position.x, 3),
                      util::format_fixed(r.position.y, 3)});
  }
  return out.str();
}

std::vector<TraceRecord> records_from_csv(std::string_view text,
                                          std::string_view source_name) {
  const auto rows = parse_records_or_rethrow(text, source_name);
  if (rows.empty()) fail({source_name, 1}, "missing header");
  check_header({source_name, rows[0].line}, rows[0].fields, kRecordHeader);
  std::vector<TraceRecord> records;
  records.reserve(rows.size() - 1);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i].fields;
    const ParsePosition at{source_name, rows[i].line};
    if (row.size() != 6) fail(at, "ragged row");
    TraceRecord r;
    r.vehicle_id = parse_u32(at, row[0]);
    r.journey_id = parse_u32(at, row[1]);
    r.run_id = parse_u32(at, row[2]);
    r.timestamp = parse_double(at, row[3]);
    r.position = {parse_double(at, row[4]), parse_double(at, row[5])};
    records.push_back(r);
  }
  return records;
}

void write_records_csv(const std::filesystem::path& path,
                       std::span<const TraceRecord> records) {
  write_file(path, records_to_csv(records));
}

std::vector<TraceRecord> read_records_csv(const std::filesystem::path& path) {
  return records_from_csv(read_file(path), path.string());
}

std::string flows_to_csv(std::span<const traffic::TrafficFlow> flows) {
  std::ostringstream out;
  util::CsvWriter writer(out);
  writer.write_row({"origin", "destination", "daily_vehicles",
                    "passengers_per_vehicle", "alpha", "path"});
  for (const traffic::TrafficFlow& flow : flows) {
    std::vector<std::string> nodes;
    nodes.reserve(flow.path.size());
    for (const graph::NodeId v : flow.path) nodes.push_back(std::to_string(v));
    writer.write_row({std::to_string(flow.origin),
                      std::to_string(flow.destination),
                      util::format_fixed(flow.daily_vehicles, 6),
                      util::format_fixed(flow.passengers_per_vehicle, 6),
                      util::format_fixed(flow.alpha, 9),
                      util::join(nodes, "|")});
  }
  return out.str();
}

std::vector<traffic::TrafficFlow> flows_from_csv(const graph::RoadNetwork& net,
                                                 std::string_view text,
                                                 std::string_view source_name) {
  const auto rows = parse_records_or_rethrow(text, source_name);
  if (rows.empty()) fail({source_name, 1}, "missing header");
  check_header({source_name, rows[0].line}, rows[0].fields, kFlowHeader);
  std::vector<traffic::TrafficFlow> flows;
  flows.reserve(rows.size() - 1);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i].fields;
    const ParsePosition at{source_name, rows[i].line};
    if (row.size() != 6) fail(at, "ragged row");
    traffic::TrafficFlow flow;
    flow.origin = parse_u32(at, row[0]);
    flow.destination = parse_u32(at, row[1]);
    flow.daily_vehicles = parse_double(at, row[2]);
    flow.passengers_per_vehicle = parse_double(at, row[3]);
    flow.alpha = parse_double(at, row[4]);
    for (const std::string& node : util::split(row[5], '|')) {
      flow.path.push_back(parse_u32(at, node));
    }
    try {
      traffic::validate_flow(net, flow);
    } catch (const std::invalid_argument& error) {
      // validate_flow knows nothing about files; re-anchor its message to
      // the offending row.
      fail(at, error.what());
    }
    flows.push_back(std::move(flow));
  }
  return flows;
}

void write_flows_csv(const std::filesystem::path& path,
                     std::span<const traffic::TrafficFlow> flows) {
  write_file(path, flows_to_csv(flows));
}

std::vector<traffic::TrafficFlow> read_flows_csv(
    const graph::RoadNetwork& net, const std::filesystem::path& path) {
  return flows_from_csv(net, read_file(path), path.string());
}

}  // namespace rap::trace
