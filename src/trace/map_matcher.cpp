#include "src/trace/map_matcher.h"

#include <stdexcept>

#include "src/graph/dijkstra.h"

namespace rap::trace {
namespace {

constexpr double kDefaultCell = 500.0;

double pick_cell_size(const graph::RoadNetwork& net, double snap_radius) {
  // A cell around the snap radius keeps ring searches short; fall back to a
  // constant for degenerate bounds.
  if (net.num_nodes() == 0) return kDefaultCell;
  return snap_radius > 0.0 ? snap_radius : kDefaultCell;
}

}  // namespace

MapMatcher::MapMatcher(const graph::RoadNetwork& net, double snap_radius)
    : net_(&net),
      snap_radius_(snap_radius),
      index_(net.positions(), pick_cell_size(net, snap_radius)) {
  if (!(snap_radius > 0.0)) {
    throw std::invalid_argument("MapMatcher: snap_radius must be > 0");
  }
}

std::optional<graph::NodeId> MapMatcher::snap(const geo::Point& p) const {
  const auto idx = index_.nearest_within(p, snap_radius_);
  if (!idx) return std::nullopt;
  return static_cast<graph::NodeId>(*idx);
}

std::vector<graph::NodeId> MapMatcher::match_run(
    std::span<const TraceRecord> run) const {
  // Snap, collapse consecutive duplicates, and cancel immediate ping-pongs
  // (A B A -> A): GPS noise near a snap boundary otherwise manufactures
  // back-and-forth segments that inflate the walk far beyond the real route.
  std::vector<graph::NodeId> snapped;
  snapped.reserve(run.size());
  for (const TraceRecord& record : run) {
    const auto node = snap(record.position);
    if (!node) continue;
    if (!snapped.empty() && snapped.back() == *node) continue;
    if (snapped.size() >= 2 && snapped[snapped.size() - 2] == *node) {
      snapped.pop_back();
      continue;
    }
    snapped.push_back(*node);
  }
  if (snapped.empty()) return {};

  // Stitch into a walk: insert shortest paths where no direct street exists.
  std::vector<graph::NodeId> walk{snapped.front()};
  for (std::size_t i = 1; i < snapped.size(); ++i) {
    const graph::NodeId prev = walk.back();
    const graph::NodeId next = snapped[i];
    if (prev == next) continue;  // can happen after a stitched segment
    bool direct = false;
    for (const graph::EdgeId id : net_->out_edges(prev)) {
      if (net_->edge(id).to == next) {
        direct = true;
        break;
      }
    }
    if (direct) {
      walk.push_back(next);
      continue;
    }
    const auto bridge = graph::shortest_path(*net_, prev, next);
    if (!bridge) return {};  // disconnected snap: give up on this run
    walk.insert(walk.end(), bridge->begin() + 1, bridge->end());
  }
  return walk;
}

}  // namespace rap::trace
