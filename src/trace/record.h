// GPS trace records, modelled on the two datasets the paper evaluates with:
//   Dublin bus trace  — bus id, longitude/latitude, vehicle-journey id
//                       (a journey pattern == one traffic flow);
//   Seattle bus trace — bus id, x/y coordinates, route id
//                       (a route == one traffic flow).
// We use planar coordinates in feet throughout and add a per-trip run id so
// individual vehicle trips can be reassembled without timestamp heuristics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/geo/point.h"

namespace rap::trace {

struct TraceRecord {
  std::uint32_t vehicle_id = 0;  ///< bus id
  std::uint32_t journey_id = 0;  ///< journey pattern / route id (flow key)
  std::uint32_t run_id = 0;      ///< one physical trip of one vehicle
  double timestamp = 0.0;        ///< seconds since the start of the day
  geo::Point position;           ///< feet
};

/// Sorts records by (journey, run, timestamp) — the canonical order the
/// extraction pipeline expects.
void sort_records(std::vector<TraceRecord>& records) noexcept;

/// One vehicle trip: a view into a sorted record vector.
struct RunView {
  std::uint32_t journey_id = 0;
  std::uint32_t run_id = 0;
  std::span<const TraceRecord> records;
};

/// Splits sorted records into runs. The input must be sorted with
/// sort_records; throws std::invalid_argument otherwise.
[[nodiscard]] std::vector<RunView> split_runs(
    std::span<const TraceRecord> records);

}  // namespace rap::trace
