// Synthetic GPS trace generation — the substitution for the proprietary
// Dublin and Seattle bus datasets (see DESIGN.md §3).
//
// The generator plants a set of ground-truth traffic flows (journey
// patterns) with a gravity demand model biased towards the city centre,
// then simulates each vehicle run along its pattern's path, emitting noisy,
// subsampled GPS records. The planted flows are returned alongside the
// records so tests can verify that the map-matching + extraction pipeline
// recovers them.
#pragma once

#include <vector>

#include "src/graph/road_network.h"
#include "src/trace/record.h"
#include "src/traffic/flow.h"
#include "src/util/rng.h"

namespace rap::trace {

struct TraceGenSpec {
  /// Number of distinct journey patterns (traffic flows) to plant.
  std::size_t num_journeys = 50;
  /// Mean daily runs (vehicles) per journey; actual counts ~ 1 + Poisson.
  double mean_runs_per_journey = 20.0;
  /// Distance between consecutive GPS samples along the path, feet.
  double sample_spacing = 400.0;
  /// Stddev of isotropic GPS position noise, feet.
  double gps_noise = 50.0;
  /// Probability that an individual GPS sample is lost.
  double drop_prob = 0.05;
  /// Average vehicle speed, feet/second (timestamps only).
  double speed = 30.0;
  /// Demand gravity: node attractiveness = exp(-dist_to_centre / scale)
  /// where scale = centre_scale_fraction * network diameter estimate.
  double center_scale_fraction = 0.35;
  /// Minimum OD Euclidean separation as a fraction of the bbox diagonal
  /// (rejects trivial trips).
  double min_trip_fraction = 0.25;
  /// Potential customers per vehicle (100 Dublin / 200 Seattle).
  double passengers_per_vehicle = 100.0;
  /// Advertisement attractiveness (0.001 in the paper's evaluation).
  double alpha = 0.001;
};

struct SyntheticTrace {
  std::vector<TraceRecord> records;  ///< sorted (journey, run, time)
  /// Ground truth: one flow per journey pattern, daily_vehicles = run count.
  std::vector<traffic::TrafficFlow> planted_flows;
};

/// Generates a trace deterministically from `rng`. Throws
/// std::invalid_argument on bad spec values or a network with < 2 nodes.
[[nodiscard]] SyntheticTrace generate_trace(const graph::RoadNetwork& net,
                                            const TraceGenSpec& spec,
                                            util::Rng& rng);

}  // namespace rap::trace
