#include "src/trace/generator.h"

#include <cmath>
#include <stdexcept>

#include "src/geo/bbox.h"
#include "src/graph/dijkstra.h"
#include "src/graph/path.h"

namespace rap::trace {
namespace {

void validate_spec(const TraceGenSpec& spec) {
  if (spec.num_journeys == 0) {
    throw std::invalid_argument("generate_trace: num_journeys must be > 0");
  }
  if (!(spec.mean_runs_per_journey >= 0.0)) {
    throw std::invalid_argument("generate_trace: mean_runs_per_journey < 0");
  }
  if (!(spec.sample_spacing > 0.0)) {
    throw std::invalid_argument("generate_trace: sample_spacing must be > 0");
  }
  if (spec.gps_noise < 0.0) {
    throw std::invalid_argument("generate_trace: gps_noise must be >= 0");
  }
  if (spec.drop_prob < 0.0 || spec.drop_prob >= 1.0) {
    throw std::invalid_argument("generate_trace: drop_prob must be in [0, 1)");
  }
  if (!(spec.speed > 0.0)) {
    throw std::invalid_argument("generate_trace: speed must be > 0");
  }
  if (spec.min_trip_fraction < 0.0 || spec.min_trip_fraction >= 1.0) {
    throw std::invalid_argument(
        "generate_trace: min_trip_fraction must be in [0, 1)");
  }
}

// Gravity weights: nodes near the bbox centre attract more demand.
std::vector<double> demand_weights(const graph::RoadNetwork& net,
                                   double center_scale_fraction) {
  const geo::BBox box = net.bounds();
  const geo::Point center = box.center();
  const double diag = std::hypot(box.width(), box.height());
  const double scale = std::max(1.0, center_scale_fraction * diag);
  std::vector<double> weights(net.num_nodes());
  for (graph::NodeId v = 0; v < net.num_nodes(); ++v) {
    weights[v] = std::exp(-euclidean_distance(net.position(v), center) / scale);
  }
  return weights;
}

// Emits GPS samples for one run along `path`, spaced along the travelled
// distance with noise and random drop-out.
void emit_run(const graph::RoadNetwork& net,
              std::span<const graph::NodeId> path, const TraceGenSpec& spec,
              std::uint32_t vehicle, std::uint32_t journey, std::uint32_t run,
              util::Rng& rng, std::vector<TraceRecord>& out) {
  const std::vector<double> cum = graph::cumulative_lengths(net, path);
  const double total = cum.back();
  // Sample positions at s = 0, spacing, 2*spacing, ..., total.
  std::size_t segment = 0;
  for (double s = 0.0;; s += spec.sample_spacing) {
    const double at = std::min(s, total);
    while (segment + 1 < cum.size() && cum[segment + 1] < at) ++segment;
    geo::Point pos;
    if (segment + 1 >= cum.size()) {
      pos = net.position(path.back());
    } else {
      const double seg_len = cum[segment + 1] - cum[segment];
      const double t = seg_len > 0.0 ? (at - cum[segment]) / seg_len : 0.0;
      pos = lerp(net.position(path[segment]), net.position(path[segment + 1]), t);
    }
    if (!rng.next_bool(spec.drop_prob)) {
      TraceRecord record;
      record.vehicle_id = vehicle;
      record.journey_id = journey;
      record.run_id = run;
      record.timestamp = at / spec.speed;
      record.position = {pos.x + rng.next_gaussian(0.0, spec.gps_noise),
                         pos.y + rng.next_gaussian(0.0, spec.gps_noise)};
      out.push_back(record);
    }
    if (at >= total) break;
  }
}

}  // namespace

SyntheticTrace generate_trace(const graph::RoadNetwork& net,
                              const TraceGenSpec& spec, util::Rng& rng) {
  validate_spec(spec);
  if (net.num_nodes() < 2) {
    throw std::invalid_argument("generate_trace: network too small");
  }
  const std::vector<double> weights =
      demand_weights(net, spec.center_scale_fraction);
  const geo::BBox box = net.bounds();
  const double min_trip =
      spec.min_trip_fraction * std::hypot(box.width(), box.height());

  SyntheticTrace trace;
  trace.planted_flows.reserve(spec.num_journeys);
  std::uint32_t next_run_id = 0;
  std::uint32_t next_vehicle_id = 0;

  for (std::uint32_t journey = 0; journey < spec.num_journeys; ++journey) {
    // Rejection-sample an OD pair: distinct, far enough apart, connected.
    traffic::TrafficFlow flow;
    bool found = false;
    for (int attempt = 0; attempt < 256 && !found; ++attempt) {
      const auto origin =
          static_cast<graph::NodeId>(rng.next_weighted(weights));
      const auto dest = static_cast<graph::NodeId>(rng.next_weighted(weights));
      if (origin == dest) continue;
      if (euclidean_distance(net.position(origin), net.position(dest)) <
          min_trip) {
        continue;
      }
      auto path = graph::shortest_path(net, origin, dest);
      if (!path) continue;
      flow.origin = origin;
      flow.destination = dest;
      flow.path = std::move(*path);
      found = true;
    }
    if (!found) {
      throw std::runtime_error(
          "generate_trace: could not sample a feasible OD pair; "
          "lower min_trip_fraction or check connectivity");
    }

    const auto runs = static_cast<std::uint32_t>(
        1 + rng.next_poisson(spec.mean_runs_per_journey));
    flow.daily_vehicles = static_cast<double>(runs);
    flow.passengers_per_vehicle = spec.passengers_per_vehicle;
    flow.alpha = spec.alpha;

    for (std::uint32_t r = 0; r < runs; ++r) {
      emit_run(net, flow.path, spec, next_vehicle_id++, journey, next_run_id++,
               rng, trace.records);
    }
    trace.planted_flows.push_back(std::move(flow));
  }

  sort_records(trace.records);
  return trace;
}

}  // namespace rap::trace
