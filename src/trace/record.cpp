#include "src/trace/record.h"

#include <algorithm>
#include <stdexcept>
#include <tuple>

namespace rap::trace {
namespace {

auto order_key(const TraceRecord& r) {
  return std::tuple(r.journey_id, r.run_id, r.timestamp);
}

}  // namespace

void sort_records(std::vector<TraceRecord>& records) noexcept {
  std::sort(records.begin(), records.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return order_key(a) < order_key(b);
            });
}

std::vector<RunView> split_runs(std::span<const TraceRecord> records) {
  for (std::size_t i = 1; i < records.size(); ++i) {
    if (order_key(records[i]) < order_key(records[i - 1])) {
      throw std::invalid_argument("split_runs: records are not sorted");
    }
  }
  std::vector<RunView> runs;
  std::size_t begin = 0;
  for (std::size_t i = 1; i <= records.size(); ++i) {
    const bool boundary = i == records.size() ||
                          records[i].run_id != records[begin].run_id ||
                          records[i].journey_id != records[begin].journey_id;
    if (!boundary) continue;
    runs.push_back(RunView{records[begin].journey_id, records[begin].run_id,
                           records.subspan(begin, i - begin)});
    begin = i;
  }
  return runs;
}

}  // namespace rap::trace
