// Trace and flow CSV I/O.
//
// Record CSV schema (header required, column order fixed):
//   vehicle_id,journey_id,run_id,timestamp,x,y
// matching the fields the paper's datasets expose (bus id, journey/route
// id, coordinates) plus the explicit run id. Flows serialise as
//   origin,destination,daily_vehicles,passengers_per_vehicle,alpha,path
// with `path` a '|'-separated node-id list — enough to check a regenerated
// workload into version control or feed in a real, externally matched one.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "src/trace/record.h"
#include "src/traffic/flow.h"

namespace rap::trace {

/// Serialises records to CSV text (with header).
[[nodiscard]] std::string records_to_csv(std::span<const TraceRecord> records);

/// Parses records from CSV text. Throws std::invalid_argument on a missing
/// or wrong header, malformed numbers, or ragged rows; errors name
/// `source_name` and the 1-based line of the offending row (the file
/// wrappers pass the path).
[[nodiscard]] std::vector<TraceRecord> records_from_csv(
    std::string_view text, std::string_view source_name = "<string>");

/// File convenience wrappers (throw std::runtime_error on I/O failure).
void write_records_csv(const std::filesystem::path& path,
                       std::span<const TraceRecord> records);
[[nodiscard]] std::vector<TraceRecord> read_records_csv(
    const std::filesystem::path& path);

/// Serialises flows to CSV text (with header).
[[nodiscard]] std::string flows_to_csv(
    std::span<const traffic::TrafficFlow> flows);

/// Parses flows from CSV text; paths are validated against `net`. Errors
/// name `source_name` and the 1-based line of the offending row.
[[nodiscard]] std::vector<traffic::TrafficFlow> flows_from_csv(
    const graph::RoadNetwork& net, std::string_view text,
    std::string_view source_name = "<string>");

void write_flows_csv(const std::filesystem::path& path,
                     std::span<const traffic::TrafficFlow> flows);
[[nodiscard]] std::vector<traffic::TrafficFlow> read_flows_csv(
    const graph::RoadNetwork& net, const std::filesystem::path& path);

}  // namespace rap::trace
