#include "src/trace/classify.h"

#include <algorithm>
#include <stdexcept>

namespace rap::trace {

std::vector<double> passing_vehicles_per_node(
    const graph::RoadNetwork& net,
    const std::vector<traffic::TrafficFlow>& flows) {
  std::vector<double> vehicles(net.num_nodes(), 0.0);
  std::vector<std::uint32_t> seen(net.num_nodes(), ~std::uint32_t{0});
  for (std::uint32_t f = 0; f < flows.size(); ++f) {
    traffic::validate_flow(net, flows[f]);
    for (const graph::NodeId v : flows[f].path) {
      if (seen[v] == f) continue;  // count a flow once per intersection
      seen[v] = f;
      vehicles[v] += flows[f].daily_vehicles;
    }
  }
  return vehicles;
}

std::vector<LocationClass> classify_intersections(
    const graph::RoadNetwork& net,
    const std::vector<traffic::TrafficFlow>& flows,
    const ClassifyOptions& options) {
  if (options.center_fraction < 0.0 || options.city_fraction < 0.0 ||
      options.center_fraction + options.city_fraction > 1.0) {
    throw std::invalid_argument("classify_intersections: bad fractions");
  }
  const std::vector<double> vehicles = passing_vehicles_per_node(net, flows);

  // Rank only intersections with traffic; traffic-free ones are suburb.
  std::vector<graph::NodeId> ranked;
  for (graph::NodeId v = 0; v < net.num_nodes(); ++v) {
    if (vehicles[v] > 0.0) ranked.push_back(v);
  }
  std::sort(ranked.begin(), ranked.end(), [&](graph::NodeId a, graph::NodeId b) {
    if (vehicles[a] != vehicles[b]) return vehicles[a] > vehicles[b];
    return a < b;
  });

  std::vector<LocationClass> classes(net.num_nodes(), LocationClass::kSuburb);
  const auto center_cut = static_cast<std::size_t>(
      options.center_fraction * static_cast<double>(ranked.size()));
  const auto city_cut = static_cast<std::size_t>(
      (options.center_fraction + options.city_fraction) *
      static_cast<double>(ranked.size()));
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (i < center_cut) {
      classes[ranked[i]] = LocationClass::kCityCenter;
    } else if (i < city_cut) {
      classes[ranked[i]] = LocationClass::kCity;
    }
  }
  return classes;
}

std::vector<graph::NodeId> nodes_in_class(
    const std::vector<LocationClass>& classes, LocationClass wanted) {
  std::vector<graph::NodeId> out;
  for (graph::NodeId v = 0; v < classes.size(); ++v) {
    if (classes[v] == wanted) out.push_back(v);
  }
  return out;
}

const char* to_string(LocationClass c) noexcept {
  switch (c) {
    case LocationClass::kCityCenter:
      return "city-center";
    case LocationClass::kCity:
      return "city";
    case LocationClass::kSuburb:
      return "suburb";
  }
  return "unknown";
}

}  // namespace rap::trace
