// Flow extraction: grouped trace records -> traffic flows T(i,j).
//
// "Buses with the same vehicle journey id have similar routing paths"
// (Section V-A) — so each journey/route id becomes one traffic flow. Every
// run of the journey is map-matched to a walk; the most frequent walk
// becomes the flow's representative path, and the number of runs the flow's
// daily vehicle count.
#pragma once

#include <span>
#include <vector>

#include "src/trace/map_matcher.h"
#include "src/trace/record.h"
#include "src/traffic/flow.h"

namespace rap::trace {

struct ExtractionOptions {
  /// Potential customers per vehicle (100 Dublin / 200 Seattle).
  double passengers_per_vehicle = 100.0;
  /// Advertisement attractiveness alpha(T(i,j)).
  double alpha = 0.001;
  /// Journeys with fewer successfully matched runs are discarded.
  std::size_t min_runs = 1;
};

/// Extracts one flow per journey id from sorted records. Runs that fail to
/// match are skipped; journeys with < min_runs matched runs are dropped.
/// Throws std::invalid_argument on unsorted input or bad options.
[[nodiscard]] std::vector<traffic::TrafficFlow> extract_flows(
    const MapMatcher& matcher, std::span<const TraceRecord> records,
    const ExtractionOptions& options = {});

}  // namespace rap::trace
