// Intersection classification (Section V-A): "according to the amount of
// passing traffic flows, all the street intersections in both traces are
// classified into city's center, city, or suburb" — used to pick shop
// locations in the experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/road_network.h"
#include "src/traffic/flow.h"

namespace rap::trace {

enum class LocationClass : std::uint8_t { kCityCenter, kCity, kSuburb };

struct ClassifyOptions {
  /// Top fraction (by passing vehicles) tagged city-centre.
  double center_fraction = 0.10;
  /// Next fraction tagged city; the rest (and all traffic-free
  /// intersections) are suburb.
  double city_fraction = 0.40;
};

/// Daily vehicles passing each intersection, summed over flows (each flow
/// counts once per distinct intersection on its path).
[[nodiscard]] std::vector<double> passing_vehicles_per_node(
    const graph::RoadNetwork& net,
    const std::vector<traffic::TrafficFlow>& flows);

/// Class per intersection. Throws std::invalid_argument when the fractions
/// are negative or sum above 1.
[[nodiscard]] std::vector<LocationClass> classify_intersections(
    const graph::RoadNetwork& net,
    const std::vector<traffic::TrafficFlow>& flows,
    const ClassifyOptions& options = {});

/// All intersections of one class.
[[nodiscard]] std::vector<graph::NodeId> nodes_in_class(
    const std::vector<LocationClass>& classes, LocationClass wanted);

[[nodiscard]] const char* to_string(LocationClass c) noexcept;

}  // namespace rap::trace
