// Map matching: GPS samples -> intersection sequences.
//
// Each sample snaps to the nearest intersection within `snap_radius`;
// consecutive duplicates collapse; gaps (consecutive snapped intersections
// without a direct street) are stitched with the network shortest path so
// the result is always a walk on the network — which is what
// traffic::validate_flow demands of a flow path.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "src/geo/spatial_index.h"
#include "src/graph/road_network.h"
#include "src/trace/record.h"

namespace rap::trace {

class MapMatcher {
 public:
  /// `snap_radius` — max distance from a sample to its intersection; samples
  /// further away are discarded (GPS outliers). Throws when <= 0.
  MapMatcher(const graph::RoadNetwork& net, double snap_radius);

  [[nodiscard]] const graph::RoadNetwork& network() const noexcept {
    return *net_;
  }

  /// Nearest intersection within the snap radius, if any.
  [[nodiscard]] std::optional<graph::NodeId> snap(const geo::Point& p) const;

  /// Matches one vehicle run to a walk on the network. Returns an empty
  /// vector when no sample snapped or the walk could not be stitched
  /// (disconnected snaps).
  [[nodiscard]] std::vector<graph::NodeId> match_run(
      std::span<const TraceRecord> run) const;

 private:
  const graph::RoadNetwork* net_;
  double snap_radius_;
  geo::SpatialIndex index_;
};

}  // namespace rap::trace
