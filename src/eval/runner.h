// Experiment runner: repeats (shop draw -> build model -> run algorithms ->
// record customers) and aggregates per-(algorithm, k) statistics.
//
// Greedy and ranking algorithms produce *nested* placements (each prefix of
// the k=10 run is the k=j run), so the runner executes them once per
// repetition at max(k) and reads prefix values — the same trick makes the
// Random baseline sweep free because a prefix of a uniform sample is a
// uniform sample. The two-stage algorithms are not nested and run per k.
#pragma once

#include "src/eval/experiment.h"
#include "src/graph/road_network.h"
#include "src/traffic/flow.h"

namespace rap::eval {

/// A city + its traffic, ready for experiments.
struct Workload {
  const graph::RoadNetwork* net = nullptr;
  std::vector<traffic::TrafficFlow> flows;
  std::vector<trace::LocationClass> classes;  ///< per intersection
  std::string name;
};

/// Builds a workload, classifying intersections from the flows.
[[nodiscard]] Workload make_workload(const graph::RoadNetwork& net,
                                     std::vector<traffic::TrafficFlow> flows,
                                     std::string name,
                                     const trace::ClassifyOptions& options = {});

/// Runs the experiment. Throws std::invalid_argument on an empty k sweep,
/// no intersection in the requested shop class, or a two-stage algorithm
/// outside the Manhattan scenario.
[[nodiscard]] ExperimentResult run_experiment(const Workload& workload,
                                              const ExperimentConfig& config);

}  // namespace rap::eval
