// Report formatting: the aligned text tables printed by the figure benches
// (rows = k, columns = algorithms, cells = mean attracted customers) and
// the matching CSV rows.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "src/eval/experiment.h"

namespace rap::eval {

/// Human-readable table of one experiment (mean +/- 95% CI when
/// `with_ci`).
[[nodiscard]] std::string format_table(const ExperimentResult& result,
                                       bool with_ci = false);

/// CSV rows: header (k, <algorithm>...) then one row per k with means.
[[nodiscard]] std::vector<std::vector<std::string>> to_csv_rows(
    const ExperimentResult& result);

/// Writes to_csv_rows to `path` (parent directories created).
void write_csv(const ExperimentResult& result,
               const std::filesystem::path& path);

}  // namespace rap::eval
