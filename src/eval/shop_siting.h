// Shop siting — the inverse question a business actually asks first:
// *where should the shop go*, given that k RAPs will then be placed
// optimally for it? For each candidate intersection the optimiser builds
// the placement problem with the shop there, runs the placement algorithm,
// and ranks candidates by attracted customers.
//
// The evaluation loop shares distance state across all candidate shops: a
// single all-pairs matrix on small cities (the paper's O(|V|^3)
// preprocessing, amortised — exactly when ApspDetourCalculator beats
// per-shop Dijkstras), or a shared sparse DistanceOracle + distance cache
// on metro cities where the n^2 matrix is unaffordable. Rankings are
// bitwise identical either way (the oracle contract, src/graph/oracle.h).
#pragma once

#include <vector>

#include "src/core/problem.h"
#include "src/graph/apsp.h"
#include "src/graph/oracle.h"

namespace rap::eval {

struct SiteScore {
  graph::NodeId shop = graph::kInvalidNode;
  double customers = 0.0;
  core::Placement placement;  ///< the k RAPs chosen for this site
};

struct ShopSitingOptions {
  std::size_t k = 5;
  /// Candidate shop intersections; empty means every intersection.
  std::vector<graph::NodeId> candidates;
  /// Keep only the best `top` sites in the result (0 = all).
  std::size_t top = 0;
  /// Distance backend: "auto" shares one dense matrix below
  /// oracle.dense_node_limit and one sparse oracle + distance cache above
  /// it. The ranking is bitwise identical for every backend.
  graph::OraclePolicy oracle;
};

/// Ranks candidate shop sites by the customers their best placement
/// attracts (descending; ties towards the lower node id). Throws
/// std::invalid_argument on k == 0 or a bad candidate id.
[[nodiscard]] std::vector<SiteScore> rank_shop_sites(
    const graph::RoadNetwork& net,
    const std::vector<traffic::TrafficFlow>& flows,
    const traffic::UtilityFunction& utility, const ShopSitingOptions& options);

}  // namespace rap::eval
