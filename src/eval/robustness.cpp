#include "src/eval/robustness.h"

#include <algorithm>
#include <stdexcept>

#include "src/core/composite_greedy.h"
#include "src/core/evaluator.h"

namespace rap::eval {

RobustnessResult demand_robustness(
    const graph::RoadNetwork& net,
    const std::vector<traffic::TrafficFlow>& flows, graph::NodeId shop,
    const traffic::UtilityFunction& utility,
    const RobustnessOptions& options) {
  if (options.k == 0 || options.samples == 0) {
    throw std::invalid_argument("demand_robustness: k and samples must be > 0");
  }
  RobustnessResult result;
  {
    const core::PlacementProblem nominal_problem(net, flows, shop, utility);
    result.nominal =
        core::composite_greedy_placement(nominal_problem, options.k);
  }

  util::RunningStats achieved;
  util::RunningStats reoptimized;
  util::RunningStats regret;
  const util::Rng root(options.seed);
  for (std::size_t s = 0; s < options.samples; ++s) {
    util::Rng rng = root.fork(s);
    const auto perturbed = perturb_demand(flows, options.volume_cv, rng);
    const core::PlacementProblem problem(net, perturbed, shop, utility);
    const double fixed_value =
        core::evaluate_placement(problem, result.nominal.nodes);
    const double hindsight =
        core::composite_greedy_placement(problem, options.k).customers;
    achieved.add(fixed_value);
    reoptimized.add(hindsight);
    if (hindsight > 0.0) regret.add(fixed_value / hindsight);
  }

  const auto to_summary = [](const util::RunningStats& s) {
    util::Summary out;
    out.count = s.count();
    out.mean = s.mean();
    out.stddev = s.stddev();
    out.stderr_mean = s.stderr_mean();
    if (s.count() > 0) {  // empty accumulator min/max are ±infinity sentinels
      out.min = s.min();
      out.max = s.max();
    }
    out.ci95_halfwidth = 1.96 * s.stderr_mean();
    return out;
  };
  result.achieved = to_summary(achieved);
  result.reoptimized = to_summary(reoptimized);
  result.regret_ratio = to_summary(regret);
  return result;
}

}  // namespace rap::eval
