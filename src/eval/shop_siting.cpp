#include "src/eval/shop_siting.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "src/core/composite_greedy.h"
#include "src/traffic/apsp_detour.h"

namespace rap::eval {

std::vector<SiteScore> rank_shop_sites(
    const graph::RoadNetwork& net,
    const std::vector<traffic::TrafficFlow>& flows,
    const traffic::UtilityFunction& utility, const ShopSitingOptions& options) {
  if (options.k == 0) {
    throw std::invalid_argument("rank_shop_sites: k must be > 0");
  }
  std::vector<graph::NodeId> candidates = options.candidates;
  if (candidates.empty()) {
    candidates.resize(net.num_nodes());
    for (graph::NodeId v = 0; v < candidates.size(); ++v) candidates[v] = v;
  } else {
    for (const graph::NodeId v : candidates) net.check_node(v);
  }

  // One APSP matrix shared across every candidate shop.
  const graph::DistanceMatrix matrix = graph::all_pairs_shortest_paths(net);

  std::vector<SiteScore> scores;
  scores.reserve(candidates.size());
  for (const graph::NodeId shop : candidates) {
    auto detours = std::make_unique<traffic::ApspDetourCalculator>(
        net, matrix, shop);
    const core::PlacementProblem problem(net, flows, shop, utility,
                                         std::move(detours));
    core::PlacementResult placed =
        core::composite_greedy_placement(problem, options.k);
    scores.push_back({shop, placed.customers, std::move(placed.nodes)});
  }
  std::sort(scores.begin(), scores.end(),
            [](const SiteScore& a, const SiteScore& b) {
              if (a.customers != b.customers) return a.customers > b.customers;
              return a.shop < b.shop;
            });
  if (options.top > 0 && scores.size() > options.top) {
    scores.resize(options.top);
  }
  return scores;
}

}  // namespace rap::eval
