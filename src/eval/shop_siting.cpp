#include "src/eval/shop_siting.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "src/core/composite_greedy.h"
#include "src/graph/oracle_cache.h"
#include "src/traffic/apsp_detour.h"
#include "src/traffic/oracle_detour.h"

namespace rap::eval {

std::vector<SiteScore> rank_shop_sites(
    const graph::RoadNetwork& net,
    const std::vector<traffic::TrafficFlow>& flows,
    const traffic::UtilityFunction& utility, const ShopSitingOptions& options) {
  if (options.k == 0) {
    throw std::invalid_argument("rank_shop_sites: k must be > 0");
  }
  std::vector<graph::NodeId> candidates = options.candidates;
  if (candidates.empty()) {
    candidates.resize(net.num_nodes());
    for (graph::NodeId v = 0; v < candidates.size(); ++v) candidates[v] = v;
  } else {
    for (const graph::NodeId v : candidates) net.check_node(v);
  }

  // Distance state shared across every candidate shop: the dense matrix on
  // small cities, a sparse oracle + distance cache above the policy's node
  // threshold (candidates query overlapping (node, shop) pairs, so the
  // shared cache amortises most of the work). Either way the distances are
  // the same forward fixpoint, so the ranking is bitwise identical.
  const graph::OracleBackend backend =
      graph::resolve_oracle_backend(options.oracle, net.num_nodes());
  std::optional<graph::DistanceMatrix> matrix;
  std::shared_ptr<const graph::DistanceOracle> oracle;
  std::shared_ptr<graph::SparseDistanceCache> cache;
  if (backend == graph::OracleBackend::kDense) {
    matrix.emplace(graph::all_pairs_shortest_paths(net));
  } else {
    oracle = graph::make_oracle(net, options.oracle);
    cache = std::make_shared<graph::SparseDistanceCache>();
  }

  std::vector<SiteScore> scores;
  scores.reserve(candidates.size());
  for (const graph::NodeId shop : candidates) {
    std::unique_ptr<const traffic::DetourSource> detours;
    if (matrix.has_value()) {
      detours = std::make_unique<traffic::ApspDetourCalculator>(net, *matrix,
                                                                shop);
    } else {
      auto engine = std::make_unique<traffic::OracleDetourCalculator>(
          net, oracle, shop, traffic::DetourMode::kAlongPath, cache);
      engine->warm(flows);
      detours = std::move(engine);
    }
    const core::PlacementProblem problem(net, flows, shop, utility,
                                         std::move(detours));
    core::PlacementResult placed =
        core::composite_greedy_placement(problem, options.k);
    scores.push_back({shop, placed.customers, std::move(placed.nodes)});
  }
  std::sort(scores.begin(), scores.end(),
            [](const SiteScore& a, const SiteScore& b) {
              if (a.customers != b.customers) return a.customers > b.customers;
              return a.shop < b.shop;
            });
  if (options.top > 0 && scores.size() > options.top) {
    scores.resize(options.top);
  }
  return scores;
}

}  // namespace rap::eval
