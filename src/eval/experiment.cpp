#include "src/eval/experiment.h"

namespace rap::eval {

const char* to_string(AlgorithmId id) noexcept {
  switch (id) {
    case AlgorithmId::kGreedyCoverage:
      return "Algorithm1";
    case AlgorithmId::kCompositeGreedy:
      return "Algorithm2";
    case AlgorithmId::kNaiveGreedy:
      return "NaiveGreedy";
    case AlgorithmId::kMaxCardinality:
      return "MaxCardinality";
    case AlgorithmId::kMaxVehicles:
      return "MaxVehicles";
    case AlgorithmId::kMaxCustomers:
      return "MaxCustomers";
    case AlgorithmId::kRandom:
      return "Random";
    case AlgorithmId::kTwoStageCorners:
      return "Algorithm3";
    case AlgorithmId::kTwoStageMidpoints:
      return "Algorithm4";
  }
  return "unknown";
}

}  // namespace rap::eval
