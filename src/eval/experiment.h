// Experiment configuration mirroring Section V: which algorithms, which
// utility function, threshold D, shop-location class, k sweep, repetitions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/classify.h"
#include "src/traffic/detour.h"
#include "src/traffic/utility.h"
#include "src/util/stats.h"

namespace rap::eval {

enum class AlgorithmId : std::uint8_t {
  kGreedyCoverage,    ///< Algorithm 1
  kCompositeGreedy,   ///< Algorithm 2
  kNaiveGreedy,       ///< unbounded marginal-gain strawman (ablation)
  kMaxCardinality,
  kMaxVehicles,
  kMaxCustomers,
  kRandom,
  kTwoStageCorners,   ///< Algorithm 3 (Manhattan scenario only)
  kTwoStageMidpoints, ///< Algorithm 4 (Manhattan scenario only)
};

[[nodiscard]] const char* to_string(AlgorithmId id) noexcept;

/// The paper's six general-scenario algorithms, in presentation order.
/// Built with push_back: GCC 12's -Werror=maybe-uninitialized misfires on
/// the initializer_list backing array when the braced default is inlined
/// at -O3.
[[nodiscard]] inline std::vector<AlgorithmId> default_algorithms() {
  std::vector<AlgorithmId> out;
  out.reserve(6);
  out.push_back(AlgorithmId::kGreedyCoverage);
  out.push_back(AlgorithmId::kCompositeGreedy);
  out.push_back(AlgorithmId::kMaxCardinality);
  out.push_back(AlgorithmId::kMaxVehicles);
  out.push_back(AlgorithmId::kMaxCustomers);
  out.push_back(AlgorithmId::kRandom);
  return out;
}

struct ExperimentConfig {
  std::string name;                  ///< e.g. "fig10a-threshold"
  std::vector<std::size_t> ks{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  traffic::UtilityKind utility = traffic::UtilityKind::kThreshold;
  double range = 20'000.0;           ///< the threshold D, feet
  trace::LocationClass shop_class = trace::LocationClass::kCity;
  std::size_t repetitions = 100;     ///< paper uses 1000; benches default lower
  std::uint64_t seed = 1;
  traffic::DetourMode detour_mode = traffic::DetourMode::kAlongPath;
  /// false: general scenario (fixed paths); true: Manhattan scenario
  /// (flexible routing + two-stage algorithms become available).
  bool manhattan_scenario = false;
  /// Worker threads for the repetition loop; 1 = serial, 0 = the ambient
  /// util::ParallelConfig (RAP_THREADS env var, else hardware concurrency).
  /// Results are bit-identical for any thread count (repetitions are
  /// RNG-independent and accumulated in order; telemetry merges in
  /// repetition order). Recorded as the `parallel.threads` gauge in the
  /// run's telemetry.
  std::size_t threads = 1;
  std::vector<AlgorithmId> algorithms = default_algorithms();
};

/// Mean/spread of attracted customers for one algorithm across the k sweep.
struct SeriesResult {
  AlgorithmId algorithm{};
  std::vector<util::Summary> by_k;  ///< aligned with config.ks
};

struct ExperimentResult {
  ExperimentConfig config;
  std::vector<SeriesResult> series;  ///< aligned with config.algorithms
};

}  // namespace rap::eval
