// GeoJSON export for visual inspection of a scenario: streets as
// LineStrings, flows as LineStrings with volume properties, and the shop /
// RAP placement as Points. The output is a single FeatureCollection that
// drops straight into geojson.io or any GIS tool (coordinates are the
// network's planar feet; consumers can treat them as a local CRS).
#pragma once

#include <filesystem>
#include <span>
#include <string>

#include "src/core/problem.h"

namespace rap::eval {

struct GeoJsonOptions {
  bool include_streets = true;
  bool include_flows = true;
  /// Flows with fewer daily vehicles are skipped (declutters dense maps).
  double min_flow_vehicles = 0.0;
};

/// Renders the scenario as a GeoJSON FeatureCollection string.
/// `placement` may be empty. Throws std::out_of_range on bad node ids.
[[nodiscard]] std::string to_geojson(
    const graph::RoadNetwork& net,
    std::span<const traffic::TrafficFlow> flows, graph::NodeId shop,
    std::span<const graph::NodeId> placement, const GeoJsonOptions& options = {});

/// Writes to_geojson output to a file (parents created). Throws on I/O
/// failure.
void write_geojson(const std::filesystem::path& path,
                   const graph::RoadNetwork& net,
                   std::span<const traffic::TrafficFlow> flows,
                   graph::NodeId shop,
                   std::span<const graph::NodeId> placement,
                   const GeoJsonOptions& options = {});

}  // namespace rap::eval
