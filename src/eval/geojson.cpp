#include "src/eval/geojson.h"

#include <fstream>
#include <sstream>

#include "src/util/strings.h"

namespace rap::eval {
namespace {

std::string coord(const geo::Point& p) {
  // Built piecewise: GCC 12's -Werror=restrict misfires on the
  // operator+(const char*, std::string&&) chain at -O3.
  std::string out = "[";
  out += util::format_fixed(p.x, 2);
  out += ",";
  out += util::format_fixed(p.y, 2);
  out += "]";
  return out;
}

class FeatureWriter {
 public:
  void add(const std::string& geometry, const std::string& properties) {
    if (!first_) out_ << ",";
    first_ = false;
    out_ << R"({"type":"Feature","geometry":)" << geometry
         << R"(,"properties":)" << properties << "}";
  }

  [[nodiscard]] std::string finish() const {
    return R"({"type":"FeatureCollection","features":[)" + out_.str() + "]}";
  }

 private:
  std::ostringstream out_;
  bool first_ = true;
};

std::string point_geometry(const geo::Point& p) {
  return R"({"type":"Point","coordinates":)" + coord(p) + "}";
}

std::string line_geometry(const graph::RoadNetwork& net,
                          std::span<const graph::NodeId> nodes) {
  std::string coords = "[";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) coords += ",";
    coords += coord(net.position(nodes[i]));
  }
  coords += "]";
  return R"({"type":"LineString","coordinates":)" + coords + "}";
}

}  // namespace

std::string to_geojson(const graph::RoadNetwork& net,
                       std::span<const traffic::TrafficFlow> flows,
                       graph::NodeId shop,
                       std::span<const graph::NodeId> placement,
                       const GeoJsonOptions& options) {
  FeatureWriter features;

  if (options.include_streets) {
    for (const graph::Edge& e : net.edges()) {
      // Emit each two-way pair once (the lower-id direction).
      if (e.from > e.to) continue;
      const graph::NodeId ends[] = {e.from, e.to};
      features.add(line_geometry(net, ends),
                   R"({"kind":"street","length":)" +
                       util::format_fixed(e.length, 2) + "}");
    }
  }
  if (options.include_flows) {
    for (const traffic::TrafficFlow& flow : flows) {
      if (flow.daily_vehicles < options.min_flow_vehicles) continue;
      features.add(line_geometry(net, flow.path),
                   R"({"kind":"flow","daily_vehicles":)" +
                       util::format_fixed(flow.daily_vehicles, 2) +
                       R"(,"population":)" +
                       util::format_fixed(flow.population(), 2) + "}");
    }
  }
  if (shop != graph::kInvalidNode) {
    features.add(point_geometry(net.position(shop)), R"({"kind":"shop"})");
  }
  for (std::size_t i = 0; i < placement.size(); ++i) {
    features.add(point_geometry(net.position(placement[i])),
                 R"({"kind":"rap","order":)" + std::to_string(i + 1) + "}");
  }
  return features.finish();
}

void write_geojson(const std::filesystem::path& path,
                   const graph::RoadNetwork& net,
                   std::span<const traffic::TrafficFlow> flows,
                   graph::NodeId shop,
                   std::span<const graph::NodeId> placement,
                   const GeoJsonOptions& options) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_geojson: cannot open " + path.string());
  }
  out << to_geojson(net, flows, shop, placement, options);
  if (!out) {
    throw std::runtime_error("write_geojson: write failed for " + path.string());
  }
}

}  // namespace rap::eval
