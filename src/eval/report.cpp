#include "src/eval/report.h"

#include <algorithm>
#include <sstream>

#include "src/util/csv.h"
#include "src/util/strings.h"

namespace rap::eval {
namespace {

constexpr int kCellWidth = 16;

std::string cell(const util::Summary& summary, bool with_ci) {
  std::string text = util::format_fixed(summary.mean, 2);
  if (with_ci) {
    text += " +-" + util::format_fixed(summary.ci95_halfwidth, 2);
  }
  return text;
}

}  // namespace

std::string format_table(const ExperimentResult& result, bool with_ci) {
  std::ostringstream out;
  const ExperimentConfig& config = result.config;
  out << "# " << config.name << " | utility="
      << traffic::make_utility(config.utility, config.range)->name()
      << " D=" << util::format_fixed(config.range, 0)
      << " shop=" << trace::to_string(config.shop_class)
      << " scenario=" << (config.manhattan_scenario ? "manhattan" : "general")
      << " reps=" << config.repetitions << "\n";
  out << util::pad("k", 4);
  for (const SeriesResult& series : result.series) {
    out << util::pad(to_string(series.algorithm), kCellWidth);
  }
  out << "\n";
  for (std::size_t ki = 0; ki < config.ks.size(); ++ki) {
    out << util::pad(std::to_string(config.ks[ki]), 4);
    for (const SeriesResult& series : result.series) {
      out << util::pad(cell(series.by_k[ki], with_ci), kCellWidth);
    }
    out << "\n";
  }
  return out.str();
}

std::vector<std::vector<std::string>> to_csv_rows(
    const ExperimentResult& result) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header{"k"};
  for (const SeriesResult& series : result.series) {
    header.emplace_back(to_string(series.algorithm));
    header.emplace_back(std::string(to_string(series.algorithm)) + "_ci95");
  }
  rows.push_back(std::move(header));
  for (std::size_t ki = 0; ki < result.config.ks.size(); ++ki) {
    std::vector<std::string> row{std::to_string(result.config.ks[ki])};
    for (const SeriesResult& series : result.series) {
      row.push_back(util::format_fixed(series.by_k[ki].mean, 4));
      row.push_back(util::format_fixed(series.by_k[ki].ci95_halfwidth, 4));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void write_csv(const ExperimentResult& result,
               const std::filesystem::path& path) {
  util::write_csv_file(path, to_csv_rows(result));
}

}  // namespace rap::eval
