// Demand robustness: the paper plans placements against *historical*
// traffic ("the traffic distribution ... can be obtained from the
// historical record"), but tomorrow's volumes differ from the record. This
// module measures how a placement optimised on nominal demand holds up
// when every flow's volume is perturbed:
//   * achieved    — the fixed placement's value under perturbed demand;
//   * reoptimized — the value of a greedy placement recomputed with perfect
//                   knowledge of the perturbed demand (the hindsight bar);
//   * regret      — achieved / reoptimized per sample (1.0 = no loss).
// Multiplicative volume noise: vehicles' <- vehicles * max(0, 1 + cv * N(0,1)).
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/problem.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace rap::eval {

/// Perturbed copy of the flows — see traffic::perturb_demand (re-exported
/// here because demand perturbation is the heart of this module's API).
using traffic::perturb_demand;

struct RobustnessOptions {
  std::size_t k = 5;
  std::size_t samples = 100;
  double volume_cv = 0.25;
  std::uint64_t seed = 1;
};

struct RobustnessResult {
  core::PlacementResult nominal;  ///< placement planned on nominal demand
  util::Summary achieved;         ///< its value under perturbed demand
  util::Summary reoptimized;      ///< hindsight greedy per sample
  util::Summary regret_ratio;     ///< achieved / reoptimized per sample
};

/// Plans with Algorithm 2 on nominal demand, then stress-tests across
/// `samples` perturbed days. Throws on invalid options or inputs.
[[nodiscard]] RobustnessResult demand_robustness(
    const graph::RoadNetwork& net,
    const std::vector<traffic::TrafficFlow>& flows, graph::NodeId shop,
    const traffic::UtilityFunction& utility, const RobustnessOptions& options);

}  // namespace rap::eval
