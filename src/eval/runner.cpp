#include "src/eval/runner.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "src/core/baselines.h"
#include "src/core/composite_greedy.h"
#include "src/core/evaluator.h"
#include "src/core/greedy.h"
#include "src/core/problem.h"
#include "src/geo/bbox.h"
#include "src/manhattan/flexible_eval.h"
#include "src/manhattan/two_stage.h"
#include "src/obs/telemetry.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace rap::eval {
namespace {

bool is_two_stage(AlgorithmId id) noexcept {
  return id == AlgorithmId::kTwoStageCorners ||
         id == AlgorithmId::kTwoStageMidpoints;
}

// Value after each prefix of `order`; index j = value with the first j+1
// RAPs. Shorter-than-k orders repeat their final value.
std::vector<double> prefix_values(const core::CoverageModel& model,
                                  std::span<const graph::NodeId> order) {
  std::vector<double> values;
  values.reserve(order.size());
  core::PlacementState state(model);
  for (const graph::NodeId node : order) {
    state.add(node);
    values.push_back(state.value());
  }
  return values;
}

double value_at_k(const std::vector<double>& prefixes, std::size_t k) {
  if (prefixes.empty()) return 0.0;
  return prefixes[std::min(k, prefixes.size()) - 1];
}

// Placement order of a nested algorithm at budget max_k.
core::Placement nested_order(AlgorithmId id, const core::CoverageModel& model,
                             std::size_t max_k, util::Rng& rng) {
  switch (id) {
    case AlgorithmId::kGreedyCoverage:
      return core::greedy_coverage_placement(model, max_k).nodes;
    case AlgorithmId::kCompositeGreedy:
      return core::composite_greedy_placement(model, max_k).nodes;
    case AlgorithmId::kNaiveGreedy:
      return core::naive_marginal_greedy_placement(model, max_k).nodes;
    case AlgorithmId::kMaxCardinality:
      return core::max_cardinality_placement(model, max_k).nodes;
    case AlgorithmId::kMaxVehicles:
      return core::max_vehicles_placement(model, max_k).nodes;
    case AlgorithmId::kMaxCustomers:
      return core::max_customers_placement(model, max_k).nodes;
    case AlgorithmId::kRandom:
      return core::random_placement(model, max_k, rng).nodes;
    case AlgorithmId::kTwoStageCorners:
    case AlgorithmId::kTwoStageMidpoints:
      break;
  }
  throw std::logic_error("nested_order: not a nested algorithm");
}

}  // namespace

Workload make_workload(const graph::RoadNetwork& net,
                       std::vector<traffic::TrafficFlow> flows,
                       std::string name,
                       const trace::ClassifyOptions& options) {
  Workload workload;
  workload.net = &net;
  workload.classes = trace::classify_intersections(net, flows, options);
  workload.flows = std::move(flows);
  workload.name = std::move(name);
  return workload;
}

ExperimentResult run_experiment(const Workload& workload,
                                const ExperimentConfig& config) {
  if (workload.net == nullptr) {
    throw std::invalid_argument("run_experiment: workload has no network");
  }
  if (config.ks.empty() || config.algorithms.empty() ||
      config.repetitions == 0) {
    throw std::invalid_argument("run_experiment: empty sweep");
  }
  for (const AlgorithmId id : config.algorithms) {
    if (is_two_stage(id) && !config.manhattan_scenario) {
      throw std::invalid_argument(
          "run_experiment: two-stage algorithms need the Manhattan scenario");
    }
  }
  const std::vector<graph::NodeId> shop_pool =
      trace::nodes_in_class(workload.classes, config.shop_class);
  if (shop_pool.empty()) {
    throw std::invalid_argument(
        "run_experiment: no intersection in the requested shop class");
  }
  const std::size_t max_k =
      *std::max_element(config.ks.begin(), config.ks.end());
  const std::unique_ptr<traffic::UtilityFunction> utility =
      traffic::make_utility(config.utility, config.range);

  // One repetition's raw values, values[alg][k_index]. Repetitions are
  // independent (per-rep forked RNG), so they can run on worker threads;
  // accumulating in repetition order afterwards keeps results bit-identical
  // to the serial path regardless of the thread count.
  //
  // Telemetry follows the same pattern: when the caller has an ambient sink
  // installed, each repetition records into a private Telemetry (worker
  // threads never share a registry) and everything merges back in
  // repetition order after the join.
  obs::Telemetry* const parent_telemetry = obs::ambient();
  std::vector<obs::Telemetry> rep_telemetry(
      parent_telemetry != nullptr ? config.repetitions : 0);
  using RepValues = std::vector<std::vector<double>>;
  const util::Rng root(config.seed);
  const auto run_repetition = [&](std::size_t rep) {
    std::optional<obs::TelemetryScope> telemetry_scope;
    if (parent_telemetry != nullptr) telemetry_scope.emplace(rep_telemetry[rep]);
    const obs::Span rep_span("repetition");
    util::Rng rng = root.fork(rep);
    const graph::NodeId shop = shop_pool[rng.next_below(shop_pool.size())];

    // Build the coverage model for this repetition's shop.
    std::unique_ptr<core::CoverageModel> owned;
    const manhattan::FlexibleProblem* flexible = nullptr;
    {
      const obs::Span span("model_build");
      if (config.manhattan_scenario) {
        auto fp = std::make_unique<manhattan::FlexibleProblem>(
            *workload.net, workload.flows, shop, *utility);
        flexible = fp.get();
        owned = std::move(fp);
      } else {
        owned = std::make_unique<core::PlacementProblem>(
            *workload.net, workload.flows, shop, *utility, config.detour_mode);
      }
    }
    const core::CoverageModel& model = *owned;
    const geo::BBox region = geo::BBox::centered_square(
        workload.net->position(shop), config.range);

    RepValues values(config.algorithms.size(),
                     std::vector<double>(config.ks.size(), 0.0));
    for (std::size_t a = 0; a < config.algorithms.size(); ++a) {
      const AlgorithmId id = config.algorithms[a];
      const obs::Span alg_span(std::string("algorithm:") + to_string(id));
      if (is_two_stage(id)) {
        const manhattan::TwoStageVariant variant =
            id == AlgorithmId::kTwoStageCorners
                ? manhattan::TwoStageVariant::kCorners
                : manhattan::TwoStageVariant::kMidpoints;
        for (std::size_t ki = 0; ki < config.ks.size(); ++ki) {
          values[a][ki] = manhattan::two_stage_network_placement(
                              *flexible, region, config.ks[ki], variant)
                              .customers;
        }
        continue;
      }
      util::Rng alg_rng = rng.fork(1000 + a);
      const core::Placement order = nested_order(id, model, max_k, alg_rng);
      const std::vector<double> prefixes = prefix_values(model, order);
      for (std::size_t ki = 0; ki < config.ks.size(); ++ki) {
        values[a][ki] = value_at_k(prefixes, config.ks[ki]);
      }
    }
    return values;
  };

  std::vector<RepValues> per_rep(config.repetitions);
  // Repetitions dispatch through the shared deterministic pool: one chunk
  // per repetition, each with its own forked RNG stream (root.fork(rep) —
  // the same stream assignment the serial loop uses). Parallel regions
  // inside a repetition (APSP rows, greedy candidate scans) detect they are
  // on a pool worker and run inline, so thread counts compose without
  // oversubscription.
  const std::size_t threads =
      std::min(config.threads == 0 ? util::parallel_config().effective()
                                   : config.threads,
               config.repetitions);
  obs::set_gauge("parallel.threads", static_cast<double>(threads));
  util::parallel_for(
      0, config.repetitions, /*grain=*/1,
      [&](const util::ChunkRange& chunk) {
        for (std::size_t rep = chunk.first; rep < chunk.last; ++rep) {
          per_rep[rep] = run_repetition(rep);
        }
      },
      threads);
  if (parent_telemetry != nullptr) {
    // Repetition order keeps the merged histogram moments deterministic for
    // any thread count, mirroring the value accumulation below.
    for (const obs::Telemetry& t : rep_telemetry) parent_telemetry->merge(t);
  }

  // stats[alg][k_index], accumulated in repetition order.
  std::vector<std::vector<util::RunningStats>> stats(
      config.algorithms.size(),
      std::vector<util::RunningStats>(config.ks.size()));
  for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
    for (std::size_t a = 0; a < config.algorithms.size(); ++a) {
      for (std::size_t ki = 0; ki < config.ks.size(); ++ki) {
        stats[a][ki].add(per_rep[rep][a][ki]);
      }
    }
  }

  ExperimentResult result;
  result.config = config;
  result.series.resize(config.algorithms.size());
  for (std::size_t a = 0; a < config.algorithms.size(); ++a) {
    result.series[a].algorithm = config.algorithms[a];
    result.series[a].by_k.resize(config.ks.size());
    for (std::size_t ki = 0; ki < config.ks.size(); ++ki) {
      const util::RunningStats& s = stats[a][ki];
      util::Summary& summary = result.series[a].by_k[ki];
      summary.count = s.count();
      summary.mean = s.mean();
      summary.stddev = s.stddev();
      summary.stderr_mean = s.stderr_mean();
      summary.min = s.min();
      summary.max = s.max();
      summary.ci95_halfwidth = 1.96 * s.stderr_mean();
    }
  }
  return result;
}

}  // namespace rap::eval
