#include "src/traffic/incidence.h"

#include <algorithm>
#include <stdexcept>

namespace rap::traffic {

IncidenceIndex::IncidenceIndex(const graph::RoadNetwork& net,
                               const std::vector<TrafficFlow>& flows,
                               const DetourSource& detours) {
  for (const TrafficFlow& flow : flows) validate_flow(net, flow);
  const std::size_t n = net.num_nodes();
  vehicles_at_node_.assign(n, 0.0);

  // First pass: per flow, collapse repeated path nodes to their minimum
  // detour (the first visit, by Theorem 1, on shortest paths; minimum kept
  // for robustness on trace paths).
  flow_start_.assign(flows.size() + 1, 0);
  std::vector<std::vector<FlowStop>> stops_per_flow(flows.size());
  std::vector<std::uint32_t> seen_at(n, ~std::uint32_t{0});
  std::vector<std::uint32_t> stop_slot(n, 0);
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    const TrafficFlow& flow = flows[f];
    const std::vector<double> path_detours = detours.detours_along_path(flow);
    auto& stops = stops_per_flow[f];
    stops.reserve(flow.path.size());
    for (std::uint32_t i = 0; i < flow.path.size(); ++i) {
      const graph::NodeId v = flow.path[i];
      if (seen_at[v] == f) {
        FlowStop& existing = stops[stop_slot[v]];
        existing.detour = std::min(existing.detour, path_detours[i]);
        continue;
      }
      seen_at[v] = f;
      stop_slot[v] = static_cast<std::uint32_t>(stops.size());
      stops.push_back(FlowStop{v, i, path_detours[i]});
      vehicles_at_node_[v] += flow.daily_vehicles;
    }
    flow_start_[f + 1] = flow_start_[f] + static_cast<std::uint32_t>(stops.size());
  }

  flow_entries_.reserve(flow_start_.back());
  for (auto& stops : stops_per_flow) {
    flow_entries_.insert(flow_entries_.end(), stops.begin(), stops.end());
  }

  // Second pass: transpose into the node -> flows layout.
  node_start_.assign(n + 1, 0);
  for (const FlowStop& stop : flow_entries_) ++node_start_[stop.node + 1];
  for (std::size_t v = 1; v <= n; ++v) node_start_[v] += node_start_[v - 1];
  node_entries_.resize(flow_entries_.size());
  std::vector<std::uint32_t> cursor(node_start_.begin(), node_start_.end() - 1);
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    for (std::uint32_t k = flow_start_[f]; k < flow_start_[f + 1]; ++k) {
      const FlowStop& stop = flow_entries_[k];
      node_entries_[cursor[stop.node]++] = NodeIncidence{f, stop.detour};
    }
  }
}

std::span<const NodeIncidence> IncidenceIndex::at_node(graph::NodeId node) const {
  check_node(node);
  return {node_entries_.data() + node_start_[node],
          node_entries_.data() + node_start_[node + 1]};
}

std::span<const FlowStop> IncidenceIndex::stops_of(FlowIndex flow) const {
  check_flow(flow);
  return {flow_entries_.data() + flow_start_[flow],
          flow_entries_.data() + flow_start_[flow + 1]};
}

double IncidenceIndex::passing_vehicles(graph::NodeId node) const {
  check_node(node);
  return vehicles_at_node_[node];
}

std::size_t IncidenceIndex::passing_flow_count(graph::NodeId node) const {
  check_node(node);
  return node_start_[node + 1] - node_start_[node];
}

void IncidenceIndex::check_node(graph::NodeId node) const {
  if (node >= num_nodes()) {
    throw std::out_of_range("IncidenceIndex: bad node id");
  }
}

void IncidenceIndex::check_flow(FlowIndex flow) const {
  if (flow >= num_flows()) {
    throw std::out_of_range("IncidenceIndex: bad flow index");
  }
}

}  // namespace rap::traffic
