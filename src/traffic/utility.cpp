#include "src/traffic/utility.h"

#include <cmath>
#include <stdexcept>

namespace rap::traffic {
namespace {

double checked_range(double range) {
  if (!(range > 0.0) || !std::isfinite(range)) {
    throw std::invalid_argument("UtilityFunction: range D must be finite and > 0");
  }
  return range;
}

}  // namespace

void check_utility_args(double detour, double alpha) {
  // Infinite detour is legal (unreachable shop) and maps to probability 0;
  // NaN is not.
  if (std::isnan(detour) || detour < 0.0) {
    throw std::invalid_argument("UtilityFunction: detour must be >= 0");
  }
  if (!(alpha >= 0.0) || alpha > 1.0) {
    throw std::invalid_argument("UtilityFunction: alpha must be in [0, 1]");
  }
}

ThresholdUtility::ThresholdUtility(double range) : range_(checked_range(range)) {}

double ThresholdUtility::probability(double detour, double alpha) const {
  check_utility_args(detour, alpha);
  return detour <= range_ ? alpha : 0.0;
}

LinearUtility::LinearUtility(double range) : range_(checked_range(range)) {}

double LinearUtility::probability(double detour, double alpha) const {
  check_utility_args(detour, alpha);
  if (detour > range_) return 0.0;
  return alpha * (1.0 - detour / range_);
}

SqrtUtility::SqrtUtility(double range) : range_(checked_range(range)) {}

double SqrtUtility::probability(double detour, double alpha) const {
  check_utility_args(detour, alpha);
  if (detour > range_) return 0.0;
  return alpha * (1.0 - std::sqrt(detour / range_));
}

std::unique_ptr<UtilityFunction> make_utility(UtilityKind kind, double range) {
  switch (kind) {
    case UtilityKind::kThreshold:
      return std::make_unique<ThresholdUtility>(range);
    case UtilityKind::kLinear:
      return std::make_unique<LinearUtility>(range);
    case UtilityKind::kSqrt:
      return std::make_unique<SqrtUtility>(range);
  }
  throw std::invalid_argument("make_utility: unknown kind");
}

}  // namespace rap::traffic
