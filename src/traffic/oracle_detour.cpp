#include "src/traffic/oracle_detour.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <vector>

#include "src/graph/path.h"
#include "src/obs/telemetry.h"
#include "src/util/thread_pool.h"

namespace rap::traffic {
namespace {

// Distinct (from, to) pairs per warm chunk — fixed so the chunk partition
// (and the chunk-ordered telemetry merge) is thread-count independent.
constexpr std::size_t kWarmPairsPerChunk = 64;

std::uint64_t pack(graph::NodeId from, graph::NodeId to) noexcept {
  return (static_cast<std::uint64_t>(from) << 32) |
         static_cast<std::uint64_t>(to);
}

}  // namespace

OracleDetourCalculator::OracleDetourCalculator(
    const graph::RoadNetwork& net,
    std::shared_ptr<const graph::DistanceOracle> oracle, graph::NodeId shop,
    DetourMode mode, std::shared_ptr<graph::SparseDistanceCache> cache)
    : net_(&net),
      oracle_(std::move(oracle)),
      shop_(shop),
      mode_(mode),
      cache_(std::move(cache)) {
  if (oracle_ == nullptr) {
    throw std::invalid_argument("OracleDetourCalculator: null oracle");
  }
  net.check_node(shop);
}

double OracleDetourCalculator::cached_distance(graph::NodeId from,
                                               graph::NodeId to) const {
  if (cache_ != nullptr) {
    double value = 0.0;
    if (cache_->lookup(from, to, &value)) return value;
    value = oracle_->distance(from, to);
    cache_->insert(from, to, value);
    return value;
  }
  return oracle_->distance(from, to);
}

std::vector<double> OracleDetourCalculator::detours_along_path(
    const TrafficFlow& flow) const {
  validate_flow(*net_, flow);
  std::vector<double> out(flow.path.size(), graph::kUnreachable);
  const double d2 = cached_distance(shop_, flow.destination);  // d''
  if (d2 == graph::kUnreachable) return out;

  std::vector<double> direct(flow.path.size());
  if (mode_ == DetourMode::kAlongPath) {
    const std::vector<double> cum = graph::cumulative_lengths(*net_, flow.path);
    for (std::size_t i = 0; i < flow.path.size(); ++i) {
      direct[i] = cum.back() - cum[i];
    }
  } else {
    for (std::size_t i = 0; i < flow.path.size(); ++i) {
      direct[i] = cached_distance(flow.path[i], flow.destination);
    }
  }
  for (std::size_t i = 0; i < flow.path.size(); ++i) {
    const double d1 = cached_distance(flow.path[i], shop_);  // d'
    if (d1 == graph::kUnreachable || direct[i] == graph::kUnreachable) continue;
    out[i] = std::max(0.0, d1 + d2 - direct[i]);
  }
  return out;
}

void OracleDetourCalculator::warm(std::span<const TrafficFlow> flows) const {
  if (cache_ == nullptr) return;
  const obs::Span span("graph.oracle.warm");

  // The distinct pairs every detours_along_path call below will ask for.
  std::vector<std::uint64_t> pairs;
  pairs.reserve(flows.size() * 2);
  for (const TrafficFlow& flow : flows) {
    pairs.push_back(pack(shop_, flow.destination));
    for (const graph::NodeId v : flow.path) {
      pairs.push_back(pack(v, shop_));
      if (mode_ == DetourMode::kShortestPath) {
        pairs.push_back(pack(v, flow.destination));
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  // Each distinct pair is priced exactly once (values are pure functions of
  // the pair), so cache hit/miss accounting — and of course the values —
  // are identical for any thread count. Workers get private telemetry,
  // merged in chunk order, like the parallel APSP sweep.
  obs::Telemetry* const parent = obs::ambient();
  std::vector<obs::Telemetry> chunk_telemetry(
      parent != nullptr
          ? util::chunk_count(0, pairs.size(), kWarmPairsPerChunk)
          : 0);
  util::parallel_for(
      0, pairs.size(), kWarmPairsPerChunk,
      [&](const util::ChunkRange& chunk) {
        std::optional<obs::TelemetryScope> scope;
        if (parent != nullptr) scope.emplace(chunk_telemetry[chunk.index]);
        for (std::size_t i = chunk.first; i < chunk.last; ++i) {
          const auto from = static_cast<graph::NodeId>(pairs[i] >> 32);
          const auto to = static_cast<graph::NodeId>(pairs[i] & 0xffffffffU);
          (void)cached_distance(from, to);
        }
      });
  if (parent != nullptr) {
    for (const obs::Telemetry& t : chunk_telemetry) parent->merge(t);
  }
  if (parent != nullptr) {
    obs::add_counter("graph.oracle.warm.pairs", pairs.size());
  }
}

std::string resolve_detour_engine(const DetourEnginePolicy& policy,
                                  std::size_t num_nodes) {
  if (policy.engine == "auto") {
    return num_nodes <= policy.dijkstra_node_limit ? "dijkstra" : "alt";
  }
  if (policy.engine == "dijkstra" || policy.engine == "dense" ||
      policy.engine == "bidijkstra" || policy.engine == "alt") {
    return policy.engine;
  }
  throw std::invalid_argument(
      "unknown detour engine '" + policy.engine +
      "' (auto|dijkstra|dense|bidijkstra|alt)");
}

DetourEngine make_detour_engine(const graph::RoadNetwork& net,
                                graph::NodeId shop,
                                std::span<const TrafficFlow> flows,
                                const DetourEnginePolicy& policy) {
  DetourEngine built;
  built.engine = resolve_detour_engine(policy, net.num_nodes());
  if (built.engine == "dijkstra") {
    built.detours = std::make_shared<const DetourCalculator>(net, shop);
    return built;
  }
  graph::OraclePolicy oracle_policy = policy.oracle;
  oracle_policy.backend = built.engine;
  built.oracle = graph::make_oracle(net, oracle_policy);
  if (policy.cache_entries > 0) {
    built.cache =
        std::make_shared<graph::SparseDistanceCache>(policy.cache_entries);
  }
  auto engine = std::make_shared<OracleDetourCalculator>(
      net, built.oracle, shop, DetourMode::kAlongPath, built.cache);
  engine->warm(flows);
  built.detours = std::move(engine);
  return built;
}

}  // namespace rap::traffic
