// The paper's literal detour preprocessing: "O(|V|^3) results from the
// calculation of detour distances, since we need to calculate the shortest
// paths between all pairs of nodes."
//
// ApspDetourCalculator materialises the full all-pairs distance matrix and
// prices detours from it — simple, and the right choice when MANY shops are
// evaluated against one network (the matrix is shop-independent). The
// per-shop DetourCalculator (two Dijkstras + per-destination caches) is
// asymptotically cheaper for a single shop on sparse road networks; tests
// assert the two agree exactly, and bench/ablation compares build costs.
#pragma once

#include <memory>

#include "src/graph/apsp.h"
#include "src/traffic/detour.h"

namespace rap::traffic {

class ApspDetourCalculator final : public DetourSource {
 public:
  /// Computes the full distance matrix (O(|V| * Dijkstra)). `net` must
  /// outlive the calculator.
  ApspDetourCalculator(const graph::RoadNetwork& net, graph::NodeId shop,
                       DetourMode mode = DetourMode::kAlongPath);

  /// Shares a precomputed matrix across shops (the multi-shop / shop-siting
  /// use case). `matrix` must outlive the calculator and match `net`.
  ApspDetourCalculator(const graph::RoadNetwork& net,
                       const graph::DistanceMatrix& matrix, graph::NodeId shop,
                       DetourMode mode = DetourMode::kAlongPath);

  [[nodiscard]] graph::NodeId shop() const noexcept { return shop_; }

  [[nodiscard]] std::vector<double> detours_along_path(
      const TrafficFlow& flow) const override;

 private:
  const graph::RoadNetwork* net_;
  std::unique_ptr<graph::DistanceMatrix> owned_matrix_;
  const graph::DistanceMatrix* matrix_;
  graph::NodeId shop_;
  DetourMode mode_;
};

}  // namespace rap::traffic
