#include "src/traffic/flow.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/graph/dijkstra.h"
#include "src/graph/path.h"

namespace rap::traffic {

void validate_flow(const graph::RoadNetwork& net, const TrafficFlow& flow) {
  if (flow.path.empty()) {
    throw std::invalid_argument("validate_flow: empty path");
  }
  if (flow.path.front() != flow.origin ||
      flow.path.back() != flow.destination) {
    throw std::invalid_argument(
        "validate_flow: path endpoints disagree with origin/destination");
  }
  if (!graph::is_walk(net, flow.path)) {
    throw std::invalid_argument("validate_flow: path is not a walk on the network");
  }
  if (!(flow.daily_vehicles >= 0.0) || !std::isfinite(flow.daily_vehicles)) {
    throw std::invalid_argument("validate_flow: daily_vehicles must be finite and >= 0");
  }
  if (!(flow.passengers_per_vehicle > 0.0) ||
      !std::isfinite(flow.passengers_per_vehicle)) {
    throw std::invalid_argument(
        "validate_flow: passengers_per_vehicle must be finite and > 0");
  }
  if (flow.alpha < 0.0 || flow.alpha > 1.0) {
    throw std::invalid_argument("validate_flow: alpha must be in [0, 1]");
  }
}

TrafficFlow make_shortest_path_flow(const graph::RoadNetwork& net,
                                    graph::NodeId origin,
                                    graph::NodeId destination,
                                    double daily_vehicles,
                                    double passengers_per_vehicle,
                                    double alpha) {
  auto path = graph::shortest_path(net, origin, destination);
  if (!path) {
    throw std::invalid_argument(
        "make_shortest_path_flow: destination unreachable");
  }
  TrafficFlow flow;
  flow.origin = origin;
  flow.destination = destination;
  flow.path = std::move(*path);
  flow.daily_vehicles = daily_vehicles;
  flow.passengers_per_vehicle = passengers_per_vehicle;
  flow.alpha = alpha;
  validate_flow(net, flow);
  return flow;
}

std::vector<TrafficFlow> perturb_demand(const std::vector<TrafficFlow>& flows,
                                        double volume_cv, util::Rng& rng) {
  if (volume_cv < 0.0) {
    throw std::invalid_argument("perturb_demand: volume_cv must be >= 0");
  }
  std::vector<TrafficFlow> out = flows;
  for (TrafficFlow& flow : out) {
    const double factor =
        std::max(0.0, 1.0 + rng.next_gaussian(0.0, volume_cv));
    flow.daily_vehicles *= factor;
  }
  return out;
}

double total_population(const std::vector<TrafficFlow>& flows) noexcept {
  double total = 0.0;
  for (const TrafficFlow& flow : flows) total += flow.population();
  return total;
}

}  // namespace rap::traffic
