// Detour-distance engine (Section III-A, Fig. 3).
//
// A driver of flow T(i,j) who receives the advertisement at intersection v
// faces detour distance
//     d = d' + d'' - d'''
// where d'   = shortest distance from v to the shop,
//       d''  = shortest distance from the shop to the destination j,
//       d''' = distance from v to j "directly".
//
// For a flow travelling a shortest path, the remaining distance along the
// path equals the shortest-path distance, so the two readings of d'''
// coincide. Trace-extracted paths can deviate slightly from shortest, so
// both modes are provided:
//   kAlongPath     — d''' is the remaining distance along the driver's own
//                    route (their frame of reference); the default.
//   kShortestPath  — d''' is the network shortest-path distance v -> j
//                    (one cached reverse Dijkstra per distinct destination).
// Detours are clamped at 0 (a shop directly on the route costs nothing) and
// are +infinity when the shop cannot be reached from v or j from the shop.
#pragma once

#include <unordered_map>
#include <vector>

#include "src/graph/dijkstra.h"
#include "src/graph/road_network.h"
#include "src/traffic/flow.h"

namespace rap::traffic {

enum class DetourMode { kAlongPath, kShortestPath };

/// Anything that can price a flow's detour at every node of its path.
/// DetourCalculator is the single-shop implementation; the multi-shop
/// extension (core/multishop.h) takes the minimum over several shops.
class DetourSource {
 public:
  virtual ~DetourSource() = default;

  /// Detour distances at every node of the flow's path, in path order;
  /// kUnreachable where no detour exists.
  [[nodiscard]] virtual std::vector<double> detours_along_path(
      const TrafficFlow& flow) const = 0;

 protected:
  DetourSource() = default;
  DetourSource(const DetourSource&) = default;
  DetourSource& operator=(const DetourSource&) = default;
};

class DetourCalculator final : public DetourSource {
 public:
  /// Runs the two shop Dijkstras eagerly (O(|E| log |V|) each).
  DetourCalculator(const graph::RoadNetwork& net, graph::NodeId shop,
                   DetourMode mode = DetourMode::kAlongPath);

  [[nodiscard]] graph::NodeId shop() const noexcept { return shop_; }
  [[nodiscard]] DetourMode mode() const noexcept { return mode_; }

  /// d' — shortest distance from `node` to the shop.
  [[nodiscard]] double distance_to_shop(graph::NodeId node) const;
  /// d'' — shortest distance from the shop to `node`.
  [[nodiscard]] double distance_from_shop(graph::NodeId node) const;

  /// Detour distances at every node of the flow's path, in path order.
  /// The flow must be valid on the network (validate_flow).
  [[nodiscard]] std::vector<double> detours_along_path(
      const TrafficFlow& flow) const override;

  /// Detour distance at one path position (0-based index into flow.path).
  /// Prefer detours_along_path when evaluating the whole path.
  [[nodiscard]] double detour_at(const TrafficFlow& flow,
                                 std::size_t path_index) const;

 private:
  [[nodiscard]] const graph::ShortestPathTree& tree_to_destination(
      graph::NodeId destination) const;

  const graph::RoadNetwork* net_;
  graph::NodeId shop_;
  DetourMode mode_;
  graph::ShortestPathTree to_shop_;    // reverse Dijkstra from the shop: d'
  graph::ShortestPathTree from_shop_;  // forward Dijkstra from the shop: d''
  // kShortestPath mode: per-destination reverse trees, built on demand.
  mutable std::unordered_map<graph::NodeId, graph::ShortestPathTree>
      to_destination_;
};

}  // namespace rap::traffic
