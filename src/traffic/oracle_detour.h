// Oracle-backed detour engine: ApspDetourCalculator's pricing formula with
// the n^2 matrix replaced by a pluggable DistanceOracle plus a sparse
// per-flow distance cache — a flow only ever pays for the O(path-length)
// distances it actually queries, so metro-scale cities never materialise
// an n x n matrix.
//
// Determinism: the oracle contract (src/graph/oracle.h) guarantees every
// distance is bitwise identical to the dense matrix entry, so detours — and
// therefore placements — are bitwise identical to ApspDetourCalculator's no
// matter which backend prices them (fuzzed by rap_fuzz --family=oracle).
//
// Thread safety: detours_along_path is safe to call concurrently (the cache
// is internally synchronised, oracle queries use thread-local scratch) —
// the property the serve layer's parallel place_batch relies on.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "src/graph/oracle.h"
#include "src/graph/oracle_cache.h"
#include "src/traffic/detour.h"

namespace rap::traffic {

class OracleDetourCalculator final : public DetourSource {
 public:
  /// `net` must outlive the calculator; `oracle` must match `net`. A null
  /// `cache` disables caching (every query hits the oracle).
  OracleDetourCalculator(const graph::RoadNetwork& net,
                         std::shared_ptr<const graph::DistanceOracle> oracle,
                         graph::NodeId shop,
                         DetourMode mode = DetourMode::kAlongPath,
                         std::shared_ptr<graph::SparseDistanceCache> cache =
                             nullptr);

  [[nodiscard]] graph::NodeId shop() const noexcept { return shop_; }
  [[nodiscard]] DetourMode mode() const noexcept { return mode_; }
  [[nodiscard]] const graph::DistanceOracle& oracle() const noexcept {
    return *oracle_;
  }
  [[nodiscard]] std::shared_ptr<graph::SparseDistanceCache> cache()
      const noexcept {
    return cache_;
  }

  [[nodiscard]] std::vector<double> detours_along_path(
      const TrafficFlow& flow) const override;

  /// Pre-computes every distance the given flows will query, in parallel
  /// (deterministic: the distinct key set is sorted, values are pure
  /// functions of keys). With a cache attached, the subsequent per-flow
  /// pricing pass is all hits; without one this is a no-op.
  void warm(std::span<const TrafficFlow> flows) const;

 private:
  [[nodiscard]] double cached_distance(graph::NodeId from,
                                       graph::NodeId to) const;

  const graph::RoadNetwork* net_;
  std::shared_ptr<const graph::DistanceOracle> oracle_;
  graph::NodeId shop_;
  DetourMode mode_;
  std::shared_ptr<graph::SparseDistanceCache> cache_;
};

/// Engine-selection policy shared by rap_cli, rap_serve and the serve
/// scenario builder: which detour engine prices a scenario's flows.
///
/// "auto" keeps the classic per-shop two-Dijkstra DetourCalculator on small
/// cities (n <= dijkstra_node_limit) — byte-for-byte today's behaviour —
/// and switches to the oracle-backed engine above it, where an n^2 matrix
/// or per-query full Dijkstras stop being affordable.
struct DetourEnginePolicy {
  /// "auto" | "dijkstra" | "dense" | "bidijkstra" | "alt".
  std::string engine = "auto";
  /// Auto crossover: node count above which auto abandons the per-shop
  /// Dijkstra engine for the oracle-backed one.
  std::size_t dijkstra_node_limit = 4096;
  /// Oracle construction knobs; `oracle.backend` is overridden by `engine`
  /// when a concrete oracle engine is named.
  graph::OraclePolicy oracle;
  /// Sparse distance cache capacity for the oracle engine (0 = uncached).
  std::size_t cache_entries = graph::SparseDistanceCache::kDefaultMaxEntries;
};

/// The resolved engine name for a concrete node count:
/// "dijkstra" | "dense" | "bidijkstra" | "alt". Throws
/// std::invalid_argument on an unknown engine string.
[[nodiscard]] std::string resolve_detour_engine(
    const DetourEnginePolicy& policy, std::size_t num_nodes);

/// A built detour engine plus the oracle state behind it (null for the
/// "dijkstra" engine, which has none).
struct DetourEngine {
  std::string engine;  ///< resolved name
  std::shared_ptr<const DetourSource> detours;
  std::shared_ptr<const graph::DistanceOracle> oracle;
  std::shared_ptr<graph::SparseDistanceCache> cache;
};

/// Builds the policy-selected engine for `shop` and pre-warms the oracle
/// cache with every distance `flows` will query. `net` must outlive the
/// returned engine.
[[nodiscard]] DetourEngine make_detour_engine(
    const graph::RoadNetwork& net, graph::NodeId shop,
    std::span<const TrafficFlow> flows, const DetourEnginePolicy& policy = {});

}  // namespace rap::traffic
