#include "src/traffic/detour.h"

#include <algorithm>
#include <stdexcept>

#include "src/graph/path.h"

namespace rap::traffic {

DetourCalculator::DetourCalculator(const graph::RoadNetwork& net,
                                   graph::NodeId shop, DetourMode mode)
    : net_(&net),
      shop_(shop),
      mode_(mode),
      to_shop_(graph::dijkstra(net, shop, graph::Direction::kReverse)),
      from_shop_(graph::dijkstra(net, shop, graph::Direction::kForward)) {}

double DetourCalculator::distance_to_shop(graph::NodeId node) const {
  return to_shop_.distance(node);
}

double DetourCalculator::distance_from_shop(graph::NodeId node) const {
  return from_shop_.distance(node);
}

const graph::ShortestPathTree& DetourCalculator::tree_to_destination(
    graph::NodeId destination) const {
  const auto it = to_destination_.find(destination);
  if (it != to_destination_.end()) return it->second;
  return to_destination_
      .emplace(destination,
               graph::dijkstra(*net_, destination, graph::Direction::kReverse))
      .first->second;
}

std::vector<double> DetourCalculator::detours_along_path(
    const TrafficFlow& flow) const {
  validate_flow(*net_, flow);
  const double d2 = from_shop_.distance(flow.destination);  // d''
  std::vector<double> out(flow.path.size(), graph::kUnreachable);
  if (d2 == graph::kUnreachable) return out;

  std::vector<double> direct(flow.path.size());  // d''' per position
  if (mode_ == DetourMode::kAlongPath) {
    const std::vector<double> cum = graph::cumulative_lengths(*net_, flow.path);
    for (std::size_t i = 0; i < flow.path.size(); ++i) {
      direct[i] = cum.back() - cum[i];
    }
  } else {
    const graph::ShortestPathTree& tree = tree_to_destination(flow.destination);
    for (std::size_t i = 0; i < flow.path.size(); ++i) {
      direct[i] = tree.distance(flow.path[i]);
    }
  }

  for (std::size_t i = 0; i < flow.path.size(); ++i) {
    const double d1 = to_shop_.distance(flow.path[i]);  // d'
    if (d1 == graph::kUnreachable || direct[i] == graph::kUnreachable) continue;
    out[i] = std::max(0.0, d1 + d2 - direct[i]);
  }
  return out;
}

double DetourCalculator::detour_at(const TrafficFlow& flow,
                                   std::size_t path_index) const {
  if (path_index >= flow.path.size()) {
    throw std::out_of_range("DetourCalculator::detour_at: bad path index");
  }
  return detours_along_path(flow)[path_index];
}

}  // namespace rap::traffic
