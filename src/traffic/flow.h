// Traffic flows: the paper's T(i,j) — a daily volume of vehicles travelling
// a fixed path from intersection i to intersection j (e.g. commuters
// returning home from the office). Flows carry the advertisement
// attractiveness alpha(T(i,j)) and a passengers-per-vehicle factor so bus
// traces (100 passengers/bus in Dublin, 200 in Seattle) map onto customer
// counts.
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/road_network.h"
#include "src/util/rng.h"

namespace rap::traffic {

using FlowIndex = std::uint32_t;

struct TrafficFlow {
  graph::NodeId origin = graph::kInvalidNode;
  graph::NodeId destination = graph::kInvalidNode;
  /// Travel path in order, path.front() == origin, path.back() == destination.
  std::vector<graph::NodeId> path;
  /// Daily vehicle count on this flow.
  double daily_vehicles = 0.0;
  /// Potential customers per vehicle (bus passengers; 1 for private cars).
  double passengers_per_vehicle = 1.0;
  /// Advertisement attractiveness alpha(T(i,j)) — the detour probability at
  /// zero detour distance.
  double alpha = 1.0;

  /// Potential customers per day travelling this flow.
  [[nodiscard]] double population() const noexcept {
    return daily_vehicles * passengers_per_vehicle;
  }
};

/// Throws std::invalid_argument unless the flow is well-formed on `net`:
/// non-empty walk from origin to destination, positive volumes, alpha in
/// [0, 1].
void validate_flow(const graph::RoadNetwork& net, const TrafficFlow& flow);

/// Builds a flow travelling a shortest path from `origin` to `destination`.
/// Throws if the destination is unreachable.
[[nodiscard]] TrafficFlow make_shortest_path_flow(const graph::RoadNetwork& net,
                                                  graph::NodeId origin,
                                                  graph::NodeId destination,
                                                  double daily_vehicles,
                                                  double passengers_per_vehicle = 1.0,
                                                  double alpha = 1.0);

/// Total potential customers across all flows.
[[nodiscard]] double total_population(const std::vector<TrafficFlow>& flows) noexcept;

/// Demand-perturbed copy of the flows: paths untouched, volumes rescaled by
/// max(0, 1 + volume_cv * N(0,1)) per flow. Throws when volume_cv < 0.
[[nodiscard]] std::vector<TrafficFlow> perturb_demand(
    const std::vector<TrafficFlow>& flows, double volume_cv, util::Rng& rng);

}  // namespace rap::traffic
