// Node/flow incidence index: which flows pass which intersections and at
// what detour distance. Built once per (network, flows, shop) triple, it is
// the data structure every placement algorithm and baseline consumes:
//   * at_node(v)  — the flows passing v with their detour distance at v
//                   (the marginal-gain scan of Algorithms 1 and 2),
//   * stops_of(f) — the intersections of flow f in path order with detours
//                   (non-decreasing by Theorem 1 on shortest-path flows),
//   * passing_vehicles / passing_flow_count — the MaxVehicles and
//     MaxCardinality baseline rankings.
#pragma once

#include <span>
#include <vector>

#include "src/traffic/detour.h"
#include "src/traffic/flow.h"

namespace rap::traffic {

struct NodeIncidence {
  FlowIndex flow = 0;
  double detour = graph::kUnreachable;  ///< detour distance of `flow` at this node
};

struct FlowStop {
  graph::NodeId node = graph::kInvalidNode;
  std::uint32_t path_index = 0;  ///< first position of `node` on the path
  double detour = graph::kUnreachable;
};

class IncidenceIndex {
 public:
  /// Validates every flow; throws std::invalid_argument on a bad one.
  IncidenceIndex(const graph::RoadNetwork& net,
                 const std::vector<TrafficFlow>& flows,
                 const DetourSource& detours);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return node_start_.size() - 1;
  }
  [[nodiscard]] std::size_t num_flows() const noexcept {
    return flow_start_.size() - 1;
  }

  /// Flows passing `node`, each with its (minimum) detour distance there.
  [[nodiscard]] std::span<const NodeIncidence> at_node(graph::NodeId node) const;

  /// Distinct intersections of flow `flow` in path order with detours.
  [[nodiscard]] std::span<const FlowStop> stops_of(FlowIndex flow) const;

  /// Total daily vehicles passing `node` (MaxVehicles ranking).
  [[nodiscard]] double passing_vehicles(graph::NodeId node) const;

  /// Number of distinct flows passing `node` (MaxCardinality ranking).
  [[nodiscard]] std::size_t passing_flow_count(graph::NodeId node) const;

 private:
  void check_node(graph::NodeId node) const;
  void check_flow(FlowIndex flow) const;

  // CSR layouts.
  std::vector<std::uint32_t> node_start_;
  std::vector<NodeIncidence> node_entries_;
  std::vector<std::uint32_t> flow_start_;
  std::vector<FlowStop> flow_entries_;
  std::vector<double> vehicles_at_node_;
};

}  // namespace rap::traffic
