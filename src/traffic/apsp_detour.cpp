#include "src/traffic/apsp_detour.h"

#include <algorithm>
#include <stdexcept>

#include "src/graph/path.h"

namespace rap::traffic {

ApspDetourCalculator::ApspDetourCalculator(const graph::RoadNetwork& net,
                                           graph::NodeId shop, DetourMode mode)
    : net_(&net),
      owned_matrix_(std::make_unique<graph::DistanceMatrix>(
          graph::all_pairs_shortest_paths(net))),
      matrix_(owned_matrix_.get()),
      shop_(shop),
      mode_(mode) {
  net.check_node(shop);
}

ApspDetourCalculator::ApspDetourCalculator(const graph::RoadNetwork& net,
                                           const graph::DistanceMatrix& matrix,
                                           graph::NodeId shop, DetourMode mode)
    : net_(&net), matrix_(&matrix), shop_(shop), mode_(mode) {
  net.check_node(shop);
  if (matrix.size() != net.num_nodes()) {
    throw std::invalid_argument(
        "ApspDetourCalculator: matrix size != network size");
  }
}

std::vector<double> ApspDetourCalculator::detours_along_path(
    const TrafficFlow& flow) const {
  validate_flow(*net_, flow);
  std::vector<double> out(flow.path.size(), graph::kUnreachable);
  const double d2 = (*matrix_)(shop_, flow.destination);  // d''
  if (d2 == graph::kUnreachable) return out;

  std::vector<double> direct(flow.path.size());
  if (mode_ == DetourMode::kAlongPath) {
    const std::vector<double> cum = graph::cumulative_lengths(*net_, flow.path);
    for (std::size_t i = 0; i < flow.path.size(); ++i) {
      direct[i] = cum.back() - cum[i];
    }
  } else {
    for (std::size_t i = 0; i < flow.path.size(); ++i) {
      direct[i] = (*matrix_)(flow.path[i], flow.destination);
    }
  }
  for (std::size_t i = 0; i < flow.path.size(); ++i) {
    const double d1 = (*matrix_)(flow.path[i], shop_);  // d'
    if (d1 == graph::kUnreachable || direct[i] == graph::kUnreachable) continue;
    out[i] = std::max(0.0, d1 + d2 - direct[i]);
  }
  return out;
}

}  // namespace rap::traffic
