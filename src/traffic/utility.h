// Utility functions modelling the driver's detour probability f(d).
//
// The paper uses three (Eqs. 1, 2, 11):
//   threshold:     f(d) = alpha                      if d <= D, else 0
//   linear (i):    f(d) = alpha * (1 - d/D)          if d <= D, else 0
//   sqrt (ii):     f(d) = alpha * (1 - sqrt(d/D))    if d <= D, else 0
// All are non-increasing in d, equal alpha at d = 0, and 0 beyond D.
#pragma once

#include <memory>
#include <string>

namespace rap::traffic {

class UtilityFunction {
 public:
  virtual ~UtilityFunction() = default;

  /// Detour probability for a driver with attractiveness `alpha` facing
  /// detour distance `detour`. Requires detour >= 0 and alpha in [0, 1];
  /// implementations throw std::invalid_argument otherwise. Infinite detour
  /// (unreachable shop) yields 0.
  [[nodiscard]] virtual double probability(double detour, double alpha) const = 0;

  /// The threshold D: probability is exactly 0 for any detour > range().
  [[nodiscard]] virtual double range() const noexcept = 0;

  /// Human-readable name used in reports ("threshold", "linear", "sqrt").
  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  UtilityFunction() = default;
  UtilityFunction(const UtilityFunction&) = default;
  UtilityFunction& operator=(const UtilityFunction&) = default;
};

/// Eq. 1 — constant alpha up to D, then 0.
class ThresholdUtility final : public UtilityFunction {
 public:
  explicit ThresholdUtility(double range);
  [[nodiscard]] double probability(double detour, double alpha) const override;
  [[nodiscard]] double range() const noexcept override { return range_; }
  [[nodiscard]] std::string name() const override { return "threshold"; }

 private:
  double range_;
};

/// Eq. 2 — decays linearly from alpha at d=0 to 0 at d=D.
class LinearUtility final : public UtilityFunction {
 public:
  explicit LinearUtility(double range);
  [[nodiscard]] double probability(double detour, double alpha) const override;
  [[nodiscard]] double range() const noexcept override { return range_; }
  [[nodiscard]] std::string name() const override { return "linear"; }

 private:
  double range_;
};

/// Eq. 11 — decays as 1 - sqrt(d/D): faster than linear everywhere.
class SqrtUtility final : public UtilityFunction {
 public:
  explicit SqrtUtility(double range);
  [[nodiscard]] double probability(double detour, double alpha) const override;
  [[nodiscard]] double range() const noexcept override { return range_; }
  [[nodiscard]] std::string name() const override { return "sqrt"; }

 private:
  double range_;
};

enum class UtilityKind { kThreshold, kLinear, kSqrt };

/// Factory matching the paper's three evaluation utilities.
[[nodiscard]] std::unique_ptr<UtilityFunction> make_utility(UtilityKind kind,
                                                            double range);

/// Validation shared by all implementations; throws std::invalid_argument.
void check_utility_args(double detour, double alpha);

}  // namespace rap::traffic
