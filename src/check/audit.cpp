#include "src/check/audit.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/graph/dijkstra.h"  // graph::kUnreachable
#include "src/obs/telemetry.h"

namespace rap::check {
namespace {

std::atomic<std::uint64_t> g_hook_audits{0};
std::atomic<std::uint64_t> g_hook_violations{0};
// Options for the installed hook. A single auditor may be active at a time
// (enforced by ScopedAuditor), so a plain global is enough.
AuditOptions g_hook_options;
std::atomic<bool> g_auditor_active{false};

std::string format_double(double v) {
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

void audit_hook(const core::PlacementState& state) {
  g_hook_audits.fetch_add(1, std::memory_order_relaxed);
  obs::add_counter("audit.states_checked");
  const AuditResult result = audit_state(state, g_hook_options);
  if (result.ok()) return;
  g_hook_violations.fetch_add(1, std::memory_order_relaxed);
  obs::add_counter("audit.violations");
  std::string message = "placement audit failed:";
  for (const std::string& violation : result.violations) {
    message += "\n  " + violation;
  }
  throw std::logic_error(message);
}

}  // namespace

AuditResult audit_state(const core::PlacementState& state,
                        const AuditOptions& options) {
  AuditResult result;
  const core::CoverageModel& model = state.model();
  const core::Placement& placed = state.placement();
  const std::span<const double> best = state.best_detours();
  const std::span<const double> contribution = state.contributions();
  const std::size_t num_flows = model.num_flows();

  // (A5) placement integrity: valid, distinct ids.
  std::vector<bool> seen(model.num_nodes(), false);
  for (const graph::NodeId node : placed) {
    if (node >= model.num_nodes()) {
      result.violations.push_back("A5: placed node " + std::to_string(node) +
                                  " out of range");
      return result;  // everything below indexes by node id
    }
    if (seen[node]) {
      result.violations.push_back("A5: node " + std::to_string(node) +
                                  " placed twice");
    }
    seen[node] = true;
  }

  // From-scratch recomputation: (A2) minimum detours and (A4) the replay of
  // add()'s documented guarded running max, in insertion order.
  std::vector<double> min_detour(num_flows, graph::kUnreachable);
  std::vector<double> replay_best(num_flows, graph::kUnreachable);
  std::vector<double> replay_contribution(num_flows, 0.0);
  for (const graph::NodeId node : placed) {
    for (const traffic::NodeIncidence& inc : model.reach_at(node)) {
      if (inc.detour < min_detour[inc.flow]) min_detour[inc.flow] = inc.detour;
      if (inc.detour < replay_best[inc.flow]) {
        replay_best[inc.flow] = inc.detour;
        const double candidate = model.customers(inc.flow, inc.detour);
        if (candidate > replay_contribution[inc.flow]) {
          replay_contribution[inc.flow] = candidate;
        }
      }
    }
  }

  double contribution_sum = 0.0;
  for (std::size_t f = 0; f < num_flows; ++f) {
    contribution_sum += contribution[f];
    if (best[f] != min_detour[f]) {
      result.violations.push_back(
          "A2: flow " + std::to_string(f) + " best_detour " +
          format_double(best[f]) + " != recomputed min " +
          format_double(min_detour[f]));
    }
    if (contribution[f] != replay_contribution[f]) {
      result.violations.push_back(
          "A4: flow " + std::to_string(f) + " contribution " +
          format_double(contribution[f]) + " != add() replay " +
          format_double(replay_contribution[f]));
    }
    if (options.monotone_utility) {
      const double expected =
          std::isinf(min_detour[f])
              ? 0.0
              : model.customers(static_cast<traffic::FlowIndex>(f),
                                min_detour[f]);
      if (contribution[f] != expected) {
        result.violations.push_back(
            "A3: flow " + std::to_string(f) + " contribution " +
            format_double(contribution[f]) + " != customers(best_detour) " +
            format_double(expected));
      }
    }
  }

  const double value = state.value();
  const double scale = std::max({1.0, std::abs(value), std::abs(contribution_sum)});
  if (std::abs(value - contribution_sum) > options.value_tolerance * scale) {
    result.violations.push_back("A1: value " + format_double(value) +
                                " != sum of contributions " +
                                format_double(contribution_sum));
  }
  return result;
}

std::uint64_t hook_audits_run() noexcept {
  return g_hook_audits.load(std::memory_order_relaxed);
}

std::uint64_t hook_violations_seen() noexcept {
  return g_hook_violations.load(std::memory_order_relaxed);
}

void reset_hook_counters() noexcept {
  g_hook_audits.store(0, std::memory_order_relaxed);
  g_hook_violations.store(0, std::memory_order_relaxed);
}

ScopedAuditor::ScopedAuditor(AuditOptions options) {
  if (g_auditor_active.exchange(true, std::memory_order_acq_rel)) {
    throw std::logic_error("ScopedAuditor: an auditor is already installed");
  }
  g_hook_options = options;
  previous_ = core::set_placement_audit_hook(&audit_hook);
}

ScopedAuditor::~ScopedAuditor() {
  core::set_placement_audit_hook(previous_);
  g_auditor_active.store(false, std::memory_order_release);
}

}  // namespace rap::check
