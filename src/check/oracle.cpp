#include "src/check/oracle.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/graph/dijkstra.h"  // graph::kUnreachable

namespace rap::check {
namespace {

// Minimum detour per flow over the placed nodes, kUnreachable when none of
// them reaches the flow. The only model access is reach_at — the problem
// definition — never the evaluator.
std::vector<double> min_detours(const core::CoverageModel& model,
                                std::span<const graph::NodeId> nodes) {
  std::vector<double> best(model.num_flows(), graph::kUnreachable);
  for (const graph::NodeId node : nodes) {
    for (const traffic::NodeIncidence& inc : model.reach_at(node)) {
      if (inc.detour < best[inc.flow]) best[inc.flow] = inc.detour;
    }
  }
  return best;
}

double value_of(const core::CoverageModel& model,
                const std::vector<double>& detours) {
  double total = 0.0;
  for (traffic::FlowIndex f = 0; f < detours.size(); ++f) {
    if (std::isinf(detours[f])) continue;
    total += model.customers(f, detours[f]);
  }
  return total;
}

}  // namespace

double oracle_evaluate(const core::CoverageModel& model,
                       std::span<const graph::NodeId> nodes) {
  return value_of(model, min_detours(model, nodes));
}

OracleBest oracle_best_single(const core::CoverageModel& model) {
  OracleBest best;
  for (graph::NodeId v = 0; v < model.num_nodes(); ++v) {
    const graph::NodeId single[] = {v};
    const double value = oracle_evaluate(model, single);
    if (value > best.customers) {
      best.customers = value;
      best.node = v;
    }
  }
  return best;
}

double oracle_gain(const core::CoverageModel& model,
                   std::span<const graph::NodeId> placed, graph::NodeId node) {
  std::vector<graph::NodeId> extended(placed.begin(), placed.end());
  extended.push_back(node);
  return oracle_evaluate(model, extended) - oracle_evaluate(model, placed);
}

double oracle_uncovered_gain(const core::CoverageModel& model,
                             std::span<const graph::NodeId> placed,
                             graph::NodeId node) {
  const std::vector<double> covered = min_detours(model, placed);
  double gain = 0.0;
  for (const traffic::NodeIncidence& inc : model.reach_at(node)) {
    if (!std::isinf(covered[inc.flow]) &&
        model.customers(inc.flow, covered[inc.flow]) > 0.0) {
      continue;  // flow already contributes under `placed`
    }
    gain += model.customers(inc.flow, inc.detour);
  }
  return gain;
}

core::PlacementResult oracle_exhaustive(const core::CoverageModel& model,
                                        std::size_t k, std::size_t max_nodes) {
  const std::size_t n = model.num_nodes();
  if (k == 0) {
    throw std::invalid_argument("oracle_exhaustive: k must be > 0");
  }
  if (n > max_nodes) {
    throw std::invalid_argument("oracle_exhaustive: instance too large");
  }
  core::PlacementResult best;  // empty placement, value 0
  std::vector<graph::NodeId> chosen;
  // Plain DFS over all subsets of size <= k, re-evaluating each leaf from
  // scratch with oracle_evaluate.
  const auto recurse = [&](const auto& self, graph::NodeId first) -> void {
    const double value = oracle_evaluate(model, chosen);
    if (value > best.customers) best = {chosen, value};
    if (chosen.size() == k) return;
    for (graph::NodeId v = first; v < n; ++v) {
      chosen.push_back(v);
      self(self, v + 1);
      chosen.pop_back();
    }
  };
  recurse(recurse, 0);
  return best;
}

}  // namespace rap::check
