// Oracle-backend differential fuzz family (rap_fuzz --family=oracle,
// DESIGN.md §13): on a seeded random scenario, every sparse distance
// backend must reproduce the dense APSP reference *bitwise* — point-to-point
// distances, per-flow detours in both detour modes, and the placements and
// objective values built on top of them. The family also pins:
//   * serial vs parallel (OracleFuzzOptions::parallel_threads) runs of the
//     oracle-backed pipeline are bit-identical, warm() included;
//   * a deliberately tiny distance cache — whose generation flushes force
//     constant recomputation — changes nothing but the hit rate.
// A failing seed attaches the scenario's JSON reproducer, like the core
// differential family.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/check/differential.h"

namespace rap::check {

struct OracleFuzzOptions {
  /// Thread count for the parallel leg of serial-vs-parallel checks.
  std::size_t parallel_threads = 4;
  /// Capacity of the deliberately tiny cache leg; small enough that the
  /// scenario's pricing overflows it and exercises generation flushes.
  std::size_t tiny_cache_entries = 8;
  /// Landmark count for the ALT backend under test.
  std::size_t landmarks = 4;
};

struct OracleFuzzReport {
  std::uint64_t seed = 0;
  std::size_t checks_run = 0;
  std::vector<DiffFailure> failures;
  /// Scenario reproducer JSON; filled when a check fails.
  std::string reproducer_json;
  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
};

/// generate_scenario(seed) + every oracle differential check.
[[nodiscard]] OracleFuzzReport fuzz_oracle_one(
    std::uint64_t seed, const OracleFuzzOptions& options = {});

}  // namespace rap::check
