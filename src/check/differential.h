// Differential checks: pairwise agreement between independent
// implementations of the same placement semantics (DESIGN.md §9).
//
// Given a Scenario, run_differential_checks() asserts, among others:
//   * lazy CELF variants select bit-identically to their eager twins
//     (placements AND values), zero-gain padding included — monotone
//     families only, since CELF laziness assumes submodularity;
//   * serial (1 thread) and parallel (DiffOptions::parallel_threads)
//     runs of every scanning greedy are bit-identical — all families;
//   * the composite greedy matches an independent re-implementation of
//     Algorithm 2's step rule built on the brute-force oracle;
//   * evaluate_placement agrees with oracle_evaluate on greedy outputs and
//     random placements — monotone families (see check/oracle.h for why
//     adversarial utilities legitimately differ);
//   * gain decomposition: gain_if_added == uncovered + improvement
//     (equality when monotone, >= for adversarial utilities, whose
//     improvement term may be negative — the guarded branch);
//   * the k <= 4 exhaustive path equals the oracle's plain enumeration and
//     the greedy family clears its proven approximation ratios against it;
//   * every final PlacementState passes the invariant audit (check/audit.h).
//
// A failing check produces a DiffFailure naming the check and the observed
// values; fuzz_one() additionally attaches the scenario's JSON reproducer
// so `seed + dump` is a complete bug report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/check/scenario.h"

namespace rap::check {

struct DiffOptions {
  /// Thread count for the parallel leg of serial-vs-parallel checks.
  std::size_t parallel_threads = 4;
  /// Random placements per scenario for evaluate-vs-oracle checks.
  std::size_t random_placements = 4;
  /// Skip the oracle's plain-enumeration exhaustive cross-check when
  /// sum_{j<=k} C(n, j) exceeds this (the oracle re-evaluates every leaf
  /// from scratch; this bounds fuzz wall-clock, not correctness).
  std::size_t oracle_exhaustive_budget = 150'000;
  /// Only instances with k at most this run exhaustive/ratio checks.
  std::size_t exhaustive_k_limit = 4;
  /// Relative tolerance for value comparisons that sum in different orders.
  double tolerance = 1e-9;
};

struct DiffFailure {
  std::string check;   ///< stable check name, e.g. "lazy_vs_eager_coverage"
  std::string detail;  ///< observed values, human-readable
};

struct DiffReport {
  std::uint64_t seed = 0;
  std::size_t checks_run = 0;
  std::vector<DiffFailure> failures;
  /// Scenario reproducer JSON; filled by fuzz_one() when a check fails.
  std::string reproducer_json;
  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
};

/// Runs every applicable differential check on the scenario.
[[nodiscard]] DiffReport run_differential_checks(const Scenario& scenario,
                                                 const DiffOptions& options = {});

/// generate_scenario(seed) + run_differential_checks, attaching the JSON
/// reproducer on failure.
[[nodiscard]] DiffReport fuzz_one(std::uint64_t seed,
                                  const DiffOptions& options = {});

}  // namespace rap::check
