// Brute-force oracle for the placement objective.
//
// Everything here recomputes "expected attracted customers" from the
// problem definition alone — per flow, the minimum detour over the placed
// RAPs, then the utility at that detour (paper Section III-A) — with no
// reuse of PlacementState's incremental bookkeeping. Deliberately naive and
// quadratic: the value of these functions is that they cannot share a bug
// with the code they cross-check (src/core/evaluator.h, the greedy family's
// gain functions, the Algorithm 3 k <= 4 exhaustive path).
//
// Semantics note: the oracle implements the paper's objective
// f(min detour) * population. For the non-increasing utilities the paper
// uses this equals PlacementState's running-max contribution exactly; for
// adversarial (non-monotone) utilities the evaluator's documented guarded
// semantics differ (see check/audit.h), so the differential fuzzer compares
// against the oracle only on non-increasing utility families.
#pragma once

#include <cstddef>
#include <span>

#include "src/core/problem.h"

namespace rap::check {

/// Paper-objective value of `nodes` (duplicates and repeated ids are
/// tolerated, matching evaluate_placement).
[[nodiscard]] double oracle_evaluate(const core::CoverageModel& model,
                                     std::span<const graph::NodeId> nodes);

struct OracleBest {
  graph::NodeId node = graph::kInvalidNode;  ///< kInvalidNode when no node gains
  double customers = 0.0;
};

/// Best singleton placement by evaluating every node alone; ties to the
/// lowest id (the greedy family's tie rule).
[[nodiscard]] OracleBest oracle_best_single(const core::CoverageModel& model);

/// First-principles marginal gain of adding `node` to `placed`:
/// oracle_evaluate(placed + node) - oracle_evaluate(placed).
[[nodiscard]] double oracle_gain(const core::CoverageModel& model,
                                 std::span<const graph::NodeId> placed,
                                 graph::NodeId node);

/// First-principles uncovered-only gain (the Algorithm 1 objective): the
/// customers `node` attracts from flows that currently contribute nothing
/// under `placed`.
[[nodiscard]] double oracle_uncovered_gain(const core::CoverageModel& model,
                                           std::span<const graph::NodeId> placed,
                                           graph::NodeId node);

/// Exact optimum by plain enumeration of every <= k subset of ALL nodes (no
/// useful-candidate pruning, no incremental state — the point is
/// independence from src/core/exhaustive.h). Throws std::invalid_argument
/// when the instance exceeds `max_nodes` (a blunt guard against accidental
/// exponential blow-up; the fuzzer only calls this on tiny instances).
[[nodiscard]] core::PlacementResult oracle_exhaustive(
    const core::CoverageModel& model, std::size_t k,
    std::size_t max_nodes = 48);

}  // namespace rap::check
