#include "src/check/scenario.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>

#include "src/geo/point.h"
#include "src/util/rng.h"

namespace rap::check {
namespace {

double checked_range(double range, const char* who) {
  if (!(range > 0.0) || !std::isfinite(range)) {
    throw std::invalid_argument(std::string(who) +
                                ": range D must be finite and > 0");
  }
  return range;
}

void append_double(std::string& out, double v) {
  std::ostringstream s;
  s.precision(17);
  s << v;
  out += s.str();
}

}  // namespace

StepUtility::StepUtility(double range, std::size_t steps)
    : range_(checked_range(range, "StepUtility")), steps_(steps) {
  if (steps_ == 0) {
    throw std::invalid_argument("StepUtility: steps must be > 0");
  }
}

double StepUtility::probability(double detour, double alpha) const {
  traffic::check_utility_args(detour, alpha);
  if (detour > range_) return 0.0;
  // Plateau index 0..steps: full alpha on [0, D/steps), down one notch per
  // plateau, 0 at detour == D.
  const double position = detour / range_ * static_cast<double>(steps_);
  const double drop = std::min(std::floor(position),
                               static_cast<double>(steps_));
  return alpha * (static_cast<double>(steps_) - drop) /
         static_cast<double>(steps_);
}

AdversarialUtility::AdversarialUtility(double range, std::uint64_t seed)
    : range_(checked_range(range, "AdversarialUtility")) {
  // Derive wave parameters from the seed so each scenario gets its own
  // non-monotone shape, deterministically.
  util::SplitMix64 mix(seed);
  const auto unit = [&mix]() {
    return static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
  };
  freq_a_ = 0.5 + 2.5 * unit();
  freq_b_ = 0.5 + 2.5 * unit();
  phase_a_ = 2.0 * std::numbers::pi * unit();
  phase_b_ = 2.0 * std::numbers::pi * unit();
}

double AdversarialUtility::probability(double detour, double alpha) const {
  traffic::check_utility_args(detour, alpha);
  if (detour > range_) return 0.0;
  // Mixture of two sinusoids mapped into [0, 1]: bounded, zero beyond the
  // range, deliberately NOT non-increasing in the detour.
  const double wave = 0.5 + 0.25 * std::sin(freq_a_ * detour + phase_a_) +
                      0.25 * std::sin(freq_b_ * detour + phase_b_);
  return alpha * wave;
}

const char* fuzz_utility_name(FuzzUtility kind) noexcept {
  switch (kind) {
    case FuzzUtility::kThreshold:
      return "threshold";
    case FuzzUtility::kLinear:
      return "linear";
    case FuzzUtility::kSqrt:
      return "sqrt";
    case FuzzUtility::kStep:
      return "step";
    case FuzzUtility::kAdversarial:
      return "adversarial";
  }
  return "unknown";
}

std::unique_ptr<Scenario> generate_scenario(std::uint64_t seed) {
  auto scenario = std::make_unique<Scenario>();
  scenario->seed = seed;
  util::Rng rng(seed);

  // Grid backbone (always strongly connected) plus random chords. Kept
  // independent of the test-only builders in tests/testing/builders.h.
  const std::size_t cols = 3 + static_cast<std::size_t>(rng.next_below(4));
  const std::size_t rows = 3 + static_cast<std::size_t>(rng.next_below(4));
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      scenario->net.add_node(
          {static_cast<double>(c), static_cast<double>(r)});
    }
  }
  const auto at = [&](std::size_t c, std::size_t r) {
    return static_cast<graph::NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        scenario->net.add_two_way_edge(at(c, r), at(c + 1, r), 1.0);
      }
      if (r + 1 < rows) {
        scenario->net.add_two_way_edge(at(c, r), at(c, r + 1), 1.0);
      }
    }
  }
  const std::size_t n = scenario->net.num_nodes();
  const std::size_t extra = static_cast<std::size_t>(rng.next_below(7));
  for (std::size_t i = 0; i < extra; ++i) {
    const auto a = static_cast<graph::NodeId>(rng.next_below(n));
    const auto b = static_cast<graph::NodeId>(rng.next_below(n));
    if (a == b) continue;
    const double len =
        std::max(0.5, geo::euclidean_distance(scenario->net.position(a),
                                              scenario->net.position(b)) *
                          0.9);
    scenario->net.add_two_way_edge(a, b, len);
  }

  const std::size_t num_flows = 4 + static_cast<std::size_t>(rng.next_below(21));
  while (scenario->flows.size() < num_flows) {
    const auto i = static_cast<graph::NodeId>(rng.next_below(n));
    const auto j = static_cast<graph::NodeId>(rng.next_below(n));
    if (i == j) continue;
    const double vehicles = static_cast<double>(1 + rng.next_below(20));
    const double passengers = 1.0 + static_cast<double>(rng.next_below(3));
    const double alpha = rng.next_double(0.1, 1.0);
    scenario->flows.push_back(traffic::make_shortest_path_flow(
        scenario->net, i, j, vehicles, passengers, alpha));
  }

  scenario->shop = static_cast<graph::NodeId>(rng.next_below(n));
  scenario->range = rng.next_double(2.0, 10.0);
  scenario->k = 1 + static_cast<std::size_t>(rng.next_below(6));
  // seed % 5 rather than an rng draw so any contiguous window of seeds
  // covers every utility family.
  scenario->utility_kind = static_cast<FuzzUtility>(seed % 5);
  switch (scenario->utility_kind) {
    case FuzzUtility::kThreshold:
      scenario->utility =
          std::make_unique<traffic::ThresholdUtility>(scenario->range);
      break;
    case FuzzUtility::kLinear:
      scenario->utility =
          std::make_unique<traffic::LinearUtility>(scenario->range);
      break;
    case FuzzUtility::kSqrt:
      scenario->utility =
          std::make_unique<traffic::SqrtUtility>(scenario->range);
      break;
    case FuzzUtility::kStep:
      scenario->utility = std::make_unique<StepUtility>(
          scenario->range, 2 + static_cast<std::size_t>(rng.next_below(5)));
      break;
    case FuzzUtility::kAdversarial:
      scenario->utility =
          std::make_unique<AdversarialUtility>(scenario->range, seed);
      break;
  }

  scenario->problem = std::make_unique<core::PlacementProblem>(
      scenario->net, scenario->flows, scenario->shop, *scenario->utility);
  return scenario;
}

std::string scenario_to_json(const Scenario& scenario) {
  std::string out;
  out += "{\n  \"schema\": \"rap.fuzz.scenario.v1\",\n";
  out += "  \"seed\": " + std::to_string(scenario.seed) + ",\n";
  out += "  \"utility\": \"";
  out += fuzz_utility_name(scenario.utility_kind);
  out += "\",\n  \"range\": ";
  append_double(out, scenario.range);
  out += ",\n  \"k\": " + std::to_string(scenario.k) + ",\n";
  out += "  \"shop\": " + std::to_string(scenario.shop) + ",\n";

  out += "  \"nodes\": [";
  for (std::size_t i = 0; i < scenario.net.num_nodes(); ++i) {
    if (i != 0) out += ", ";
    const geo::Point p = scenario.net.position(static_cast<graph::NodeId>(i));
    out += "[";
    append_double(out, p.x);
    out += ", ";
    append_double(out, p.y);
    out += "]";
  }
  out += "],\n";

  out += "  \"edges\": [";
  for (std::size_t i = 0; i < scenario.net.num_edges(); ++i) {
    if (i != 0) out += ", ";
    const graph::Edge& e = scenario.net.edge(static_cast<graph::EdgeId>(i));
    // Appended piecewise: GCC 12's -Werror=restrict misfires on the
    // operator+(const char*, std::string&&) chain at -O3.
    out += "[";
    out += std::to_string(e.from);
    out += ", ";
    out += std::to_string(e.to);
    out += ", ";
    append_double(out, e.length);
    out += "]";
  }
  out += "],\n";

  out += "  \"flows\": [\n";
  for (std::size_t f = 0; f < scenario.flows.size(); ++f) {
    const traffic::TrafficFlow& flow = scenario.flows[f];
    out += "    {\"path\": [";
    for (std::size_t i = 0; i < flow.path.size(); ++i) {
      if (i != 0) out += ", ";
      out += std::to_string(flow.path[i]);
    }
    out += "], \"vehicles\": ";
    append_double(out, flow.daily_vehicles);
    out += ", \"passengers\": ";
    append_double(out, flow.passengers_per_vehicle);
    out += ", \"alpha\": ";
    append_double(out, flow.alpha);
    out += "}";
    if (f + 1 < scenario.flows.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace rap::check
