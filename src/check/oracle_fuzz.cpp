#include "src/check/oracle_fuzz.h"

#include <cstdio>
#include <memory>
#include <utility>

#include "src/check/scenario.h"
#include "src/core/composite_greedy.h"
#include "src/core/lazy_greedy.h"
#include "src/graph/apsp.h"
#include "src/graph/oracle.h"
#include "src/graph/oracle_cache.h"
#include "src/traffic/apsp_detour.h"
#include "src/traffic/oracle_detour.h"
#include "src/util/thread_pool.h"

namespace rap::check {
namespace {

class ThreadConfigGuard {
 public:
  ThreadConfigGuard() : saved_(util::parallel_config()) {}
  ~ThreadConfigGuard() { util::set_parallel_config(saved_); }
  ThreadConfigGuard(const ThreadConfigGuard&) = delete;
  ThreadConfigGuard& operator=(const ThreadConfigGuard&) = delete;

 private:
  util::ParallelConfig saved_;
};

std::string full_precision(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

/// Every (from, to) pair of the sparse backend against the dense matrix —
/// exact equality, infinities included.
void check_all_pairs(const graph::DistanceMatrix& dense,
                     const graph::DistanceOracle& oracle,
                     OracleFuzzReport& report) {
  ++report.checks_run;
  for (graph::NodeId from = 0; from < dense.size(); ++from) {
    for (graph::NodeId to = 0; to < dense.size(); ++to) {
      const double want = dense(from, to);
      const double got = oracle.distance(from, to);
      if (want == got || (want != want && got != got)) continue;
      report.failures.push_back(
          {std::string("distance_dense_vs_") + std::string(oracle.name()),
           std::to_string(from) + "->" + std::to_string(to) + ": dense " +
               full_precision(want) + " != " + full_precision(got)});
      return;  // one mismatch per backend is a complete bug report
    }
  }
}

/// Per-flow detour vectors of `candidate` against the dense-matrix
/// reference engine — exact equality, element by element.
void check_detours(const Scenario& scenario,
                   const traffic::DetourSource& reference,
                   const traffic::DetourSource& candidate,
                   const std::string& check_name, OracleFuzzReport& report) {
  ++report.checks_run;
  for (std::size_t f = 0; f < scenario.flows.size(); ++f) {
    const std::vector<double> want =
        reference.detours_along_path(scenario.flows[f]);
    const std::vector<double> got =
        candidate.detours_along_path(scenario.flows[f]);
    if (want.size() != got.size()) {
      report.failures.push_back(
          {check_name, "flow " + std::to_string(f) + ": size " +
                           std::to_string(want.size()) + " != " +
                           std::to_string(got.size())});
      return;
    }
    for (std::size_t i = 0; i < want.size(); ++i) {
      if (want[i] == got[i]) continue;
      report.failures.push_back(
          {check_name, "flow " + std::to_string(f) + " node " +
                           std::to_string(i) + ": " + full_precision(want[i]) +
                           " != " + full_precision(got[i])});
      return;
    }
  }
}

void check_placements(const core::PlacementResult& want,
                      const core::PlacementResult& got,
                      const std::string& check_name,
                      OracleFuzzReport& report) {
  ++report.checks_run;
  if (want.nodes != got.nodes) {
    report.failures.push_back(
        {check_name,
         "placements differ (sizes " + std::to_string(want.nodes.size()) +
             " vs " + std::to_string(got.nodes.size()) + ")"});
    return;
  }
  if (want.customers != got.customers) {
    report.failures.push_back({check_name, "objective " +
                                               full_precision(want.customers) +
                                               " != " +
                                               full_precision(got.customers)});
  }
}

/// The oracle-backed problem for the scenario: ALT oracle + shared cache,
/// cache pre-warmed exactly like the serve/CLI paths do it.
std::unique_ptr<core::PlacementProblem> build_oracle_problem(
    const Scenario& scenario,
    const std::shared_ptr<const graph::DistanceOracle>& oracle,
    std::size_t cache_entries) {
  auto engine = std::make_unique<traffic::OracleDetourCalculator>(
      scenario.net, oracle, scenario.shop, traffic::DetourMode::kAlongPath,
      std::make_shared<graph::SparseDistanceCache>(cache_entries));
  engine->warm(scenario.flows);
  return std::make_unique<core::PlacementProblem>(
      scenario.net, scenario.flows, scenario.shop, *scenario.utility,
      std::move(engine));
}

}  // namespace

OracleFuzzReport fuzz_oracle_one(std::uint64_t seed,
                                 const OracleFuzzOptions& options) {
  OracleFuzzReport report;
  report.seed = seed;
  const std::unique_ptr<Scenario> scenario = generate_scenario(seed);
  const graph::RoadNetwork& net = scenario->net;

  const graph::DistanceMatrix dense = graph::all_pairs_shortest_paths(net);
  const auto bidi = std::make_shared<graph::BidirectionalOracle>(net);
  const auto alt = std::make_shared<graph::AltOracle>(
      net, graph::AltParams{options.landmarks, seed});

  check_all_pairs(dense, *bidi, report);
  check_all_pairs(dense, *alt, report);

  // Detour parity in both modes, including the tiny cache whose generation
  // flushes force recomputation mid-pricing.
  for (const traffic::DetourMode mode :
       {traffic::DetourMode::kAlongPath, traffic::DetourMode::kShortestPath}) {
    const char* mode_name =
        mode == traffic::DetourMode::kAlongPath ? "along" : "shortest";
    const traffic::ApspDetourCalculator reference(net, dense, scenario->shop,
                                                  mode);
    const traffic::OracleDetourCalculator alt_engine(
        net, alt, scenario->shop, mode,
        std::make_shared<graph::SparseDistanceCache>());
    const traffic::OracleDetourCalculator bidi_engine(net, bidi,
                                                      scenario->shop, mode);
    const traffic::OracleDetourCalculator tiny_cache_engine(
        net, alt, scenario->shop, mode,
        std::make_shared<graph::SparseDistanceCache>(
            options.tiny_cache_entries));
    check_detours(*scenario, reference, alt_engine,
                  std::string("detours_alt_") + mode_name, report);
    check_detours(*scenario, reference, bidi_engine,
                  std::string("detours_bidijkstra_") + mode_name, report);
    check_detours(*scenario, reference, tiny_cache_engine,
                  std::string("detours_tiny_cache_") + mode_name, report);
  }

  // Placement parity: the same algorithms over a dense-matrix problem and
  // an oracle-backed problem must pick identical nodes and objectives.
  // Lazy-vs-lazy and composite-vs-composite are valid for every utility
  // family (identical inputs -> identical run), unlike lazy-vs-eager.
  const core::PlacementProblem dense_problem(
      net, scenario->flows, scenario->shop, *scenario->utility,
      std::make_unique<traffic::ApspDetourCalculator>(net, dense,
                                                      scenario->shop));
  const std::unique_ptr<core::PlacementProblem> oracle_problem =
      build_oracle_problem(*scenario, alt,
                           graph::SparseDistanceCache::kDefaultMaxEntries);
  const core::PlacementResult dense_lazy =
      core::lazy_marginal_greedy_placement(dense_problem, scenario->k);
  const core::PlacementResult oracle_lazy =
      core::lazy_marginal_greedy_placement(*oracle_problem, scenario->k);
  check_placements(dense_lazy, oracle_lazy, "placement_lazy_dense_vs_oracle",
                   report);
  check_placements(
      core::composite_greedy_placement(dense_problem, scenario->k),
      core::composite_greedy_placement(*oracle_problem, scenario->k),
      "placement_composite_dense_vs_oracle", report);

  // Parallel leg: rebuild + re-place with the worker pool engaged (warm()
  // chunks, APSP row sweep, greedy scans); everything must stay bitwise.
  {
    const ThreadConfigGuard guard;
    util::set_parallel_config({options.parallel_threads});
    const std::unique_ptr<core::PlacementProblem> parallel_problem =
        build_oracle_problem(*scenario, alt,
                             graph::SparseDistanceCache::kDefaultMaxEntries);
    check_placements(
        oracle_lazy,
        core::lazy_marginal_greedy_placement(*parallel_problem, scenario->k),
        "placement_lazy_serial_vs_parallel", report);
  }

  if (!report.ok()) report.reproducer_json = scenario_to_json(*scenario);
  return report;
}

}  // namespace rap::check
