// Invariant auditor for PlacementState — the self-checking half of the
// verification subsystem (DESIGN.md §9).
//
// audit_state() recomputes a PlacementState's bookkeeping from scratch and
// reports every violated invariant:
//
//   (A1) value  == Σ_f contribution[f]                  (within tolerance)
//   (A2) best_detour[f] == min detour over placed RAPs  (exact)
//   (A3) contribution[f] == customers(f, best_detour[f]) (exact; requires a
//        non-increasing utility — the paper's Theorem 1 world)
//   (A4) contribution[f] == replay of the documented add() semantics over
//        the placement in insertion order (exact; holds for ANY utility,
//        including the fuzzer's adversarial non-monotone family, where the
//        guarded running max is order-dependent and (A3) legitimately fails)
//   (A5) the placement holds distinct, valid node ids
//
// Always-on use: the RAP_AUDIT CMake option compiles a hook call into
// PlacementState::add(); ScopedAuditor installs an audit as that hook so
// every placement algorithm in the process is machine-checked after every
// mutation. Each audit bumps the ambient telemetry counter
// "audit.states_checked" (and "audit.violations" on failure) plus
// process-wide atomics for telemetry-free callers.
//
// Concurrency: this subsystem holds no mutex — its shared state is the hook
// pointer and two monotonic counters, all lock-free atomics (hook install /
// uninstall is acquire/release publication; see DESIGN.md §15 on why that
// pattern sits outside the compile-time lock analysis). ScopedAuditor
// additionally enforces single-installer semantics with an atomic flag.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/evaluator.h"

namespace rap::check {

struct AuditOptions {
  /// The paper's utilities are non-increasing, making contribution ==
  /// customers(best_detour) (A3). Adversarial non-monotone utilities break
  /// that equality by design; set false to audit only the always-valid
  /// invariants (A1, A2, A4, A5).
  bool monotone_utility = true;
  /// Relative tolerance for (A1): value accumulates increments while the
  /// audit sums final contributions, so the two may differ in the last ulps.
  double value_tolerance = 1e-9;
};

struct AuditResult {
  std::vector<std::string> violations;
  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
};

/// Audits `state` against the invariants above. Pure check: no throw, no
/// telemetry — callers decide what a violation means.
[[nodiscard]] AuditResult audit_state(const core::PlacementState& state,
                                      const AuditOptions& options = {});

/// Number of audit_state calls made through the installed hook (ScopedAuditor)
/// since process start or the last reset. Process-wide, thread-safe.
[[nodiscard]] std::uint64_t hook_audits_run() noexcept;
[[nodiscard]] std::uint64_t hook_violations_seen() noexcept;
void reset_hook_counters() noexcept;

/// RAII installer of the audit hook: while alive, every
/// PlacementState::add() in a RAP_AUDIT build is followed by audit_state()
/// and a violation throws std::logic_error naming the failed invariants.
/// In a regular build (core::kAuditCompiledIn == false) construction
/// succeeds but the hook never fires — callers that require enforcement
/// should check core::kAuditCompiledIn. Only one auditor may be alive at a
/// time (nesting throws std::logic_error); the previous hook is restored on
/// destruction.
class ScopedAuditor {
 public:
  explicit ScopedAuditor(AuditOptions options = {});
  ~ScopedAuditor();
  ScopedAuditor(const ScopedAuditor&) = delete;
  ScopedAuditor& operator=(const ScopedAuditor&) = delete;

 private:
  core::PlacementAuditHook previous_;
};

}  // namespace rap::check
