// Seeded random problem instances for the differential fuzzer.
//
// A Scenario is a complete, self-owned placement instance — network, flows,
// shop, utility, budget — generated deterministically from a single 64-bit
// seed. The same seed always yields the same instance on every platform
// (all randomness flows through util::Rng), which is what makes a failing
// seed a complete bug report. scenario_to_json() renders the instance as a
// standalone reproducer document ("rap.fuzz.scenario.v1") so a failure can
// be inspected without re-running the generator.
//
// Beyond the paper's threshold/linear/sqrt utilities, two extra families
// widen the search space:
//   * StepUtility — a non-increasing staircase (plateaus and jump
//     discontinuities, still within the paper's Theorem 1 assumptions);
//   * AdversarialUtility — deterministic, bounded in [0, alpha] and zero
//     beyond the range, but deliberately NON-monotone in the detour. It
//     exercises the guarded branch in PlacementState::add() (a smaller
//     detour whose customers do not beat the running max) and the paths the
//     paper's assumptions never reach. CELF laziness and the (A3) audit
//     invariant legitimately do not hold for it; the differential checks
//     know this (see check/differential.h).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/problem.h"
#include "src/graph/road_network.h"
#include "src/traffic/flow.h"
#include "src/traffic/utility.h"

namespace rap::check {

/// Non-increasing staircase: `steps` equal plateaus over [0, range], zero
/// beyond. probability(0) == alpha, like the paper's utilities.
class StepUtility final : public traffic::UtilityFunction {
 public:
  explicit StepUtility(double range, std::size_t steps = 4);
  [[nodiscard]] double probability(double detour, double alpha) const override;
  [[nodiscard]] double range() const noexcept override { return range_; }
  [[nodiscard]] std::string name() const override { return "step"; }

 private:
  double range_;
  std::size_t steps_;
};

/// Deterministic non-monotone utility: a seed-derived mixture of sinusoids
/// mapped into [0, 1], scaled by alpha, zero beyond the range. Bounded and
/// reproducible but NOT non-increasing — the adversarial family.
class AdversarialUtility final : public traffic::UtilityFunction {
 public:
  explicit AdversarialUtility(double range, std::uint64_t seed);
  [[nodiscard]] double probability(double detour, double alpha) const override;
  [[nodiscard]] double range() const noexcept override { return range_; }
  [[nodiscard]] std::string name() const override { return "adversarial"; }

 private:
  double range_;
  double freq_a_;
  double freq_b_;
  double phase_a_;
  double phase_b_;
};

/// Utility families the fuzzer draws from.
enum class FuzzUtility {
  kThreshold,
  kLinear,
  kSqrt,
  kStep,
  kAdversarial,
};

[[nodiscard]] const char* fuzz_utility_name(FuzzUtility kind) noexcept;

/// Whether the family is non-increasing in the detour (the paper's Theorem 1
/// assumption). Checks that rely on monotonicity/submodularity — CELF
/// parity, the (A3) audit invariant, oracle value comparisons — are gated
/// on this.
[[nodiscard]] constexpr bool is_monotone(FuzzUtility kind) noexcept {
  return kind != FuzzUtility::kAdversarial;
}

/// A self-owned random instance. Heap-allocated and pinned (non-copyable,
/// non-movable): `problem` stores pointers into `net` and `utility`, so the
/// addresses must never change.
struct Scenario {
  std::uint64_t seed = 0;
  FuzzUtility utility_kind = FuzzUtility::kThreshold;
  double range = 0.0;
  std::size_t k = 0;
  graph::NodeId shop = graph::kInvalidNode;

  graph::RoadNetwork net;
  std::vector<traffic::TrafficFlow> flows;
  std::unique_ptr<traffic::UtilityFunction> utility;
  std::unique_ptr<core::PlacementProblem> problem;

  Scenario() = default;
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;
};

/// Generates the instance for `seed`: a cols x rows unit grid (3..6 each
/// way) with random chords, 4..24 shortest-path flows with varied volumes
/// and alphas, a random shop, a utility family chosen by seed % 5 (so any
/// contiguous seed window covers every family), range in [2, 10] and
/// k in [1, 6].
[[nodiscard]] std::unique_ptr<Scenario> generate_scenario(std::uint64_t seed);

/// Standalone JSON reproducer ("rap.fuzz.scenario.v1"): seed, generator
/// parameters, and the full materialised instance (nodes, edges, shop,
/// flows with paths/volumes/alphas) with full double precision.
[[nodiscard]] std::string scenario_to_json(const Scenario& scenario);

}  // namespace rap::check
