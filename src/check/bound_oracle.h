// Exact-bound differential fuzz family (rap_fuzz --family=exact,
// DESIGN.md §16): on a seeded random scenario, the certified upper bound
// must actually certify. Per scenario:
//   * soundness — every greedy variant's objective is <= the bound, with
//     the exhaustive tier disabled (so the flow/Lagrangian machinery is the
//     thing under test) AND with the default tiering;
//   * exactness at toy budgets (monotone families; adversarial utilities
//     make evaluation order-dependent, so the ascending-order exhaustive
//     value is not an optimum over orderings) — for k <= 4 the exhaustive
//     optimum is computable, so OPT <= forced bound, and when the forced
//     bound claims optimality it equals OPT within the fixed-point quantum;
//     the default tiering must route to the exhaustive tier and return OPT;
//   * certificates replay — the certificate placement re-evaluates to its
//     recorded objective and never exceeds the bound;
//   * determinism — the whole Bound (value bits, kind, iterations,
//     certificate) is identical under 1 thread and
//     BoundFuzzOptions::parallel_threads threads.
// A failing seed attaches the scenario's JSON reproducer, like the core
// differential family.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/check/differential.h"

namespace rap::check {

struct BoundFuzzOptions {
  /// Thread count for the parallel leg of the determinism check.
  std::size_t parallel_threads = 4;
  /// Subgradient budget for the forced (non-exhaustive) bound.
  std::size_t max_iterations = 60;
};

struct BoundFuzzReport {
  std::uint64_t seed = 0;
  std::size_t checks_run = 0;
  std::vector<DiffFailure> failures;
  /// Scenario reproducer JSON; filled when a check fails.
  std::string reproducer_json;
  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
};

/// generate_scenario(seed) + every exact-bound differential check.
[[nodiscard]] BoundFuzzReport fuzz_bound_one(
    std::uint64_t seed, const BoundFuzzOptions& options = {});

}  // namespace rap::check
