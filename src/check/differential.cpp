#include "src/check/differential.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "src/check/audit.h"
#include "src/check/oracle.h"
#include "src/core/composite_greedy.h"
#include "src/core/evaluator.h"
#include "src/core/exhaustive.h"
#include "src/core/greedy.h"
#include "src/core/lazy_greedy.h"
#include "src/graph/dijkstra.h"  // graph::kUnreachable
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace rap::check {
namespace {

/// Pins the ambient thread count for one leg of a serial-vs-parallel check,
/// restoring the previous config on scope exit.
class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t threads)
      : previous_(util::parallel_config()) {
    util::set_parallel_config({threads});
  }
  ~ScopedThreads() { util::set_parallel_config(previous_); }
  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

 private:
  util::ParallelConfig previous_;
};

bool close(double a, double b, double tol) {
  return std::abs(a - b) <=
         tol * std::max({1.0, std::abs(a), std::abs(b)});
}

std::string fmt(double v) {
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

std::string fmt_nodes(const core::Placement& nodes) {
  std::string out = "[";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i != 0) out += " ";
    out += std::to_string(nodes[i]);
  }
  return out + "]";
}

std::string fmt_result(const core::PlacementResult& r) {
  return fmt_nodes(r.nodes) + " value " + fmt(r.customers);
}

/// sum_{j<=k} C(n, j), saturating well past any budget we would compare to.
double subset_count(std::size_t n, std::size_t k) {
  double total = 0.0;
  double binom = 1.0;  // C(n, 0)
  for (std::size_t j = 0; j <= k; ++j) {
    total += binom;
    if (total > 1e18) return total;
    binom = binom * static_cast<double>(n - j) / static_cast<double>(j + 1);
  }
  return total;
}

class Checker {
 public:
  Checker(DiffReport& report, const DiffOptions& options)
      : report_(report), options_(options) {}

  void expect(bool ok, const char* check, const std::string& detail) {
    ++report_.checks_run;
    if (!ok) report_.failures.push_back({check, detail});
  }

  void expect_bitwise_equal(const core::PlacementResult& a,
                            const core::PlacementResult& b,
                            const char* check) {
    expect(a.nodes == b.nodes && a.customers == b.customers, check,
           fmt_result(a) + " vs " + fmt_result(b));
  }

  void expect_close(double a, double b, const char* check) {
    expect(close(a, b, options_.tolerance), check, fmt(a) + " vs " + fmt(b));
  }

 private:
  DiffReport& report_;
  const DiffOptions& options_;
};

/// Independent re-implementation of Algorithm 2's step rule on top of the
/// oracle's covered-detour bookkeeping — shares no code with
/// PlacementState. Selection mirrors the production scan exactly: ascending
/// ids, strictly-better score wins (so ties go to the lowest id), candidate
/// (i) wins exact ties with candidate (ii), stop on non-positive gain.
core::PlacementResult reference_composite(const core::CoverageModel& model,
                                          std::size_t k) {
  const std::size_t n = model.num_nodes();
  std::vector<bool> placed_mask(n, false);
  core::Placement placed;
  std::vector<double> covered(model.num_flows(), graph::kUnreachable);

  const auto covered_customers = [&](traffic::FlowIndex f) {
    return std::isinf(covered[f]) ? 0.0 : model.customers(f, covered[f]);
  };
  const auto cover_score = [&](graph::NodeId v) {
    double gain = 0.0;
    for (const traffic::NodeIncidence& inc : model.reach_at(v)) {
      if (covered_customers(inc.flow) > 0.0) continue;
      gain += model.customers(inc.flow, inc.detour);
    }
    return gain;
  };
  const auto improve_score = [&](graph::NodeId v) {
    double gain = 0.0;
    for (const traffic::NodeIncidence& inc : model.reach_at(v)) {
      const double current = covered_customers(inc.flow);
      if (current <= 0.0) continue;
      if (inc.detour >= covered[inc.flow]) continue;
      gain += model.customers(inc.flow, inc.detour) - current;
    }
    return gain;
  };
  const auto best_by = [&](const auto& score_of) {
    graph::NodeId best = graph::kInvalidNode;
    double best_score = -1.0;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (placed_mask[v]) continue;
      const double score = score_of(v);
      if (score > best_score) {
        best_score = score;
        best = v;
      }
    }
    return std::pair{best, best_score};
  };

  for (std::size_t step = 0; step < k && placed.size() < n; ++step) {
    const auto [cover_node, cover_gain] = best_by(cover_score);
    const auto [improve_node, improve_gain] = best_by(improve_score);
    const auto [node, gain] = improve_gain > cover_gain
                                  ? std::pair{improve_node, improve_gain}
                                  : std::pair{cover_node, cover_gain};
    if (node == graph::kInvalidNode || gain <= 0.0) break;
    placed_mask[node] = true;
    placed.push_back(node);
    for (const traffic::NodeIncidence& inc : model.reach_at(node)) {
      if (inc.detour < covered[inc.flow]) covered[inc.flow] = inc.detour;
    }
  }
  return {placed, oracle_evaluate(model, placed)};
}

}  // namespace

DiffReport run_differential_checks(const Scenario& scenario,
                                   const DiffOptions& options) {
  DiffReport report;
  report.seed = scenario.seed;
  Checker check(report, options);

  const core::CoverageModel& model = *scenario.problem;
  const std::size_t n = model.num_nodes();
  const std::size_t k = scenario.k;
  const bool monotone = is_monotone(scenario.utility_kind);
  // In RAP_AUDIT builds, every PlacementState::add() issued by any
  // algorithm below is additionally machine-checked; a violation throws out
  // of the algorithm under test. No-op (but still installable) otherwise.
  const ScopedAuditor auditor({.monotone_utility = monotone});
  const core::GreedyOptions pad_cov{.stop_when_no_gain = false};
  const core::CompositeGreedyOptions pad_marg{.stop_when_no_gain = false};

  // --- Serial leg: every eager algorithm under a single thread. ---
  core::PlacementResult cov, naive, comp, cov_pad, naive_pad, clamp_pad;
  {
    const ScopedThreads serial(1);
    cov = core::greedy_coverage_placement(model, k);
    naive = core::naive_marginal_greedy_placement(model, k);
    comp = core::composite_greedy_placement(model, k);
    cov_pad = core::greedy_coverage_placement(model, k, pad_cov);
    naive_pad = core::naive_marginal_greedy_placement(model, k, pad_marg);
    // k-clamp contract: an over-budget k clamps to n instead of throwing,
    // so padding places every node.
    clamp_pad = core::greedy_coverage_placement(model, n + 3, pad_cov);
  }
  check.expect(clamp_pad.nodes.size() == n, "k_clamp_pads_to_n",
               "placed " + std::to_string(clamp_pad.nodes.size()) + " of " +
                   std::to_string(n));

  // --- Parallel leg: bit-identical for any thread count (all families). ---
  {
    const ScopedThreads parallel(options.parallel_threads);
    check.expect_bitwise_equal(cov, core::greedy_coverage_placement(model, k),
                               "serial_vs_parallel_coverage");
    check.expect_bitwise_equal(
        naive, core::naive_marginal_greedy_placement(model, k),
        "serial_vs_parallel_naive_marginal");
    check.expect_bitwise_equal(comp,
                               core::composite_greedy_placement(model, k),
                               "serial_vs_parallel_composite");
  }

  // --- Reported value replays exactly (all families): the incremental
  // value of the selection loop equals a fresh evaluate_placement of the
  // returned nodes, which performs the same add() sequence. ---
  check.expect(core::evaluate_placement(model, cov.nodes) == cov.customers,
               "coverage_value_replays", fmt_result(cov));
  check.expect(core::evaluate_placement(model, naive.nodes) == naive.customers,
               "naive_value_replays", fmt_result(naive));
  check.expect(core::evaluate_placement(model, comp.nodes) == comp.customers,
               "composite_value_replays", fmt_result(comp));

  // --- Lazy vs eager (CELF needs submodularity: monotone families only). ---
  if (monotone) {
    check.expect_bitwise_equal(cov, core::lazy_coverage_placement(model, k),
                               "lazy_vs_eager_coverage");
    check.expect_bitwise_equal(
        naive, core::lazy_marginal_greedy_placement(model, k),
        "lazy_vs_eager_naive_marginal");
    check.expect_bitwise_equal(
        cov_pad,
        core::lazy_coverage_placement(model, k, nullptr, pad_cov),
        "lazy_vs_eager_coverage_padded");
    check.expect_bitwise_equal(
        naive_pad,
        core::lazy_marginal_greedy_placement(model, k, nullptr, pad_marg),
        "lazy_vs_eager_naive_padded");
    check.expect_bitwise_equal(
        clamp_pad,
        core::lazy_coverage_placement(model, n + 3, nullptr, pad_cov),
        "lazy_vs_eager_clamped");
  }

  // --- Composite greedy vs the oracle-based Algorithm 2 reference. The
  // reference's scores are term-for-term the same sums, so placements match
  // exactly; values come from different bookkeeping, hence tolerance. ---
  if (monotone) {
    const core::PlacementResult ref = reference_composite(model, k);
    check.expect(comp.nodes == ref.nodes, "composite_vs_reference_nodes",
                 fmt_result(comp) + " vs " + fmt_result(ref));
    check.expect_close(comp.customers, ref.customers,
                       "composite_vs_reference_value");
  }

  // --- evaluate_placement vs the brute-force oracle. ---
  if (monotone) {
    check.expect_close(cov.customers, oracle_evaluate(model, cov.nodes),
                       "evaluate_vs_oracle_coverage");
    check.expect_close(naive.customers, oracle_evaluate(model, naive.nodes),
                       "evaluate_vs_oracle_naive");
    util::Rng rng = util::Rng(scenario.seed).fork(0x0ddc0ffee);
    for (std::size_t trial = 0; trial < options.random_placements; ++trial) {
      const std::size_t size =
          1 + static_cast<std::size_t>(
                  rng.next_below(std::min<std::uint64_t>(n, 8)));
      core::Placement nodes;
      for (const std::size_t i :
           rng.sample_without_replacement(n, size)) {
        nodes.push_back(static_cast<graph::NodeId>(i));
      }
      check.expect_close(core::evaluate_placement(model, nodes),
                         oracle_evaluate(model, nodes),
                         "evaluate_vs_oracle_random");
    }
  }

  // --- Best single RAP: greedy's first pick vs evaluating every singleton.
  // Works for every family (on an empty state the evaluator's gain equals
  // the singleton value). Near-ties may resolve to different nodes because
  // the two sides sum in different orders, so the values must agree; the
  // ids must agree unless the values tie within tolerance. ---
  {
    const OracleBest single = oracle_best_single(model);
    core::PlacementResult naive1;
    {
      const ScopedThreads serial(1);
      naive1 = core::naive_marginal_greedy_placement(model, 1);
    }
    if (single.node == graph::kInvalidNode) {
      check.expect(naive1.nodes.empty(), "best_single_empty",
                   fmt_result(naive1));
    } else {
      check.expect_close(naive1.customers, single.customers, "best_single_value");
      const graph::NodeId picked =
          naive1.nodes.empty() ? graph::kInvalidNode : naive1.nodes.front();
      const graph::NodeId single_id[] = {picked};
      check.expect(picked == single.node ||
                       (picked != graph::kInvalidNode &&
                        close(oracle_evaluate(model, single_id),
                              single.customers, options.tolerance)),
                   "best_single_node",
                   std::to_string(picked) + " vs " +
                       std::to_string(single.node) + " value " +
                       fmt(single.customers));
    }
  }

  // --- Gain decomposition and the invariant audit on the final state. ---
  {
    core::PlacementState state(model);
    for (const graph::NodeId node : naive.nodes) state.add(node);
    const AuditResult audit =
        audit_state(state, {.monotone_utility = monotone});
    std::string violations;
    for (const std::string& v : audit.violations) violations += v + "; ";
    check.expect(audit.ok(), "final_state_audit", violations);

    util::Rng rng = util::Rng(scenario.seed).fork(0xdec0de);
    for (std::size_t trial = 0; trial < 4; ++trial) {
      const auto v = static_cast<graph::NodeId>(rng.next_below(n));
      if (state.contains(v)) continue;
      const double gain = state.gain_if_added(v);
      const double split =
          state.uncovered_gain(v) + state.improvement_gain(v);
      if (monotone) {
        check.expect_close(gain, split, "gain_decomposition");
        check.expect_close(gain, oracle_gain(model, state.placement(), v),
                           "gain_vs_oracle");
        check.expect_close(
            state.uncovered_gain(v),
            oracle_uncovered_gain(model, state.placement(), v),
            "uncovered_gain_vs_oracle");
      } else {
        // The adversarial family can make improvement negative; the guarded
        // gain never counts a losing swap, so it dominates the split.
        check.expect(gain + options.tolerance >= split,
                     "gain_dominates_decomposition",
                     fmt(gain) + " vs " + fmt(split));
      }
      core::PlacementState added = state;
      added.add(v);
      check.expect_close(added.value() - state.value(), gain,
                         "add_delta_matches_gain");
      const AuditResult added_audit =
          audit_state(added, {.monotone_utility = monotone});
      check.expect(added_audit.ok(), "probe_state_audit",
                   added_audit.ok() ? "" : added_audit.violations.front());
    }
  }

  // --- Exhaustive optimum: Algorithm 3's k <= 4 path vs the oracle's plain
  // enumeration, plus the proven approximation ratios. ---
  if (monotone && k <= options.exhaustive_k_limit) {
    const core::PlacementResult opt = core::exhaustive_optimal_placement(model, k);
    const double tol_eps =
        options.tolerance * (1.0 + std::abs(opt.customers));
    check.expect(core::evaluate_placement(model, opt.nodes) == opt.customers,
                 "exhaustive_value_replays", fmt_result(opt));
    if (subset_count(n, k) <=
        static_cast<double>(options.oracle_exhaustive_budget)) {
      const core::PlacementResult oracle_opt = oracle_exhaustive(model, k);
      check.expect_close(opt.customers, oracle_opt.customers,
                         "exhaustive_vs_oracle");
    }
    // Optimality: no greedy result may beat the optimum.
    for (const core::PlacementResult* r : {&cov, &naive, &comp}) {
      check.expect(r->customers <= opt.customers + tol_eps,
                   "optimum_dominates", fmt_result(*r) + " vs opt " +
                                            fmt_result(opt));
    }
    // Ratios. The naive marginal greedy is the standard greedy on the
    // monotone submodular objective: 1 - 1/e. Composite: 1 - 1/sqrt(e)
    // (paper Theorem 3). Coverage greedy carries 1 - 1/e only under the
    // threshold utility, where coverage equals the objective.
    const double ratio_1e = 1.0 - 1.0 / std::exp(1.0);
    const double ratio_sqrt = 1.0 - 1.0 / std::sqrt(std::exp(1.0));
    check.expect(naive.customers >= ratio_1e * opt.customers - tol_eps,
                 "naive_ratio_1_minus_1_over_e",
                 fmt(naive.customers) + " vs opt " + fmt(opt.customers));
    check.expect(comp.customers >= ratio_sqrt * opt.customers - tol_eps,
                 "composite_ratio_1_minus_1_over_sqrt_e",
                 fmt(comp.customers) + " vs opt " + fmt(opt.customers));
    if (scenario.utility_kind == FuzzUtility::kThreshold) {
      check.expect(cov.customers >= ratio_1e * opt.customers - tol_eps,
                   "coverage_ratio_threshold",
                   fmt(cov.customers) + " vs opt " + fmt(opt.customers));
    }
  }

  return report;
}

DiffReport fuzz_one(std::uint64_t seed, const DiffOptions& options) {
  const std::unique_ptr<Scenario> scenario = generate_scenario(seed);
  DiffReport report = run_differential_checks(*scenario, options);
  if (!report.ok()) report.reproducer_json = scenario_to_json(*scenario);
  return report;
}

}  // namespace rap::check
