#include "src/check/bound_oracle.h"

#include <cstdio>
#include <memory>
#include <string>

#include "src/core/composite_greedy.h"
#include "src/core/evaluator.h"
#include "src/core/exhaustive.h"
#include "src/core/lazy_greedy.h"
#include "src/exact/bound.h"
#include "src/util/thread_pool.h"

namespace rap::check {
namespace {

class ThreadConfigGuard {
 public:
  ThreadConfigGuard() : saved_(util::parallel_config()) {}
  ~ThreadConfigGuard() { util::set_parallel_config(saved_); }
  ThreadConfigGuard(const ThreadConfigGuard&) = delete;
  ThreadConfigGuard& operator=(const ThreadConfigGuard&) = delete;

 private:
  util::ParallelConfig saved_;
};

std::string full_precision(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::string fmt_bound(const exact::Bound& bound) {
  return std::string(exact::to_string(bound.kind)) + " value " +
         full_precision(bound.value) + " certificate " +
         full_precision(bound.certificate.customers) + " after " +
         std::to_string(bound.iterations) + " iterations" +
         (bound.optimal ? " (optimal)" : "");
}

/// Fixed-point quantisation slack of the bound arithmetic, in customers:
/// one ceil() per flow plus double-rounding headroom. Objectives may exceed
/// the scaled bound by at most this (see src/exact/network.h).
double bound_quantum(const core::CoverageModel& model) {
  return static_cast<double>(model.num_flows() + 1) /
         static_cast<double>(exact::kDefaultBoundScale);
}

/// achieved <= bound.value + quantum, for any feasible placement's value.
void check_sound(const exact::Bound& bound, double achieved, double quantum,
                 const std::string& check_name, BoundFuzzReport& report) {
  ++report.checks_run;
  if (achieved <= bound.value + quantum) return;
  report.failures.push_back({check_name, "achievable " +
                                             full_precision(achieved) +
                                             " exceeds " + fmt_bound(bound)});
}

/// The certificate placement is feasible, replays bit-for-bit through
/// evaluate_placement, and never exceeds the bound's value.
void check_certificate(const core::CoverageModel& model, std::size_t k,
                       const exact::Bound& bound, const std::string& check_name,
                       BoundFuzzReport& report) {
  ++report.checks_run;
  if (bound.certificate.nodes.size() > k) {
    report.failures.push_back(
        {check_name, "certificate uses " +
                         std::to_string(bound.certificate.nodes.size()) +
                         " nodes for budget " + std::to_string(k)});
    return;
  }
  const double replayed =
      core::evaluate_placement(model, bound.certificate.nodes);
  if (replayed != bound.certificate.customers) {
    report.failures.push_back(
        {check_name, "certificate replays to " + full_precision(replayed) +
                         " != recorded " +
                         full_precision(bound.certificate.customers)});
    return;
  }
  if (bound.certificate.customers > bound.value) {
    report.failures.push_back(
        {check_name, "certificate exceeds its own bound: " + fmt_bound(bound)});
  }
}

void check_bounds_bitwise(const exact::Bound& want, const exact::Bound& got,
                          const std::string& check_name,
                          BoundFuzzReport& report) {
  ++report.checks_run;
  if (want.value != got.value || want.kind != got.kind ||
      want.iterations != got.iterations || want.optimal != got.optimal ||
      want.certificate.nodes != got.certificate.nodes ||
      want.certificate.customers != got.certificate.customers ||
      want.certificate.multipliers != got.certificate.multipliers) {
    report.failures.push_back(
        {check_name, fmt_bound(want) + " != " + fmt_bound(got)});
  }
}

}  // namespace

BoundFuzzReport fuzz_bound_one(std::uint64_t seed,
                               const BoundFuzzOptions& options) {
  BoundFuzzReport report;
  report.seed = seed;
  const std::unique_ptr<Scenario> scenario = generate_scenario(seed);
  const core::PlacementProblem& model = *scenario->problem;
  const std::size_t k = scenario->k;
  const bool monotone = is_monotone(scenario->utility_kind);
  const double quantum = bound_quantum(model);

  exact::BoundOptions forced_options;
  forced_options.monotone_utility = monotone;
  forced_options.exhaustive_tier = false;  // the machinery under test
  forced_options.max_iterations = options.max_iterations;
  exact::BoundOptions tiered_options;
  tiered_options.monotone_utility = monotone;

  // Serial leg: forced (flow/Lagrangian) and auto-tiered bounds.
  exact::Bound forced;
  exact::Bound tiered;
  {
    const ThreadConfigGuard guard;
    util::set_parallel_config({1});
    forced = exact::certified_upper_bound(model, k, forced_options);
    tiered = exact::certified_upper_bound(model, k, tiered_options);
  }

  // Soundness: every greedy family's objective stays under both bounds.
  // Feasibility is all that matters here, so the adversarial utility family
  // is NOT exempt — the bound dominates per-flow maxima regardless of the
  // evaluator's guarded branch.
  const core::PlacementResult naive =
      core::naive_marginal_greedy_placement(model, k);
  const core::PlacementResult lazy =
      core::lazy_marginal_greedy_placement(model, k);
  const core::PlacementResult composite =
      core::composite_greedy_placement(model, k);
  check_sound(forced, naive.customers, quantum, "forced_bound_vs_naive",
              report);
  check_sound(forced, lazy.customers, quantum, "forced_bound_vs_lazy", report);
  check_sound(forced, composite.customers, quantum, "forced_bound_vs_composite",
              report);
  check_sound(tiered, composite.customers, quantum, "tiered_bound_vs_composite",
              report);

  check_certificate(model, k, forced, "forced_certificate", report);
  check_certificate(model, k, tiered, "tiered_certificate", report);

  // Gap is a well-formed ratio for every greedy value.
  {
    ++report.checks_run;
    const double gap = exact::optimality_gap(composite.customers, forced);
    if (!(gap >= 0.0 && gap <= 1.0)) {
      report.failures.push_back(
          {"gap_in_unit_interval", "gap " + full_precision(gap)});
    }
  }

  // Exactness at toy budgets: the exhaustive optimum is computable, so the
  // forced bound must dominate it, the auto tier must route to it, and a
  // forced bound claiming optimality must match it within the quantum.
  // Monotone families only: for adversarial utilities evaluation is
  // order-dependent, so the ascending-order exhaustive value is not the
  // optimum over orderings (same gating as check/differential.cpp).
  if (monotone && k <= 4 &&
      core::exhaustive_combination_count(model, k) <=
          exact::BoundOptions{}.exhaustive_cap) {
    const core::PlacementResult opt =
        core::exhaustive_optimal_placement(model, k);
    check_sound(forced, opt.customers, quantum, "forced_bound_vs_opt", report);
    ++report.checks_run;
    if (tiered.kind != exact::BoundKind::kExhaustive) {
      report.failures.push_back(
          {"tiered_routes_exhaustive", fmt_bound(tiered)});
    } else if (!tiered.optimal || tiered.value < opt.customers) {
      report.failures.push_back(
          {"tiered_equals_opt", fmt_bound(tiered) + " vs OPT " +
                                    full_precision(opt.customers)});
    }
    ++report.checks_run;
    if (forced.optimal &&
        forced.value - opt.customers > quantum) {
      report.failures.push_back(
          {"forced_optimal_is_tight", fmt_bound(forced) + " vs OPT " +
                                          full_precision(opt.customers)});
    }
  }

  // Determinism: the entire forced Bound is bitwise identical when the
  // worker pool is engaged (the tier is sequential by construction; this
  // pins that property against future parallelisation of its inputs).
  {
    const ThreadConfigGuard guard;
    util::set_parallel_config({options.parallel_threads});
    const exact::Bound parallel =
        exact::certified_upper_bound(model, k, forced_options);
    check_bounds_bitwise(forced, parallel, "forced_bound_serial_vs_parallel",
                         report);
  }

  if (!report.ok()) report.reproducer_json = scenario_to_json(*scenario);
  return report;
}

}  // namespace rap::check
