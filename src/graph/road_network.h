// Directed road network: intersections (nodes with planar coordinates) and
// streets (directed weighted edges). Two-way streets are a pair of directed
// edges; one-way streets a single edge — matching Section III-A of the paper
// ("one-way and two-way streets").
//
// Thread safety: concurrent const access (including the lazily built
// adjacency behind out_edges/in_edges) is safe; mutation requires exclusive
// access, like a standard container.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/geo/bbox.h"
#include "src/geo/point.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace rap::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = ~NodeId{0};

struct Edge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  double length = 0.0;
};

class RoadNetwork {
 public:
  RoadNetwork() = default;

  // The adjacency cache's mutex/atomic make the defaults ill-formed; copies
  // take only the graph itself (the copy rebuilds its adjacency on demand),
  // moves carry the cache along.
  RoadNetwork(const RoadNetwork& other);
  RoadNetwork& operator=(const RoadNetwork& other);
  RoadNetwork(RoadNetwork&& other) noexcept;
  RoadNetwork& operator=(RoadNetwork&& other) noexcept;

  /// Adds an intersection at `position`; returns its id (ids are dense,
  /// starting at 0).
  NodeId add_node(geo::Point position);

  /// Adds a one-way street. Throws on invalid endpoints, self-loops, or
  /// non-positive / non-finite length.
  EdgeId add_edge(NodeId from, NodeId to, double length);

  /// Adds a two-way street (two directed edges of equal length); returns the
  /// id of the forward edge (the backward edge is the next id).
  EdgeId add_two_way_edge(NodeId a, NodeId b, double length);

  /// Convenience: two-way street with length = Euclidean node distance.
  EdgeId add_street(NodeId a, NodeId b);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return positions_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

  [[nodiscard]] geo::Point position(NodeId node) const;
  [[nodiscard]] const std::vector<geo::Point>& positions() const noexcept {
    return positions_;
  }
  [[nodiscard]] const Edge& edge(EdgeId id) const;
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// Outgoing edge ids of a node. Valid until the next add_edge call after
  /// which the adjacency is lazily rebuilt.
  [[nodiscard]] std::span<const EdgeId> out_edges(NodeId node) const;
  /// Incoming edge ids of a node (for reverse Dijkstra).
  [[nodiscard]] std::span<const EdgeId> in_edges(NodeId node) const;

  [[nodiscard]] std::size_t out_degree(NodeId node) const;
  [[nodiscard]] std::size_t in_degree(NodeId node) const;

  /// Bounding box of all node positions.
  [[nodiscard]] geo::BBox bounds() const;

  /// True if every node can reach every other node (strong connectivity).
  [[nodiscard]] bool is_strongly_connected() const;

  /// Ids of all nodes in the largest strongly connected component.
  [[nodiscard]] std::vector<NodeId> largest_scc() const;

  /// Validates a node id, throwing std::out_of_range on failure.
  void check_node(NodeId node) const;

 private:
  struct Adjacency {
    std::vector<std::uint32_t> start;  // CSR offsets, size num_nodes+1
    std::vector<EdgeId> entries;
  };

  void ensure_adjacency() const RAP_EXCLUDES(adjacency_mutex_);
  [[nodiscard]] Adjacency build_adjacency(bool incoming) const;

  std::vector<geo::Point> positions_;
  std::vector<Edge> edges_;

  // Lazily built CSR caches with double-checked locking: concurrent readers
  // (e.g. the parallel APSP's Dijkstra workers) may race to build them, so
  // the valid flag is an acquire/release atomic and construction is
  // serialised by the mutex (see ensure_adjacency). The GUARDED_BY covers
  // the build; the lock-free reads in out_edges/in_edges are ordered by the
  // acquire load of adjacency_valid_ — a publication pattern the analysis
  // cannot see, suppressed (with justification) at those two definitions.
  mutable util::Mutex adjacency_mutex_;
  mutable Adjacency out_adj_ RAP_GUARDED_BY(adjacency_mutex_);
  mutable Adjacency in_adj_ RAP_GUARDED_BY(adjacency_mutex_);
  mutable std::atomic<bool> adjacency_valid_{false};
};

}  // namespace rap::graph
