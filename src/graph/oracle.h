// Pluggable point-to-point distance oracles — the metro-scale replacement
// for the dense all-pairs matrix (ROADMAP: "the single refactor that unlocks
// every other scale item").
//
// Determinism contract (the whole point — see DESIGN.md §13): every backend
// returns distances *bitwise identical* to the dense reference
// `all_pairs_shortest_paths(net)(from, to)`. The dense rows are the unique
// fixpoint of forward relaxation, dist[v] = min over edges (u,v) of
// fl(dist[u] + w), where fl is IEEE double addition. All sparse backends
// therefore compute their answers with *forward relaxations only*; data with
// a different floating-point association — reverse-Dijkstra sums, landmark
// differences — is only ever used as a *heuristic*, deflated by a relative
// slack (kHeuristicSlack) that dwarfs accumulated rounding error so it stays
// a strict lower bound on every floating-point path sum. An A* search with
// such a lower bound settles the target at exactly the forward-fixpoint
// value, so placements downstream are bitwise identical no matter which
// backend priced the distances (enforced by tests/graph/oracle_test.cpp and
// rap_fuzz --family=oracle).
//
// Backends:
//   DenseOracle          — wraps the n^2 matrix; O(1) queries, O(n^2)
//                          memory. The reference, and the right choice for
//                          toy cities queried densely.
//   BidirectionalOracle  — target-pruned bidirectional Dijkstra: a backward
//                          ball from the target bounds the search, then a
//                          forward A* finishes the query exactly. No
//                          preprocessing, O(n) scratch.
//   AltOracle            — ALT (A*, landmarks, triangle inequality):
//                          seeded deterministic farthest-point landmark
//                          selection, 2L Dijkstra tables (O(L*n) memory),
//                          forward A* with the landmark lower bound.
//
// Thread safety: distance() is safe to call concurrently on all backends
// (search scratch is thread-local, epoch-stamped so queries are
// allocation-free after warm-up).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/graph/apsp.h"
#include "src/graph/road_network.h"

namespace rap::graph {

/// Relative slack by which heuristics derived from non-forward sums are
/// deflated. Accumulated rounding error over a P-hop path is at most
/// ~P * 2^-52 relative (~1e-12 for a million hops); 1e-9 dominates it by
/// three orders of magnitude while remaining negligible for search pruning.
inline constexpr double kHeuristicSlack = 1e-9;

/// Point-to-point shortest-path distances on a fixed RoadNetwork.
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// Shortest-path distance from -> to (kUnreachable when disconnected),
  /// bitwise identical to the dense APSP matrix entry. Thread-safe.
  [[nodiscard]] virtual double distance(NodeId from, NodeId to) const = 0;

  /// Batched common-source queries; the default loops distance().
  [[nodiscard]] virtual std::vector<double> distances_from(
      NodeId source, const std::vector<NodeId>& targets) const;

  /// Backend name for logs/metrics: "dense" | "bidijkstra" | "alt".
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Resident bytes of preprocessing state (matrix, landmark tables).
  [[nodiscard]] virtual std::size_t memory_bytes() const noexcept = 0;

 protected:
  DistanceOracle() = default;
  DistanceOracle(const DistanceOracle&) = default;
  DistanceOracle& operator=(const DistanceOracle&) = default;
};

/// The dense reference: O(1) lookups into an n^2 matrix.
class DenseOracle final : public DistanceOracle {
 public:
  /// Builds the matrix (|V| Dijkstras). Throws DenseLimitError when the
  /// network exceeds `matrix_node_limit` — before allocating (0 = no limit).
  explicit DenseOracle(const RoadNetwork& net,
                       std::size_t matrix_node_limit = kDenseNodeLimit);

  /// Shares an existing matrix (the multi-shop / shop-siting use case).
  explicit DenseOracle(std::shared_ptr<const DistanceMatrix> matrix);

  [[nodiscard]] double distance(NodeId from, NodeId to) const override;
  [[nodiscard]] std::vector<double> distances_from(
      NodeId source, const std::vector<NodeId>& targets) const override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "dense";
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept override;

  [[nodiscard]] const DistanceMatrix& matrix() const noexcept {
    return *matrix_;
  }

 private:
  std::shared_ptr<const DistanceMatrix> matrix_;
};

/// Target-pruned bidirectional Dijkstra. Phase 1 grows forward and backward
/// balls until their radii cover the tentative meet; phase 2 finishes with a
/// forward A* whose heuristic is the (deflated) backward ball, so the
/// returned value is the exact forward fixpoint.
class BidirectionalOracle final : public DistanceOracle {
 public:
  /// `net` must outlive the oracle.
  explicit BidirectionalOracle(const RoadNetwork& net);

  [[nodiscard]] double distance(NodeId from, NodeId to) const override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "bidijkstra";
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept override;

 private:
  const RoadNetwork* net_;
};

struct AltParams {
  /// Landmark count; clamped to the node count. More landmarks = tighter
  /// bounds = smaller searches, at O(n) memory and 2 Dijkstras each.
  std::size_t landmarks = 8;
  /// Seed for the first (random) landmark; the rest are farthest-point,
  /// ties to the lowest node id — fully deterministic per (net, params).
  std::uint64_t seed = 1;
};

/// ALT: A* with landmark triangle-inequality lower bounds.
class AltOracle final : public DistanceOracle {
 public:
  /// Preprocesses 2*landmarks Dijkstra trees. `net` must outlive the
  /// oracle.
  explicit AltOracle(const RoadNetwork& net, AltParams params = {});

  [[nodiscard]] double distance(NodeId from, NodeId to) const override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "alt";
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept override;

  [[nodiscard]] const std::vector<NodeId>& landmarks() const noexcept {
    return landmarks_;
  }

  /// The (deflated) landmark lower bound on d(from, to) — the A* heuristic.
  /// Exposed for the admissibility/consistency property tests: the value is
  /// always <= the true shortest-path distance.
  [[nodiscard]] double heuristic(NodeId from, NodeId to) const;

 private:
  const RoadNetwork* net_;
  std::vector<NodeId> landmarks_;
  // Flat L x n tables: fwd_[l*n + v] = d(landmark_l -> v),
  // bwd_[l*n + v] = d(v -> landmark_l).
  std::vector<double> fwd_;
  std::vector<double> bwd_;
};

/// Backend-selection policy shared by rap_cli, shop siting, and serve.
struct OraclePolicy {
  /// "auto" | "dense" | "bidijkstra" | "alt". Auto picks dense while the
  /// matrix is affordable (n <= dense_node_limit), alt above.
  std::string backend = "auto";
  /// Auto-policy crossover: below this the n^2 matrix wins on query speed
  /// and build cost; above it, memory dominates. 2048^2 doubles = 32 MiB.
  std::size_t dense_node_limit = 2048;
  /// Hard refusal bound forwarded to DistanceMatrix (0 = unlimited).
  std::size_t matrix_node_limit = kDenseNodeLimit;
  std::size_t landmarks = 8;
  std::uint64_t landmark_seed = 1;
};

enum class OracleBackend { kDense, kBidirectional, kAlt };

/// Resolves the policy against a concrete node count. Throws
/// std::invalid_argument on an unknown backend string.
[[nodiscard]] OracleBackend resolve_oracle_backend(const OraclePolicy& policy,
                                                   std::size_t num_nodes);

[[nodiscard]] std::string_view to_string(OracleBackend backend) noexcept;

/// Builds the policy-selected backend (under a "graph.oracle.build" span,
/// recording graph.oracle.{backend_*,build.memory_bytes} metrics).
[[nodiscard]] std::shared_ptr<const DistanceOracle> make_oracle(
    const RoadNetwork& net, const OraclePolicy& policy = {});

}  // namespace rap::graph
