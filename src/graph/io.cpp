#include "src/graph/io.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/util/csv.h"
#include "src/util/strings.h"

namespace rap::graph {
namespace {

// Positional error context: every failure names the source (file name or
// "<string>") and the 1-based line of the row being parsed, so a malformed
// network file is diagnosable without bisecting it by hand.
struct ParsePosition {
  std::string_view source;
  std::size_t line = 0;
};

[[noreturn]] void fail(const ParsePosition& at, const std::string& message) {
  throw std::invalid_argument(std::string(at.source) + ":" +
                              std::to_string(at.line) + ": " + message);
}

double parse_double(const ParsePosition& at, const std::string& text) {
  try {
    std::size_t used = 0;
    const double out = std::stod(text, &used);
    if (used != text.size()) fail(at, "not a number: '" + text + "'");
    return out;
  } catch (const std::logic_error&) {
    fail(at, "not a number: '" + text + "'");
  }
}

NodeId parse_node(const ParsePosition& at, const std::string& text) {
  NodeId out = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    fail(at, "not a node id: '" + text + "'");
  }
  return out;
}

}  // namespace

std::string network_to_csv(const RoadNetwork& net) {
  std::ostringstream out;
  util::CsvWriter writer(out);
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    const geo::Point p = net.position(v);
    writer.write_row({"node", util::format_fixed(p.x, 6),
                      util::format_fixed(p.y, 6)});
  }
  for (const Edge& e : net.edges()) {
    writer.write_row({"edge", std::to_string(e.from), std::to_string(e.to),
                      util::format_fixed(e.length, 6)});
  }
  return out.str();
}

RoadNetwork network_from_csv(std::string_view text,
                             std::string_view source_name) {
  RoadNetwork net;
  std::vector<util::CsvRecord> records;
  try {
    records = util::parse_csv_records(text);
  } catch (const std::invalid_argument& error) {
    throw std::invalid_argument(std::string(source_name) + ": " + error.what());
  }
  for (const util::CsvRecord& record : records) {
    const auto& row = record.fields;
    const ParsePosition at{source_name, record.line};
    if (row.empty()) continue;
    if (row[0] == "node") {
      if (row.size() != 3) fail(at, "node row needs x,y");
      net.add_node({parse_double(at, row[1]), parse_double(at, row[2])});
    } else if (row[0] == "edge") {
      if (row.size() != 4) fail(at, "edge row needs from,to,length");
      const NodeId from = parse_node(at, row[1]);
      const NodeId to = parse_node(at, row[2]);
      if (from >= net.num_nodes() || to >= net.num_nodes()) {
        fail(at, "edge references an undeclared node");
      }
      try {
        net.add_edge(from, to, parse_double(at, row[3]));
      } catch (const std::invalid_argument& error) {
        // RoadNetwork rejects self-loops and non-positive/non-finite
        // lengths; re-anchor its message to the offending row.
        fail(at, error.what());
      }
    } else {
      fail(at, "unknown row kind '" + row[0] + "'");
    }
  }
  return net;
}

void write_network_csv(const std::filesystem::path& path,
                       const RoadNetwork& net) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_network_csv: cannot open " + path.string());
  }
  out << network_to_csv(net);
  if (!out) {
    throw std::runtime_error("write_network_csv: write failed for " +
                             path.string());
  }
}

RoadNetwork read_network_csv(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_network_csv: cannot open " + path.string());
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return network_from_csv(buffer.str(), path.string());
}

}  // namespace rap::graph
