#include "src/graph/io.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/util/csv.h"
#include "src/util/strings.h"

namespace rap::graph {
namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument("network csv: " + message);
}

double parse_double(const std::string& text) {
  try {
    std::size_t used = 0;
    const double out = std::stod(text, &used);
    if (used != text.size()) fail("not a number: '" + text + "'");
    return out;
  } catch (const std::logic_error&) {
    fail("not a number: '" + text + "'");
  }
}

NodeId parse_node(const std::string& text) {
  NodeId out = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    fail("not a node id: '" + text + "'");
  }
  return out;
}

}  // namespace

std::string network_to_csv(const RoadNetwork& net) {
  std::ostringstream out;
  util::CsvWriter writer(out);
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    const geo::Point p = net.position(v);
    writer.write_row({"node", util::format_fixed(p.x, 6),
                      util::format_fixed(p.y, 6)});
  }
  for (const Edge& e : net.edges()) {
    writer.write_row({"edge", std::to_string(e.from), std::to_string(e.to),
                      util::format_fixed(e.length, 6)});
  }
  return out.str();
}

RoadNetwork network_from_csv(std::string_view text) {
  RoadNetwork net;
  for (const auto& row : util::parse_csv(text)) {
    if (row.empty()) continue;
    if (row[0] == "node") {
      if (row.size() != 3) fail("node row needs x,y");
      net.add_node({parse_double(row[1]), parse_double(row[2])});
    } else if (row[0] == "edge") {
      if (row.size() != 4) fail("edge row needs from,to,length");
      const NodeId from = parse_node(row[1]);
      const NodeId to = parse_node(row[2]);
      if (from >= net.num_nodes() || to >= net.num_nodes()) {
        fail("edge references an undeclared node");
      }
      net.add_edge(from, to, parse_double(row[3]));
    } else {
      fail("unknown row kind '" + row[0] + "'");
    }
  }
  return net;
}

void write_network_csv(const std::filesystem::path& path,
                       const RoadNetwork& net) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_network_csv: cannot open " + path.string());
  }
  out << network_to_csv(net);
  if (!out) {
    throw std::runtime_error("write_network_csv: write failed for " +
                             path.string());
  }
}

RoadNetwork read_network_csv(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_network_csv: cannot open " + path.string());
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return network_from_csv(buffer.str());
}

}  // namespace rap::graph
