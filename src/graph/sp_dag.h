// Shortest-path DAG queries for a fixed origin/destination pair.
//
// Section IV of the paper relaxes the unique-path assumption: in grid-like
// cities a flow has *many* shortest paths, and drivers pick the one passing a
// RAP to collect the free advertisement. The exact membership test — node v
// lies on some shortest path from i to j iff
//     dist(i, v) + dist(v, j) == dist(i, j)
// — needs dist(i, ·) (forward Dijkstra from i) and dist(·, j) (reverse
// Dijkstra from j), which this class caches.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/graph/dijkstra.h"
#include "src/graph/road_network.h"

namespace rap::graph {

class ShortestPathDag {
 public:
  /// Throws std::invalid_argument when j is unreachable from i.
  ShortestPathDag(const RoadNetwork& net, NodeId origin, NodeId destination);

  [[nodiscard]] NodeId origin() const noexcept { return origin_; }
  [[nodiscard]] NodeId destination() const noexcept { return destination_; }
  [[nodiscard]] double total_distance() const noexcept { return total_; }

  /// dist(origin, v); kUnreachable if v cannot be reached.
  [[nodiscard]] double distance_from_origin(NodeId v) const;
  /// dist(v, destination); kUnreachable if the destination is not reachable.
  [[nodiscard]] double distance_to_destination(NodeId v) const;

  /// True iff v lies on at least one shortest origin->destination path.
  [[nodiscard]] bool on_some_shortest_path(NodeId v) const;

  /// All nodes on some shortest path, in ascending node id.
  [[nodiscard]] std::vector<NodeId> dag_nodes() const;

  /// One concrete shortest path that passes through `via`; std::nullopt when
  /// `via` is not on the DAG.
  [[nodiscard]] std::optional<std::vector<NodeId>> path_via(NodeId via) const;

  /// Number of distinct shortest paths (counts capped at 2^63-1 to avoid
  /// overflow on large grids; exact below the cap).
  [[nodiscard]] std::uint64_t count_paths() const;

 private:
  static constexpr double kTol = 1e-9;

  const RoadNetwork* net_;
  NodeId origin_;
  NodeId destination_;
  double total_ = 0.0;
  ShortestPathTree from_origin_;
  ShortestPathTree to_destination_;
};

}  // namespace rap::graph
