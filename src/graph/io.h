// Road-network CSV serialisation. One self-describing text format:
//
//   node,x,y
//   ...            (one row per intersection, ids implicit by order)
//   edge,from,to,length
//   ...            (one row per DIRECTED edge)
//
// Two-way streets appear as two edge rows, so a round trip reproduces the
// network exactly. Lets users persist generated cities or load real maps
// exported from GIS tooling.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

#include "src/graph/road_network.h"

namespace rap::graph {

/// Serialises the network (nodes first, then edges).
[[nodiscard]] std::string network_to_csv(const RoadNetwork& net);

/// Parses a network. Throws std::invalid_argument on malformed rows,
/// unknown row kinds, edges before all their endpoints, or invalid edge
/// data (RoadNetwork's own validation applies). Every parse error names the
/// source and the 1-based line of the offending row, e.g.
/// "net.csv:7: edge row needs from,to,length". `source_name` labels the
/// text's origin ("<string>" by default; the file wrapper passes the path).
[[nodiscard]] RoadNetwork network_from_csv(std::string_view text,
                                           std::string_view source_name =
                                               "<string>");

/// File wrappers (throw std::runtime_error on I/O failure).
void write_network_csv(const std::filesystem::path& path,
                       const RoadNetwork& net);
[[nodiscard]] RoadNetwork read_network_csv(const std::filesystem::path& path);

}  // namespace rap::graph
