#include "src/graph/dijkstra.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "src/obs/telemetry.h"

namespace rap::graph {
namespace {

struct QueueEntry {
  double dist;
  NodeId node;
  friend bool operator>(const QueueEntry& a, const QueueEntry& b) noexcept {
    return a.dist > b.dist;
  }
};

using MinQueue =
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>;

struct RunResult {
  std::vector<double> dist;
  std::vector<NodeId> parent;
};

// `target == kInvalidNode` runs to completion; otherwise stops once the
// target is settled.
RunResult run(const RoadNetwork& net, NodeId source, Direction direction,
              NodeId target) {
  net.check_node(source);
  RunResult out;
  out.dist.assign(net.num_nodes(), kUnreachable);
  out.parent.assign(net.num_nodes(), kInvalidNode);
  out.dist[source] = 0.0;

  // Work counters stay plain locals in the loop (an increment each) and
  // flush to the ambient telemetry once per run, so the search itself never
  // touches the registry.
  std::uint64_t settled = 0;
  std::uint64_t pushes = 1;

  MinQueue queue;
  queue.push({0.0, source});
  while (!queue.empty()) {
    const auto [d, v] = queue.top();
    queue.pop();
    if (d > out.dist[v]) continue;  // stale entry
    ++settled;
    if (v == target) break;
    const auto edges = direction == Direction::kForward ? net.out_edges(v)
                                                        : net.in_edges(v);
    for (const EdgeId id : edges) {
      const Edge& e = net.edge(id);
      const NodeId next = direction == Direction::kForward ? e.to : e.from;
      const double candidate = d + e.length;
      if (candidate < out.dist[next]) {
        out.dist[next] = candidate;
        out.parent[next] = v;
        queue.push({candidate, next});
        ++pushes;
      }
    }
  }
  if (obs::ambient() != nullptr) {
    obs::add_counter("dijkstra.runs");
    obs::add_counter("dijkstra.nodes_settled", settled);
    obs::add_counter("dijkstra.heap_pushes", pushes);
  }
  return out;
}

}  // namespace

double ShortestPathTree::distance(NodeId node) const {
  if (node >= dist_.size()) {
    throw std::out_of_range("ShortestPathTree::distance: bad node id");
  }
  return dist_[node];
}

bool ShortestPathTree::reachable(NodeId node) const {
  return distance(node) < kUnreachable;
}

std::optional<std::vector<NodeId>> ShortestPathTree::path_to(NodeId node) const {
  if (!reachable(node)) return std::nullopt;
  std::vector<NodeId> chain;
  for (NodeId v = node; v != kInvalidNode; v = parent_[v]) chain.push_back(v);
  // `chain` runs node -> source. Forward trees want source -> node; reverse
  // trees represent travel node -> source, which is already chain order.
  if (direction_ == Direction::kForward) {
    std::reverse(chain.begin(), chain.end());
  }
  return chain;
}

ShortestPathTree dijkstra(const RoadNetwork& net, NodeId source,
                          Direction direction) {
  auto result = run(net, source, direction, kInvalidNode);
  return {source, direction, std::move(result.dist), std::move(result.parent)};
}

double dijkstra_distance(const RoadNetwork& net, NodeId source, NodeId target) {
  net.check_node(target);
  if (source == target) return 0.0;
  return run(net, source, Direction::kForward, target).dist[target];
}

std::optional<std::vector<NodeId>> shortest_path(const RoadNetwork& net,
                                                 NodeId source, NodeId target) {
  net.check_node(target);
  auto result = run(net, source, Direction::kForward, target);
  if (result.dist[target] == kUnreachable) return std::nullopt;
  ShortestPathTree tree(source, Direction::kForward, std::move(result.dist),
                        std::move(result.parent));
  return tree.path_to(target);
}

}  // namespace rap::graph
