#include "src/graph/sp_dag.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rap::graph {

ShortestPathDag::ShortestPathDag(const RoadNetwork& net, NodeId origin,
                                 NodeId destination)
    : net_(&net),
      origin_(origin),
      destination_(destination),
      from_origin_(dijkstra(net, origin, Direction::kForward)),
      to_destination_(dijkstra(net, destination, Direction::kReverse)) {
  total_ = from_origin_.distance(destination);
  if (total_ == kUnreachable) {
    throw std::invalid_argument(
        "ShortestPathDag: destination unreachable from origin");
  }
}

double ShortestPathDag::distance_from_origin(NodeId v) const {
  return from_origin_.distance(v);
}

double ShortestPathDag::distance_to_destination(NodeId v) const {
  return to_destination_.distance(v);
}

bool ShortestPathDag::on_some_shortest_path(NodeId v) const {
  const double a = from_origin_.distance(v);
  const double b = to_destination_.distance(v);
  if (a == kUnreachable || b == kUnreachable) return false;
  return a + b <= total_ + kTol * (1.0 + total_);
}

std::vector<NodeId> ShortestPathDag::dag_nodes() const {
  std::vector<NodeId> out;
  out.reserve(net_->num_nodes());
  for (NodeId v = 0; v < net_->num_nodes(); ++v) {
    if (on_some_shortest_path(v)) out.push_back(v);
  }
  return out;
}

std::optional<std::vector<NodeId>> ShortestPathDag::path_via(NodeId via) const {
  if (!on_some_shortest_path(via)) return std::nullopt;
  // origin -> via from the forward tree, via -> destination from the reverse
  // tree; both legs are shortest, and their concatenation has length
  // dist(i,via) + dist(via,j) == dist(i,j), so it is a shortest path.
  auto head = from_origin_.path_to(via);
  auto tail = to_destination_.path_to(via);  // travel order via -> destination
  if (!head || !tail) return std::nullopt;   // defensive; membership implies both
  head->insert(head->end(), tail->begin() + 1, tail->end());
  return head;
}

std::uint64_t ShortestPathDag::count_paths() const {
  // Count by DP over nodes ordered by distance from the origin; ties in
  // distance cannot be joined by a zero-length edge (lengths are > 0), so
  // this order is topological for the shortest-path DAG.
  std::vector<NodeId> nodes = dag_nodes();
  std::sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
    return from_origin_.distance(a) < from_origin_.distance(b);
  });
  constexpr std::uint64_t kCap = std::numeric_limits<std::int64_t>::max();
  std::vector<std::uint64_t> count(net_->num_nodes(), 0);
  count[origin_] = 1;
  for (const NodeId v : nodes) {
    if (count[v] == 0) continue;
    const double dv = from_origin_.distance(v);
    for (const EdgeId id : net_->out_edges(v)) {
      const Edge& e = net_->edge(id);
      if (!on_some_shortest_path(e.to)) continue;
      // The edge is on the DAG iff it preserves the shortest distance.
      if (std::abs(dv + e.length - from_origin_.distance(e.to)) <=
          kTol * (1.0 + total_)) {
        const std::uint64_t sum = count[e.to] + count[v];
        count[e.to] = std::min<std::uint64_t>(sum, kCap);
      }
    }
  }
  return count[destination_];
}

}  // namespace rap::graph
