// All-pairs shortest-path distances. The paper's complexity analysis charges
// O(|V|^3) for this step; we run |V| Dijkstras (O(|V| (|E| + |V|) log |V|)),
// which is never worse on sparse road networks, and keep a Floyd–Warshall
// reference implementation for cross-checking in tests.
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

#include "src/graph/road_network.h"

namespace rap::graph {

/// Hard ceiling on dense-matrix construction. 16384^2 doubles is 2 GiB —
/// the largest allocation that is still plausibly intentional; anything
/// bigger OOM-kills small machines long before the |V| Dijkstras finish.
/// Metro-scale instances must go through a sparse DistanceOracle backend
/// (src/graph/oracle.h) instead of materialising n^2 distances.
inline constexpr std::size_t kDenseNodeLimit = 16384;

/// Structured failure for an over-limit dense matrix: thrown *before* the
/// n^2 allocation so callers fail fast instead of dying in the allocator.
/// The serve layer maps this to the `rap.serve.v1` error code
/// "resource_limit" (src/serve/protocol.h).
class DenseLimitError : public std::runtime_error {
 public:
  DenseLimitError(std::size_t nodes, std::size_t limit);

  [[nodiscard]] std::size_t nodes() const noexcept { return nodes_; }
  [[nodiscard]] std::size_t limit() const noexcept { return limit_; }

 private:
  std::size_t nodes_;
  std::size_t limit_;
};

/// Dense |V| x |V| distance matrix.
class DistanceMatrix {
 public:
  /// Throws DenseLimitError when `n > node_limit` — before allocating.
  /// Callers with a measured budget may pass their own limit; 0 means
  /// "no limit" (tests of the boundary itself).
  explicit DistanceMatrix(std::size_t n,
                          std::size_t node_limit = kDenseNodeLimit)
      : n_((check_dense_limit(n, node_limit), n)), dist_(n * n, 0.0) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  [[nodiscard]] double operator()(NodeId from, NodeId to) const {
    check(from, to);
    return dist_[from * n_ + to];
  }
  void set(NodeId from, NodeId to, double value) {
    check(from, to);
    dist_[from * n_ + to] = value;
  }

  /// Full row `from` (distances from one source to everything).
  [[nodiscard]] std::span<const double> row(NodeId from) const {
    check_row(from);
    return {dist_.data() + from * n_, n_};
  }

  /// Writable row `from`; rows are disjoint, so concurrent writers to
  /// different rows are race-free (how the parallel APSP fills the matrix).
  [[nodiscard]] std::span<double> mutable_row(NodeId from) {
    check_row(from);
    return {dist_.data() + from * n_, n_};
  }

 private:
  void check(NodeId from, NodeId to) const {
    if (from >= n_ || to >= n_) {
      throw std::out_of_range("DistanceMatrix: bad node id");
    }
  }
  // Row accessors validate only the row index: `check(from, 0)` would also
  // demand a valid column 0, which rejects every row of an empty matrix for
  // the wrong reason and muddles the `from == n_` boundary.
  void check_row(NodeId from) const {
    if (from >= n_) {
      throw std::out_of_range("DistanceMatrix: bad row id");
    }
  }

  // Throws DenseLimitError when n exceeds the limit (limit 0 = unlimited).
  static void check_dense_limit(std::size_t n, std::size_t node_limit);

  std::size_t n_;
  std::vector<double> dist_;
};

/// APSP via repeated Dijkstra (production path).
[[nodiscard]] DistanceMatrix all_pairs_shortest_paths(const RoadNetwork& net);

/// APSP via Floyd–Warshall (O(|V|^3); test oracle).
[[nodiscard]] DistanceMatrix floyd_warshall(const RoadNetwork& net);

}  // namespace rap::graph
