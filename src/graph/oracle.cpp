#include "src/graph/oracle.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "src/graph/dijkstra.h"
#include "src/obs/telemetry.h"
#include "src/util/rng.h"

namespace rap::graph {
namespace {

// ---------------------------------------------------------------------------
// Heuristic deflation. Both helpers shave kHeuristicSlack *relative to the
// magnitude of the operands* (not of the result), because the rounding error
// in the operands scales with the operands: d(L,t) - d(L,v) can be a tiny
// difference of two huge table entries.
// ---------------------------------------------------------------------------

/// `value` approximates an exact distance >= 0 (e.g. a reverse-Dijkstra
/// sum). Returns a safe lower bound on every floating-point forward path
/// sum of that distance. kUnreachable passes through (an exact infinity).
double deflate_value(double value) {
  if (value == kUnreachable) return kUnreachable;
  const double lb = value - kHeuristicSlack * value;
  return lb > 0.0 ? lb : 0.0;
}

/// `a - b` as a safe lower bound when a and b each approximate exact
/// distances; clamped at 0 (a vacuous bound, never harmful).
double deflate_diff(double a, double b) {
  const double lb = (a - b) - kHeuristicSlack * (std::abs(a) + std::abs(b));
  return lb > 0.0 ? lb : 0.0;
}

// ---------------------------------------------------------------------------
// Thread-local, epoch-stamped search scratch: queries are allocation-free
// after the first on each thread, and nothing persists across queries except
// capacity. One instance serves every oracle on the thread (sizes grow
// monotonically; a query fully defines its state via the epoch stamps).
// ---------------------------------------------------------------------------

struct QueryScratch {
  std::size_t n = 0;
  std::uint32_t epoch = 0;
  std::vector<double> g;  // forward tentative distances (the fixpoint side)
  std::vector<std::uint32_t> g_epoch;
  std::vector<double> b;  // backward tentative distances (heuristic side)
  std::vector<std::uint32_t> b_epoch;
  std::vector<std::uint8_t> b_settled;
  std::vector<double> h;  // memoised heuristic values for this target
  std::vector<std::uint32_t> h_epoch;
  std::vector<NodeId> g_touched;

  void begin(std::size_t nodes) {
    if (nodes > n) {
      n = nodes;
      g.resize(n);
      b.resize(n);
      h.resize(n);
      b_settled.assign(n, 0);
      g_epoch.assign(n, 0);
      b_epoch.assign(n, 0);
      h_epoch.assign(n, 0);
      epoch = 0;
    }
    if (++epoch == 0) {  // epoch counter wrapped: re-stamp and restart at 1
      std::fill(g_epoch.begin(), g_epoch.end(), 0U);
      std::fill(b_epoch.begin(), b_epoch.end(), 0U);
      std::fill(h_epoch.begin(), h_epoch.end(), 0U);
      epoch = 1;
    }
    g_touched.clear();
  }

  [[nodiscard]] bool has_g(NodeId v) const { return g_epoch[v] == epoch; }
  [[nodiscard]] bool has_b(NodeId v) const { return b_epoch[v] == epoch; }
  void set_g(NodeId v, double value) {
    if (!has_g(v)) {
      g_epoch[v] = epoch;
      g_touched.push_back(v);
    }
    g[v] = value;
  }
  void set_b(NodeId v, double value) {
    if (!has_b(v)) b_epoch[v] = epoch;
    b_settled[v] = 0;
    b[v] = value;
  }
};

QueryScratch& scratch() {
  thread_local QueryScratch s;
  return s;
}

struct AstarEntry {
  double key;  // g for plain Dijkstra phases, g + h for A* phases
  double g;
  NodeId node;
  friend bool operator>(const AstarEntry& a, const AstarEntry& b) noexcept {
    return a.key > b.key;
  }
};

using AstarQueue =
    std::priority_queue<AstarEntry, std::vector<AstarEntry>, std::greater<>>;

/// Forward A* from the current scratch state until `target` settles.
/// `heur(v)` must be a lower bound on every floating-point forward path sum
/// v -> target (kUnreachable prunes v entirely — it must then be an *exact*
/// infinity). Every g mutation is a forward relaxation fl(g[u] + w), so the
/// returned value is the forward fixpoint — bitwise equal to the dense APSP
/// entry.
template <typename Heuristic>
double astar_finish(const RoadNetwork& net, NodeId target, QueryScratch& s,
                    AstarQueue& queue, const Heuristic& heur,
                    std::uint64_t& settled, std::uint64_t& pushes) {
  while (!queue.empty()) {
    const AstarEntry top = queue.top();
    queue.pop();
    if (top.g > s.g[top.node]) continue;  // stale entry
    ++settled;
    if (top.node == target) return top.g;
    for (const EdgeId id : net.out_edges(top.node)) {
      const Edge& e = net.edge(id);
      const double cand = top.g + e.length;
      if (!s.has_g(e.to) || cand < s.g[e.to]) {
        s.set_g(e.to, cand);
        const double hv = heur(e.to);
        if (hv == kUnreachable) continue;  // provably cannot reach target
        queue.push({cand + hv, cand, e.to});
        ++pushes;
      }
    }
  }
  return kUnreachable;
}

void flush_query_metrics(std::uint64_t settled, std::uint64_t pushes) {
  if (obs::ambient() == nullptr) return;
  obs::add_counter("graph.oracle.queries");
  obs::add_counter("graph.oracle.settled", settled);
  obs::add_counter("graph.oracle.heap_pushes", pushes);
}

}  // namespace

// --------------------------------------------------------------------------
// DistanceOracle
// --------------------------------------------------------------------------

std::vector<double> DistanceOracle::distances_from(
    NodeId source, const std::vector<NodeId>& targets) const {
  std::vector<double> out;
  out.reserve(targets.size());
  for (const NodeId t : targets) out.push_back(distance(source, t));
  return out;
}

// --------------------------------------------------------------------------
// DenseOracle
// --------------------------------------------------------------------------

DenseOracle::DenseOracle(const RoadNetwork& net, std::size_t matrix_node_limit)
    : matrix_(std::make_shared<const DistanceMatrix>([&] {
        // The guard must fire before the |V| Dijkstras, not only before the
        // allocation, so an over-limit build fails in microseconds.
        if (matrix_node_limit != 0 && net.num_nodes() > matrix_node_limit) {
          throw DenseLimitError(net.num_nodes(), matrix_node_limit);
        }
        return all_pairs_shortest_paths(net);
      }())) {}

DenseOracle::DenseOracle(std::shared_ptr<const DistanceMatrix> matrix)
    : matrix_(std::move(matrix)) {
  if (matrix_ == nullptr) {
    throw std::invalid_argument("DenseOracle: null matrix");
  }
}

double DenseOracle::distance(NodeId from, NodeId to) const {
  if (obs::ambient() != nullptr) obs::add_counter("graph.oracle.queries");
  return (*matrix_)(from, to);
}

std::vector<double> DenseOracle::distances_from(
    NodeId source, const std::vector<NodeId>& targets) const {
  const std::span<const double> row = matrix_->row(source);
  std::vector<double> out;
  out.reserve(targets.size());
  for (const NodeId t : targets) {
    if (t >= matrix_->size()) {
      throw std::out_of_range("DenseOracle: bad node id");
    }
    out.push_back(row[t]);
  }
  if (obs::ambient() != nullptr) {
    obs::add_counter("graph.oracle.queries", targets.size());
  }
  return out;
}

std::size_t DenseOracle::memory_bytes() const noexcept {
  return matrix_->size() * matrix_->size() * sizeof(double);
}

// --------------------------------------------------------------------------
// BidirectionalOracle
// --------------------------------------------------------------------------

BidirectionalOracle::BidirectionalOracle(const RoadNetwork& net)
    : net_(&net) {}

std::size_t BidirectionalOracle::memory_bytes() const noexcept { return 0; }

double BidirectionalOracle::distance(NodeId from, NodeId to) const {
  net_->check_node(from);
  net_->check_node(to);
  if (from == to) return 0.0;
  QueryScratch& s = scratch();
  s.begin(net_->num_nodes());
  std::uint64_t settled = 0;
  std::uint64_t pushes = 2;

  // Phase 1: grow forward and backward Dijkstra balls, always expanding the
  // side with the smaller radius, until the radii cover the best tentative
  // meet. This phase only *bounds* the search — the backward values feed the
  // phase-2 heuristic, never the answer — so the floating-point wobble in
  // `meet` is harmless.
  AstarQueue fwd;
  AstarQueue bwd;
  s.set_g(from, 0.0);
  fwd.push({0.0, 0.0, from});
  s.set_b(to, 0.0);
  bwd.push({0.0, 0.0, to});
  double meet = kUnreachable;
  while (!fwd.empty() && !bwd.empty()) {
    if (meet != kUnreachable && fwd.top().key + bwd.top().key >= meet) break;
    if (fwd.top().key <= bwd.top().key) {
      const AstarEntry e = fwd.top();
      fwd.pop();
      if (e.g > s.g[e.node]) continue;  // stale
      ++settled;
      if (e.node == to) {
        // Forward-settled target: the plain-Dijkstra pop order makes this
        // the forward fixpoint already.
        flush_query_metrics(settled, pushes);
        return e.g;
      }
      for (const EdgeId id : net_->out_edges(e.node)) {
        const Edge& edge = net_->edge(id);
        const double cand = e.g + edge.length;
        if (!s.has_g(edge.to) || cand < s.g[edge.to]) {
          s.set_g(edge.to, cand);
          fwd.push({cand, cand, edge.to});
          ++pushes;
          if (s.has_b(edge.to) && s.b_settled[edge.to] != 0) {
            meet = std::min(meet, cand + s.b[edge.to]);
          }
        }
      }
    } else {
      const AstarEntry e = bwd.top();
      bwd.pop();
      if (e.g > s.b[e.node]) continue;  // stale
      ++settled;
      s.b_settled[e.node] = 1;
      if (s.has_g(e.node)) meet = std::min(meet, s.g[e.node] + e.g);
      for (const EdgeId id : net_->in_edges(e.node)) {
        const Edge& edge = net_->edge(id);
        const double cand = e.g + edge.length;
        if (!s.has_b(edge.from) || cand < s.b[edge.from]) {
          s.set_b(edge.from, cand);
          bwd.push({cand, cand, edge.from});
          ++pushes;
        }
      }
    }
  }

  // Phase 2: finish with a forward A* over the frozen backward state.
  //  * backward-settled v: b[v] approximates d(v, to) -> deflate it;
  //  * backward-unsettled v while the backward queue is non-empty: Dijkstra
  //    settles in nondecreasing order, so d(v, to) >= the queue's top key;
  //  * backward queue drained: every node that can reach `to` is settled,
  //    so an unsettled v provably cannot -> exact infinity, pruned.
  const double bfloor =
      bwd.empty() ? kUnreachable : deflate_value(bwd.top().key);
  const auto heur = [&](NodeId v) -> double {
    if (s.has_b(v) && s.b_settled[v] != 0) return deflate_value(s.b[v]);
    return bfloor;
  };
  AstarQueue finish;
  for (const NodeId v : s.g_touched) {
    const double hv = heur(v);
    if (hv == kUnreachable) continue;
    finish.push({s.g[v] + hv, s.g[v], v});
    ++pushes;
  }
  const double result =
      astar_finish(*net_, to, s, finish, heur, settled, pushes);
  flush_query_metrics(settled, pushes);
  return result;
}

// --------------------------------------------------------------------------
// AltOracle
// --------------------------------------------------------------------------

AltOracle::AltOracle(const RoadNetwork& net, AltParams params) : net_(&net) {
  const obs::Span span("graph.oracle.preprocess");
  const std::size_t n = net.num_nodes();
  if (n == 0) return;
  const std::size_t count =
      std::min(params.landmarks == 0 ? std::size_t{1} : params.landmarks, n);
  landmarks_.reserve(count);
  fwd_.reserve(count * n);
  bwd_.reserve(count * n);

  // Seeded farthest-point selection: the first landmark is uniform random;
  // each next one maximises the distance from its nearest chosen landmark
  // (unreachable counts as farthest, pulling landmarks into every strongly
  // connected component), ties to the lowest node id. Deterministic per
  // (net, params) across platforms and thread counts.
  util::Rng rng(params.seed);
  std::vector<double> closest(n, kUnreachable);
  NodeId next = static_cast<NodeId>(rng.next_below(n));
  for (std::size_t l = 0; l < count; ++l) {
    landmarks_.push_back(next);
    const ShortestPathTree ftree = dijkstra(net, next, Direction::kForward);
    const ShortestPathTree btree = dijkstra(net, next, Direction::kReverse);
    fwd_.insert(fwd_.end(), ftree.distances().begin(),
                ftree.distances().end());
    bwd_.insert(bwd_.end(), btree.distances().begin(),
                btree.distances().end());
    if (l + 1 == count) break;
    NodeId best = kInvalidNode;
    double best_score = -1.0;
    for (NodeId v = 0; v < n; ++v) {
      closest[v] = std::min(closest[v], ftree.distances()[v]);
      if (closest[v] > best_score) {
        best_score = closest[v];
        best = v;
      }
    }
    next = best;
  }
  if (obs::ambient() != nullptr) {
    obs::add_counter("graph.oracle.landmarks", landmarks_.size());
  }
}

std::size_t AltOracle::memory_bytes() const noexcept {
  return (fwd_.size() + bwd_.size()) * sizeof(double) +
         landmarks_.size() * sizeof(NodeId);
}

double AltOracle::heuristic(NodeId from, NodeId to) const {
  net_->check_node(from);
  net_->check_node(to);
  const std::size_t n = net_->num_nodes();
  double best = 0.0;
  for (std::size_t l = 0; l < landmarks_.size(); ++l) {
    const double lv = fwd_[l * n + from];  // d(L -> from)
    const double lt = fwd_[l * n + to];    // d(L -> to)
    const double vl = bwd_[l * n + from];  // d(from -> L)
    const double tl = bwd_[l * n + to];    // d(to -> L)
    // Reachability contradictions give *exact* infinities: if L reaches
    // `from` but not `to`, a from->to path would extend L's reach to `to`.
    if (lv != kUnreachable && lt == kUnreachable) return kUnreachable;
    if (tl != kUnreachable && vl == kUnreachable) return kUnreachable;
    // Triangle inequality, both orientations; infinite operands make a
    // term vacuous (and inf - inf is meaningless), so they are skipped.
    if (lt != kUnreachable && lv != kUnreachable) {
      best = std::max(best, deflate_diff(lt, lv));
    }
    if (vl != kUnreachable && tl != kUnreachable) {
      best = std::max(best, deflate_diff(vl, tl));
    }
  }
  return best;
}

double AltOracle::distance(NodeId from, NodeId to) const {
  net_->check_node(from);
  net_->check_node(to);
  if (from == to) return 0.0;
  QueryScratch& s = scratch();
  s.begin(net_->num_nodes());
  const auto heur = [&](NodeId v) -> double {
    if (s.h_epoch[v] == s.epoch) return s.h[v];
    const double value = heuristic(v, to);
    s.h_epoch[v] = s.epoch;
    s.h[v] = value;
    return value;
  };
  std::uint64_t settled = 0;
  std::uint64_t pushes = 0;
  double result = kUnreachable;
  s.set_g(from, 0.0);
  const double h0 = heur(from);
  if (h0 != kUnreachable) {
    AstarQueue queue;
    queue.push({h0, 0.0, from});
    ++pushes;
    result = astar_finish(*net_, to, s, queue, heur, settled, pushes);
  }
  flush_query_metrics(settled, pushes);
  return result;
}

// --------------------------------------------------------------------------
// Policy
// --------------------------------------------------------------------------

OracleBackend resolve_oracle_backend(const OraclePolicy& policy,
                                     std::size_t num_nodes) {
  if (policy.backend == "dense") return OracleBackend::kDense;
  if (policy.backend == "bidijkstra") return OracleBackend::kBidirectional;
  if (policy.backend == "alt") return OracleBackend::kAlt;
  if (policy.backend == "auto") {
    return num_nodes <= policy.dense_node_limit ? OracleBackend::kDense
                                                : OracleBackend::kAlt;
  }
  throw std::invalid_argument("unknown oracle backend \"" + policy.backend +
                              "\" (expected auto|dense|bidijkstra|alt)");
}

std::string_view to_string(OracleBackend backend) noexcept {
  switch (backend) {
    case OracleBackend::kDense:
      return "dense";
    case OracleBackend::kBidirectional:
      return "bidijkstra";
    case OracleBackend::kAlt:
      return "alt";
  }
  return "unknown";
}

std::shared_ptr<const DistanceOracle> make_oracle(const RoadNetwork& net,
                                                  const OraclePolicy& policy) {
  const obs::Span span("graph.oracle.build");
  const OracleBackend backend =
      resolve_oracle_backend(policy, net.num_nodes());
  std::shared_ptr<const DistanceOracle> oracle;
  switch (backend) {
    case OracleBackend::kDense:
      oracle =
          std::make_shared<const DenseOracle>(net, policy.matrix_node_limit);
      if (obs::ambient() != nullptr) {
        obs::add_counter("graph.oracle.build.dense");
      }
      break;
    case OracleBackend::kBidirectional:
      oracle = std::make_shared<const BidirectionalOracle>(net);
      if (obs::ambient() != nullptr) {
        obs::add_counter("graph.oracle.build.bidijkstra");
      }
      break;
    case OracleBackend::kAlt:
      oracle = std::make_shared<const AltOracle>(
          net, AltParams{policy.landmarks, policy.landmark_seed});
      if (obs::ambient() != nullptr) {
        obs::add_counter("graph.oracle.build.alt");
      }
      break;
  }
  if (obs::ambient() != nullptr) {
    obs::set_gauge("graph.oracle.memory_bytes",
                   static_cast<double>(oracle->memory_bytes()));
  }
  return oracle;
}

}  // namespace rap::graph
