#include "src/graph/road_network.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rap::graph {

RoadNetwork::RoadNetwork(const RoadNetwork& other)
    : positions_(other.positions_), edges_(other.edges_) {}

// Assignment requires exclusive access (standard container semantics), so
// the adjacency cache reset takes no lock and is exempt from analysis.
RoadNetwork& RoadNetwork::operator=(const RoadNetwork& other)
    RAP_NO_THREAD_SAFETY_ANALYSIS {
  if (this != &other) {
    positions_ = other.positions_;
    edges_ = other.edges_;
    out_adj_ = {};
    in_adj_ = {};
    adjacency_valid_.store(false, std::memory_order_relaxed);
  }
  return *this;
}

RoadNetwork::RoadNetwork(RoadNetwork&& other) noexcept
    : positions_(std::move(other.positions_)),
      edges_(std::move(other.edges_)),
      out_adj_(std::move(other.out_adj_)),
      in_adj_(std::move(other.in_adj_)),
      adjacency_valid_(
          other.adjacency_valid_.load(std::memory_order_relaxed)) {
  other.adjacency_valid_.store(false, std::memory_order_relaxed);
}

// Assignment requires exclusive access on both sides; no lock, no analysis.
RoadNetwork& RoadNetwork::operator=(RoadNetwork&& other) noexcept
    RAP_NO_THREAD_SAFETY_ANALYSIS {
  if (this != &other) {
    positions_ = std::move(other.positions_);
    edges_ = std::move(other.edges_);
    out_adj_ = std::move(other.out_adj_);
    in_adj_ = std::move(other.in_adj_);
    adjacency_valid_.store(
        other.adjacency_valid_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    other.adjacency_valid_.store(false, std::memory_order_relaxed);
  }
  return *this;
}

NodeId RoadNetwork::add_node(geo::Point position) {
  positions_.push_back(position);
  adjacency_valid_.store(false, std::memory_order_relaxed);
  return static_cast<NodeId>(positions_.size() - 1);
}

EdgeId RoadNetwork::add_edge(NodeId from, NodeId to, double length) {
  check_node(from);
  check_node(to);
  if (from == to) {
    throw std::invalid_argument("RoadNetwork::add_edge: self-loop");
  }
  if (!(length > 0.0) || !std::isfinite(length)) {
    throw std::invalid_argument(
        "RoadNetwork::add_edge: length must be finite and > 0");
  }
  edges_.push_back(Edge{from, to, length});
  adjacency_valid_.store(false, std::memory_order_relaxed);
  return static_cast<EdgeId>(edges_.size() - 1);
}

EdgeId RoadNetwork::add_two_way_edge(NodeId a, NodeId b, double length) {
  const EdgeId forward = add_edge(a, b, length);
  add_edge(b, a, length);
  return forward;
}

EdgeId RoadNetwork::add_street(NodeId a, NodeId b) {
  check_node(a);
  check_node(b);
  return add_two_way_edge(a, b, euclidean_distance(positions_[a], positions_[b]));
}

geo::Point RoadNetwork::position(NodeId node) const {
  check_node(node);
  return positions_[node];
}

const Edge& RoadNetwork::edge(EdgeId id) const {
  if (id >= edges_.size()) {
    throw std::out_of_range("RoadNetwork::edge: bad edge id");
  }
  return edges_[id];
}

// Lock-free read of the published CSR: ensure_adjacency's acquire load of
// adjacency_valid_ orders the guarded build before this access.
std::span<const EdgeId> RoadNetwork::out_edges(NodeId node) const
    RAP_NO_THREAD_SAFETY_ANALYSIS {
  check_node(node);
  ensure_adjacency();
  return {out_adj_.entries.data() + out_adj_.start[node],
          out_adj_.entries.data() + out_adj_.start[node + 1]};
}

// Lock-free read of the published CSR: ensure_adjacency's acquire load of
// adjacency_valid_ orders the guarded build before this access.
std::span<const EdgeId> RoadNetwork::in_edges(NodeId node) const
    RAP_NO_THREAD_SAFETY_ANALYSIS {
  check_node(node);
  ensure_adjacency();
  return {in_adj_.entries.data() + in_adj_.start[node],
          in_adj_.entries.data() + in_adj_.start[node + 1]};
}

std::size_t RoadNetwork::out_degree(NodeId node) const {
  return out_edges(node).size();
}

std::size_t RoadNetwork::in_degree(NodeId node) const {
  return in_edges(node).size();
}

geo::BBox RoadNetwork::bounds() const {
  geo::BBox box;
  for (const geo::Point& p : positions_) box.expand(p);
  return box;
}

void RoadNetwork::check_node(NodeId node) const {
  if (node >= positions_.size()) {
    throw std::out_of_range("RoadNetwork: bad node id");
  }
}

void RoadNetwork::ensure_adjacency() const {
  // Double-checked locking: the release store publishes the CSR arrays to
  // any reader whose acquire load sees `true`, so concurrent const callers
  // (parallel Dijkstra sweeps) never observe a half-built adjacency.
  if (adjacency_valid_.load(std::memory_order_acquire)) return;
  const util::MutexLock lock(adjacency_mutex_);
  if (adjacency_valid_.load(std::memory_order_relaxed)) return;
  out_adj_ = build_adjacency(/*incoming=*/false);
  in_adj_ = build_adjacency(/*incoming=*/true);
  adjacency_valid_.store(true, std::memory_order_release);
}

RoadNetwork::Adjacency RoadNetwork::build_adjacency(bool incoming) const {
  Adjacency adj;
  adj.start.assign(positions_.size() + 1, 0);
  for (const Edge& e : edges_) {
    ++adj.start[(incoming ? e.to : e.from) + 1];
  }
  for (std::size_t i = 1; i < adj.start.size(); ++i) {
    adj.start[i] += adj.start[i - 1];
  }
  adj.entries.resize(edges_.size());
  std::vector<std::uint32_t> cursor(adj.start.begin(), adj.start.end() - 1);
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    const NodeId key = incoming ? edges_[id].to : edges_[id].from;
    adj.entries[cursor[key]++] = id;
  }
  return adj;
}

namespace {

// Iterative Tarjan SCC (explicit stack to survive deep graphs).
class TarjanScc {
 public:
  explicit TarjanScc(const RoadNetwork& net) : net_(net) {
    const auto n = net.num_nodes();
    index_.assign(n, kUnvisited);
    lowlink_.assign(n, 0);
    on_stack_.assign(n, false);
    component_.assign(n, kUnvisited);
    for (NodeId v = 0; v < n; ++v) {
      if (index_[v] == kUnvisited) run_from(v);
    }
  }

  [[nodiscard]] const std::vector<std::uint32_t>& components() const noexcept {
    return component_;
  }
  [[nodiscard]] std::uint32_t component_count() const noexcept {
    return next_component_;
  }

 private:
  static constexpr std::uint32_t kUnvisited = ~std::uint32_t{0};

  struct Frame {
    NodeId node;
    std::size_t next_edge = 0;
  };

  void run_from(NodeId root) {
    std::vector<Frame> frames{{root}};
    visit(root);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const auto out = net_.out_edges(frame.node);
      if (frame.next_edge < out.size()) {
        const NodeId next = net_.edge(out[frame.next_edge++]).to;
        if (index_[next] == kUnvisited) {
          visit(next);
          frames.push_back({next});
        } else if (on_stack_[next]) {
          lowlink_[frame.node] = std::min(lowlink_[frame.node], index_[next]);
        }
        continue;
      }
      if (lowlink_[frame.node] == index_[frame.node]) {
        for (;;) {
          const NodeId w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = false;
          component_[w] = next_component_;
          if (w == frame.node) break;
        }
        ++next_component_;
      }
      const NodeId finished = frame.node;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink_[frames.back().node] =
            std::min(lowlink_[frames.back().node], lowlink_[finished]);
      }
    }
  }

  void visit(NodeId v) {
    index_[v] = next_index_;
    lowlink_[v] = next_index_;
    ++next_index_;
    stack_.push_back(v);
    on_stack_[v] = true;
  }

  const RoadNetwork& net_;
  std::vector<std::uint32_t> index_;
  std::vector<std::uint32_t> lowlink_;
  std::vector<bool> on_stack_;
  std::vector<NodeId> stack_;
  std::vector<std::uint32_t> component_;
  std::uint32_t next_index_ = 0;
  std::uint32_t next_component_ = 0;
};

}  // namespace

bool RoadNetwork::is_strongly_connected() const {
  if (num_nodes() <= 1) return true;
  return TarjanScc(*this).component_count() == 1;
}

std::vector<NodeId> RoadNetwork::largest_scc() const {
  if (num_nodes() == 0) return {};
  const TarjanScc scc(*this);
  std::vector<std::size_t> sizes(scc.component_count(), 0);
  for (const std::uint32_t c : scc.components()) ++sizes[c];
  const auto best = static_cast<std::uint32_t>(std::distance(
      sizes.begin(), std::max_element(sizes.begin(), sizes.end())));
  std::vector<NodeId> out;
  out.reserve(sizes[best]);
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (scc.components()[v] == best) out.push_back(v);
  }
  return out;
}

}  // namespace rap::graph
