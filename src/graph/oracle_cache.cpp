#include "src/graph/oracle_cache.h"

#include "src/obs/telemetry.h"

namespace rap::graph {

bool SparseDistanceCache::lookup(NodeId from, NodeId to, double* out) {
  bool hit = false;
  {
    const util::MutexLock lock(mutex_);
    const auto it = map_.find(key(from, to));
    if (it != map_.end()) {
      *out = it->second;
      ++stats_.hits;
      hit = true;
    } else {
      ++stats_.misses;
    }
  }
  // Counters flush outside the lock: the ambient sink is per-thread, so the
  // registry update needs no serialisation with other cache users.
  if (obs::ambient() != nullptr) {
    obs::add_counter(hit ? "graph.oracle.cache.hits"
                         : "graph.oracle.cache.misses");
  }
  return hit;
}

void SparseDistanceCache::insert(NodeId from, NodeId to, double value) {
  if (max_entries_ == 0) return;
  std::uint64_t evicted = 0;
  {
    const util::MutexLock lock(mutex_);
    if (map_.size() >= max_entries_ &&
        map_.find(key(from, to)) == map_.end()) {
      evicted = map_.size();
      map_.clear();
      stats_.evictions += evicted;
      ++stats_.flushes;
    }
    map_.insert_or_assign(key(from, to), value);
    ++stats_.insertions;
  }
  if (evicted != 0 && obs::ambient() != nullptr) {
    obs::add_counter("graph.oracle.cache.evictions", evicted);
    obs::add_counter("graph.oracle.cache.flushes");
  }
}

SparseDistanceCache::Stats SparseDistanceCache::stats() const {
  const util::MutexLock lock(mutex_);
  return stats_;
}

std::size_t SparseDistanceCache::size() const {
  const util::MutexLock lock(mutex_);
  return map_.size();
}

}  // namespace rap::graph
