// Path utilities: validation, length, prefix sums of the distance travelled,
// used to compute the paper's d''' (remaining distance to the destination
// along the driver's route).
#pragma once

#include <span>
#include <vector>

#include "src/graph/road_network.h"

namespace rap::graph {

/// True if consecutive nodes are joined by an edge in the network.
[[nodiscard]] bool is_walk(const RoadNetwork& net, std::span<const NodeId> path);

/// Total length of the walk; throws std::invalid_argument if `path` is not a
/// walk or is empty. A single node has length 0. When parallel edges exist
/// the shortest one is charged.
[[nodiscard]] double path_length(const RoadNetwork& net,
                                 std::span<const NodeId> path);

/// cumulative[i] = distance travelled from path.front() to path[i];
/// cumulative.back() == path_length(path).
[[nodiscard]] std::vector<double> cumulative_lengths(
    const RoadNetwork& net, std::span<const NodeId> path);

/// True if the walk's length equals the shortest-path distance between its
/// endpoints (within a 1e-9 relative tolerance).
[[nodiscard]] bool is_shortest_path(const RoadNetwork& net,
                                    std::span<const NodeId> path);

}  // namespace rap::graph
