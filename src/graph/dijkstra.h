// Single-source shortest paths on a RoadNetwork (non-negative lengths are
// guaranteed by RoadNetwork's edge validation).
//
// Forward mode answers dist(source, v) for all v; reverse mode answers
// dist(v, source) by traversing incoming edges — the placement engine uses
// reverse mode to compute every intersection's distance *to* the shop in one
// run, which is the d' term of the paper's detour formula.
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "src/graph/road_network.h"

namespace rap::graph {

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

enum class Direction {
  kForward,  ///< distances from the source
  kReverse,  ///< distances to the source
};

/// Result of one Dijkstra run.
class ShortestPathTree {
 public:
  ShortestPathTree(NodeId source, Direction direction,
                   std::vector<double> dist, std::vector<NodeId> parent)
      : source_(source),
        direction_(direction),
        dist_(std::move(dist)),
        parent_(std::move(parent)) {}

  [[nodiscard]] NodeId source() const noexcept { return source_; }
  [[nodiscard]] Direction direction() const noexcept { return direction_; }

  /// Distance from/to the source (kUnreachable if disconnected).
  [[nodiscard]] double distance(NodeId node) const;
  [[nodiscard]] bool reachable(NodeId node) const;
  [[nodiscard]] const std::vector<double>& distances() const noexcept {
    return dist_;
  }

  /// Path between the source and `node`, oriented in travel order:
  /// forward mode: source -> node; reverse mode: node -> source.
  /// std::nullopt when unreachable.
  [[nodiscard]] std::optional<std::vector<NodeId>> path_to(NodeId node) const;

 private:
  NodeId source_;
  Direction direction_;
  std::vector<double> dist_;
  std::vector<NodeId> parent_;  // predecessor towards the source
};

/// Runs Dijkstra over the whole graph.
[[nodiscard]] ShortestPathTree dijkstra(const RoadNetwork& net, NodeId source,
                                        Direction direction = Direction::kForward);

/// Point-to-point distance with early exit once `target` is settled.
[[nodiscard]] double dijkstra_distance(const RoadNetwork& net, NodeId source,
                                       NodeId target);

/// Point-to-point shortest path (travel order source -> target); nullopt when
/// unreachable.
[[nodiscard]] std::optional<std::vector<NodeId>> shortest_path(
    const RoadNetwork& net, NodeId source, NodeId target);

}  // namespace rap::graph
