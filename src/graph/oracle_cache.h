// Sparse per-flow distance cache: a bounded (from, to) -> distance map so a
// flow only ever pays for the O(path-length) distances it actually queries,
// instead of an n^2 matrix.
//
// Determinism contract: cached values are pure functions of their keys (the
// shortest-path fixpoint the backing oracle returns), so *what* a lookup
// returns never depends on insertion order, thread count, or eviction
// history — only whether the value is recomputed. Eviction is a full
// generation flush at capacity: the boundary depends only on the number of
// distinct keys inserted, never on timing.
//
// Thread safety: every method is safe to call concurrently (one mutex; the
// critical sections are a hash probe). Stats counters are updated under the
// same mutex and are exact.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "src/graph/road_network.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace rap::graph {

class SparseDistanceCache {
 public:
  /// Exact accounting since construction. hits + misses == lookups.
  /// evictions counts entries dropped by generation flushes; flushes counts
  /// the flush events themselves.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t flushes = 0;
  };

  /// `max_entries == 0` disables storage entirely (every lookup misses,
  /// inserts are dropped) — the knob for measuring the uncached baseline.
  explicit SparseDistanceCache(std::size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries) {}

  SparseDistanceCache(const SparseDistanceCache&) = delete;
  SparseDistanceCache& operator=(const SparseDistanceCache&) = delete;

  /// True (and writes `*out`) on a hit. Also bumps the ambient
  /// graph.oracle.cache.{hits,misses} counter for the calling thread.
  [[nodiscard]] bool lookup(NodeId from, NodeId to, double* out)
      RAP_EXCLUDES(mutex_);

  /// Stores a value; at capacity the whole generation is flushed first
  /// (bumping graph.oracle.cache.evictions by the dropped count).
  void insert(NodeId from, NodeId to, double value) RAP_EXCLUDES(mutex_);

  [[nodiscard]] Stats stats() const RAP_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t size() const RAP_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t max_entries() const noexcept {
    return max_entries_;
  }

  /// ~16 doubles+keys per metro-flow path node; 2^20 entries is 16 MiB of
  /// payload — small next to any dense matrix the cache replaces.
  static constexpr std::size_t kDefaultMaxEntries = std::size_t{1} << 20;

 private:
  static std::uint64_t key(NodeId from, NodeId to) noexcept {
    return (static_cast<std::uint64_t>(from) << 32) |
           static_cast<std::uint64_t>(to);
  }

  std::size_t max_entries_;
  mutable util::Mutex mutex_;
  std::unordered_map<std::uint64_t, double> map_ RAP_GUARDED_BY(mutex_);
  Stats stats_ RAP_GUARDED_BY(mutex_);
};

}  // namespace rap::graph
