#include "src/graph/path.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/graph/dijkstra.h"

namespace rap::graph {
namespace {

// Length of the shortest edge from -> to, or infinity if absent.
double direct_edge_length(const RoadNetwork& net, NodeId from, NodeId to) {
  double best = std::numeric_limits<double>::infinity();
  for (const EdgeId id : net.out_edges(from)) {
    const Edge& e = net.edge(id);
    if (e.to == to && e.length < best) best = e.length;
  }
  return best;
}

}  // namespace

bool is_walk(const RoadNetwork& net, std::span<const NodeId> path) {
  if (path.empty()) return false;
  for (const NodeId v : path) {
    if (v >= net.num_nodes()) return false;
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!std::isfinite(direct_edge_length(net, path[i], path[i + 1]))) {
      return false;
    }
  }
  return true;
}

double path_length(const RoadNetwork& net, std::span<const NodeId> path) {
  if (!is_walk(net, path)) {
    throw std::invalid_argument("path_length: not a walk in this network");
  }
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    total += direct_edge_length(net, path[i], path[i + 1]);
  }
  return total;
}

std::vector<double> cumulative_lengths(const RoadNetwork& net,
                                       std::span<const NodeId> path) {
  if (!is_walk(net, path)) {
    throw std::invalid_argument("cumulative_lengths: not a walk");
  }
  std::vector<double> out(path.size(), 0.0);
  for (std::size_t i = 1; i < path.size(); ++i) {
    out[i] = out[i - 1] + direct_edge_length(net, path[i - 1], path[i]);
  }
  return out;
}

bool is_shortest_path(const RoadNetwork& net, std::span<const NodeId> path) {
  const double walked = path_length(net, path);  // validates the walk
  const double optimal = dijkstra_distance(net, path.front(), path.back());
  return walked <= optimal * (1.0 + 1e-9) + 1e-9;
}

}  // namespace rap::graph
