#include "src/graph/apsp.h"

#include <algorithm>

#include "src/graph/dijkstra.h"
#include "src/obs/telemetry.h"

namespace rap::graph {

DistanceMatrix all_pairs_shortest_paths(const RoadNetwork& net) {
  const obs::Span span("apsp");
  const std::size_t n = net.num_nodes();
  obs::add_counter("apsp.sources", n);
  DistanceMatrix out(n);
  for (NodeId source = 0; source < n; ++source) {
    const ShortestPathTree tree = dijkstra(net, source);
    for (NodeId target = 0; target < n; ++target) {
      out.set(source, target, tree.distances()[target]);
    }
  }
  return out;
}

DistanceMatrix floyd_warshall(const RoadNetwork& net) {
  const obs::Span span("floyd_warshall");
  const std::size_t n = net.num_nodes();
  DistanceMatrix out(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      out.set(i, j, i == j ? 0.0 : kUnreachable);
    }
  }
  for (const Edge& e : net.edges()) {
    out.set(e.from, e.to, std::min(out(e.from, e.to), e.length));
  }
  for (NodeId k = 0; k < n; ++k) {
    for (NodeId i = 0; i < n; ++i) {
      const double dik = out(i, k);
      if (dik == kUnreachable) continue;
      for (NodeId j = 0; j < n; ++j) {
        const double via = dik + out(k, j);
        if (via < out(i, j)) out.set(i, j, via);
      }
    }
  }
  return out;
}

}  // namespace rap::graph
