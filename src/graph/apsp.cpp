#include "src/graph/apsp.h"

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "src/graph/dijkstra.h"
#include "src/obs/telemetry.h"
#include "src/util/thread_pool.h"

namespace rap::graph {
namespace {

std::string dense_limit_message(std::size_t nodes, std::size_t limit) {
  // n^2 doubles, reported in MiB so the message is meaningful whether the
  // overshoot is 2x or 100x.
  const double mib =
      static_cast<double>(nodes) * static_cast<double>(nodes) * 8.0 /
      (1024.0 * 1024.0);
  return "dense distance matrix refused: " + std::to_string(nodes) +
         " nodes > limit " + std::to_string(limit) + " (n*n doubles = " +
         std::to_string(static_cast<long long>(mib)) +
         " MiB); use a sparse DistanceOracle backend (src/graph/oracle.h)";
}

}  // namespace

DenseLimitError::DenseLimitError(std::size_t nodes, std::size_t limit)
    : std::runtime_error(dense_limit_message(nodes, limit)),
      nodes_(nodes),
      limit_(limit) {}

void DistanceMatrix::check_dense_limit(std::size_t n, std::size_t node_limit) {
  if (node_limit != 0 && n > node_limit) {
    throw DenseLimitError(n, node_limit);
  }
}

namespace {

// Source rows per chunk. Fixed — never derived from the thread count — so
// the chunk partition and the telemetry merge order below are identical for
// every ParallelConfig.
constexpr std::size_t kRowsPerChunk = 16;

}  // namespace

DistanceMatrix all_pairs_shortest_paths(const RoadNetwork& net) {
  const obs::Span span("apsp");
  const std::size_t n = net.num_nodes();
  obs::add_counter("apsp.sources", n);
  DistanceMatrix out(n);
  if (n == 0) return out;

  // Each chunk of source rows runs its Dijkstras into disjoint matrix rows.
  // Dijkstra flushes work counters to the ambient sink, so every chunk gets
  // a private Telemetry (workers never share one) and the results merge in
  // chunk order afterwards — counters end up bit-identical to the serial
  // sweep for any thread count.
  obs::Telemetry* const parent = obs::ambient();
  std::vector<obs::Telemetry> chunk_telemetry(
      parent != nullptr ? util::chunk_count(0, n, kRowsPerChunk) : 0);
  util::parallel_for(0, n, kRowsPerChunk, [&](const util::ChunkRange& chunk) {
    std::optional<obs::TelemetryScope> scope;
    if (parent != nullptr) scope.emplace(chunk_telemetry[chunk.index]);
    for (std::size_t source = chunk.first; source < chunk.last; ++source) {
      const auto src = static_cast<NodeId>(source);
      const ShortestPathTree tree = dijkstra(net, src);
      const std::span<double> row = out.mutable_row(src);
      std::copy(tree.distances().begin(), tree.distances().end(), row.begin());
    }
  });
  if (parent != nullptr) {
    for (const obs::Telemetry& t : chunk_telemetry) parent->merge(t);
  }
  return out;
}

DistanceMatrix floyd_warshall(const RoadNetwork& net) {
  const obs::Span span("floyd_warshall");
  const std::size_t n = net.num_nodes();
  DistanceMatrix out(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      out.set(i, j, i == j ? 0.0 : kUnreachable);
    }
  }
  for (const Edge& e : net.edges()) {
    out.set(e.from, e.to, std::min(out(e.from, e.to), e.length));
  }
  for (NodeId k = 0; k < n; ++k) {
    for (NodeId i = 0; i < n; ++i) {
      const double dik = out(i, k);
      if (dik == kUnreachable) continue;
      for (NodeId j = 0; j < n; ++j) {
        const double via = dik + out(k, j);
        if (via < out(i, j)) out.set(i, j, via);
      }
    }
  }
  return out;
}

}  // namespace rap::graph
