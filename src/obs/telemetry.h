// Ambient telemetry: one MetricsRegistry + Tracer bundle, installed per
// thread, so deep library code (greedy kernels, Dijkstra) can record
// counters and spans without threading an instrumentation handle through
// every signature.
//
//   obs::Telemetry telemetry;
//   {
//     obs::TelemetryScope scope(telemetry);        // this thread only
//     run_pipeline();                              // spans/counters record
//   }
//   std::cout << obs::to_json(telemetry);          // src/obs/json.h
//
// When no scope is installed (the default), every helper below is a
// thread-local pointer load plus a branch — cheap enough to leave in
// release-built hot loops. Kernels with per-iteration events accumulate in
// plain locals and flush once per call (see core/lazy_greedy.cpp), keeping
// even the enabled path off the map-lookup hot path.
//
// Worker threads do not inherit the installer's telemetry: give each worker
// its own Telemetry + scope and Telemetry::merge the results in a
// deterministic order (see eval/runner.cpp).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/obs/events.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace rap::obs {

/// The full telemetry state of one pipeline run.
struct Telemetry {
  MetricsRegistry metrics;
  Tracer trace;

  void merge(const Telemetry& other) {
    metrics.merge(other.metrics);
    trace.merge(other.trace);
  }
};

/// Telemetry installed on the current thread, or nullptr.
[[nodiscard]] Telemetry* ambient() noexcept;

/// Installs `telemetry` as the current thread's ambient sink for the scope's
/// lifetime; restores the previous sink (scopes nest).
class TelemetryScope {
 public:
  explicit TelemetryScope(Telemetry& telemetry) noexcept;
  ~TelemetryScope();
  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

 private:
  Telemetry* previous_;
};

/// Adds to a named ambient counter; no-op without an installed scope. When
/// a flight recorder is installed the delta also lands on the raw timeline,
/// regardless of scope — the recorder is process-wide, not per-thread.
inline void add_counter(std::string_view name, std::uint64_t n = 1) {
  if (Telemetry* t = ambient(); t != nullptr) t->metrics.counter(name).add(n);
  if (recorder_active()) {
    record_counter_event(name, static_cast<double>(n));
  }
}

/// Sets a named ambient gauge; no-op without an installed scope. Also
/// recorded on the flight-recorder timeline when one is installed.
inline void set_gauge(std::string_view name, double value) {
  if (Telemetry* t = ambient(); t != nullptr) t->metrics.gauge(name).set(value);
  if (recorder_active()) record_counter_event(name, value);
}

/// Observes into a named ambient histogram; no-op without an installed
/// scope. `upper_edges` applies only when the histogram does not exist yet.
inline void observe(std::string_view name, double value,
                    std::vector<double> upper_edges = {}) {
  if (Telemetry* t = ambient(); t != nullptr) {
    t->metrics.histogram(name, std::move(upper_edges)).observe(value);
  }
}

}  // namespace rap::obs
