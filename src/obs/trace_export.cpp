#include "src/obs/trace_export.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/obs/json.h"

namespace rap::obs {
namespace {

struct FlatEvent {
  std::size_t tid = 0;
  std::size_t order = 0;  // position in the flattened stream, for stability
  const TraceEvent* event = nullptr;
};

const char* phase_for(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kSpanBegin: return "B";
    case EventKind::kSpanEnd: return "E";
    case EventKind::kCounter: return "C";
    case EventKind::kInstant: return "i";
  }
  return "i";
}

void append_event(std::ostringstream& out, const FlatEvent& flat) {
  const TraceEvent& event = *flat.event;
  // Chrome "ts" is microseconds; the process-start epoch keeps the value
  // small enough that the double conversion is exact at ns resolution.
  const double ts_us = static_cast<double>(event.ts_ns) / 1e3;
  out << "{\"name\":" << json_quote(event.name) << ",\"ph\":\""
      << phase_for(event.kind) << "\"";
  if (event.kind == EventKind::kInstant) {
    out << ",\"s\":\"t\"";  // thread-scoped instant
  }
  out << ",\"ts\":" << json_number_repr(ts_us) << ",\"pid\":1,\"tid\":"
      << (flat.tid + 1);
  if (event.kind == EventKind::kCounter) {
    out << ",\"args\":{\"value\":" << json_number_repr(event.value) << "}";
  } else if (!event.arg_key.empty()) {
    out << ",\"args\":{" << json_quote(event.arg_key) << ":"
        << json_quote(event.arg_value) << "}";
  }
  out << "}";
}

}  // namespace

std::string to_chrome_trace(const FlightRecorder& recorder,
                            ExportSummary* summary) {
  const std::vector<FlightRecorder::ThreadLog> logs = recorder.collect();

  ExportSummary result;
  result.threads = logs.size();

  std::vector<FlatEvent> flat;
  for (const FlightRecorder::ThreadLog& log : logs) {
    result.dropped_events += log.dropped;
    // Prepass: drop "E" events whose "B" was overwritten. Walking oldest to
    // newest, an end with no open begin on this thread is unmatched.
    std::size_t depth = 0;
    for (const TraceEvent& event : log.events) {
      if (event.kind == EventKind::kSpanBegin) {
        ++depth;
      } else if (event.kind == EventKind::kSpanEnd) {
        if (depth == 0) {
          ++result.unmatched_ends;
          continue;
        }
        --depth;
      }
      flat.push_back({log.thread_index, flat.size(), &event});
    }
  }

  // Merge: timestamp order, ties broken by flattening order (thread
  // registration order, then ring order) — deterministic for equal stamps,
  // which the virtual clock produces routinely.
  std::stable_sort(flat.begin(), flat.end(),
                   [](const FlatEvent& a, const FlatEvent& b) {
                     return a.event->ts_ns < b.event->ts_ns;
                   });
  result.events_exported = flat.size();

  std::ostringstream out;
  out << "{\"otherData\":{\"schema\":\"" << kTraceSchema
      << "\",\"ring_capacity\":" << recorder.options().ring_capacity
      << ",\"threads\":" << result.threads
      << ",\"dropped_events\":" << result.dropped_events
      << ",\"unmatched_ends\":" << result.unmatched_ends
      << "},\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < flat.size(); ++i) {
    if (i > 0) out << ",";
    append_event(out, flat[i]);
  }
  out << "]}";

  if (summary != nullptr) *summary = result;
  return out.str();
}

ExportSummary write_chrome_trace(const std::filesystem::path& path,
                                 const FlightRecorder& recorder) {
  ExportSummary summary;
  const std::string body = to_chrome_trace(recorder, &summary);
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("obs::write_chrome_trace: cannot open " +
                             path.string());
  }
  out << body << "\n";
  if (!out) {
    throw std::runtime_error("obs::write_chrome_trace: write failed for " +
                             path.string());
  }
  return summary;
}

}  // namespace rap::obs
