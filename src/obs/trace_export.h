// Chrome trace-event exporter for the flight recorder (schema rap.trace.v1).
//
// The output is the Chrome "JSON object format": an object with a
// "traceEvents" array, loadable directly in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Recorder metadata rides in "otherData":
//
//   {
//     "otherData": { "schema": "rap.trace.v1", "ring_capacity": 8192,
//                    "threads": 2, "dropped_events": 0 },
//     "displayTimeUnit": "ms",
//     "traceEvents": [
//       { "name": "serve.place", "ph": "B", "ts": 12.5, "pid": 1, "tid": 1 },
//       { "name": "serve.cache.hit", "ph": "i", "s": "t", "ts": 13.0,
//         "pid": 1, "tid": 1, "args": { "key": "9f3a..." } },
//       { "name": "serve.requests", "ph": "C", "ts": 14.0, "pid": 1,
//         "tid": 1, "args": { "value": 3 } },
//       { "name": "serve.place", "ph": "E", "ts": 14.0, "pid": 1, "tid": 1 }
//     ]
//   }
//
// Determinism: events are flattened in thread-registration order, then
// stable-sorted by timestamp — equal timestamps keep (tid, ring) order, so
// identical event sequences produce byte-identical files (exercised by
// tests/obs/trace_export_test.cpp under a VirtualClockGuard).
//
// Ring overwrite can orphan a span: its "B" fell off the ring while the "E"
// survived. Unmatched "E" events would corrupt Chrome's per-tid begin/end
// stack, so a per-thread prepass drops them (counted in
// ExportSummary::unmatched_ends). Unmatched "B" events are harmless —
// viewers close them at the trace end — and are kept.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "src/obs/events.h"

namespace rap::obs {

/// Value of otherData.schema in the exported JSON.
inline constexpr const char* kTraceSchema = "rap.trace.v1";

/// What the exporter did, for callers that report on shutdown.
struct ExportSummary {
  std::size_t threads = 0;
  std::uint64_t events_exported = 0;
  std::uint64_t dropped_events = 0;   ///< lost to ring overwrite
  std::uint64_t unmatched_ends = 0;   ///< "E" events elided by the prepass
};

/// Renders the recorder's current timeline as Chrome trace JSON. Requires
/// recording quiescence (see events.h). `summary`, when non-null, receives
/// the export counts.
[[nodiscard]] std::string to_chrome_trace(const FlightRecorder& recorder,
                                          ExportSummary* summary = nullptr);

/// Writes to_chrome_trace() to `path`, creating parent directories. Throws
/// std::runtime_error when the file cannot be written.
ExportSummary write_chrome_trace(const std::filesystem::path& path,
                                 const FlightRecorder& recorder);

}  // namespace rap::obs
