// Structured JSONL event log for long-running processes (the serve loop).
//
// One JSON object per line, schema rap.log.v1:
//
//   {"schema":"rap.log.v1","ts_ms":12.345,"level":"info",
//    "event":"request.finish","fields":{"op":"place","ms":1.2,"ok":true}}
//
// Key order is fixed (schema, ts_ms, level, event, fields) and fields are
// emitted in the order the caller lists them, so identical event sequences
// produce byte-identical logs — pair with VirtualClockGuard (events.h) for
// fully deterministic transcripts. Timestamps share the EventClock domain
// with the flight recorder, so log lines and trace events line up.
//
// Levels are ordered debug < info < warn < error; lines below min_level are
// counted but not written. log() serializes writers behind a mutex and
// flushes per line, so `tail -f` of a --log-out file always sees whole
// lines. Construction never touches the stream.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace rap::obs {

inline constexpr const char* kLogSchema = "rap.log.v1";

enum class LogLevel : std::uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// Lowercase level name ("debug", "info", "warn", "error").
[[nodiscard]] const char* log_level_name(LogLevel level) noexcept;

/// Parses a level name; throws std::invalid_argument on anything else.
[[nodiscard]] LogLevel parse_log_level(std::string_view name);

/// One key/value pair of a log line's "fields" object. Build with the
/// log_str/log_num/log_bool helpers below.
struct LogField {
  enum class Kind : std::uint8_t { kString, kNumber, kBool };
  std::string key;
  Kind kind = Kind::kString;
  std::string string_value;
  double number_value = 0.0;
  bool bool_value = false;
};

[[nodiscard]] LogField log_str(std::string_view key, std::string_view value);
[[nodiscard]] LogField log_num(std::string_view key, double value);
[[nodiscard]] LogField log_bool(std::string_view key, bool value);

/// Severity-filtered JSONL sink. Thread-safe; the stream must outlive the
/// log.
class EventLog {
 public:
  explicit EventLog(std::ostream& out, LogLevel min_level = LogLevel::kInfo)
      : out_(out), min_level_(min_level) {}
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Writes one line when `level` >= min_level; otherwise counts it as
  /// suppressed. `event` should follow the rap.telemetry.v1 name grammar.
  void log(LogLevel level, std::string_view event,
           const std::vector<LogField>& fields = {}) RAP_EXCLUDES(mutex_);

  [[nodiscard]] LogLevel min_level() const noexcept { return min_level_; }
  [[nodiscard]] std::uint64_t lines_written() const noexcept
      RAP_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t lines_suppressed() const noexcept
      RAP_EXCLUDES(mutex_);

 private:
  // The stream reference itself is immutable; *writes* to the stream happen
  // only inside log()'s critical section, which is what keeps concurrent
  // lines whole.
  std::ostream& out_;
  mutable util::Mutex mutex_;
  LogLevel min_level_;  // immutable after construction
  std::uint64_t written_ RAP_GUARDED_BY(mutex_) = 0;
  std::uint64_t suppressed_ RAP_GUARDED_BY(mutex_) = 0;
};

}  // namespace rap::obs
