// Flight recorder: the event half of the observability layer.
//
// Where src/obs/metrics.h and src/obs/trace.h produce *aggregates* (merged
// counters, a collapsed span tree), the flight recorder keeps the raw
// timeline: bounded per-thread ring buffers of timestamped events — span
// begin/end pairs emitted by the existing obs::Span call sites, counter
// updates, and instant events with one optional key/value argument
// (request id, scenario key, ...). The rings are merged deterministically
// and exported as Chrome trace-event JSON (src/obs/trace_export.h, schema
// rap.trace.v1), so a slow or wrong request can be reconstructed event by
// event in Perfetto instead of inferred from totals.
//
// Cost model. At most one FlightRecorder is installed process-wide at a
// time; every emit site guards on recorder_active() — a single relaxed
// atomic load plus a branch when no recorder is installed, cheap enough to
// leave in release-built hot loops (the same budget as the disabled
// telemetry path, enforced by tests/obs/recorder_overhead_test.cpp). When
// recording, each thread appends to its own fixed-capacity ring with no
// locking on the hot path; a full ring overwrites its oldest events and
// counts the drops, so a runaway workload can never exhaust memory.
//
// Clock domain. Timestamps come from EventClock: by default, nanoseconds of
// steady_clock elapsed since process start (monotonic, comparable across
// threads, small enough to survive double microsecond conversion). Under a
// VirtualClockGuard the clock instead reads a process-global tick counter
// that only moves when advance_virtual() is called — the server advances it
// once per request — which makes every timestamp, latency histogram and
// stats snapshot bit-reproducible for golden tests and transcripts.
//
// Quiescence contract. record() is safe from any number of threads
// concurrently (each writes its own ring), but collect() and the recorder's
// destructor require that no thread is concurrently recording: snapshot
// after workers have joined, or — in the server — while holding the request
// mutex. This mirrors the merge contract of MetricsRegistry and Tracer.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace rap::obs {

/// Timestamp source for recorder events and the structured event log.
class EventClock {
 public:
  /// Nanoseconds since process start (real mode) or since the enclosing
  /// VirtualClockGuard was installed (virtual mode).
  [[nodiscard]] static std::uint64_t now_ns() noexcept;

  /// True while a VirtualClockGuard is alive.
  [[nodiscard]] static bool virtual_enabled() noexcept;

  /// Moves the virtual clock forward; a no-op in real mode, so callers
  /// (e.g. the server's per-request tick) need no mode check.
  static void advance_virtual(std::uint64_t ns) noexcept;
};

/// RAII switch into the deterministic clock domain: while alive, now_ns()
/// reads a tick counter starting at 0 that only advance_virtual() moves.
/// Guards do not nest (the second construction throws std::logic_error) and
/// the destructor restores the real clock. Install before any recording
/// starts so every event shares one domain.
class VirtualClockGuard {
 public:
  VirtualClockGuard();
  ~VirtualClockGuard();
  VirtualClockGuard(const VirtualClockGuard&) = delete;
  VirtualClockGuard& operator=(const VirtualClockGuard&) = delete;
};

enum class EventKind : std::uint8_t {
  kSpanBegin = 0,  ///< obs::Span construction ("B" in the Chrome export)
  kSpanEnd = 1,    ///< obs::Span destruction ("E")
  kCounter = 2,    ///< counter/gauge update ("C"), delta or value in `value`
  kInstant = 3,    ///< point event ("i") with an optional key/value argument
};

/// One recorded event. Names follow the rap.telemetry.v1 grammar
/// (lowercase dotted segments); args are free-form strings.
struct TraceEvent {
  EventKind kind = EventKind::kInstant;
  std::uint64_t ts_ns = 0;  ///< EventClock domain
  double value = 0.0;       ///< kCounter payload
  std::string name;
  std::string arg_key;    ///< empty when the event carries no argument
  std::string arg_value;
};

/// Fixed-capacity single-producer ring of events: push overwrites the
/// oldest entry once full and counts the overwrite as a drop. snapshot()
/// returns the retained events oldest-first. Thread-compatible — one
/// producer; snapshot/clear only while the producer is quiescent.
class EventRing {
 public:
  /// `capacity` must be >= 1 (throws std::invalid_argument otherwise).
  explicit EventRing(std::size_t capacity);

  void push(TraceEvent event);

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  /// Events currently retained (<= capacity()).
  [[nodiscard]] std::size_t size() const noexcept;
  /// Total events ever pushed, including overwritten ones.
  [[nodiscard]] std::uint64_t total_pushed() const noexcept { return pushed_; }
  /// Events lost to overwriting (total_pushed() - size()).
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  void clear() noexcept;

 private:
  std::vector<TraceEvent> slots_;
  std::uint64_t pushed_ = 0;  // slots_[pushed_ % capacity] is the next write
};

struct RecorderOptions {
  /// Events retained per recording thread before the ring wraps.
  std::size_t ring_capacity = 8192;
};

/// The process-wide event recorder. Construction installs it (at most one
/// at a time — a second construction throws std::logic_error); destruction
/// uninstalls it. Threads register lazily on their first record() and keep
/// a private ring for the recorder's lifetime; thread indices are assigned
/// in registration order.
class FlightRecorder {
 public:
  explicit FlightRecorder(RecorderOptions options = {});
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The installed recorder, or nullptr. Prefer the recorder_active() fast
  /// path at emit sites.
  [[nodiscard]] static FlightRecorder* active() noexcept;

  /// Appends to the calling thread's ring (registering the thread first if
  /// needed). Hot path: no lock after registration.
  void record(TraceEvent event);

  /// One thread's retained timeline.
  struct ThreadLog {
    std::size_t thread_index = 0;  ///< registration order
    std::uint64_t dropped = 0;
    std::vector<TraceEvent> events;  ///< oldest first
  };

  /// Snapshot of every registered thread's ring, in registration order.
  /// Requires recording quiescence (see the header comment).
  [[nodiscard]] std::vector<ThreadLog> collect() const RAP_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t thread_count() const RAP_EXCLUDES(mutex_);
  /// Events currently retained across all rings.
  [[nodiscard]] std::uint64_t total_events() const RAP_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t total_dropped() const RAP_EXCLUDES(mutex_);
  [[nodiscard]] const RecorderOptions& options() const noexcept {
    return options_;
  }

 private:
  EventRing& ring_for_current_thread() RAP_EXCLUDES(mutex_);

  RecorderOptions options_;
  std::uint64_t id_;  // distinguishes recorder incarnations for the TL cache
  mutable util::Mutex mutex_;
  // The registry only; each ring's *contents* are single-producer state
  // owned by the registering thread (snapshots require quiescence).
  std::vector<std::unique_ptr<EventRing>> rings_ RAP_GUARDED_BY(mutex_);
};

namespace detail {
/// The installed recorder; read with relaxed ordering on hot paths. Only
/// FlightRecorder's constructor/destructor write it.
extern std::atomic<FlightRecorder*> g_active_recorder;
}  // namespace detail

/// True when a FlightRecorder is installed. One relaxed atomic load — the
/// guard every emit site (Span, add_counter, the serve loop) checks first.
[[nodiscard]] inline bool recorder_active() noexcept {
  return detail::g_active_recorder.load(std::memory_order_relaxed) != nullptr;
}

/// Emit helpers: no-ops (after the recorder_active() branch) when no
/// recorder is installed, so call sites need no guards of their own.
void record_span_begin(std::string_view name);
void record_span_end(std::string_view name);
void record_counter_event(std::string_view name, double value);
void record_instant(std::string_view name);
void record_instant(std::string_view name, std::string_view arg_key,
                    std::string_view arg_value);

}  // namespace rap::obs
