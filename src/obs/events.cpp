#include "src/obs/events.h"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace rap::obs {
namespace {

// Virtual-clock state. The enabled flag is seq_cst (rare transitions, read
// on every now_ns in recording builds); the counter is relaxed — ordering
// between advances is established by the callers' own synchronization (the
// server's request mutex).
std::atomic<bool> g_virtual_enabled{false};
std::atomic<std::uint64_t> g_virtual_now_ns{0};

std::uint64_t real_now_ns() noexcept {
  // Process-start epoch keeps timestamps small enough that a microsecond
  // double (Chrome trace "ts") loses no precision over multi-hour runs.
  static const std::chrono::steady_clock::time_point kEpoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - kEpoch)
          .count());
}

/// Per-thread cache of "my ring inside the installed recorder". The id
/// check (not pointer equality) keeps a stale cache from ever dereferencing
/// a ring of a destroyed recorder that happened to be reallocated at the
/// same address.
struct ThreadSlot {
  std::uint64_t recorder_id = 0;
  EventRing* ring = nullptr;
};
thread_local ThreadSlot t_slot;

std::atomic<std::uint64_t> g_next_recorder_id{1};

}  // namespace

namespace detail {
std::atomic<FlightRecorder*> g_active_recorder{nullptr};
}  // namespace detail

std::uint64_t EventClock::now_ns() noexcept {
  if (g_virtual_enabled.load(std::memory_order_relaxed)) {
    return g_virtual_now_ns.load(std::memory_order_relaxed);
  }
  return real_now_ns();
}

bool EventClock::virtual_enabled() noexcept {
  return g_virtual_enabled.load(std::memory_order_relaxed);
}

void EventClock::advance_virtual(std::uint64_t ns) noexcept {
  if (!g_virtual_enabled.load(std::memory_order_relaxed)) return;
  g_virtual_now_ns.fetch_add(ns, std::memory_order_relaxed);
}

VirtualClockGuard::VirtualClockGuard() {
  if (g_virtual_enabled.exchange(true)) {
    throw std::logic_error("VirtualClockGuard: guards do not nest");
  }
  g_virtual_now_ns.store(0, std::memory_order_relaxed);
}

VirtualClockGuard::~VirtualClockGuard() { g_virtual_enabled.store(false); }

EventRing::EventRing(std::size_t capacity) : slots_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("EventRing: capacity must be >= 1");
  }
}

void EventRing::push(TraceEvent event) {
  slots_[static_cast<std::size_t>(pushed_ % slots_.size())] = std::move(event);
  ++pushed_;
}

std::size_t EventRing::size() const noexcept {
  return pushed_ < slots_.size() ? static_cast<std::size_t>(pushed_)
                                 : slots_.size();
}

std::uint64_t EventRing::dropped() const noexcept { return pushed_ - size(); }

std::vector<TraceEvent> EventRing::snapshot() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  // Oldest retained event is the next overwrite target once wrapped.
  const std::size_t start =
      pushed_ <= slots_.size()
          ? 0
          : static_cast<std::size_t>(pushed_ % slots_.size());
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(slots_[(start + i) % slots_.size()]);
  }
  return out;
}

void EventRing::clear() noexcept { pushed_ = 0; }

FlightRecorder::FlightRecorder(RecorderOptions options)
    : options_(options),
      id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {
  if (options_.ring_capacity == 0) {
    throw std::invalid_argument(
        "FlightRecorder: ring_capacity must be >= 1");
  }
  FlightRecorder* expected = nullptr;
  if (!detail::g_active_recorder.compare_exchange_strong(expected, this)) {
    throw std::logic_error(
        "FlightRecorder: another recorder is already installed");
  }
}

FlightRecorder::~FlightRecorder() {
  detail::g_active_recorder.store(nullptr);
}

FlightRecorder* FlightRecorder::active() noexcept {
  return detail::g_active_recorder.load(std::memory_order_relaxed);
}

EventRing& FlightRecorder::ring_for_current_thread() {
  if (t_slot.recorder_id == id_) return *t_slot.ring;
  const util::MutexLock lock(mutex_);
  rings_.push_back(std::make_unique<EventRing>(options_.ring_capacity));
  t_slot = {id_, rings_.back().get()};
  return *t_slot.ring;
}

void FlightRecorder::record(TraceEvent event) {
  ring_for_current_thread().push(std::move(event));
}

std::vector<FlightRecorder::ThreadLog> FlightRecorder::collect() const {
  const util::MutexLock lock(mutex_);
  std::vector<ThreadLog> out;
  out.reserve(rings_.size());
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    out.push_back({i, rings_[i]->dropped(), rings_[i]->snapshot()});
  }
  return out;
}

std::size_t FlightRecorder::thread_count() const {
  const util::MutexLock lock(mutex_);
  return rings_.size();
}

std::uint64_t FlightRecorder::total_events() const {
  const util::MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->size();
  return total;
}

std::uint64_t FlightRecorder::total_dropped() const {
  const util::MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

void record_span_begin(std::string_view name) {
  FlightRecorder* recorder = FlightRecorder::active();
  if (recorder == nullptr) return;
  TraceEvent event;
  event.kind = EventKind::kSpanBegin;
  event.ts_ns = EventClock::now_ns();
  event.name = std::string(name);
  recorder->record(std::move(event));
}

void record_span_end(std::string_view name) {
  FlightRecorder* recorder = FlightRecorder::active();
  if (recorder == nullptr) return;
  TraceEvent event;
  event.kind = EventKind::kSpanEnd;
  event.ts_ns = EventClock::now_ns();
  event.name = std::string(name);
  recorder->record(std::move(event));
}

void record_counter_event(std::string_view name, double value) {
  FlightRecorder* recorder = FlightRecorder::active();
  if (recorder == nullptr) return;
  TraceEvent event;
  event.kind = EventKind::kCounter;
  event.ts_ns = EventClock::now_ns();
  event.value = value;
  event.name = std::string(name);
  recorder->record(std::move(event));
}

void record_instant(std::string_view name) {
  record_instant(name, std::string_view{}, std::string_view{});
}

void record_instant(std::string_view name, std::string_view arg_key,
                    std::string_view arg_value) {
  FlightRecorder* recorder = FlightRecorder::active();
  if (recorder == nullptr) return;
  TraceEvent event;
  event.kind = EventKind::kInstant;
  event.ts_ns = EventClock::now_ns();
  event.name = std::string(name);
  event.arg_key = std::string(arg_key);
  event.arg_value = std::string(arg_value);
  recorder->record(std::move(event));
}

}  // namespace rap::obs
