// Named-metric registry: counters, gauges, and fixed-bucket histograms.
//
// The registry is the accumulation half of the observability layer
// (src/obs/trace.h holds the timing half). It is deliberately
// *thread-compatible* rather than thread-safe, mirroring
// util::RunningStats: each worker owns a private registry and the owner
// merges them afterwards, so the hot path never touches a lock. All three
// metric kinds merge commutatively; histogram moments merge through
// RunningStats' parallel-combine rule.
//
// Metrics are created on first use — `registry.counter("greedy.iterations")`
// returns a stable reference that stays valid for the registry's lifetime —
// so instrumentation sites need no central declaration list. Histogram
// bucket bounds are fixed at creation; later lookups with different bounds
// keep the original edges (merging registries with conflicting edges throws).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/rng.h"
#include "src/util/stats.h"

namespace rap::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written instantaneous value (e.g. "flows", "nodes"). A gauge that
/// was created but never set() reports has_value() == false; merging skips
/// it (so a worker that never touched a gauge cannot clobber one that did)
/// and the JSON export emits null instead of a fake 0.
class Gauge {
 public:
  void set(double value) noexcept {
    value_ = value;
    has_value_ = true;
  }
  /// 0.0 until the first set(); check has_value() to tell the difference.
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] bool has_value() const noexcept { return has_value_; }

 private:
  double value_ = 0.0;
  bool has_value_ = false;
};

/// Distribution of observed samples: fixed cumulative-style buckets (counts
/// per upper edge, plus an implicit +inf overflow bucket), streaming moments,
/// and a bounded raw-sample reservoir that feeds percentiles. While the
/// observation count stays within kMaxRetainedSamples (the common case for
/// per-stage latencies) every sample is retained and percentiles are exact;
/// beyond that the reservoir switches to deterministic uniform replacement
/// (Vitter's Algorithm R driven by a fixed-seed SplitMix64), so percentiles
/// degrade to estimates over an unbiased subsample of the whole stream —
/// not, as a naive cap would give, the stream's first 4096 values. The
/// fixed seed keeps identical observation sequences bit-identical.
class Histogram {
 public:
  /// `upper_edges` must be strictly increasing; may be empty (moments only).
  explicit Histogram(std::vector<double> upper_edges);

  void observe(double value);

  [[nodiscard]] std::size_t count() const noexcept { return stats_.count(); }
  [[nodiscard]] const util::RunningStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] std::span<const double> upper_edges() const noexcept {
    return upper_edges_;
  }
  /// Per-bucket counts; size is upper_edges().size() + 1 (last = overflow).
  [[nodiscard]] std::span<const std::uint64_t> bucket_counts() const noexcept {
    return bucket_counts_;
  }

  /// Linear-interpolated percentile over the retained samples, q in
  /// [0, 100]. Exact until the reservoir has had to discard (see
  /// percentiles_exact()); a uniform-subsample estimate after. Throws when
  /// empty.
  [[nodiscard]] double percentile(double q) const;

  /// True while percentile() is exact (the reservoir never discarded a
  /// sample, including through merge()).
  [[nodiscard]] bool percentiles_exact() const noexcept { return exact_; }

  /// Combines another histogram observed over disjoint events. Throws
  /// std::invalid_argument when bucket edges differ. The other reservoir's
  /// retained samples are fed through this reservoir; if either side had
  /// already discarded, the result is flagged inexact.
  void merge(const Histogram& other);

  /// Reservoir capacity; beyond it percentiles become reservoir estimates.
  static constexpr std::size_t kMaxRetainedSamples = 4096;

 private:
  void reservoir_add(double value);

  std::vector<double> upper_edges_;
  std::vector<std::uint64_t> bucket_counts_;
  util::RunningStats stats_;
  // Reservoir in insertion order; percentile() sorts a copy so the
  // replacement positions chosen by Algorithm R never depend on whether a
  // percentile was read mid-stream.
  std::vector<double> samples_;
  std::uint64_t reservoir_seen_ = 0;  // values offered to the reservoir
  util::SplitMix64 reservoir_rng_{kReservoirSeed};
  bool exact_ = true;

  static constexpr std::uint64_t kReservoirSeed = 0x9a7e5eedULL;
};

/// Default histogram edges for millisecond-scale latencies.
[[nodiscard]] std::vector<double> default_latency_edges_ms();

/// Name-keyed collection of all three metric kinds. Thread-compatible;
/// merge per-thread instances instead of sharing one.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  MetricsRegistry(MetricsRegistry&&) = default;
  MetricsRegistry& operator=(MetricsRegistry&&) = default;

  /// Find-or-create. References stay valid until the registry is destroyed
  /// (metrics are never removed).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_edges` applies on creation only; pass empty to accept whatever
  /// edges the metric already has (or a moments-only histogram when new).
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_edges = {});

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Sorted-by-name views for exporters.
  [[nodiscard]] const std::map<std::string, Counter, std::less<>>& counters()
      const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge, std::less<>>& gauges()
      const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram, std::less<>>&
  histograms() const noexcept {
    return histograms_;
  }

  /// Adds counters, overwrites gauges with `other`'s value when set there,
  /// and merges histograms bucket-wise. Metrics unknown here are created.
  void merge(const MetricsRegistry& other);

 private:
  // std::map nodes are address-stable, so returned references survive
  // later insertions.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace rap::obs
