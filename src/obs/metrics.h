// Named-metric registry: counters, gauges, and fixed-bucket histograms.
//
// The registry is the accumulation half of the observability layer
// (src/obs/trace.h holds the timing half). It is deliberately
// *thread-compatible* rather than thread-safe, mirroring
// util::RunningStats: each worker owns a private registry and the owner
// merges them afterwards, so the hot path never touches a lock. All three
// metric kinds merge commutatively; histogram moments merge through
// RunningStats' parallel-combine rule.
//
// Metrics are created on first use — `registry.counter("greedy.iterations")`
// returns a stable reference that stays valid for the registry's lifetime —
// so instrumentation sites need no central declaration list. Histogram
// bucket bounds are fixed at creation; later lookups with different bounds
// keep the original edges (merging registries with conflicting edges throws).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/stats.h"

namespace rap::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written instantaneous value (e.g. "flows", "nodes").
class Gauge {
 public:
  void set(double value) noexcept { value_ = value; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Distribution of observed samples: fixed cumulative-style buckets (counts
/// per upper edge, plus an implicit +inf overflow bucket), streaming moments,
/// and a capped raw-sample reservoir that feeds exact percentiles while the
/// sample count stays small (the common case for per-stage latencies).
class Histogram {
 public:
  /// `upper_edges` must be strictly increasing; may be empty (moments only).
  explicit Histogram(std::vector<double> upper_edges);

  void observe(double value);

  [[nodiscard]] std::size_t count() const noexcept { return stats_.count(); }
  [[nodiscard]] const util::RunningStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] std::span<const double> upper_edges() const noexcept {
    return upper_edges_;
  }
  /// Per-bucket counts; size is upper_edges().size() + 1 (last = overflow).
  [[nodiscard]] std::span<const std::uint64_t> bucket_counts() const noexcept {
    return bucket_counts_;
  }

  /// Exact linear-interpolated percentile over the retained samples, q in
  /// [0, 100]. Once more than kMaxRetainedSamples values have been observed
  /// the estimate covers the retained prefix only. Throws when empty.
  [[nodiscard]] double percentile(double q) const;

  /// True while percentile() is exact (no samples were dropped).
  [[nodiscard]] bool percentiles_exact() const noexcept {
    return stats_.count() <= samples_.size();
  }

  /// Combines another histogram observed over disjoint events. Throws
  /// std::invalid_argument when bucket edges differ.
  void merge(const Histogram& other);

  /// Reservoir cap; beyond it percentiles become prefix estimates.
  static constexpr std::size_t kMaxRetainedSamples = 4096;

 private:
  std::vector<double> upper_edges_;
  std::vector<std::uint64_t> bucket_counts_;
  util::RunningStats stats_;
  mutable std::vector<double> samples_;  // sorted lazily by percentile()
  mutable bool sorted_ = true;
};

/// Default histogram edges for millisecond-scale latencies.
[[nodiscard]] std::vector<double> default_latency_edges_ms();

/// Name-keyed collection of all three metric kinds. Thread-compatible;
/// merge per-thread instances instead of sharing one.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  MetricsRegistry(MetricsRegistry&&) = default;
  MetricsRegistry& operator=(MetricsRegistry&&) = default;

  /// Find-or-create. References stay valid until the registry is destroyed
  /// (metrics are never removed).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_edges` applies on creation only; pass empty to accept whatever
  /// edges the metric already has (or a moments-only histogram when new).
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_edges = {});

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Sorted-by-name views for exporters.
  [[nodiscard]] const std::map<std::string, Counter, std::less<>>& counters()
      const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge, std::less<>>& gauges()
      const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram, std::less<>>&
  histograms() const noexcept {
    return histograms_;
  }

  /// Adds counters, overwrites gauges with `other`'s value when set there,
  /// and merges histograms bucket-wise. Metrics unknown here are created.
  void merge(const MetricsRegistry& other);

 private:
  // std::map nodes are address-stable, so returned references survive
  // later insertions.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace rap::obs
