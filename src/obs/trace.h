// Hierarchical wall-clock tracing: a Tracer owns a tree of named nodes and
// RAII Spans attribute elapsed time to the node matching their nesting.
//
// Entering the same name twice under one parent reuses the node (call count
// increments, durations accumulate), so loops produce one line per stage,
// not one per iteration. Children keep first-entered order, which makes the
// exported tree read in pipeline order.
//
// A Span constructed from a null Tracer* is inert: no clock read, no
// allocation — a single branch (plus the flight recorder's relaxed-load
// guard, see below). That is the "disabled" fast path relied on by the
// instrumented algorithm kernels (see src/obs/telemetry.h for how call
// sites usually obtain the tracer).
//
// Spans also feed the flight recorder (src/obs/events.h): when one is
// installed, every Span — even a tracer-null one — emits begin/end events
// into the recorder's per-thread ring, so the raw timeline and the
// aggregated tree come from the same call sites and cannot disagree about
// what ran.
//
// Like MetricsRegistry, a Tracer is thread-compatible, not thread-safe:
// give each worker its own and merge() afterwards.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/events.h"

namespace rap::obs {

class Tracer {
 public:
  struct Node {
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::vector<std::unique_ptr<Node>> children;

    [[nodiscard]] double total_ms() const noexcept {
      return static_cast<double>(total_ns) / 1e6;
    }
    /// Time not attributed to any child, in ns (>= 0 for well-nested spans).
    [[nodiscard]] std::uint64_t self_ns() const noexcept;
  };

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  Tracer(Tracer&&) = default;
  Tracer& operator=(Tracer&&) = default;

  /// The synthetic root; its children are the top-level spans. The root's
  /// calls/total_ns stay zero — it only anchors the tree.
  [[nodiscard]] const Node& root() const noexcept { return *root_; }
  [[nodiscard]] bool empty() const noexcept { return root_->children.empty(); }

  /// Grafts `other`'s tree onto this one under the innermost open span (the
  /// root when none is open), matching nodes by name per level (calls and
  /// durations add; unmatched subtrees are deep-copied in order). Merging
  /// under an open span is how worker telemetry nests inside the caller's
  /// enclosing stage. Throws std::logic_error if `other` has open spans.
  void merge(const Tracer& other);

 private:
  friend class Span;

  /// Find-or-create a child of the current node and descend into it.
  Node* enter(std::string_view name);
  /// Ascend after attributing `elapsed_ns`; `node` must be current.
  void exit(Node* node, std::uint64_t elapsed_ns) noexcept;

  std::unique_ptr<Node> root_;
  // Raw parent links would dangle under Tracer moves; a stack of actives is
  // enough because spans close in LIFO order.
  std::vector<Node*> open_;
};

/// RAII span: times from construction to destruction and attributes the
/// elapsed wall-clock to `name` under the tracer's currently open span.
/// Pass nullptr to disable (no clock read, no tree mutation).
class Span {
 public:
  Span(Tracer* tracer, std::string_view name)
      : tracer_(tracer),
        node_(tracer != nullptr ? tracer->enter(name) : nullptr),
        start_(tracer != nullptr ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{}) {
    if (recorder_active()) {
      recorded_name_ = std::string(name);
      record_span_begin(recorded_name_);
    }
  }

  /// Convenience: span on the ambient tracer (src/obs/telemetry.h); inert
  /// when no telemetry is installed on this thread.
  explicit Span(std::string_view name);

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    // The captured name — not a fresh recorder_active() check — decides
    // whether to emit the end event, so a recorder installed or removed
    // mid-span cannot produce an unbalanced begin/end pair.
    if (!recorded_name_.empty()) record_span_end(recorded_name_);
    if (tracer_ == nullptr) return;
    const auto elapsed =
        std::chrono::steady_clock::now() - start_;
    tracer_->exit(node_, static_cast<std::uint64_t>(
                             std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 elapsed)
                                 .count()));
  }

 private:
  Tracer* tracer_;
  Tracer::Node* node_;
  std::chrono::steady_clock::time_point start_;
  std::string recorded_name_;  // non-empty iff a begin event was recorded
};

/// Alias kept for call sites that read better as a timer than a trace span.
using ScopedTimer = Span;

}  // namespace rap::obs
