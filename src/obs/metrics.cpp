#include "src/obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace rap::obs {

Histogram::Histogram(std::vector<double> upper_edges)
    : upper_edges_(std::move(upper_edges)),
      bucket_counts_(upper_edges_.size() + 1, 0) {
  for (std::size_t i = 1; i < upper_edges_.size(); ++i) {
    if (upper_edges_[i] <= upper_edges_[i - 1]) {
      throw std::invalid_argument(
          "Histogram: upper edges must be strictly increasing");
    }
  }
}

void Histogram::observe(double value) {
  // First bucket whose upper edge admits the value; values above every edge
  // land in the trailing overflow bucket.
  const auto it =
      std::lower_bound(upper_edges_.begin(), upper_edges_.end(), value);
  ++bucket_counts_[static_cast<std::size_t>(it - upper_edges_.begin())];
  stats_.add(value);
  reservoir_add(value);
}

void Histogram::reservoir_add(double value) {
  // Vitter's Algorithm R: the i-th value replaces a random reservoir slot
  // with probability capacity/i, which keeps every value seen so far equally
  // likely to be retained. The fixed-seed SplitMix64 makes the subsample a
  // pure function of the observation sequence. The modulo draw carries a
  // bias below 2^-40 for any realistic stream length — irrelevant next to
  // the sampling error of a 4096-sample estimate.
  ++reservoir_seen_;
  if (samples_.size() < kMaxRetainedSamples) {
    samples_.push_back(value);
    return;
  }
  exact_ = false;
  const std::uint64_t slot = reservoir_rng_.next() % reservoir_seen_;
  if (slot < kMaxRetainedSamples) {
    samples_[static_cast<std::size_t>(slot)] = value;
  }
}

double Histogram::percentile(double q) const {
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  return util::percentile_sorted(sorted, q);
}

void Histogram::merge(const Histogram& other) {
  if (upper_edges_ != other.upper_edges_) {
    throw std::invalid_argument("Histogram::merge: bucket edges differ");
  }
  for (std::size_t i = 0; i < bucket_counts_.size(); ++i) {
    bucket_counts_[i] += other.bucket_counts_[i];
  }
  stats_.merge(other.stats_);
  // Feed the other reservoir through this one. While both sides are exact
  // and the union fits, this retains everything; otherwise the result is an
  // estimate (and flagged as such) — other.samples_ is itself a subsample,
  // so re-sampling it cannot recover exactness.
  exact_ = exact_ && other.exact_;
  for (const double value : other.samples_) reservoir_add(value);
}

std::vector<double> default_latency_edges_ms() {
  return {0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
          500.0, 1'000.0, 2'500.0, 5'000.0, 10'000.0};
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_edges) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_
      .emplace(std::string(name), Histogram(std::move(upper_edges)))
      .first->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counter(name).add(c.value());
  for (const auto& [name, g] : other.gauges_) {
    // A created-but-never-set gauge carries no information; overwriting with
    // its default 0.0 would erase a real reading.
    if (g.has_value()) {
      gauge(name).set(g.value());
    } else {
      gauge(name);  // still materialize the name
    }
  }
  for (const auto& [name, h] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else {
      it->second.merge(h);
    }
  }
}

}  // namespace rap::obs
