#include "src/obs/telemetry.h"

namespace rap::obs {
namespace {

thread_local Telemetry* g_ambient = nullptr;

}  // namespace

Telemetry* ambient() noexcept { return g_ambient; }

TelemetryScope::TelemetryScope(Telemetry& telemetry) noexcept
    : previous_(g_ambient) {
  g_ambient = &telemetry;
}

TelemetryScope::~TelemetryScope() { g_ambient = previous_; }

Span::Span(std::string_view name)
    : Span(g_ambient != nullptr ? &g_ambient->trace : nullptr, name) {}

}  // namespace rap::obs
