#include "src/obs/trace.h"

#include <stdexcept>

namespace rap::obs {
namespace {

Tracer::Node* find_child(Tracer::Node& parent, std::string_view name) {
  for (const auto& child : parent.children) {
    if (child->name == name) return child.get();
  }
  return nullptr;
}

std::unique_ptr<Tracer::Node> deep_copy(const Tracer::Node& node) {
  auto copy = std::make_unique<Tracer::Node>();
  copy->name = node.name;
  copy->calls = node.calls;
  copy->total_ns = node.total_ns;
  copy->children.reserve(node.children.size());
  for (const auto& child : node.children) {
    copy->children.push_back(deep_copy(*child));
  }
  return copy;
}

void merge_into(Tracer::Node& into, const Tracer::Node& from) {
  into.calls += from.calls;
  into.total_ns += from.total_ns;
  for (const auto& child : from.children) {
    Tracer::Node* mine = find_child(into, child->name);
    if (mine == nullptr) {
      into.children.push_back(deep_copy(*child));
    } else {
      merge_into(*mine, *child);
    }
  }
}

}  // namespace

std::uint64_t Tracer::Node::self_ns() const noexcept {
  std::uint64_t child_ns = 0;
  for (const auto& child : children) child_ns += child->total_ns;
  return child_ns > total_ns ? 0 : total_ns - child_ns;
}

Tracer::Tracer() : root_(std::make_unique<Node>()) {
  root_->name = "root";
  open_.push_back(root_.get());
}

void Tracer::merge(const Tracer& other) {
  if (other.open_.size() != 1) {
    throw std::logic_error("Tracer::merge: source has open spans outstanding");
  }
  // Graft under the innermost open span (the root when none is open): a
  // worker's whole tree happened "inside" whatever this tracer is currently
  // timing, e.g. repetitions under an experiment:<name> span.
  Node& attach = *open_.back();
  for (const auto& child : other.root_->children) {
    Node* mine = find_child(attach, child->name);
    if (mine == nullptr) {
      attach.children.push_back(deep_copy(*child));
    } else {
      merge_into(*mine, *child);
    }
  }
}

Tracer::Node* Tracer::enter(std::string_view name) {
  Node* parent = open_.back();
  Node* node = find_child(*parent, name);
  if (node == nullptr) {
    parent->children.push_back(std::make_unique<Node>());
    node = parent->children.back().get();
    node->name = std::string(name);
  }
  open_.push_back(node);
  return node;
}

void Tracer::exit(Node* node, std::uint64_t elapsed_ns) noexcept {
  node->calls += 1;
  node->total_ns += elapsed_ns;
  // Spans are RAII-scoped so destruction order is LIFO; a mismatch would be
  // a bug in this file, not at the call site.
  if (open_.size() > 1 && open_.back() == node) open_.pop_back();
}

}  // namespace rap::obs
