#include "src/obs/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace rap::obs {

// JSON has no Infinity/NaN literals; empty-accumulator sentinels (see
// util::RunningStats) serialise as null.
std::string json_number_repr(double value) {
  if (!std::isfinite(value)) return "null";
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::abs(value) < 9.0e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string json_quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

namespace {

// Local aliases keep the exporter bodies unchanged after the helpers moved
// to the public obs API.
std::string json_number(double value) { return json_number_repr(value); }
std::string quote(const std::string& text) { return json_quote(text); }

void append_trace_node(std::ostringstream& out, const Tracer::Node& node) {
  out << "{\"name\":" << quote(node.name) << ",\"calls\":" << node.calls
      << ",\"total_ms\":" << json_number(node.total_ms())
      << ",\"self_ms\":"
      << json_number(static_cast<double>(node.self_ns()) / 1e6)
      << ",\"children\":[";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) out << ",";
    append_trace_node(out, *node.children[i]);
  }
  out << "]}";
}

void append_histogram(std::ostringstream& out, const Histogram& hist) {
  const bool empty = hist.count() == 0;
  const auto stat = [&](double v) { return empty ? "null" : json_number(v); };
  out << "{\"count\":" << hist.count()
      << ",\"mean\":" << stat(hist.stats().mean())
      << ",\"stddev\":" << stat(hist.stats().stddev())
      << ",\"min\":" << stat(hist.stats().min())
      << ",\"max\":" << stat(hist.stats().max())
      << ",\"p50\":" << (empty ? "null" : json_number(hist.percentile(50.0)))
      << ",\"p95\":" << (empty ? "null" : json_number(hist.percentile(95.0)))
      << ",\"p99\":" << (empty ? "null" : json_number(hist.percentile(99.0)))
      << ",\"percentiles_exact\":"
      << (hist.percentiles_exact() ? "true" : "false") << ",\"buckets\":[";
  const auto edges = hist.upper_edges();
  const auto counts = hist.bucket_counts();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"le\":"
        << (i < edges.size() ? json_number(edges[i]) : std::string("null"))
        << ",\"count\":" << counts[i] << "}";
  }
  out << "]}";
}

void append_text_node(std::ostringstream& out, const Tracer::Node& node,
                      int depth) {
  out << std::string(static_cast<std::size_t>(depth) * 2, ' ') << node.name
      << "  " << json_number(node.total_ms()) << " ms  (" << node.calls
      << (node.calls == 1 ? " call)" : " calls)") << "\n";
  for (const auto& child : node.children) {
    append_text_node(out, *child, depth + 1);
  }
}

}  // namespace

std::string to_json(const Telemetry& telemetry) {
  std::ostringstream out;
  out << "{\"schema\":\"" << kTelemetrySchema << "\",\"trace\":[";
  const auto& top = telemetry.trace.root().children;
  for (std::size_t i = 0; i < top.size(); ++i) {
    if (i > 0) out << ",";
    append_trace_node(out, *top[i]);
  }
  out << "],\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : telemetry.metrics.counters()) {
    if (!first) out << ",";
    first = false;
    out << quote(name) << ":" << counter.value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : telemetry.metrics.gauges()) {
    if (!first) out << ",";
    first = false;
    // Unset gauges export null: 0.0 would be indistinguishable from a real
    // zero reading.
    out << quote(name) << ":"
        << (gauge.has_value() ? json_number(gauge.value())
                              : std::string("null"));
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : telemetry.metrics.histograms()) {
    if (!first) out << ",";
    first = false;
    out << quote(name) << ":";
    append_histogram(out, hist);
  }
  out << "}}";
  return out.str();
}

void write_json(const std::filesystem::path& path, const Telemetry& telemetry) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("obs::write_json: cannot open " + path.string());
  }
  out << to_json(telemetry) << "\n";
  if (!out) {
    throw std::runtime_error("obs::write_json: write failed for " +
                             path.string());
  }
}

std::string format_trace_text(const Tracer& tracer) {
  std::ostringstream out;
  for (const auto& child : tracer.root().children) {
    append_text_node(out, *child, 0);
  }
  return out.str();
}

}  // namespace rap::obs
