// Telemetry exporters: a stable JSON schema for machine consumers
// (bench_results tooling, CI trend tracking) and an indented text tree for
// humans (`rap_cli --verbose-timings`).
//
// Schema `rap.telemetry.v1`:
//   {
//     "schema": "rap.telemetry.v1",
//     "trace": [ { "name", "calls", "total_ms", "self_ms",
//                  "children": [ ...same shape... ] } ],
//     "counters":   { "<name>": <uint> },
//     "gauges":     { "<name>": <number|null> },   // null = never set
//     "histograms": { "<name>": {
//         "count", "mean", "stddev", "min", "max",
//         "p50", "p95", "p99", "percentiles_exact",
//         "buckets": [ { "le": <edge|null>, "count": <uint> } ] } }
//   }
// "trace" lists the tracer root's children in first-entered (pipeline)
// order; maps are sorted by name. An empty histogram reports count 0 and
// null moments/percentiles. The trailing bucket's "le" is null (overflow,
// +inf edge). Consumers must ignore unknown keys; additions bump the
// schema suffix only on incompatible changes.
#pragma once

#include <filesystem>
#include <string>

#include "src/obs/telemetry.h"

namespace rap::obs {

/// Name of the schema emitted by to_json, also the "schema" field's value.
inline constexpr const char* kTelemetrySchema = "rap.telemetry.v1";

/// JSON string literal with the usual escapes (quotes, backslash, control
/// characters as \uXXXX). Shared by every obs exporter so escaping rules
/// cannot drift between the telemetry, trace and log schemas.
[[nodiscard]] std::string json_quote(const std::string& text);

/// Compact JSON number: integer fast path, %.9g otherwise, "null" for
/// non-finite values (JSON has no literals for them).
[[nodiscard]] std::string json_number_repr(double value);

/// Serialises counters, gauges, histograms and the span tree.
[[nodiscard]] std::string to_json(const Telemetry& telemetry);

/// Writes to_json(telemetry) to `path`, creating parent directories.
/// Throws std::runtime_error when the file cannot be written.
void write_json(const std::filesystem::path& path, const Telemetry& telemetry);

/// Human-readable span tree, two-space indented, one node per line:
///   city_gen              12.3 ms  (1 call)
///     trace_synthesis      8.1 ms  (1 call)
/// Returns "" for an empty trace.
[[nodiscard]] std::string format_trace_text(const Tracer& tracer);

}  // namespace rap::obs
