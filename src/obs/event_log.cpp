#include "src/obs/event_log.h"

#include <sstream>
#include <stdexcept>

#include "src/obs/events.h"
#include "src/obs/json.h"

namespace rap::obs {

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "info";
}

LogLevel parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  throw std::invalid_argument("parse_log_level: unknown level '" +
                              std::string(name) +
                              "' (expected debug|info|warn|error)");
}

LogField log_str(std::string_view key, std::string_view value) {
  LogField field;
  field.key = std::string(key);
  field.kind = LogField::Kind::kString;
  field.string_value = std::string(value);
  return field;
}

LogField log_num(std::string_view key, double value) {
  LogField field;
  field.key = std::string(key);
  field.kind = LogField::Kind::kNumber;
  field.number_value = value;
  return field;
}

LogField log_bool(std::string_view key, bool value) {
  LogField field;
  field.key = std::string(key);
  field.kind = LogField::Kind::kBool;
  field.bool_value = value;
  return field;
}

void EventLog::log(LogLevel level, std::string_view event,
                   const std::vector<LogField>& fields) {
  // ts_ms shares EventClock with the flight recorder so log lines align
  // with trace events in a merged timeline.
  const double ts_ms = static_cast<double>(EventClock::now_ns()) / 1e6;
  std::ostringstream line;
  line << "{\"schema\":\"" << kLogSchema
       << "\",\"ts_ms\":" << json_number_repr(ts_ms) << ",\"level\":\""
       << log_level_name(level) << "\",\"event\":"
       << json_quote(std::string(event)) << ",\"fields\":{";
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line << ",";
    const LogField& field = fields[i];
    line << json_quote(field.key) << ":";
    switch (field.kind) {
      case LogField::Kind::kString:
        line << json_quote(field.string_value);
        break;
      case LogField::Kind::kNumber:
        line << json_number_repr(field.number_value);
        break;
      case LogField::Kind::kBool:
        line << (field.bool_value ? "true" : "false");
        break;
    }
  }
  line << "}}";

  const util::MutexLock lock(mutex_);
  if (level < min_level_) {
    ++suppressed_;
    return;
  }
  out_ << line.str() << "\n";
  out_.flush();
  ++written_;
}

std::uint64_t EventLog::lines_written() const noexcept {
  const util::MutexLock lock(mutex_);
  return written_;
}

std::uint64_t EventLog::lines_suppressed() const noexcept {
  const util::MutexLock lock(mutex_);
  return suppressed_;
}

}  // namespace rap::obs
