// Flow-network builder: compiles a placement instance into the capacitated
// bipartite assignment network the exact-bound tier optimizes over
// (DESIGN.md §16).
//
// The compilation step is where floating point leaves the picture. Every
// per-(flow, intersection) profit w_{fv} = customers(f, detour_{fv}) is
// scaled to an integer by ceil(w * scale) — rounding UP, so any bound
// computed in the scaled domain over-estimates the true objective and
// remains a valid upper bound after dividing back. The quantisation error
// is at most num_flows / scale in customer units (see
// AssignmentNetwork::quantum()), which is the resolution at which the tier
// can claim two values equal.
//
// Two views of the same arrays:
//   * by flow (flow_start / option_*): the assignment arcs a unit of flow
//     supply can take — used to price Lagrangian multipliers and to build
//     the bipartite min-cost-flow instance;
//   * by useful node (node_start / node_option): the transpose — used to
//     score RAP-open decision arcs (sum of positive reduced profits at an
//     intersection).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/problem.h"
#include "src/exact/min_cost_flow.h"

namespace rap::exact {

/// Default fixed-point scale: ~6 decimal digits of customer resolution.
inline constexpr std::int64_t kDefaultBoundScale = std::int64_t{1} << 20;

struct AssignmentNetwork {
  std::size_t num_flows = 0;        ///< model flows (supply units)
  std::size_t num_model_nodes = 0;  ///< model intersections
  std::size_t k = 0;                ///< RAP budget (already clamped)
  std::int64_t scale = kDefaultBoundScale;

  // Assignment options in CSR by flow: option i assigns flow f (with
  // flow_start[f] <= i < flow_start[f+1]) to intersection option_node[i]
  // for a scaled profit option_weight[i] = ceil(w_{fv} * scale) >= 1.
  // Zero-profit pairs are dropped at build time.
  std::vector<std::uint32_t> flow_start;
  std::vector<std::uint32_t> option_node;
  std::vector<std::uint32_t> option_flow;  ///< owning flow per option
  std::vector<std::int64_t> option_weight;

  // Useful intersections (those with at least one option), ascending, and
  // the transpose CSR: node_option[node_start[j] .. node_start[j+1]) are
  // indices into option_* for useful node j.
  std::vector<graph::NodeId> useful_nodes;
  std::vector<std::uint32_t> node_start;
  std::vector<std::uint32_t> node_option;

  [[nodiscard]] std::size_t num_options() const noexcept {
    return option_node.size();
  }
  [[nodiscard]] std::size_t num_useful_nodes() const noexcept {
    return useful_nodes.size();
  }
  /// Scaled value -> customers.
  [[nodiscard]] double to_customers(std::int64_t scaled) const {
    return static_cast<double>(scaled) / static_cast<double>(scale);
  }
  /// Worst-case quantisation slack of the fixed-point encoding, in
  /// customers: one ceil() per flow contributing to an objective.
  [[nodiscard]] double quantum() const {
    return static_cast<double>(num_flows + 1) / static_cast<double>(scale);
  }
};

/// Compiles `model` (with RAP budget `k`, already validated/clamped by the
/// caller) into the fixed-point assignment network. Throws
/// std::invalid_argument when a scaled profit would exceed the safe integer
/// range (pick a smaller scale for such instances).
[[nodiscard]] AssignmentNetwork build_assignment_network(
    const core::CoverageModel& model, std::size_t k,
    std::int64_t scale = kDefaultBoundScale);

/// Result of an exact min-cost-flow solve over the bipartite network.
struct AssignmentSolution {
  std::int64_t profit = 0;  ///< scaled; sum of the chosen assignment arcs
  std::vector<graph::NodeId> nodes_used;  ///< distinct intersections, ascending
  std::size_t augmentations = 0;
};

/// Exact maximum-profit assignment with EVERY useful intersection open:
/// each flow routes (at most once) to one of its options. Solved by
/// successive shortest paths on the bipartite network; the optimum equals
/// sum_f max_v w~_{fv}, i.e. the all-open relaxation of the placement
/// problem, and is therefore a certified upper bound on OPT for any k.
[[nodiscard]] AssignmentSolution solve_open_assignment(
    const AssignmentNetwork& network);

/// Exact top-k selection over per-useful-node scores, solved as a min-cost
/// flow on the RAP-open decision arcs (source -> node, capacity 1, cost
/// -score). Only strictly profitable arcs are taken, so fewer than k nodes
/// may be opened. Returns indices into network.useful_nodes, ascending.
/// `scores[j]` must be >= 0.
[[nodiscard]] std::vector<std::uint32_t> solve_open_selection(
    const AssignmentNetwork& network, const std::vector<std::int64_t>& scores);

}  // namespace rap::exact
