// Deterministic successive-shortest-path min-cost flow (DESIGN.md §16).
//
// The exact-bound tier (src/exact/bound.h) needs an optimizer whose result
// is certified, not approximated, and whose output is bit-identical on
// every platform and thread count. That rules floating-point pivoting out:
// every capacity and cost here is a 64-bit integer (the network builder in
// src/exact/network.h performs the fixed-point scaling), every comparison
// is integer, and the algorithm is purely sequential — successive shortest
// augmenting paths with Johnson potentials, Bellman–Ford for the initial
// potential (arc costs may be negative), then Dijkstra on reduced costs
// with a (distance, node-id) heap so ties break towards the lowest node id.
//
// Preconditions: no negative-cost cycle in the initial network (the
// builder's networks are bipartite DAGs, which trivially satisfy this) and
// total cost magnitudes within kMaxCost * kMaxArcsOnPath of the int64
// range; both are asserted defensively.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rap::exact {

class MinCostFlow {
 public:
  /// A network on `num_nodes` nodes (ids 0 .. num_nodes-1) and no arcs.
  explicit MinCostFlow(std::size_t num_nodes);

  /// Adds a directed arc and its zero-capacity residual twin. Returns the
  /// arc's id for flow_on(). Throws std::invalid_argument on a bad endpoint
  /// or negative capacity.
  std::size_t add_arc(std::size_t from, std::size_t to, std::int64_t capacity,
                      std::int64_t cost);

  struct Result {
    std::int64_t flow = 0;           ///< units actually sent
    std::int64_t cost = 0;           ///< total cost of the sent flow
    std::size_t augmentations = 0;   ///< shortest-path rounds performed
  };

  /// Sends up to `limit` units from `source` to `sink` along successive
  /// shortest (cheapest) residual paths. With `stop_when_nonnegative`, stops
  /// as soon as the cheapest augmenting path has cost >= 0 — the
  /// profit-maximisation mode used by the bound tier, where costs are
  /// negated profits and a non-negative path can only lose value.
  /// Deterministic: identical call sequences yield identical flows.
  Result solve(std::size_t source, std::size_t sink, std::int64_t limit,
               bool stop_when_nonnegative = false);

  /// Flow currently on the arc returned by add_arc.
  [[nodiscard]] std::int64_t flow_on(std::size_t arc) const;

  [[nodiscard]] std::size_t num_nodes() const noexcept { return adj_.size(); }
  [[nodiscard]] std::size_t num_arcs() const noexcept { return arcs_.size() / 2; }

 private:
  struct Arc {
    std::uint32_t to = 0;
    std::int64_t capacity = 0;  ///< residual capacity
    std::int64_t cost = 0;
  };

  // arcs_[2i] is the i-th forward arc, arcs_[2i + 1] its residual twin.
  std::vector<Arc> arcs_;
  std::vector<std::vector<std::uint32_t>> adj_;  ///< arc indices per node
};

}  // namespace rap::exact
