// Certified upper bounds on the optimal placement objective (DESIGN.md §16).
//
// The placement core can prove greedy quality only where an exact optimum
// is computable — historically exhaustive search at k <= 4. This tier turns
// "greedy >= (1 - 1/e) * OPT on toy budgets" into a measured optimality gap
// at real k by producing a value that provably dominates OPT:
//
//   exhaustive  — C(candidates, k) small enough: the bound IS the optimum.
//   flow        — every useful intersection fits the budget (k >= u): the
//                 all-open bipartite assignment, solved exactly by min-cost
//                 flow, equals the optimum.
//   lagrangian  — the general case. Dualising the one-assignment-per-flow
//                 constraints with multipliers mu_f >= 0 leaves an inner
//                 problem — open the <= k intersections with the largest
//                 reduced-profit scores — that the flow solver answers
//                 exactly, so every L(mu) is a certified upper bound;
//                 deterministic integer subgradient steps tighten mu, and
//                 the best L(mu) seen is returned. When the inner solution
//                 is primal-feasible and complementary slackness holds, the
//                 bound equals an achievable placement and `optimal` is set.
//
// All bound arithmetic runs in the fixed-point integer domain of
// src/exact/network.h (profits rounded UP), so the reported value can only
// over-estimate OPT — soundness survives the float conversion at the edge.
// Everything is sequential and integer: results are bitwise identical
// across platforms and RAP_THREADS settings.
//
// Utility families. The flow and Lagrangian values bound the per-flow
// maxima sum_f max_{v in S} w_{fv}, which dominates PlacementState's
// evaluation for EVERY utility — including order-dependent adversarial
// families, whose guarded add() can only ever record some placed node's
// profit per flow. The exhaustive tier and every `optimal` claim
// additionally assume the paper's non-increasing utilities
// (BoundOptions::monotone_utility), under which evaluation is
// order-independent; with that flag false the exhaustive tier is skipped
// and optimality certification withheld, but `value` stays a sound upper
// bound.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/problem.h"
#include "src/exact/network.h"

namespace rap::exact {

enum class BoundKind {
  kExhaustive,  ///< exact optimum by exhaustive search
  kFlow,        ///< exact optimum by all-open min-cost-flow assignment
  kLagrangian,  ///< Lagrangian-dual upper bound (optimal only if certified)
};

[[nodiscard]] const char* to_string(BoundKind kind) noexcept;

struct BoundCertificate {
  /// Best feasible placement the tier produced (the optimum when
  /// Bound::optimal; an incumbent otherwise).
  core::Placement nodes;
  /// Its exact objective under evaluate_placement (a lower bound on OPT).
  double customers = 0.0;
  /// Final per-flow Lagrangian multipliers, in customers (empty for the
  /// exhaustive and flow tiers). Any mu >= 0 re-certifies the bound.
  std::vector<double> multipliers;
};

struct Bound {
  /// Certified upper bound on OPT, in expected customers/day.
  double value = 0.0;
  BoundKind kind = BoundKind::kLagrangian;
  /// Subgradient iterations (lagrangian) or augmenting paths (flow).
  std::size_t iterations = 0;
  /// True when the bound provably equals an achievable placement, i.e. the
  /// certificate is optimal and value - certificate.customers is within the
  /// fixed-point quantum.
  bool optimal = false;
  BoundCertificate certificate;
};

struct BoundOptions {
  /// The paper's Theorem 1 assumption: utilities non-increasing in the
  /// detour, making PlacementState evaluation order-independent. Gates the
  /// exhaustive tier and every `optimal` claim (see the header comment).
  /// Set to false for custom non-monotone utilities.
  bool monotone_utility = true;
  /// Route through core/exhaustive when C(candidates, k) stays under this
  /// cap (matches ExhaustiveOptions::max_combinations semantics). The fuzz
  /// harness disables the tier to force the flow/Lagrangian paths and then
  /// cross-checks them against the exhaustive optimum.
  bool exhaustive_tier = true;
  std::size_t exhaustive_cap = 200'000;
  /// Disable to force the Lagrangian path even when k >= useful nodes
  /// (tests of the subgradient loop's budget contract).
  bool flow_tier = true;
  /// Subgradient iteration budget; any budget yields a valid bound.
  std::size_t max_iterations = 100;
  /// Fixed-point scale handed to build_assignment_network.
  std::int64_t scale = kDefaultBoundScale;
};

/// Computes a certified upper bound on the optimal k-RAP objective. Budget
/// contract (core/k_policy.h): k == 0 throws std::invalid_argument,
/// k > num_nodes clamps and records the clamp telemetry exactly once.
[[nodiscard]] Bound certified_upper_bound(const core::CoverageModel& model,
                                          std::size_t k,
                                          const BoundOptions& options = {});

/// Relative optimality gap of an achieved objective against a bound:
/// (value - achieved) / value, clamped to [0, 1]; 0 when the bound is 0.
[[nodiscard]] double optimality_gap(double achieved, const Bound& bound) noexcept;

}  // namespace rap::exact
