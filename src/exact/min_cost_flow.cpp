#include "src/exact/min_cost_flow.h"

#include <functional>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

namespace rap::exact {
namespace {

constexpr std::int64_t kInfinity = std::numeric_limits<std::int64_t>::max() / 4;

}  // namespace

MinCostFlow::MinCostFlow(std::size_t num_nodes) : adj_(num_nodes) {}

std::size_t MinCostFlow::add_arc(std::size_t from, std::size_t to,
                                 std::int64_t capacity, std::int64_t cost) {
  if (from >= adj_.size() || to >= adj_.size()) {
    throw std::invalid_argument("MinCostFlow::add_arc: endpoint out of range");
  }
  if (capacity < 0) {
    throw std::invalid_argument("MinCostFlow::add_arc: negative capacity");
  }
  const std::size_t id = arcs_.size();
  arcs_.push_back({static_cast<std::uint32_t>(to), capacity, cost});
  arcs_.push_back({static_cast<std::uint32_t>(from), 0, -cost});
  adj_[from].push_back(static_cast<std::uint32_t>(id));
  adj_[to].push_back(static_cast<std::uint32_t>(id + 1));
  return id;
}

std::int64_t MinCostFlow::flow_on(std::size_t arc) const {
  if (arc >= arcs_.size()) {
    throw std::invalid_argument("MinCostFlow::flow_on: arc out of range");
  }
  // Flow pushed forward equals the residual capacity of the twin.
  return arcs_[arc ^ 1].capacity;
}

MinCostFlow::Result MinCostFlow::solve(std::size_t source, std::size_t sink,
                                       std::int64_t limit,
                                       bool stop_when_nonnegative) {
  if (source >= adj_.size() || sink >= adj_.size()) {
    throw std::invalid_argument("MinCostFlow::solve: endpoint out of range");
  }
  const std::size_t n = adj_.size();
  Result result;
  if (limit <= 0 || source == sink) return result;

  // Initial potentials: Bellman–Ford over arcs with residual capacity, so
  // negative arc costs are admissible. The builder's networks are DAGs; n
  // rounds are a loud (throwing) guard against a negative cycle rather than
  // a performance path.
  std::vector<std::int64_t> potential(n, 0);
  for (std::size_t round = 0; round < n; ++round) {
    bool changed = false;
    for (std::size_t v = 0; v < n; ++v) {
      if (potential[v] >= kInfinity) continue;
      for (const std::uint32_t id : adj_[v]) {
        const Arc& arc = arcs_[id];
        if (arc.capacity <= 0) continue;
        const std::int64_t candidate = potential[v] + arc.cost;
        if (candidate < potential[arc.to]) {
          potential[arc.to] = candidate;
          changed = true;
        }
      }
    }
    if (!changed) break;
    if (round + 1 == n) {
      throw std::logic_error("MinCostFlow::solve: negative-cost cycle");
    }
  }

  std::vector<std::int64_t> dist(n);
  std::vector<std::uint32_t> parent_arc(n);
  std::vector<bool> reached(n);
  using HeapEntry = std::pair<std::int64_t, std::uint32_t>;
  while (result.flow < limit) {
    // Dijkstra on reduced costs; (distance, node-id) ordering makes the
    // scan order — and therefore the chosen path among equals — unique.
    dist.assign(n, kInfinity);
    reached.assign(n, false);
    dist[source] = 0;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>>
        heap;
    heap.push({0, static_cast<std::uint32_t>(source)});
    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (reached[v]) continue;
      reached[v] = true;
      for (const std::uint32_t id : adj_[v]) {
        const Arc& arc = arcs_[id];
        if (arc.capacity <= 0 || reached[arc.to]) continue;
        const std::int64_t reduced =
            arc.cost + potential[v] - potential[arc.to];
        const std::int64_t candidate = d + reduced;
        if (candidate < dist[arc.to]) {
          dist[arc.to] = candidate;
          parent_arc[arc.to] = id;
          heap.push({candidate, arc.to});
        }
      }
    }
    if (!reached[sink]) break;
    // True path cost before the potential update (telescoping sum).
    const std::int64_t path_cost =
        dist[sink] + potential[sink] - potential[source];
    if (stop_when_nonnegative && path_cost >= 0) break;
    for (std::size_t v = 0; v < n; ++v) {
      if (reached[v]) potential[v] += dist[v];
    }
    // Bottleneck along the parent chain, then augment.
    std::int64_t bottleneck = limit - result.flow;
    for (std::size_t v = sink; v != source;) {
      const Arc& arc = arcs_[parent_arc[v]];
      if (arc.capacity < bottleneck) bottleneck = arc.capacity;
      v = arcs_[parent_arc[v] ^ 1].to;
    }
    for (std::size_t v = sink; v != source;) {
      arcs_[parent_arc[v]].capacity -= bottleneck;
      arcs_[parent_arc[v] ^ 1].capacity += bottleneck;
      v = arcs_[parent_arc[v] ^ 1].to;
    }
    result.flow += bottleneck;
    result.cost += bottleneck * path_cost;
    ++result.augmentations;
  }
  return result;
}

}  // namespace rap::exact
