#include "src/exact/bound.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/core/composite_greedy.h"
#include "src/core/evaluator.h"
#include "src/core/exhaustive.h"
#include "src/core/k_policy.h"

namespace rap::exact {
namespace {

/// Scaled-domain lower bound of a feasible objective: floor, so the
/// comparison against integer upper bounds can never overclaim.
std::int64_t scale_down(double customers, std::int64_t scale) {
  return static_cast<std::int64_t>(
      std::floor(customers * static_cast<double>(scale)));
}

Bound exhaustive_bound(const core::CoverageModel& model, std::size_t k,
                       const BoundOptions& options) {
  core::ExhaustiveOptions exhaustive;
  exhaustive.max_combinations = options.exhaustive_cap;
  core::PlacementResult opt =
      core::exhaustive_optimal_placement(model, k, exhaustive);
  Bound bound;
  bound.kind = BoundKind::kExhaustive;
  bound.iterations = 0;
  bound.optimal = true;
  bound.certificate.nodes = std::move(opt.nodes);
  // Certificates always replay through evaluate_placement so a verifier can
  // reproduce `customers` bit-for-bit; the search's incrementally-maintained
  // value may differ in the last ulp (different summation order).
  bound.certificate.customers =
      core::evaluate_placement(model, bound.certificate.nodes);
  bound.value = std::max(opt.customers, bound.certificate.customers);
  return bound;
}

Bound flow_bound(const core::CoverageModel& model,
                 const AssignmentNetwork& network,
                 const BoundOptions& options) {
  AssignmentSolution solution = solve_open_assignment(network);
  Bound bound;
  bound.kind = BoundKind::kFlow;
  bound.iterations = solution.augmentations;
  // The all-open profit is achievable only when evaluation is
  // order-independent; for adversarial utilities the value stays a sound
  // bound but the optimum may be lower.
  bound.optimal = options.monotone_utility;
  bound.certificate.nodes = std::move(solution.nodes_used);
  bound.certificate.customers =
      core::evaluate_placement(model, bound.certificate.nodes);
  // The scaled profit over-estimates OPT (ceil rounding); the certificate's
  // exact objective under-estimates it. Reporting the max keeps the bound
  // sound while guaranteeing value >= the achievable certificate.
  bound.value =
      std::max(network.to_customers(solution.profit), bound.certificate.customers);
  return bound;
}

Bound lagrangian_bound(const core::CoverageModel& model,
                       const AssignmentNetwork& network,
                       const BoundOptions& options) {
  const std::size_t m = network.num_flows;
  const std::size_t u = network.num_useful_nodes();

  // Per-flow weight ceiling: multipliers above it cannot lower L (reduced
  // profits are already clamped at zero), so capping keeps the search
  // bounded without ever excluding the dual optimum.
  std::vector<std::int64_t> max_weight(m, 0);
  for (std::size_t i = 0; i < network.num_options(); ++i) {
    max_weight[network.option_flow[i]] =
        std::max(max_weight[network.option_flow[i]], network.option_weight[i]);
  }
  // All-open relaxation sum_f max_v w~: the iteration-zero upper bound.
  std::int64_t best_ub = 0;
  for (const std::int64_t w : max_weight) best_ub += w;

  // Incumbent: the standard greedy on the true objective. Any feasible
  // placement works; greedy both seeds the Polyak step and guarantees the
  // reported bound dominates the caller's greedy run of the same family.
  Bound bound;
  bound.kind = BoundKind::kLagrangian;
  {
    core::PlacementResult greedy =
        core::naive_marginal_greedy_placement(model, network.k);
    bound.certificate.nodes = std::move(greedy.nodes);
    // Replayable certificate: value the greedy set through
    // evaluate_placement, not the greedy's own incremental accumulator.
    bound.certificate.customers =
        core::evaluate_placement(model, bound.certificate.nodes);
  }
  std::int64_t incumbent_scaled =
      scale_down(bound.certificate.customers, network.scale);

  std::vector<std::int64_t> mu(m, 0);
  std::vector<std::int64_t> scores(u);
  std::vector<std::int64_t> assigned(m);
  core::Placement chosen_nodes;
  for (std::size_t t = 1; t <= options.max_iterations; ++t) {
    bound.iterations = t;
    // Inner problem: open the <= k intersections with the largest reduced
    // profit, answered exactly by min-cost flow on the decision arcs.
    for (std::size_t j = 0; j < u; ++j) {
      std::int64_t score = 0;
      for (std::uint32_t idx = network.node_start[j];
           idx < network.node_start[j + 1]; ++idx) {
        const std::uint32_t i = network.node_option[idx];
        const std::int64_t reduced =
            network.option_weight[i] - mu[network.option_flow[i]];
        if (reduced > 0) score += reduced;
      }
      scores[j] = score;
    }
    const std::vector<std::uint32_t> chosen =
        solve_open_selection(network, scores);

    std::int64_t dual = 0;
    for (const std::int64_t m_f : mu) dual += m_f;
    for (const std::uint32_t j : chosen) dual += scores[j];
    best_ub = std::min(best_ub, dual);

    // Primal candidate: the chosen set, valued exactly.
    chosen_nodes.clear();
    for (const std::uint32_t j : chosen) {
      chosen_nodes.push_back(network.useful_nodes[j]);
    }
    const double primal = core::evaluate_placement(model, chosen_nodes);
    if (primal > bound.certificate.customers) {
      bound.certificate.customers = primal;
      bound.certificate.nodes = chosen_nodes;
      incumbent_scaled = scale_down(primal, network.scale);
    }

    // Assignment counts of the inner solution: how many chosen
    // intersections take each flow at the current multipliers.
    std::fill(assigned.begin(), assigned.end(), 0);
    for (const std::uint32_t j : chosen) {
      for (std::uint32_t idx = network.node_start[j];
           idx < network.node_start[j + 1]; ++idx) {
        const std::uint32_t i = network.node_option[idx];
        if (network.option_weight[i] > mu[network.option_flow[i]]) {
          ++assigned[network.option_flow[i]];
        }
      }
    }
    // Complementary slackness: a primal-feasible inner solution whose
    // multipliers are all tight certifies L(mu) == OPT.
    bool certified = true;
    for (std::size_t f = 0; f < m && certified; ++f) {
      if (assigned[f] > 1 || (mu[f] > 0 && assigned[f] != 1)) certified = false;
    }
    if (certified) {
      // L(mu) is tight at this mu; no further subgradient step can improve
      // it. Achievability of the tight value — the `optimal` claim — needs
      // order-independent evaluation (monotone utilities).
      best_ub = std::min(best_ub, dual);
      bound.optimal = options.monotone_utility;
      break;
    }
    if (best_ub <= incumbent_scaled) {
      // The dual bound meets an achievable placement at fixed-point
      // resolution: the incumbent is optimal within quantum().
      bound.optimal = true;
      break;
    }
    // Deterministic integer Polyak step with a 2/(2+t) relaxation.
    std::int64_t denom = 0;
    std::int64_t gap = best_ub - incumbent_scaled;
    for (std::size_t f = 0; f < m; ++f) {
      if (max_weight[f] == 0) continue;  // no options: mu stays 0
      const std::int64_t g = 1 - assigned[f];
      denom += g * g;
    }
    if (denom == 0) break;  // every flow assigned exactly once
    const std::int64_t step = std::max<std::int64_t>(
        1, (2 * gap) / (denom * static_cast<std::int64_t>(2 + t)));
    for (std::size_t f = 0; f < m; ++f) {
      if (max_weight[f] == 0) continue;
      const std::int64_t g = 1 - assigned[f];
      mu[f] = std::clamp<std::int64_t>(mu[f] - step * g, 0, max_weight[f]);
    }
  }

  bound.value =
      std::max(network.to_customers(best_ub), bound.certificate.customers);
  bound.certificate.multipliers.reserve(m);
  for (const std::int64_t m_f : mu) {
    bound.certificate.multipliers.push_back(network.to_customers(m_f));
  }
  return bound;
}

}  // namespace

const char* to_string(BoundKind kind) noexcept {
  switch (kind) {
    case BoundKind::kExhaustive:
      return "exhaustive";
    case BoundKind::kFlow:
      return "flow";
    case BoundKind::kLagrangian:
      return "lagrangian";
  }
  return "unknown";
}

Bound certified_upper_bound(const core::CoverageModel& model, std::size_t k,
                            const BoundOptions& options) {
  k = core::checked_budget(model, k, "certified_upper_bound");
  if (options.monotone_utility && options.exhaustive_tier &&
      core::exhaustive_combination_count(model, k) <= options.exhaustive_cap) {
    return exhaustive_bound(model, k, options);
  }
  const AssignmentNetwork network =
      build_assignment_network(model, k, options.scale);
  if (options.flow_tier && network.num_useful_nodes() <= k) {
    return flow_bound(model, network, options);
  }
  return lagrangian_bound(model, network, options);
}

double optimality_gap(double achieved, const Bound& bound) noexcept {
  if (!(bound.value > 0.0)) return 0.0;
  const double gap = (bound.value - achieved) / bound.value;
  return std::clamp(gap, 0.0, 1.0);
}

}  // namespace rap::exact
