#include "src/exact/network.h"

#include <cmath>
#include <stdexcept>

namespace rap::exact {
namespace {

/// Scaled profits stay below 2^52 so sums over every option of a metro
/// instance fit int64 with headroom.
constexpr std::int64_t kMaxScaledWeight = std::int64_t{1} << 52;

std::int64_t scale_up(double customers, std::int64_t scale) {
  const double scaled = std::ceil(customers * static_cast<double>(scale));
  if (!(scaled < static_cast<double>(kMaxScaledWeight))) {
    throw std::invalid_argument(
        "build_assignment_network: scaled profit exceeds the safe integer "
        "range; use a smaller scale");
  }
  return static_cast<std::int64_t>(scaled);
}

}  // namespace

AssignmentNetwork build_assignment_network(const core::CoverageModel& model,
                                           std::size_t k, std::int64_t scale) {
  if (scale <= 0) {
    throw std::invalid_argument("build_assignment_network: scale must be > 0");
  }
  AssignmentNetwork net;
  net.num_flows = model.num_flows();
  net.num_model_nodes = model.num_nodes();
  net.k = k;
  net.scale = scale;

  // Pass 1: count positive-profit options per flow.
  std::vector<std::uint32_t> counts(net.num_flows, 0);
  std::size_t total = 0;
  for (graph::NodeId v = 0; v < net.num_model_nodes; ++v) {
    for (const traffic::NodeIncidence& inc : model.reach_at(v)) {
      if (model.customers(inc.flow, inc.detour) <= 0.0) continue;
      ++counts[inc.flow];
      ++total;
    }
  }
  net.flow_start.assign(net.num_flows + 1, 0);
  for (std::size_t f = 0; f < net.num_flows; ++f) {
    net.flow_start[f + 1] = net.flow_start[f] + counts[f];
  }
  net.option_node.resize(total);
  net.option_flow.resize(total);
  net.option_weight.resize(total);

  // Pass 2: fill, walking nodes in ascending id order so each flow's option
  // list is sorted by intersection id (deterministic layout).
  std::vector<std::uint32_t> cursor(net.flow_start.begin(),
                                    net.flow_start.end() - 1);
  for (graph::NodeId v = 0; v < net.num_model_nodes; ++v) {
    for (const traffic::NodeIncidence& inc : model.reach_at(v)) {
      const double customers = model.customers(inc.flow, inc.detour);
      if (customers <= 0.0) continue;
      const std::uint32_t at = cursor[inc.flow]++;
      net.option_node[at] = v;
      net.option_flow[at] = inc.flow;
      net.option_weight[at] = scale_up(customers, scale);
    }
  }

  // Transpose: useful nodes (ascending) and their option lists.
  std::vector<std::uint32_t> options_at_node(net.num_model_nodes, 0);
  for (const std::uint32_t v : net.option_node) ++options_at_node[v];
  std::vector<std::uint32_t> dense_index(net.num_model_nodes, 0);
  for (graph::NodeId v = 0; v < net.num_model_nodes; ++v) {
    if (options_at_node[v] == 0) continue;
    dense_index[v] = static_cast<std::uint32_t>(net.useful_nodes.size());
    net.useful_nodes.push_back(v);
  }
  net.node_start.assign(net.useful_nodes.size() + 1, 0);
  for (std::size_t j = 0; j < net.useful_nodes.size(); ++j) {
    net.node_start[j + 1] =
        net.node_start[j] + options_at_node[net.useful_nodes[j]];
  }
  net.node_option.resize(total);
  std::vector<std::uint32_t> node_cursor(net.node_start.begin(),
                                         net.node_start.end() - 1);
  for (std::uint32_t i = 0; i < total; ++i) {
    const std::uint32_t j = dense_index[net.option_node[i]];
    net.node_option[node_cursor[j]++] = i;
  }
  return net;
}

AssignmentSolution solve_open_assignment(const AssignmentNetwork& network) {
  const std::size_t m = network.num_flows;
  const std::size_t u = network.num_useful_nodes();
  // Layout: 0 = source, 1..m = flows, m+1..m+u = intersections, m+u+1 = sink.
  const std::size_t source = 0;
  const std::size_t sink = m + u + 1;
  MinCostFlow flow(sink + 1);
  std::int64_t supply = 0;
  for (std::size_t f = 0; f < m; ++f) {
    if (network.flow_start[f] == network.flow_start[f + 1]) continue;
    flow.add_arc(source, 1 + f, 1, 0);
    ++supply;
  }
  // dense_index over useful nodes for arc targets.
  std::vector<std::uint32_t> dense_index(network.num_model_nodes, 0);
  for (std::size_t j = 0; j < u; ++j) {
    dense_index[network.useful_nodes[j]] = static_cast<std::uint32_t>(j);
  }
  for (std::size_t f = 0; f < m; ++f) {
    for (std::uint32_t i = network.flow_start[f];
         i < network.flow_start[f + 1]; ++i) {
      flow.add_arc(1 + f, m + 1 + dense_index[network.option_node[i]], 1,
                   -network.option_weight[i]);
    }
  }
  std::vector<std::size_t> open_arcs(u);
  for (std::size_t j = 0; j < u; ++j) {
    const std::int64_t serve_capacity =
        network.node_start[j + 1] - network.node_start[j];
    open_arcs[j] = flow.add_arc(m + 1 + j, sink, serve_capacity, 0);
  }
  const MinCostFlow::Result result =
      flow.solve(source, sink, supply, /*stop_when_nonnegative=*/true);
  AssignmentSolution solution;
  solution.profit = -result.cost;
  solution.augmentations = result.augmentations;
  for (std::size_t j = 0; j < u; ++j) {
    if (flow.flow_on(open_arcs[j]) > 0) {
      solution.nodes_used.push_back(network.useful_nodes[j]);
    }
  }
  return solution;
}

std::vector<std::uint32_t> solve_open_selection(
    const AssignmentNetwork& network, const std::vector<std::int64_t>& scores) {
  const std::size_t u = network.num_useful_nodes();
  if (scores.size() != u) {
    throw std::invalid_argument(
        "solve_open_selection: one score per useful node required");
  }
  // Layout: 0 = source, 1..u = RAP-open decision arcs' heads, u+1 = sink.
  MinCostFlow flow(u + 2);
  std::vector<std::size_t> open_arcs(u);
  for (std::size_t j = 0; j < u; ++j) {
    if (scores[j] < 0) {
      throw std::invalid_argument("solve_open_selection: negative score");
    }
    open_arcs[j] = flow.add_arc(0, 1 + j, 1, -scores[j]);
    flow.add_arc(1 + j, u + 1, 1, 0);
  }
  flow.solve(0, u + 1, static_cast<std::int64_t>(network.k),
             /*stop_when_nonnegative=*/true);
  std::vector<std::uint32_t> chosen;
  for (std::size_t j = 0; j < u; ++j) {
    if (flow.flow_on(open_arcs[j]) > 0) {
      chosen.push_back(static_cast<std::uint32_t>(j));
    }
  }
  return chosen;
}

}  // namespace rap::exact
