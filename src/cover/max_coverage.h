// Generic weighted maximum coverage (Section III-B's framing: "our RAP
// placement problem with the threshold utility function is essentially a
// weighted maximum coverage problem").
//
// Given sets over weighted elements, pick k sets maximising the total
// weight of covered elements. Provides:
//   * greedy_max_coverage        — the classic (1 - 1/e) greedy;
//   * lazy_greedy_max_coverage   — the same result via a lazy (CELF-style)
//                                  priority queue: marginal gains only
//                                  shrink, so stale heap entries are safe
//                                  to re-evaluate on demand;
//   * exhaustive_max_coverage    — exact optimum for small instances.
// The RAP placement problem under the threshold utility maps onto this
// (sets = intersections, elements = flows, weight = f(d) * |T|); a
// cross-check test asserts the equivalence against core/greedy.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace rap::cover {

using ElementId = std::uint32_t;
using SetId = std::uint32_t;

/// A coverage instance. Elements are implicit (0..num_elements-1) with
/// non-negative weights; each set lists the elements it covers.
class CoverageInstance {
 public:
  /// Throws std::invalid_argument on negative/non-finite weights or
  /// out-of-range element ids. Sets are normalised (sorted, deduplicated).
  CoverageInstance(std::vector<double> element_weights,
                   std::vector<std::vector<ElementId>> sets);

  [[nodiscard]] std::size_t num_elements() const noexcept {
    return weights_.size();
  }
  [[nodiscard]] std::size_t num_sets() const noexcept { return sets_.size(); }
  [[nodiscard]] double weight(ElementId element) const;
  [[nodiscard]] std::span<const ElementId> set(SetId id) const;

  /// Total weight of the union of the given sets (duplicates fine).
  [[nodiscard]] double coverage_weight(std::span<const SetId> chosen) const;

 private:
  std::vector<double> weights_;
  std::vector<std::vector<ElementId>> sets_;
};

struct CoverageResult {
  std::vector<SetId> sets;  ///< in selection order
  double weight = 0.0;
};

/// Classic greedy; ties break to the lowest set id. Stops early when no
/// set adds weight. Throws when k == 0.
[[nodiscard]] CoverageResult greedy_max_coverage(const CoverageInstance& instance,
                                                 std::size_t k);

/// Lazy-evaluation greedy; identical selection to greedy_max_coverage
/// (same tie-breaking) with far fewer gain evaluations on large instances.
[[nodiscard]] CoverageResult lazy_greedy_max_coverage(
    const CoverageInstance& instance, std::size_t k);

/// Exact optimum by branch-and-bound over useful sets; throws
/// std::runtime_error past `max_combinations`.
[[nodiscard]] CoverageResult exhaustive_max_coverage(
    const CoverageInstance& instance, std::size_t k,
    std::size_t max_combinations = 20'000'000);

}  // namespace rap::cover
