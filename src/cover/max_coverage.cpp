#include "src/cover/max_coverage.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace rap::cover {
namespace {

double uncovered_gain(const CoverageInstance& instance, SetId id,
                      const std::vector<bool>& covered) {
  double gain = 0.0;
  for (const ElementId e : instance.set(id)) {
    if (!covered[e]) gain += instance.weight(e);
  }
  return gain;
}

void mark_covered(const CoverageInstance& instance, SetId id,
                  std::vector<bool>& covered) {
  for (const ElementId e : instance.set(id)) covered[e] = true;
}

}  // namespace

CoverageInstance::CoverageInstance(std::vector<double> element_weights,
                                   std::vector<std::vector<ElementId>> sets)
    : weights_(std::move(element_weights)), sets_(std::move(sets)) {
  for (const double w : weights_) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument(
          "CoverageInstance: weights must be finite and >= 0");
    }
  }
  for (auto& set : sets_) {
    for (const ElementId e : set) {
      if (e >= weights_.size()) {
        throw std::invalid_argument("CoverageInstance: element id out of range");
      }
    }
    // Normalise: duplicate members would double-count in gain sums.
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
  }
}

double CoverageInstance::weight(ElementId element) const {
  if (element >= weights_.size()) {
    throw std::out_of_range("CoverageInstance::weight: bad element");
  }
  return weights_[element];
}

std::span<const ElementId> CoverageInstance::set(SetId id) const {
  if (id >= sets_.size()) {
    throw std::out_of_range("CoverageInstance::set: bad set id");
  }
  return sets_[id];
}

double CoverageInstance::coverage_weight(std::span<const SetId> chosen) const {
  std::vector<bool> covered(weights_.size(), false);
  double total = 0.0;
  for (const SetId id : chosen) {
    for (const ElementId e : set(id)) {
      if (!covered[e]) {
        covered[e] = true;
        total += weights_[e];
      }
    }
  }
  return total;
}

CoverageResult greedy_max_coverage(const CoverageInstance& instance,
                                   std::size_t k) {
  if (k == 0) {
    throw std::invalid_argument("greedy_max_coverage: k must be > 0");
  }
  std::vector<bool> covered(instance.num_elements(), false);
  std::vector<bool> used(instance.num_sets(), false);
  CoverageResult result;
  for (std::size_t step = 0; step < k && result.sets.size() < instance.num_sets();
       ++step) {
    SetId best = 0;
    double best_gain = 0.0;
    bool found = false;
    for (SetId id = 0; id < instance.num_sets(); ++id) {
      if (used[id]) continue;
      const double gain = uncovered_gain(instance, id, covered);
      if (gain > best_gain) {
        best_gain = gain;
        best = id;
        found = true;
      }
    }
    if (!found) break;  // nothing adds weight
    used[best] = true;
    mark_covered(instance, best, covered);
    result.sets.push_back(best);
    result.weight += best_gain;
  }
  return result;
}

CoverageResult lazy_greedy_max_coverage(const CoverageInstance& instance,
                                        std::size_t k) {
  if (k == 0) {
    throw std::invalid_argument("lazy_greedy_max_coverage: k must be > 0");
  }
  // Max-heap of (cached gain, set id). Gains only shrink as elements get
  // covered, so a popped entry whose gain is still current is globally best.
  // Ties must break to the LOWEST id to mirror the eager greedy, so order
  // by (gain asc, id desc) inverted for the max-heap.
  struct Entry {
    double gain;
    SetId id;
    std::uint32_t stamp;  ///< selection count when the gain was computed
  };
  const auto less = [](const Entry& a, const Entry& b) {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.id > b.id;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(less)> heap(less);

  std::vector<bool> covered(instance.num_elements(), false);
  for (SetId id = 0; id < instance.num_sets(); ++id) {
    heap.push({uncovered_gain(instance, id, covered), id, 0});
  }

  CoverageResult result;
  std::uint32_t selections = 0;
  while (result.sets.size() < k && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (top.stamp != selections) {
      // Stale: re-evaluate and push back unless it is now worthless.
      const double gain = uncovered_gain(instance, top.id, covered);
      if (gain > 0.0) heap.push({gain, top.id, selections});
      continue;
    }
    if (top.gain <= 0.0) break;
    mark_covered(instance, top.id, covered);
    result.sets.push_back(top.id);
    result.weight += top.gain;
    ++selections;
  }
  return result;
}

namespace {

// DFS with an optimistic bound: remaining budget * best possible set gain.
class ExactSearch {
 public:
  ExactSearch(const CoverageInstance& instance, std::size_t k,
              std::size_t max_combinations)
      : instance_(instance), k_(k) {
    for (SetId id = 0; id < instance.num_sets(); ++id) {
      double weight = 0.0;
      for (const ElementId e : instance.set(id)) weight += instance.weight(e);
      if (weight > 0.0) pool_.push_back(id);
    }
    // Rough combination count guard (C(n, k) with overflow clamp).
    double combos = 1.0;
    for (std::size_t i = 0; i < std::min(k_, pool_.size()); ++i) {
      combos *= static_cast<double>(pool_.size() - i) / static_cast<double>(i + 1);
    }
    if (combos > static_cast<double>(max_combinations)) {
      throw std::runtime_error(
          "exhaustive_max_coverage: combination budget exceeded");
    }
    covered_.assign(instance.num_elements(), false);
    recurse(0, 0.0);
  }

  [[nodiscard]] CoverageResult best() && {
    return {std::move(best_sets_), best_weight_};
  }

 private:
  void recurse(std::size_t first, double weight) {
    if (weight > best_weight_) {
      best_weight_ = weight;
      best_sets_ = current_;
    }
    if (current_.size() == k_ || first == pool_.size()) return;
    for (std::size_t i = first; i < pool_.size(); ++i) {
      const SetId id = pool_[i];
      // Apply.
      std::vector<ElementId> newly;
      double gain = 0.0;
      for (const ElementId e : instance_.set(id)) {
        if (!covered_[e]) {
          covered_[e] = true;
          newly.push_back(e);
          gain += instance_.weight(e);
        }
      }
      current_.push_back(id);
      recurse(i + 1, weight + gain);
      current_.pop_back();
      for (const ElementId e : newly) covered_[e] = false;
    }
  }

  const CoverageInstance& instance_;
  std::size_t k_;
  std::vector<SetId> pool_;
  std::vector<bool> covered_;
  std::vector<SetId> current_;
  std::vector<SetId> best_sets_;
  double best_weight_ = -1.0;
};

}  // namespace

CoverageResult exhaustive_max_coverage(const CoverageInstance& instance,
                                       std::size_t k,
                                       std::size_t max_combinations) {
  if (k == 0) {
    throw std::invalid_argument("exhaustive_max_coverage: k must be > 0");
  }
  return ExactSearch(instance, k, max_combinations).best();
}

}  // namespace rap::cover
