// The RAP placement problem (Section III-A) behind an abstract coverage
// interface.
//
// CoverageModel is what every placement algorithm consumes: for each
// intersection, which flows can be reached from there and at what detour
// distance. Two implementations exist:
//   * PlacementProblem (this file) — the general scenario: flows travel a
//     fixed path, so a RAP reaches a flow only at the path's intersections;
//   * manhattan::FlexibleProblem — the Section IV scenario: flows choose
//     among all of their shortest paths, so a RAP reaches a flow at any
//     intersection of the shortest-path DAG.
// Keeping the algorithms against the interface is exactly what lets
// Algorithms 1/2 and the baselines run unchanged under both scenarios
// (Figs. 12 vs 13).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "src/graph/road_network.h"
#include "src/traffic/detour.h"
#include "src/traffic/flow.h"
#include "src/traffic/incidence.h"
#include "src/traffic/utility.h"

namespace rap::core {

/// A placement is the set of intersections hosting RAPs.
using Placement = std::vector<graph::NodeId>;

/// A placement plus its objective value (expected attracted customers/day).
struct PlacementResult {
  Placement nodes;
  double customers = 0.0;
};

/// Coverage interface consumed by all placement algorithms.
class CoverageModel {
 public:
  virtual ~CoverageModel() = default;

  [[nodiscard]] virtual const graph::RoadNetwork& network() const noexcept = 0;
  [[nodiscard]] virtual const traffic::UtilityFunction& utility()
      const noexcept = 0;
  /// The shop intersection, or kInvalidNode when not a single-shop model.
  [[nodiscard]] virtual graph::NodeId shop() const noexcept = 0;

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return network().num_nodes();
  }
  [[nodiscard]] virtual std::size_t num_flows() const noexcept = 0;

  /// Flows reachable from `node` with the detour distance a RAP there would
  /// offer them.
  [[nodiscard]] virtual std::span<const traffic::NodeIncidence> reach_at(
      graph::NodeId node) const = 0;

  /// Expected customers from flow `flow` at best detour `detour`:
  /// f(detour) * population; 0 for infinite detour.
  [[nodiscard]] virtual double customers(traffic::FlowIndex flow,
                                         double detour) const = 0;

  /// Daily vehicles passing `node` (MaxVehicles baseline ranking).
  [[nodiscard]] virtual double passing_vehicles(graph::NodeId node) const = 0;
  /// Distinct flows passing `node` (MaxCardinality baseline ranking).
  [[nodiscard]] virtual std::size_t passing_flow_count(
      graph::NodeId node) const = 0;

 protected:
  CoverageModel() = default;
  CoverageModel(const CoverageModel&) = default;
  CoverageModel& operator=(const CoverageModel&) = default;
};

/// The general-scenario problem instance: fixed travel paths.
class PlacementProblem final : public CoverageModel {
 public:
  /// Single-shop problem. `net` and `utility` must outlive the problem;
  /// flows are copied and validated. Throws std::invalid_argument on a bad
  /// flow or shop id.
  PlacementProblem(const graph::RoadNetwork& net,
                   std::vector<traffic::TrafficFlow> flows,
                   graph::NodeId shop,
                   const traffic::UtilityFunction& utility,
                   traffic::DetourMode mode = traffic::DetourMode::kAlongPath);

  /// Generalised constructor with an externally supplied detour source
  /// (used by the multi-shop extension). `shop` is only used for reporting
  /// and the Random baseline; pass kInvalidNode when there is no single shop.
  PlacementProblem(const graph::RoadNetwork& net,
                   std::vector<traffic::TrafficFlow> flows,
                   graph::NodeId shop,
                   const traffic::UtilityFunction& utility,
                   std::unique_ptr<const traffic::DetourSource> detours);

  PlacementProblem(const PlacementProblem&) = delete;
  PlacementProblem& operator=(const PlacementProblem&) = delete;
  PlacementProblem(PlacementProblem&&) = default;
  PlacementProblem& operator=(PlacementProblem&&) = default;

  [[nodiscard]] const graph::RoadNetwork& network() const noexcept override {
    return *net_;
  }
  [[nodiscard]] const traffic::UtilityFunction& utility() const noexcept override {
    return *utility_;
  }
  [[nodiscard]] graph::NodeId shop() const noexcept override { return shop_; }
  [[nodiscard]] std::size_t num_flows() const noexcept override {
    return flows_.size();
  }
  [[nodiscard]] std::span<const traffic::NodeIncidence> reach_at(
      graph::NodeId node) const override {
    return incidence_->at_node(node);
  }
  [[nodiscard]] double customers(traffic::FlowIndex flow,
                                 double detour) const override;
  [[nodiscard]] double passing_vehicles(graph::NodeId node) const override {
    return incidence_->passing_vehicles(node);
  }
  [[nodiscard]] std::size_t passing_flow_count(
      graph::NodeId node) const override {
    return incidence_->passing_flow_count(node);
  }

  [[nodiscard]] const std::vector<traffic::TrafficFlow>& flows() const noexcept {
    return flows_;
  }
  [[nodiscard]] const traffic::DetourSource& detours() const noexcept {
    return *detours_;
  }
  [[nodiscard]] const traffic::IncidenceIndex& incidence() const noexcept {
    return *incidence_;
  }

 private:
  const graph::RoadNetwork* net_;
  std::vector<traffic::TrafficFlow> flows_;
  graph::NodeId shop_;
  const traffic::UtilityFunction* utility_;
  std::unique_ptr<const traffic::DetourSource> detours_;
  std::unique_ptr<const traffic::IncidenceIndex> incidence_;
};

}  // namespace rap::core
