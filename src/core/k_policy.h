// The optimizer family's shared budget (`k`) contract.
//
// Every placement entry point — eager/lazy/naive/composite greedy,
// exhaustive search, and the two-stage Manhattan algorithms — validates its
// RAP budget through checked_budget():
//   * k == 0 throws std::invalid_argument (an empty budget is a caller bug,
//     not a degenerate instance);
//   * k > num_nodes clamps to num_nodes — no placement can use more RAPs
//     than there are intersections — records the clamped-away surplus on
//     the ambient telemetry gauge "placement.k_clamped", and bumps the
//     "placement.k_clamp_events" counter once per clamp (both no-ops
//     without an installed obs::TelemetryScope). Entry points that compose
//     other entry points (e.g. the exact-bound tier driving a greedy
//     incumbent) clamp at the outermost layer, so the counter observes
//     exactly one event per top-level solve.
// Before this header each algorithm hand-rolled the k == 0 throw and
// silently looped past num_nodes; the shared helper makes the contract
// uniform and observable.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "src/core/problem.h"
#include "src/obs/telemetry.h"

namespace rap::core {

/// Validates and clamps a RAP budget per the contract above. `who` names the
/// calling entry point in the k == 0 exception message.
inline std::size_t checked_budget(const CoverageModel& model, std::size_t k,
                                  const char* who) {
  if (k == 0) {
    throw std::invalid_argument(std::string(who) + ": k must be > 0");
  }
  const std::size_t n = model.num_nodes();
  if (k > n) {
    obs::set_gauge("placement.k_clamped", static_cast<double>(k - n));
    obs::add_counter("placement.k_clamp_events");
    return n;
  }
  return k;
}

}  // namespace rap::core
