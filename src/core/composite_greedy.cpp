#include "src/core/composite_greedy.h"

#include "src/core/evaluator.h"
#include "src/core/k_policy.h"
#include "src/core/parallel_scan.h"
#include "src/obs/telemetry.h"

namespace rap::core {
namespace {

PlacementResult run_greedy(const CoverageModel& model, std::size_t k,
                           const CompositeGreedyOptions& options,
                           bool composite) {
  const char* const prefix = composite ? "composite_greedy" : "naive_greedy";
  k = checked_budget(model, k, prefix);
  const obs::Span span(prefix);
  std::uint64_t iterations = 0;
  std::uint64_t evaluations = 0;
  PlacementState state(model);
  const auto n = static_cast<graph::NodeId>(model.num_nodes());
  for (std::size_t step = 0; step < k && state.placement().size() < n; ++step) {
    detail::ScanBest chosen;
    if (composite) {
      const detail::ScanBest cover = detail::best_unplaced(
          state, n, [&](graph::NodeId v) { return state.uncovered_gain(v); });
      const detail::ScanBest improve = detail::best_unplaced(
          state, n, [&](graph::NodeId v) { return state.improvement_gain(v); });
      evaluations += cover.evaluations + improve.evaluations;
      // Candidate (i) wins exact ties — it appears first in the listing.
      chosen = improve.score > cover.score ? improve : cover;
    } else {
      chosen = detail::best_unplaced(
          state, n, [&](graph::NodeId v) { return state.gain_if_added(v); });
      evaluations += chosen.evaluations;
    }
    if (chosen.node == graph::kInvalidNode) break;
    if (chosen.score <= 0.0 && options.stop_when_no_gain) break;
    state.add(chosen.node);
    ++iterations;
    obs::observe("placement.selected_gain", chosen.score);
  }
  if (obs::ambient() != nullptr) {
    obs::add_counter(std::string(prefix) + ".iterations", iterations);
    obs::add_counter(std::string(prefix) + ".gain_evaluations", evaluations);
  }
  return {state.placement(), state.value()};
}

}  // namespace

PlacementResult composite_greedy_placement(const CoverageModel& model,
                                           std::size_t k,
                                           const CompositeGreedyOptions& options) {
  return run_greedy(model, k, options, /*composite=*/true);
}

PlacementResult naive_marginal_greedy_placement(
    const CoverageModel& model, std::size_t k,
    const CompositeGreedyOptions& options) {
  return run_greedy(model, k, options, /*composite=*/false);
}

}  // namespace rap::core
