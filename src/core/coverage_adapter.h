// Adapter proving Section III-B's reduction: under the threshold utility
// the RAP placement problem IS a weighted maximum coverage instance
// (sets = intersections, elements = flows, element weight = f(d) * |T|,
// which is detour-independent below the threshold).
#pragma once

#include "src/core/problem.h"
#include "src/cover/max_coverage.h"

namespace rap::core {

/// Builds the coverage instance for a threshold-utility model. Element e
/// corresponds to flow e; set v to intersection v. Throws
/// std::invalid_argument if the model's utility is not threshold-like,
/// i.e. if any flow is worth different amounts from different reachable
/// intersections (the reduction would be lossy).
[[nodiscard]] cover::CoverageInstance to_coverage_instance(
    const CoverageModel& model);

/// Convenience: solve the threshold placement via the generic coverage
/// greedy and map back to intersections. Identical to
/// greedy_coverage_placement by construction (asserted in tests).
[[nodiscard]] PlacementResult coverage_greedy_via_reduction(
    const CoverageModel& model, std::size_t k);

}  // namespace rap::core
