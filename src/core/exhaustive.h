// Exhaustive (exact) RAP placement for small instances.
//
// Used as the optimum oracle in approximation-ratio tests, and by
// Algorithm 3 for k <= 4 ("return the optimal solution by exhaustive
// search"). Enumeration is restricted to *useful* candidates —
// intersections whose singleton placement attracts at least one customer —
// which is lossless: an intersection that attracts nobody on its own can
// never add value to any placement (contributions are per-flow maxima).
#pragma once

#include <cstddef>

#include "src/core/problem.h"

namespace rap::core {

struct ExhaustiveOptions {
  /// Hard cap on enumerated candidate combinations. When C(useful, k)
  /// exceeds it, exhaustive_optimal_placement throws std::invalid_argument
  /// BEFORE enumerating anything, naming the count and the cap — asking for
  /// an exhaustive answer on such an instance is a caller error (use the
  /// exact-bound tier, src/exact/bound.h), not a blow-up to time out on.
  /// The default enumerates in seconds on commodity hardware.
  std::size_t max_combinations = 20'000'000;
};

/// Exact optimum over all placements of up to k RAPs. Budget contract
/// (core/k_policy.h): k == 0 throws std::invalid_argument, k > num_nodes
/// clamps and sets the "placement.k_clamped" telemetry gauge. Throws
/// std::invalid_argument (naming C(useful, k) and the cap) past the
/// combination budget — checked up front, before any enumeration.
[[nodiscard]] PlacementResult exhaustive_optimal_placement(
    const CoverageModel& model, std::size_t k,
    const ExhaustiveOptions& options = {});

/// Number of combinations the search would enumerate (before the budget
/// check); exposed for tests and for Algorithm 3's fallback decision.
[[nodiscard]] std::size_t exhaustive_combination_count(
    const CoverageModel& model, std::size_t k);

}  // namespace rap::core
