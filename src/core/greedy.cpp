#include "src/core/greedy.h"

#include <stdexcept>

#include "src/core/evaluator.h"

namespace rap::core {

PlacementResult greedy_coverage_placement(const CoverageModel& model,
                                          std::size_t k,
                                          const GreedyOptions& options) {
  if (k == 0) {
    throw std::invalid_argument("greedy_coverage_placement: k must be > 0");
  }
  PlacementState state(model);
  const auto n = static_cast<graph::NodeId>(model.num_nodes());
  for (std::size_t step = 0; step < k && state.placement().size() < n; ++step) {
    graph::NodeId best = graph::kInvalidNode;
    double best_gain = -1.0;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (state.contains(v)) continue;
      const double gain = state.uncovered_gain(v);
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    if (best == graph::kInvalidNode) break;
    if (best_gain <= 0.0 && options.stop_when_no_gain) break;
    state.add(best);
  }
  return {state.placement(), state.value()};
}

}  // namespace rap::core
