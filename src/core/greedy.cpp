#include "src/core/greedy.h"

#include "src/core/evaluator.h"
#include "src/core/k_policy.h"
#include "src/core/parallel_scan.h"
#include "src/obs/telemetry.h"

namespace rap::core {

PlacementResult greedy_coverage_placement(const CoverageModel& model,
                                          std::size_t k,
                                          const GreedyOptions& options) {
  k = checked_budget(model, k, "greedy_coverage_placement");
  const obs::Span span("greedy_coverage");
  std::uint64_t iterations = 0;
  std::uint64_t evaluations = 0;
  PlacementState state(model);
  const auto n = static_cast<graph::NodeId>(model.num_nodes());
  for (std::size_t step = 0; step < k && state.placement().size() < n; ++step) {
    const detail::ScanBest best = detail::best_unplaced(
        state, n, [&](graph::NodeId v) { return state.uncovered_gain(v); });
    evaluations += best.evaluations;
    if (best.node == graph::kInvalidNode) break;
    if (best.score <= 0.0 && options.stop_when_no_gain) break;
    state.add(best.node);
    ++iterations;
    obs::observe("placement.selected_gain", best.score);
  }
  if (obs::ambient() != nullptr) {
    obs::add_counter("greedy.iterations", iterations);
    obs::add_counter("greedy.gain_evaluations", evaluations);
  }
  return {state.placement(), state.value()};
}

}  // namespace rap::core
