// Stochastic (sample-average) placement.
//
// The paper plans against one historical traffic snapshot; demand_robustness
// (src/eval/robustness.h) shows what that costs when volumes move. This
// module closes the loop: greedily maximise the AVERAGE attracted customers
// across a set of demand scenarios (sample average approximation). The
// averaged objective is still monotone submodular — an average of
// facility-location functions — so the greedy keeps the 1 - 1/e guarantee
// with respect to the sampled average.
#pragma once

#include <memory>
#include <span>

#include "src/core/problem.h"
#include "src/util/rng.h"

namespace rap::core {

/// Greedy placement maximising the mean marginal gain across `scenarios`
/// (all must share one road network). Returns the average value. Stops
/// early when no intersection helps any scenario. Throws on k == 0, an
/// empty scenario set, a null entry, or mismatched networks.
[[nodiscard]] PlacementResult stochastic_greedy_placement(
    std::span<const CoverageModel* const> scenarios, std::size_t k);

/// Average value of a fixed placement across scenarios (same validation).
[[nodiscard]] double evaluate_scenario_average(
    std::span<const CoverageModel* const> scenarios,
    std::span<const graph::NodeId> nodes);

/// Builds demand scenarios by perturbing flow volumes multiplicatively
/// (vehicles' = vehicles * max(0, 1 + cv * N(0,1))), one PlacementProblem
/// per scenario. `net` and `utility` must outlive the result.
[[nodiscard]] std::vector<std::unique_ptr<PlacementProblem>>
make_demand_scenarios(const graph::RoadNetwork& net,
                      const std::vector<traffic::TrafficFlow>& flows,
                      graph::NodeId shop,
                      const traffic::UtilityFunction& utility,
                      std::size_t count, double volume_cv, std::uint64_t seed);

}  // namespace rap::core
