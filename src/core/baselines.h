// The four comparison algorithms of Section V-B.
//
//   MaxCardinality — top-k intersections by number of passing traffic flows.
//   MaxVehicles    — top-k intersections by number of passing vehicles.
//   MaxCustomers   — top-k intersections by customers attracted if a single
//                    RAP were placed there (optimal at k = 1).
//   Random         — k intersections drawn uniformly from the D x D square
//                    centred at the shop.
// All rankings break ties towards the lowest node id for determinism.
#pragma once

#include "src/core/problem.h"
#include "src/util/rng.h"

namespace rap::core {

[[nodiscard]] PlacementResult max_cardinality_placement(
    const CoverageModel& model, std::size_t k);

[[nodiscard]] PlacementResult max_vehicles_placement(
    const CoverageModel& model, std::size_t k);

[[nodiscard]] PlacementResult max_customers_placement(
    const CoverageModel& model, std::size_t k);

/// Uniform-random placement inside the D x D square around the shop (D is
/// the utility range, matching the paper's setup). Falls back to the whole
/// network when the square contains fewer than k intersections. Requires a
/// single-shop problem (problem.shop() valid).
[[nodiscard]] PlacementResult random_placement(const CoverageModel& model,
                                               std::size_t k, util::Rng& rng);

}  // namespace rap::core
