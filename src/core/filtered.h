// A CoverageModel decorator restricted to a subset of flows. Algorithm 3's
// second stage greedily covers only the *straight* traffic flows; wrapping
// the full model keeps the greedy implementations unchanged.
#pragma once

#include <vector>

#include "src/core/problem.h"

namespace rap::core {

class FilteredCoverageModel final : public CoverageModel {
 public:
  /// `active[f]` selects which of `base`'s flows remain visible. The base
  /// model must outlive the filter. Throws on a size mismatch.
  FilteredCoverageModel(const CoverageModel& base, std::vector<bool> active);

  [[nodiscard]] const graph::RoadNetwork& network() const noexcept override {
    return base_->network();
  }
  [[nodiscard]] const traffic::UtilityFunction& utility() const noexcept override {
    return base_->utility();
  }
  [[nodiscard]] graph::NodeId shop() const noexcept override {
    return base_->shop();
  }
  /// Flow indices are preserved (not compacted): num_flows() matches the
  /// base so indices stay comparable across the filter boundary; filtered
  /// flows simply never appear in reach_at and attract 0 customers.
  [[nodiscard]] std::size_t num_flows() const noexcept override {
    return base_->num_flows();
  }
  [[nodiscard]] std::span<const traffic::NodeIncidence> reach_at(
      graph::NodeId node) const override;
  [[nodiscard]] double customers(traffic::FlowIndex flow,
                                 double detour) const override;
  /// Forwarded unfiltered from the base model: the CoverageModel interface
  /// has no per-flow vehicle breakdown to re-aggregate. Placement gains
  /// (reach_at/customers) are what the filter guarantees; vehicle counts
  /// remain a property of the physical traffic.
  [[nodiscard]] double passing_vehicles(graph::NodeId node) const override;
  [[nodiscard]] std::size_t passing_flow_count(
      graph::NodeId node) const override;

 private:
  const CoverageModel* base_;
  std::vector<bool> active_;
  // Materialised filtered reach lists (CSR), built once.
  std::vector<std::uint32_t> node_start_;
  std::vector<traffic::NodeIncidence> node_entries_;
  std::vector<double> vehicles_at_node_;
};

}  // namespace rap::core
