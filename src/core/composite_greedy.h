// Algorithm 2 — the composite greedy solution with the 1 - 1/sqrt(e) bound.
//
// At every step two candidate intersections are computed:
//   (i)  the intersection attracting the most customers from flows that
//        currently contribute nothing (cover new traffic), and
//   (ii) the intersection attracting the most *additional* customers from
//        already-contributing flows by offering a smaller detour distance
//        (the RAP-overlap factor).
// The better of the two candidates receives the RAP. With the threshold
// utility candidate (ii) is always worthless, so Algorithm 2 reduces to
// Algorithm 1 exactly as the paper observes.
//
// NaiveMarginalGreedy — the strawman discussed around Fig. 4: maximise the
// plain total marginal gain. It carries no approximation bound (the paper's
// counter-example is reproduced in tests) but is a useful ablation baseline.
#pragma once

#include "src/core/problem.h"

namespace rap::core {

struct CompositeGreedyOptions {
  bool stop_when_no_gain = true;
};

/// Algorithm 2. Budget contract (core/k_policy.h): k == 0 throws
/// std::invalid_argument, k > num_nodes clamps and sets the
/// "placement.k_clamped" telemetry gauge. Deterministic (ties towards the
/// lowest node id; candidate (i) wins exact ties with candidate (ii),
/// matching the listing's order).
[[nodiscard]] PlacementResult composite_greedy_placement(
    const CoverageModel& model, std::size_t k,
    const CompositeGreedyOptions& options = {});

/// The unbounded strawman: argmax of gain_if_added at every step.
[[nodiscard]] PlacementResult naive_marginal_greedy_placement(
    const CoverageModel& model, std::size_t k,
    const CompositeGreedyOptions& options = {});

}  // namespace rap::core
