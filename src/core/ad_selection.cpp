#include "src/core/ad_selection.h"

#include <stdexcept>

namespace rap::core {
namespace {

// Incremental state: per-flow best contribution over placed (node, ad)
// pairs. Mirrors PlacementState but with the ad dimension folded in.
class AdState {
 public:
  AdState(const CoverageModel& model, const InterestMatrix& interest)
      : model_(&model),
        interest_(&interest),
        node_used_(model.num_nodes(), false),
        contribution_(model.num_flows(), 0.0) {}

  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] bool node_used(graph::NodeId v) const { return node_used_[v]; }

  [[nodiscard]] double gain(graph::NodeId v, AdKind ad) const {
    double total = 0.0;
    for (const traffic::NodeIncidence& inc : model_->reach_at(v)) {
      const double candidate =
          (*interest_)(inc.flow, ad) * model_->customers(inc.flow, inc.detour);
      if (candidate > contribution_[inc.flow]) {
        total += candidate - contribution_[inc.flow];
      }
    }
    return total;
  }

  void add(graph::NodeId v, AdKind ad) {
    if (node_used_[v]) return;
    node_used_[v] = true;
    for (const traffic::NodeIncidence& inc : model_->reach_at(v)) {
      const double candidate =
          (*interest_)(inc.flow, ad) * model_->customers(inc.flow, inc.detour);
      if (candidate > contribution_[inc.flow]) {
        value_ += candidate - contribution_[inc.flow];
        contribution_[inc.flow] = candidate;
      }
    }
  }

 private:
  const CoverageModel* model_;
  const InterestMatrix* interest_;
  std::vector<bool> node_used_;
  std::vector<double> contribution_;
  double value_ = 0.0;
};

void check_compatible(const CoverageModel& model,
                      const InterestMatrix& interest) {
  if (interest.num_flows() != model.num_flows()) {
    throw std::invalid_argument(
        "multi_ad: interest matrix flow count != model flow count");
  }
  if (interest.num_ads() == 0) {
    throw std::invalid_argument("multi_ad: need at least one ad kind");
  }
}

}  // namespace

InterestMatrix::InterestMatrix(std::size_t num_flows, std::size_t num_ads,
                               std::vector<double> values)
    : num_flows_(num_flows), num_ads_(num_ads), values_(std::move(values)) {
  if (values_.size() != num_flows * num_ads) {
    throw std::invalid_argument("InterestMatrix: values size mismatch");
  }
  for (const double v : values_) {
    if (!(v >= 0.0) || v > 1.0) {
      throw std::invalid_argument("InterestMatrix: entries must be in [0, 1]");
    }
  }
}

InterestMatrix InterestMatrix::uniform(std::size_t num_flows,
                                       std::size_t num_ads) {
  return {num_flows, num_ads, std::vector<double>(num_flows * num_ads, 1.0)};
}

double InterestMatrix::operator()(traffic::FlowIndex flow, AdKind ad) const {
  if (flow >= num_flows_ || ad >= num_ads_) {
    throw std::out_of_range("InterestMatrix: bad index");
  }
  return values_[flow * num_ads_ + ad];
}

AdPlacementResult multi_ad_greedy_placement(const CoverageModel& model,
                                            const InterestMatrix& interest,
                                            std::size_t k) {
  if (k == 0) {
    throw std::invalid_argument("multi_ad_greedy_placement: k must be > 0");
  }
  check_compatible(model, interest);
  AdState state(model, interest);
  AdPlacementResult result;
  const auto n = static_cast<graph::NodeId>(model.num_nodes());
  for (std::size_t step = 0; step < k; ++step) {
    AdAssignment best;
    double best_gain = 0.0;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (state.node_used(v)) continue;
      for (AdKind a = 0; a < interest.num_ads(); ++a) {
        const double gain = state.gain(v, a);
        if (gain > best_gain) {
          best_gain = gain;
          best = {v, a};
        }
      }
    }
    if (best.node == graph::kInvalidNode) break;
    state.add(best.node, best.ad);
    result.raps.push_back(best);
  }
  result.customers = state.value();
  return result;
}

double evaluate_ad_placement(const CoverageModel& model,
                             const InterestMatrix& interest,
                             std::span<const AdAssignment> raps) {
  check_compatible(model, interest);
  AdState state(model, interest);
  for (const AdAssignment& rap : raps) {
    model.network().check_node(rap.node);
    if (rap.ad >= interest.num_ads()) {
      throw std::out_of_range("evaluate_ad_placement: bad ad kind");
    }
    state.add(rap.node, rap.ad);
  }
  return state.value();
}

}  // namespace rap::core
