// Multi-shop extension (Section III-A: "our model can also be easily
// extended to scenarios with multiple shops... the result depends on the
// shop that provides the smallest detour distance among all the shops";
// Section VI lists multi-shop scheduling as future work).
//
// A driver who receives the advertisement at node v detours to whichever
// shop is cheapest from there, so the effective detour at v is the minimum
// of the per-shop detours. MultiShopDetour implements exactly that, and
// make_multishop_problem wires it into a regular PlacementProblem so all
// placement algorithms (greedy, composite, exhaustive, baselines except
// Random) work unchanged.
#pragma once

#include <memory>
#include <vector>

#include "src/core/problem.h"
#include "src/traffic/detour.h"

namespace rap::core {

class MultiShopDetour final : public traffic::DetourSource {
 public:
  /// Throws std::invalid_argument when `shops` is empty or contains an
  /// invalid node.
  MultiShopDetour(const graph::RoadNetwork& net,
                  std::vector<graph::NodeId> shops,
                  traffic::DetourMode mode = traffic::DetourMode::kAlongPath);

  [[nodiscard]] const std::vector<graph::NodeId>& shops() const noexcept {
    return shops_;
  }

  [[nodiscard]] std::vector<double> detours_along_path(
      const traffic::TrafficFlow& flow) const override;

 private:
  std::vector<graph::NodeId> shops_;
  std::vector<traffic::DetourCalculator> calculators_;
};

/// Builds a placement problem whose detours are minima over several shops.
/// problem.shop() is kInvalidNode (there is no single shop), so the Random
/// baseline does not apply.
[[nodiscard]] PlacementProblem make_multishop_problem(
    const graph::RoadNetwork& net, std::vector<traffic::TrafficFlow> flows,
    std::vector<graph::NodeId> shops, const traffic::UtilityFunction& utility,
    traffic::DetourMode mode = traffic::DetourMode::kAlongPath);

}  // namespace rap::core
