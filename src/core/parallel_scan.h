// Parallel marginal-gain scan — the shared kernel behind the greedy
// family's candidate selection.
//
// The serial selection loop is an ascending scan keeping the first
// strictly-better candidate, i.e. the highest-scoring unplaced node with
// ties broken to the lowest id. best_unplaced() reproduces that exactly
// under util::parallel_reduce: each static chunk computes its own
// lowest-id argmax, and chunks combine in ascending order with the same
// strict tie-to-lowest-id rule. Scores are compared, never accumulated, so
// no floating-point reassociation occurs and the selection is bit-identical
// to the serial scan for any thread count.
//
// Score functions must be pure reads of the PlacementState/CoverageModel
// (uncovered_gain / improvement_gain / gain_if_added all are): chunk bodies
// run concurrently on pool workers.
#pragma once

#include <cstdint>

#include "src/core/evaluator.h"
#include "src/util/thread_pool.h"

namespace rap::core::detail {

/// Nodes per chunk of the candidate scan. Fixed (never derived from the
/// thread count) so the chunk partition — and with it any telemetry merge
/// order — is identical for every ParallelConfig.
inline constexpr std::size_t kScanGrain = 64;

struct ScanBest {
  graph::NodeId node = graph::kInvalidNode;
  double score = -1.0;
  std::uint64_t evaluations = 0;  ///< unplaced nodes scored (sums over chunks)
};

/// Highest-score unplaced node in [0, n), ties to the lowest id;
/// `node == kInvalidNode` when every node is already placed. `evaluations`
/// counts scored candidates exactly as the serial loop did.
template <typename ScoreFn>
[[nodiscard]] ScanBest best_unplaced(const PlacementState& state,
                                     graph::NodeId n, ScoreFn&& score_of) {
  return util::parallel_reduce<ScanBest>(
      0, n, kScanGrain,
      [&](const util::ChunkRange& chunk) {
        ScanBest best;
        for (std::size_t i = chunk.first; i < chunk.last; ++i) {
          const auto v = static_cast<graph::NodeId>(i);
          if (state.contains(v)) continue;
          ++best.evaluations;
          const double score = score_of(v);
          if (score > best.score) {
            best.score = score;
            best.node = v;
          }
        }
        return best;
      },
      [](ScanBest acc, const ScanBest& next) {
        // kInvalidNode is the largest id, so an empty chunk (score -1,
        // invalid node) never displaces a real candidate on a tie.
        if (next.score > acc.score ||
            (next.score == acc.score && next.node < acc.node)) {
          acc.node = next.node;
          acc.score = next.score;
        }
        acc.evaluations += next.evaluations;
        return acc;
      });
}

}  // namespace rap::core::detail
