#include "src/core/local_search.h"

#include <algorithm>

#include "src/core/composite_greedy.h"
#include "src/core/evaluator.h"
#include "src/obs/telemetry.h"

namespace rap::core {
namespace {

// Deduplicated copy, order preserved.
Placement dedupe(const CoverageModel& model, const Placement& nodes) {
  std::vector<bool> seen(model.num_nodes(), false);
  Placement out;
  for (const graph::NodeId v : nodes) {
    model.network().check_node(v);
    if (!seen[v]) {
      seen[v] = true;
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace

LocalSearchResult local_search_improve(const CoverageModel& model,
                                       const Placement& initial,
                                       const LocalSearchOptions& options) {
  const obs::Span span("local_search");
  std::uint64_t candidate_evaluations = 0;
  Placement current = dedupe(model, initial);
  double current_value = evaluate_placement(model, current);

  LocalSearchResult result;
  bool converged = false;
  const auto n = static_cast<graph::NodeId>(model.num_nodes());
  for (result.swaps_performed = 0; result.swaps_performed < options.max_swaps;
       ++result.swaps_performed) {
    double best_value = current_value;
    std::size_t best_out = current.size();
    graph::NodeId best_in = graph::kInvalidNode;

    std::vector<bool> placed(model.num_nodes(), false);
    for (const graph::NodeId v : current) placed[v] = true;

    for (std::size_t out = 0; out < current.size(); ++out) {
      // State with `out` removed: rebuilt once per removal, then every
      // candidate insertion is a marginal-gain query.
      PlacementState without(model);
      for (std::size_t i = 0; i < current.size(); ++i) {
        if (i != out) without.add(current[i]);
      }
      for (graph::NodeId v = 0; v < n; ++v) {
        if (placed[v]) continue;
        ++candidate_evaluations;
        const double value = without.value() + without.gain_if_added(v);
        if (value > best_value + options.min_improvement) {
          best_value = value;
          best_out = out;
          best_in = v;
        }
      }
    }

    if (best_in == graph::kInvalidNode) {
      converged = true;
      break;
    }
    current[best_out] = best_in;
    current_value = best_value;
  }
  result.placement = {std::move(current), current_value};
  result.converged = converged;
  if (obs::ambient() != nullptr) {
    obs::add_counter("local_search.swaps", result.swaps_performed);
    obs::add_counter("local_search.candidate_evaluations",
                     candidate_evaluations);
  }
  return result;
}

LocalSearchResult greedy_with_local_search(const CoverageModel& model,
                                           std::size_t k,
                                           const LocalSearchOptions& options) {
  const PlacementResult greedy = composite_greedy_placement(model, k);
  LocalSearchResult result = local_search_improve(model, greedy.nodes, options);
  // Defensive: local search is value-monotone by construction, but keep the
  // guarantee explicit.
  if (result.placement.customers < greedy.customers) {
    result.placement = greedy;
  }
  return result;
}

}  // namespace rap::core
