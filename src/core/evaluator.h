// Incremental placement evaluation.
//
// PlacementState tracks, per flow, the best (minimum) detour distance over
// the RAPs placed so far — by Theorem 1 and the redundant-advertisement
// argument, only that minimum matters. Adding a RAP and querying marginal
// gains are both O(reach of the node), which is what makes the greedy
// algorithms' k * |V| * |T| bound real.
//
// Gains are split the way Algorithm 2 needs them:
//   uncovered_gain(v)   — customers gained from flows currently contributing
//                         nothing (factor (i): cover new traffic);
//   improvement_gain(v) — extra customers from flows already contributing,
//                         via a smaller detour distance (factor (ii):
//                         overlaps among RAPs).
// gain_if_added(v) = uncovered_gain(v) + improvement_gain(v).
#pragma once

#include <span>
#include <vector>

#include "src/core/problem.h"

namespace rap::core {

/// True when the library was configured with the RAP_AUDIT CMake option.
/// Audit builds compile a hook call into PlacementState::add() so an
/// installed auditor (src/check/audit.h) can machine-check the state's
/// invariants after every mutation; regular builds contain no call site at
/// all, so the hook is provably zero-overhead when off (asserted by
/// tests/integration/audit_overhead_test.cpp).
#if defined(RAP_AUDIT) && RAP_AUDIT
inline constexpr bool kAuditCompiledIn = true;
#else
inline constexpr bool kAuditCompiledIn = false;
#endif

class PlacementState;

/// Hook invoked after every PlacementState::add() in RAP_AUDIT builds (the
/// runtime toggle: a null hook disables auditing). Registration is always
/// available so callers need no conditional compilation; without RAP_AUDIT
/// the hook is simply never invoked.
using PlacementAuditHook = void (*)(const PlacementState&);

/// Installs `hook` as the process-wide audit hook; returns the previous one
/// (so scoped installers can restore it). Thread-safe: the registration is a
/// single acq_rel atomic exchange — acquire/release publication the
/// compile-time lock analysis cannot model, documented as such in
/// DESIGN.md §15 (this subsystem deliberately has no mutex to annotate).
PlacementAuditHook set_placement_audit_hook(PlacementAuditHook hook) noexcept;

/// The currently installed audit hook, or nullptr.
[[nodiscard]] PlacementAuditHook placement_audit_hook() noexcept;

class PlacementState {
 public:
  explicit PlacementState(const CoverageModel& model);

  [[nodiscard]] const CoverageModel& model() const noexcept { return *model_; }

  /// Expected attracted customers under the current placement.
  [[nodiscard]] double value() const noexcept { return value_; }

  [[nodiscard]] const Placement& placement() const noexcept { return placed_; }
  [[nodiscard]] bool contains(graph::NodeId node) const;

  /// Marginal gain decomposition for adding a RAP at `node`.
  [[nodiscard]] double uncovered_gain(graph::NodeId node) const;
  [[nodiscard]] double improvement_gain(graph::NodeId node) const;
  [[nodiscard]] double gain_if_added(graph::NodeId node) const;

  /// Places a RAP at `node`. Placing at an already-used node is a no-op.
  void add(graph::NodeId node);

  /// Best detour per flow (kUnreachable when no placed RAP reaches it).
  [[nodiscard]] std::span<const double> best_detours() const noexcept {
    return best_detour_;
  }

  /// Current customer contribution per flow.
  [[nodiscard]] std::span<const double> contributions() const noexcept {
    return contribution_;
  }

 private:
  const CoverageModel* model_;
  Placement placed_;
  std::vector<bool> is_placed_;
  std::vector<double> best_detour_;    // per flow
  std::vector<double> contribution_;   // per flow, customers
  double value_ = 0.0;
};

/// One-shot evaluation of a placement (duplicates are tolerated).
[[nodiscard]] double evaluate_placement(const CoverageModel& model,
                                        std::span<const graph::NodeId> nodes);

}  // namespace rap::core
