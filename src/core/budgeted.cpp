#include "src/core/budgeted.h"

#include <cmath>
#include <stdexcept>

#include "src/core/evaluator.h"

namespace rap::core {
namespace {

void validate(const CoverageModel& model, std::span<const double> costs,
              double budget) {
  if (costs.size() != model.num_nodes()) {
    throw std::invalid_argument("budgeted_placement: costs size != num_nodes");
  }
  for (const double c : costs) {
    if (!(c > 0.0) || !std::isfinite(c)) {
      throw std::invalid_argument(
          "budgeted_placement: costs must be finite and > 0");
    }
  }
  if (!(budget > 0.0) || !std::isfinite(budget)) {
    throw std::invalid_argument(
        "budgeted_placement: budget must be finite and > 0");
  }
}

}  // namespace

double placement_cost(std::span<const double> costs,
                      std::span<const graph::NodeId> nodes) {
  double total = 0.0;
  for (const graph::NodeId v : nodes) {
    if (v >= costs.size()) {
      throw std::out_of_range("placement_cost: bad node id");
    }
    total += costs[v];
  }
  return total;
}

PlacementResult budgeted_placement(const CoverageModel& model,
                                   std::span<const double> costs, double budget,
                                   const BudgetedOptions& options) {
  validate(model, costs, budget);
  const auto n = static_cast<graph::NodeId>(model.num_nodes());
  const auto gain_of = [&](const PlacementState& state, graph::NodeId v) {
    return options.use_marginal_gain ? state.gain_if_added(v)
                                     : state.uncovered_gain(v);
  };

  // Part (a): ratio greedy under the budget.
  PlacementState greedy(model);
  double spent = 0.0;
  for (;;) {
    graph::NodeId best = graph::kInvalidNode;
    double best_ratio = 0.0;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (greedy.contains(v) || spent + costs[v] > budget) continue;
      const double ratio = gain_of(greedy, v) / costs[v];
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = v;
      }
    }
    if (best == graph::kInvalidNode) break;
    spent += costs[best];
    greedy.add(best);
  }

  // Part (b): best affordable singleton.
  PlacementState empty(model);
  graph::NodeId best_single = graph::kInvalidNode;
  double best_single_gain = 0.0;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (costs[v] > budget) continue;
    const double gain = empty.gain_if_added(v);
    if (gain > best_single_gain) {
      best_single_gain = gain;
      best_single = v;
    }
  }

  if (best_single != graph::kInvalidNode && best_single_gain > greedy.value()) {
    return {{best_single}, best_single_gain};
  }
  return {greedy.placement(), greedy.value()};
}

}  // namespace rap::core
