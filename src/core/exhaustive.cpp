#include "src/core/exhaustive.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "src/core/evaluator.h"
#include "src/core/k_policy.h"

namespace rap::core {
namespace {

std::vector<graph::NodeId> useful_candidates(const CoverageModel& model) {
  std::vector<graph::NodeId> out;
  out.reserve(model.num_nodes());
  PlacementState empty(model);
  for (graph::NodeId v = 0; v < model.num_nodes(); ++v) {
    if (empty.uncovered_gain(v) > 0.0) out.push_back(v);
  }
  return out;
}

std::size_t combinations(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::size_t result = 1;
  for (std::size_t i = 1; i <= k; ++i) {
    const std::size_t numerator = n - k + i;
    // result * numerator / i is exact because result already contains
    // C(n-k+i-1, i-1) which makes the product divisible by i; guard overflow.
    if (result > std::numeric_limits<std::size_t>::max() / numerator) {
      return std::numeric_limits<std::size_t>::max();
    }
    result = result * numerator / i;
  }
  return result;
}

// Depth-first enumeration of k-subsets with incremental PlacementState
// rebuilds per leaf replaced by add-only states along the DFS spine:
// PlacementState has no remove(), so we keep a stack of states.
class Search {
 public:
  Search(const CoverageModel& model, std::span<const graph::NodeId> pool,
         std::size_t k)
      : pool_(pool), k_(k) {
    best_.customers = -1.0;
    states_.reserve(k + 2);
    states_.emplace_back(model);
    recurse(0);
  }

  [[nodiscard]] PlacementResult best() && { return std::move(best_); }

 private:
  void recurse(std::size_t first) {
    const PlacementState& current = states_.back();
    if (current.placement().size() == k_ || first == pool_.size()) {
      if (current.value() > best_.customers) {
        best_ = {current.placement(), current.value()};
      }
      return;
    }
    const std::size_t remaining = k_ - current.placement().size();
    // Prune: not enough pool left to fill the placement? Still evaluate the
    // partial placement (placing fewer than k RAPs is allowed).
    if (pool_.size() - first < remaining) {
      if (current.value() > best_.customers) {
        best_ = {current.placement(), current.value()};
      }
    }
    for (std::size_t i = first; i < pool_.size(); ++i) {
      PlacementState next = states_.back();  // copy before push: no aliasing
      next.add(pool_[i]);
      states_.push_back(std::move(next));
      recurse(i + 1);
      states_.pop_back();
    }
  }

  std::span<const graph::NodeId> pool_;
  std::size_t k_;
  std::vector<PlacementState> states_;
  PlacementResult best_;
};

}  // namespace

std::size_t exhaustive_combination_count(const CoverageModel& model,
                                         std::size_t k) {
  const auto pool = useful_candidates(model);
  return combinations(pool.size(), std::min(k, pool.size()));
}

PlacementResult exhaustive_optimal_placement(const CoverageModel& model,
                                             std::size_t k,
                                             const ExhaustiveOptions& options) {
  k = checked_budget(model, k, "exhaustive_optimal_placement");
  const std::vector<graph::NodeId> pool = useful_candidates(model);
  const std::size_t effective_k = std::min(k, pool.size());
  if (effective_k == 0) return {};
  const std::size_t count = combinations(pool.size(), effective_k);
  if (count > options.max_combinations) {
    // Early exit BEFORE enumerating: a too-large instance is a caller error
    // (pick the flow/Lagrangian bound tier instead), not a condition to
    // discover after minutes of useless search.
    throw std::invalid_argument(
        "exhaustive_optimal_placement: C(" + std::to_string(pool.size()) +
        ", " + std::to_string(effective_k) + ") = " + std::to_string(count) +
        " combinations exceeds max_combinations = " +
        std::to_string(options.max_combinations));
  }
  return Search(model, pool, effective_k).best();
}

}  // namespace rap::core
