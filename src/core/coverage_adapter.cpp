#include "src/core/coverage_adapter.h"

#include <cmath>
#include <stdexcept>

#include "src/core/evaluator.h"

namespace rap::core {

cover::CoverageInstance to_coverage_instance(const CoverageModel& model) {
  constexpr double kTol = 1e-9;
  std::vector<double> weights(model.num_flows(), -1.0);  // -1 = unseen
  std::vector<std::vector<cover::ElementId>> sets(model.num_nodes());
  for (graph::NodeId v = 0; v < model.num_nodes(); ++v) {
    for (const traffic::NodeIncidence& inc : model.reach_at(v)) {
      const double value = model.customers(inc.flow, inc.detour);
      if (value <= 0.0) continue;  // beyond the threshold: not covered here
      if (weights[inc.flow] < 0.0) {
        weights[inc.flow] = value;
      } else if (std::abs(weights[inc.flow] - value) >
                 kTol * (1.0 + weights[inc.flow])) {
        throw std::invalid_argument(
            "to_coverage_instance: flow value differs across intersections — "
            "the utility is not threshold-like");
      }
      sets[v].push_back(inc.flow);
    }
  }
  for (double& w : weights) {
    if (w < 0.0) w = 0.0;  // flow never coverable: weight irrelevant
  }
  return {std::move(weights), std::move(sets)};
}

PlacementResult coverage_greedy_via_reduction(const CoverageModel& model,
                                              std::size_t k) {
  const cover::CoverageInstance instance = to_coverage_instance(model);
  const cover::CoverageResult covered =
      cover::lazy_greedy_max_coverage(instance, k);
  PlacementResult result;
  result.nodes.assign(covered.sets.begin(), covered.sets.end());
  result.customers = evaluate_placement(model, result.nodes);
  return result;
}

}  // namespace rap::core
