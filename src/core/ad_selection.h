// Multiple advertisement kinds — the paper's stated future work ("multiple
// shops and multiple kinds of advertisements").
//
// Each RAP broadcasts ONE advertisement kind; drivers differ in which ads
// interest them. interest[f][a] in [0, 1] scales flow f's attraction to ad
// kind a (1 = the single-ad model). Since all the paper's utilities are
// linear in alpha, the expected customers from flow f hearing ad a at
// detour d is interest[f][a] * customers(f, d), and the per-flow
// contribution is the maximum over placed (intersection, ad) pairs — still
// a monotone submodular objective, so the joint greedy over pairs inherits
// the 1 - 1/e guarantee.
#pragma once

#include <span>
#include <vector>

#include "src/core/problem.h"

namespace rap::core {

using AdKind = std::uint32_t;

struct AdAssignment {
  graph::NodeId node = graph::kInvalidNode;
  AdKind ad = 0;
};

struct AdPlacementResult {
  std::vector<AdAssignment> raps;  ///< in placement order
  double customers = 0.0;
};

/// Flow-by-ad interest matrix, row-major: interest[f * num_ads + a].
class InterestMatrix {
 public:
  /// Throws on a size mismatch or entries outside [0, 1].
  InterestMatrix(std::size_t num_flows, std::size_t num_ads,
                 std::vector<double> values);

  /// Uniform interest 1.0 (reduces to the single-ad model for any ad).
  static InterestMatrix uniform(std::size_t num_flows, std::size_t num_ads);

  [[nodiscard]] std::size_t num_flows() const noexcept { return num_flows_; }
  [[nodiscard]] std::size_t num_ads() const noexcept { return num_ads_; }
  [[nodiscard]] double operator()(traffic::FlowIndex flow, AdKind ad) const;

 private:
  std::size_t num_flows_;
  std::size_t num_ads_;
  std::vector<double> values_;
};

/// Joint greedy over (intersection, ad) pairs; each intersection hosts at
/// most one RAP. Stops early when nothing gains. Throws when k == 0 or the
/// matrix does not match the model's flow count.
[[nodiscard]] AdPlacementResult multi_ad_greedy_placement(
    const CoverageModel& model, const InterestMatrix& interest, std::size_t k);

/// One-shot evaluation of an assignment (later duplicates of a node are
/// ignored, matching the placement semantics).
[[nodiscard]] double evaluate_ad_placement(
    const CoverageModel& model, const InterestMatrix& interest,
    std::span<const AdAssignment> raps);

}  // namespace rap::core
