// Budgeted RAP placement — the setting of Khuller, Moss & Naor's budgeted
// maximum coverage, which the paper cites as [18] for its greedy bound.
//
// Instead of a fixed count k, every intersection has an installation cost
// (roadside power, permits, backhaul differ per site) and the shop has a
// total budget B. The solver is the classic two-part approximation:
//   (a) ratio greedy — repeatedly take the affordable intersection with the
//       best marginal-gain / cost ratio;
//   (b) the best single affordable intersection;
// and returns the better of the two (for unit costs and B = k this is
// Algorithm 1 with an extra max, so never worse).
#pragma once

#include <span>

#include "src/core/problem.h"

namespace rap::core {

struct BudgetedOptions {
  /// Use total marginal gain (facility-location objective) rather than the
  /// uncovered-only gain. Matches naive_marginal_greedy on unit costs when
  /// true; greedy_coverage_placement when false.
  bool use_marginal_gain = true;
};

/// Places RAPs within `budget`. `costs[v]` is intersection v's installation
/// cost (> 0, finite). Throws std::invalid_argument on a size mismatch,
/// non-positive cost, or non-positive budget.
[[nodiscard]] PlacementResult budgeted_placement(
    const CoverageModel& model, std::span<const double> costs, double budget,
    const BudgetedOptions& options = {});

/// Total cost of a placement under `costs`.
[[nodiscard]] double placement_cost(std::span<const double> costs,
                                    std::span<const graph::NodeId> nodes);

}  // namespace rap::core
