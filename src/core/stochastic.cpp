#include "src/core/stochastic.h"

#include <stdexcept>

#include "src/core/evaluator.h"


namespace rap::core {
namespace {

void validate_scenarios(std::span<const CoverageModel* const> scenarios) {
  if (scenarios.empty()) {
    throw std::invalid_argument("stochastic placement: no scenarios");
  }
  for (const CoverageModel* scenario : scenarios) {
    if (scenario == nullptr) {
      throw std::invalid_argument("stochastic placement: null scenario");
    }
    if (&scenario->network() != &scenarios.front()->network()) {
      throw std::invalid_argument(
          "stochastic placement: scenarios must share one network");
    }
  }
}

}  // namespace

PlacementResult stochastic_greedy_placement(
    std::span<const CoverageModel* const> scenarios, std::size_t k) {
  if (k == 0) {
    throw std::invalid_argument("stochastic_greedy_placement: k must be > 0");
  }
  validate_scenarios(scenarios);

  std::vector<PlacementState> states;
  states.reserve(scenarios.size());
  for (const CoverageModel* scenario : scenarios) {
    states.emplace_back(*scenario);
  }
  const auto n =
      static_cast<graph::NodeId>(scenarios.front()->num_nodes());
  Placement placed;
  for (std::size_t step = 0; step < k && placed.size() < n; ++step) {
    graph::NodeId best = graph::kInvalidNode;
    double best_gain = 0.0;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (states.front().contains(v)) continue;
      double gain = 0.0;
      for (const PlacementState& state : states) {
        gain += state.gain_if_added(v);
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    if (best == graph::kInvalidNode) break;
    for (PlacementState& state : states) state.add(best);
    placed.push_back(best);
  }

  double total = 0.0;
  for (const PlacementState& state : states) total += state.value();
  return {placed, total / static_cast<double>(states.size())};
}

double evaluate_scenario_average(
    std::span<const CoverageModel* const> scenarios,
    std::span<const graph::NodeId> nodes) {
  validate_scenarios(scenarios);
  double total = 0.0;
  for (const CoverageModel* scenario : scenarios) {
    total += evaluate_placement(*scenario, nodes);
  }
  return total / static_cast<double>(scenarios.size());
}

std::vector<std::unique_ptr<PlacementProblem>> make_demand_scenarios(
    const graph::RoadNetwork& net,
    const std::vector<traffic::TrafficFlow>& flows, graph::NodeId shop,
    const traffic::UtilityFunction& utility, std::size_t count,
    double volume_cv, std::uint64_t seed) {
  if (count == 0) {
    throw std::invalid_argument("make_demand_scenarios: count must be > 0");
  }
  std::vector<std::unique_ptr<PlacementProblem>> scenarios;
  scenarios.reserve(count);
  const util::Rng root(seed);
  for (std::size_t s = 0; s < count; ++s) {
    util::Rng rng = root.fork(s);
    scenarios.push_back(std::make_unique<PlacementProblem>(
        net, traffic::perturb_demand(flows, volume_cv, rng), shop, utility));
  }
  return scenarios;
}

}  // namespace rap::core
