#include "src/core/problem.h"

#include <cmath>
#include <stdexcept>

namespace rap::core {

PlacementProblem::PlacementProblem(const graph::RoadNetwork& net,
                                   std::vector<traffic::TrafficFlow> flows,
                                   graph::NodeId shop,
                                   const traffic::UtilityFunction& utility,
                                   traffic::DetourMode mode)
    : PlacementProblem(net, std::move(flows), shop, utility,
                       std::make_unique<traffic::DetourCalculator>(
                           net, (net.check_node(shop), shop), mode)) {}

PlacementProblem::PlacementProblem(
    const graph::RoadNetwork& net, std::vector<traffic::TrafficFlow> flows,
    graph::NodeId shop, const traffic::UtilityFunction& utility,
    std::unique_ptr<const traffic::DetourSource> detours)
    : net_(&net),
      flows_(std::move(flows)),
      shop_(shop),
      utility_(&utility),
      detours_(std::move(detours)) {
  if (!detours_) {
    throw std::invalid_argument("PlacementProblem: null detour source");
  }
  for (const traffic::TrafficFlow& flow : flows_) {
    traffic::validate_flow(net, flow);
  }
  incidence_ =
      std::make_unique<traffic::IncidenceIndex>(net, flows_, *detours_);
}

double PlacementProblem::customers(traffic::FlowIndex flow,
                                   double detour) const {
  if (flow >= flows_.size()) {
    throw std::out_of_range("PlacementProblem::customers: bad flow index");
  }
  if (std::isinf(detour)) return 0.0;
  const traffic::TrafficFlow& f = flows_[flow];
  return utility_->probability(detour, f.alpha) * f.population();
}

}  // namespace rap::core
