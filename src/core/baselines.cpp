#include "src/core/baselines.h"

#include <algorithm>
#include <stdexcept>

#include "src/core/evaluator.h"
#include "src/geo/bbox.h"

namespace rap::core {
namespace {

void check_k(std::size_t k, const char* who) {
  if (k == 0) {
    throw std::invalid_argument(std::string(who) + ": k must be > 0");
  }
}

// Top-k node ids by score, descending, ties towards the lowest id.
template <typename ScoreFn>
PlacementResult top_k_by(const CoverageModel& model, std::size_t k,
                         ScoreFn&& score_of) {
  std::vector<graph::NodeId> nodes(model.num_nodes());
  for (graph::NodeId v = 0; v < nodes.size(); ++v) nodes[v] = v;
  std::vector<double> score(nodes.size());
  for (graph::NodeId v = 0; v < nodes.size(); ++v) score[v] = score_of(v);
  const std::size_t take = std::min(k, nodes.size());
  std::partial_sort(nodes.begin(),
                    nodes.begin() + static_cast<std::ptrdiff_t>(take),
                    nodes.end(), [&](graph::NodeId a, graph::NodeId b) {
                      if (score[a] != score[b]) return score[a] > score[b];
                      return a < b;
                    });
  nodes.resize(take);
  return {nodes, evaluate_placement(model, nodes)};
}

}  // namespace

PlacementResult max_cardinality_placement(const CoverageModel& model,
                                          std::size_t k) {
  check_k(k, "max_cardinality_placement");
  return top_k_by(model, k, [&](graph::NodeId v) {
    return static_cast<double>(model.passing_flow_count(v));
  });
}

PlacementResult max_vehicles_placement(const CoverageModel& model,
                                       std::size_t k) {
  check_k(k, "max_vehicles_placement");
  return top_k_by(model, k, [&](graph::NodeId v) {
    return model.passing_vehicles(v);
  });
}

PlacementResult max_customers_placement(const CoverageModel& model,
                                        std::size_t k) {
  check_k(k, "max_customers_placement");
  PlacementState empty(model);
  return top_k_by(model, k, [&](graph::NodeId v) {
    return empty.uncovered_gain(v);  // singleton gain: every flow is uncovered
  });
}

PlacementResult random_placement(const CoverageModel& model, std::size_t k,
                                 util::Rng& rng) {
  check_k(k, "random_placement");
  if (model.shop() == graph::kInvalidNode) {
    throw std::invalid_argument("random_placement: needs a single-shop problem");
  }
  const geo::BBox square = geo::BBox::centered_square(
      model.network().position(model.shop()), model.utility().range());
  std::vector<graph::NodeId> pool;
  pool.reserve(model.num_nodes());
  for (graph::NodeId v = 0; v < model.num_nodes(); ++v) {
    if (square.contains(model.network().position(v))) pool.push_back(v);
  }
  if (pool.size() < k) {
    pool.resize(model.num_nodes());
    for (graph::NodeId v = 0; v < pool.size(); ++v) pool[v] = v;
  }
  const std::size_t take = std::min(k, pool.size());
  Placement chosen;
  chosen.reserve(take);
  for (const std::size_t idx : rng.sample_without_replacement(pool.size(), take)) {
    chosen.push_back(pool[idx]);
  }
  // Kept in sampling order: every prefix is itself a uniform sample, which
  // the experiment runner exploits to sweep k in one pass.
  return {chosen, evaluate_placement(model, chosen)};
}

}  // namespace rap::core
