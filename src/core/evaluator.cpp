#include "src/core/evaluator.h"

#include <atomic>

namespace rap::core {
namespace {

std::atomic<PlacementAuditHook> g_audit_hook{nullptr};

}  // namespace

PlacementAuditHook set_placement_audit_hook(PlacementAuditHook hook) noexcept {
  return g_audit_hook.exchange(hook, std::memory_order_acq_rel);
}

PlacementAuditHook placement_audit_hook() noexcept {
  return g_audit_hook.load(std::memory_order_acquire);
}

PlacementState::PlacementState(const CoverageModel& model)
    : model_(&model),
      is_placed_(model.num_nodes(), false),
      best_detour_(model.num_flows(), graph::kUnreachable),
      contribution_(model.num_flows(), 0.0) {}

bool PlacementState::contains(graph::NodeId node) const {
  model_->network().check_node(node);
  return is_placed_[node];
}

double PlacementState::uncovered_gain(graph::NodeId node) const {
  double gain = 0.0;
  for (const traffic::NodeIncidence& inc : model_->reach_at(node)) {
    if (contribution_[inc.flow] > 0.0) continue;
    gain += model_->customers(inc.flow, inc.detour);
  }
  return gain;
}

double PlacementState::improvement_gain(graph::NodeId node) const {
  double gain = 0.0;
  for (const traffic::NodeIncidence& inc : model_->reach_at(node)) {
    if (contribution_[inc.flow] <= 0.0) continue;
    if (inc.detour >= best_detour_[inc.flow]) continue;
    gain += model_->customers(inc.flow, inc.detour) - contribution_[inc.flow];
  }
  return gain;
}

double PlacementState::gain_if_added(graph::NodeId node) const {
  double gain = 0.0;
  for (const traffic::NodeIncidence& inc : model_->reach_at(node)) {
    if (inc.detour >= best_detour_[inc.flow]) continue;
    const double candidate = model_->customers(inc.flow, inc.detour);
    if (candidate > contribution_[inc.flow]) {
      gain += candidate - contribution_[inc.flow];
    }
  }
  return gain;
}

void PlacementState::add(graph::NodeId node) {
  model_->network().check_node(node);
  if (is_placed_[node]) return;
  is_placed_[node] = true;
  placed_.push_back(node);
  for (const traffic::NodeIncidence& inc : model_->reach_at(node)) {
    if (inc.detour < best_detour_[inc.flow]) {
      best_detour_[inc.flow] = inc.detour;
      const double candidate = model_->customers(inc.flow, inc.detour);
      // Non-increasing utility means a smaller detour can only help, but
      // guard anyway so the invariant contribution == f(best_detour) holds
      // even for adversarial custom utilities.
      if (candidate > contribution_[inc.flow]) {
        value_ += candidate - contribution_[inc.flow];
        contribution_[inc.flow] = candidate;
      }
    }
  }
#if defined(RAP_AUDIT) && RAP_AUDIT
  if (const PlacementAuditHook hook = placement_audit_hook(); hook != nullptr) {
    hook(*this);
  }
#endif
}

double evaluate_placement(const CoverageModel& model,
                          std::span<const graph::NodeId> nodes) {
  PlacementState state(model);
  for (const graph::NodeId node : nodes) state.add(node);
  return state.value();
}

}  // namespace rap::core
