#include "src/core/multishop.h"

#include <algorithm>
#include <stdexcept>

namespace rap::core {

MultiShopDetour::MultiShopDetour(const graph::RoadNetwork& net,
                                 std::vector<graph::NodeId> shops,
                                 traffic::DetourMode mode)
    : shops_(std::move(shops)) {
  if (shops_.empty()) {
    throw std::invalid_argument("MultiShopDetour: need at least one shop");
  }
  calculators_.reserve(shops_.size());
  for (const graph::NodeId shop : shops_) {
    net.check_node(shop);
    calculators_.emplace_back(net, shop, mode);
  }
}

std::vector<double> MultiShopDetour::detours_along_path(
    const traffic::TrafficFlow& flow) const {
  std::vector<double> best = calculators_.front().detours_along_path(flow);
  for (std::size_t s = 1; s < calculators_.size(); ++s) {
    const std::vector<double> candidate =
        calculators_[s].detours_along_path(flow);
    for (std::size_t i = 0; i < best.size(); ++i) {
      best[i] = std::min(best[i], candidate[i]);
    }
  }
  return best;
}

PlacementProblem make_multishop_problem(
    const graph::RoadNetwork& net, std::vector<traffic::TrafficFlow> flows,
    std::vector<graph::NodeId> shops, const traffic::UtilityFunction& utility,
    traffic::DetourMode mode) {
  return PlacementProblem(
      net, std::move(flows), graph::kInvalidNode, utility,
      std::make_unique<MultiShopDetour>(net, std::move(shops), mode));
}

}  // namespace rap::core
