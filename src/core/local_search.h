// Single-swap local search on placements.
//
// The greedy algorithms can stall at locally poor solutions the moment two
// RAPs interact — the paper's own Fig. 4 example: every greedy reaches 7
// attracted drivers while the optimum {V2, V4} is worth 8. One round of
// swap moves (remove one placed RAP, add one unplaced intersection, keep
// the swap if the value strictly improves) escapes exactly that trap; for
// monotone submodular objectives a swap-local optimum is within factor 2
// of optimal, and in practice greedy + local search is near-exact (see
// bench/ablation_design).
#pragma once

#include "src/core/problem.h"

namespace rap::core {

struct LocalSearchOptions {
  /// Hard cap on improving swaps (each full pass is O(k |V|) evaluations).
  std::size_t max_swaps = 256;
  /// A swap must beat the incumbent by more than this to be taken
  /// (guards against cycling on floating-point noise).
  double min_improvement = 1e-9;
};

struct LocalSearchResult {
  PlacementResult placement;
  std::size_t swaps_performed = 0;
  bool converged = true;  ///< false when max_swaps stopped the search
};

/// Improves `initial` by best-improvement swaps until no swap helps.
/// Duplicate nodes in `initial` are collapsed. Throws on bad node ids.
[[nodiscard]] LocalSearchResult local_search_improve(
    const CoverageModel& model, const Placement& initial,
    const LocalSearchOptions& options = {});

/// Convenience: composite greedy (Algorithm 2) followed by local search —
/// never worse than the greedy alone.
[[nodiscard]] LocalSearchResult greedy_with_local_search(
    const CoverageModel& model, std::size_t k,
    const LocalSearchOptions& options = {});

}  // namespace rap::core
