// Algorithm 1 — the greedy weighted-maximum-coverage solution.
//
// Iteratively places a RAP at the intersection attracting the most customers
// from *uncovered* traffic flows, then marks those flows covered. Under the
// threshold utility this is the classic (1 - 1/e)-approximate greedy for
// weighted maximum coverage; under decreasing utilities it degenerates to
// the "factor (i) only" heuristic the paper shows is insufficient (kept as
// an ablation point).
#pragma once

#include "src/core/problem.h"

namespace rap::core {

struct GreedyOptions {
  /// Stop as soon as no intersection yields positive gain (the paper's
  /// example terminates early once every flow is covered). When false,
  /// exactly k RAPs are placed, padding with zero-gain intersections.
  bool stop_when_no_gain = true;
};

/// Places up to k RAPs with Algorithm 1. Budget contract (core/k_policy.h):
/// k == 0 throws std::invalid_argument, k > num_nodes clamps to num_nodes
/// and sets the "placement.k_clamped" telemetry gauge. Ties break towards
/// the lowest node id (deterministic).
[[nodiscard]] PlacementResult greedy_coverage_placement(
    const CoverageModel& model, std::size_t k,
    const GreedyOptions& options = {});

}  // namespace rap::core
