#include "src/core/filtered.h"

#include <stdexcept>

namespace rap::core {

FilteredCoverageModel::FilteredCoverageModel(const CoverageModel& base,
                                             std::vector<bool> active)
    : base_(&base), active_(std::move(active)) {
  if (active_.size() != base.num_flows()) {
    throw std::invalid_argument(
        "FilteredCoverageModel: active mask size != num_flows");
  }
  const std::size_t n = base.num_nodes();
  node_start_.assign(n + 1, 0);
  vehicles_at_node_.assign(n, 0.0);
  for (graph::NodeId v = 0; v < n; ++v) {
    std::uint32_t kept = 0;
    for (const traffic::NodeIncidence& inc : base.reach_at(v)) {
      if (active_[inc.flow]) ++kept;
    }
    node_start_[v + 1] = node_start_[v] + kept;
  }
  node_entries_.resize(node_start_.back());
  for (graph::NodeId v = 0; v < n; ++v) {
    std::uint32_t cursor = node_start_[v];
    for (const traffic::NodeIncidence& inc : base.reach_at(v)) {
      if (!active_[inc.flow]) continue;
      node_entries_[cursor++] = inc;
    }
    vehicles_at_node_[v] = base.passing_vehicles(v);
  }
}

std::span<const traffic::NodeIncidence> FilteredCoverageModel::reach_at(
    graph::NodeId node) const {
  base_->network().check_node(node);
  return {node_entries_.data() + node_start_[node],
          node_entries_.data() + node_start_[node + 1]};
}

double FilteredCoverageModel::customers(traffic::FlowIndex flow,
                                        double detour) const {
  if (flow >= active_.size()) {
    throw std::out_of_range("FilteredCoverageModel::customers: bad flow");
  }
  if (!active_[flow]) return 0.0;
  return base_->customers(flow, detour);
}

double FilteredCoverageModel::passing_vehicles(graph::NodeId node) const {
  base_->network().check_node(node);
  return vehicles_at_node_[node];
}

std::size_t FilteredCoverageModel::passing_flow_count(
    graph::NodeId node) const {
  return reach_at(node).size();
}

}  // namespace rap::core
