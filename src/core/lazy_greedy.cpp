#include "src/core/lazy_greedy.h"

#include <queue>

#include "src/core/evaluator.h"
#include "src/core/k_policy.h"
#include "src/obs/telemetry.h"

namespace rap::core {
namespace {

template <typename GainFn>
PlacementResult run_lazy(const CoverageModel& model, std::size_t k,
                         GainFn&& gain_of, LazyGreedyStats* stats,
                         bool stop_when_no_gain) {
  k = checked_budget(model, k, "lazy greedy placement");
  const obs::Span span("lazy_greedy");
  PlacementState state(model);

  struct Entry {
    double gain;
    graph::NodeId node;
    std::uint32_t stamp;
  };
  // Ties must break to the lowest node id (matching the eager greedy), so
  // equal gains order by ascending id.
  const auto less = [](const Entry& a, const Entry& b) {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.node > b.node;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(less)> heap(less);

  LazyGreedyStats local;
  const auto n = static_cast<graph::NodeId>(model.num_nodes());
  for (graph::NodeId v = 0; v < n; ++v) {
    ++local.gain_evaluations;
    heap.push({gain_of(state, v), v, 0});
  }

  std::uint32_t selections = 0;
  while (state.placement().size() < k && !heap.empty()) {
    const Entry top = heap.top();
    heap.pop();
    ++local.heap_pops;
    if (top.stamp != selections) {
      ++local.gain_evaluations;
      const double gain = gain_of(state, top.node);
      // Under stop_when_no_gain a zero-gain candidate can never be selected,
      // so dropping it here is safe. Without it the eager greedy pads the
      // placement with zero-gain intersections (lowest id first), so the
      // entry must stay in the heap to stay eligible — ascending-id ordering
      // of equal gains reproduces the eager tie-break.
      if (gain > 0.0 || !stop_when_no_gain) {
        heap.push({gain, top.node, selections});
      }
      continue;
    }
    if (top.gain <= 0.0 && stop_when_no_gain) break;
    state.add(top.node);
    ++selections;
    obs::observe("placement.selected_gain", top.gain);
  }
  // The registry is the canonical sink; the LazyGreedyStats out-param is a
  // per-call view of the same counts for callers without telemetry.
  if (obs::ambient() != nullptr) {
    obs::add_counter("lazy_greedy.gain_evaluations", local.gain_evaluations);
    obs::add_counter("lazy_greedy.heap_pops", local.heap_pops);
    obs::add_counter("lazy_greedy.selections", selections);
  }
  if (stats != nullptr) *stats = local;
  return {state.placement(), state.value()};
}

}  // namespace

PlacementResult lazy_marginal_greedy_placement(
    const CoverageModel& model, std::size_t k, LazyGreedyStats* stats,
    const CompositeGreedyOptions& options) {
  return run_lazy(
      model, k,
      [](const PlacementState& state, graph::NodeId v) {
        return state.gain_if_added(v);
      },
      stats, options.stop_when_no_gain);
}

PlacementResult lazy_coverage_placement(const CoverageModel& model,
                                        std::size_t k, LazyGreedyStats* stats,
                                        const GreedyOptions& options) {
  return run_lazy(
      model, k,
      [](const PlacementState& state, graph::NodeId v) {
        return state.uncovered_gain(v);
      },
      stats, options.stop_when_no_gain);
}

}  // namespace rap::core
