// Lazy-evaluation (CELF-style) greedy placement.
//
// The attracted-customers objective is monotone submodular (it is a
// facility-location function: a per-flow maximum over placed RAPs), so the
// total marginal gain of any intersection can only shrink as RAPs are
// placed. A max-heap of cached gains therefore needs to re-evaluate only
// the top entry, cutting the k |V| |T| greedy sweep to a small fraction of
// gain evaluations on real workloads (measured in bench/ablation_design).
//
// lazy_marginal_greedy_placement selects exactly the same intersections as
// naive_marginal_greedy_placement; lazy_coverage_placement mirrors
// greedy_coverage_placement (Algorithm 1), whose uncovered-gain objective
// is the classic submodular coverage function. Algorithm 2's candidate (ii)
// improvement gain is NOT monotone (a flow must first be covered before it
// can be improved), so the composite greedy has no lazy counterpart.
#pragma once

#include "src/core/composite_greedy.h"
#include "src/core/greedy.h"
#include "src/core/problem.h"

namespace rap::core {

/// Per-call work counts. When ambient telemetry is installed
/// (src/obs/telemetry.h) the same counts also accumulate on the registry as
/// `lazy_greedy.gain_evaluations` / `lazy_greedy.heap_pops` /
/// `lazy_greedy.selections`; this struct is the registry-free view for
/// direct callers (benches, tests).
struct LazyGreedyStats {
  std::size_t gain_evaluations = 0;  ///< re-evaluations performed
  std::size_t heap_pops = 0;
};

/// Same selection as naive_marginal_greedy_placement under the same options
/// (ties to lowest id; zero-gain padding when stop_when_no_gain is false) —
/// results are bit-identical, placements and values alike. Budget contract:
/// core/k_policy.h (k == 0 throws, k > num_nodes clamps).
[[nodiscard]] PlacementResult lazy_marginal_greedy_placement(
    const CoverageModel& model, std::size_t k, LazyGreedyStats* stats = nullptr,
    const CompositeGreedyOptions& options = {});

/// Same selection as greedy_coverage_placement (Algorithm 1) under the same
/// GreedyOptions — bit-identical results, tie-break and zero-gain padding
/// included. Budget contract: core/k_policy.h.
[[nodiscard]] PlacementResult lazy_coverage_placement(
    const CoverageModel& model, std::size_t k, LazyGreedyStats* stats = nullptr,
    const GreedyOptions& options = {});

}  // namespace rap::core
