#include "src/citygen/grid_city.h"

#include <array>
#include <cmath>
#include <stdexcept>

namespace rap::citygen {

GridCity::GridCity(const GridSpec& spec) : spec_(spec) {
  if (spec.cols < 2 || spec.rows < 2) {
    throw std::invalid_argument("GridCity: need at least a 2x2 grid");
  }
  if (!(spec.spacing > 0.0)) {
    throw std::invalid_argument("GridCity: spacing must be > 0");
  }
  for (std::size_t row = 0; row < spec.rows; ++row) {
    for (std::size_t col = 0; col < spec.cols; ++col) {
      network_.add_node({spec.origin.x + static_cast<double>(col) * spec.spacing,
                         spec.origin.y + static_cast<double>(row) * spec.spacing});
    }
  }
  for (std::size_t row = 0; row < spec.rows; ++row) {
    for (std::size_t col = 0; col < spec.cols; ++col) {
      if (col + 1 < spec.cols) {
        network_.add_two_way_edge(node_at(col, row), node_at(col + 1, row),
                                  spec.spacing);
      }
      if (row + 1 < spec.rows) {
        network_.add_two_way_edge(node_at(col, row), node_at(col, row + 1),
                                  spec.spacing);
      }
    }
  }
}

graph::NodeId GridCity::node_at(GridCoord coord) const {
  return node_at(coord.col, coord.row);
}

graph::NodeId GridCity::node_at(std::size_t col, std::size_t row) const {
  if (col >= spec_.cols || row >= spec_.rows) {
    throw std::out_of_range("GridCity::node_at: coordinate outside the grid");
  }
  return static_cast<graph::NodeId>(row * spec_.cols + col);
}

GridCoord GridCity::coord_of(graph::NodeId node) const {
  network_.check_node(node);
  return {node % spec_.cols, node / spec_.cols};
}

double GridCity::grid_distance(GridCoord a, GridCoord b) const noexcept {
  const auto diff = [](std::size_t x, std::size_t y) {
    return static_cast<double>(x > y ? x - y : y - x);
  };
  return spec_.spacing * (diff(a.col, b.col) + diff(a.row, b.row));
}

graph::NodeId GridCity::center_node() const {
  return node_at(spec_.cols / 2, spec_.rows / 2);
}

std::array<graph::NodeId, 4> GridCity::corner_nodes() const {
  return {node_at(0, 0), node_at(spec_.cols - 1, 0),
          node_at(0, spec_.rows - 1), node_at(spec_.cols - 1, spec_.rows - 1)};
}

}  // namespace rap::citygen
