#include "src/citygen/radial_city.h"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace rap::citygen {
namespace {

void validate(const RadialSpec& spec) {
  if (spec.rings < 1) {
    throw std::invalid_argument("build_radial_city: rings must be >= 1");
  }
  if (spec.nodes_on_first_ring < 3) {
    throw std::invalid_argument(
        "build_radial_city: nodes_on_first_ring must be >= 3");
  }
  if (!(spec.ring_spacing > 0.0)) {
    throw std::invalid_argument("build_radial_city: ring_spacing must be > 0");
  }
  if (spec.chord_prob < 0.0 || spec.chord_prob >= 1.0 ||
      spec.oneway_prob < 0.0 || spec.oneway_prob >= 1.0) {
    throw std::invalid_argument(
        "build_radial_city: probabilities must be in [0, 1)");
  }
  if (spec.angular_jitter < 0.0 || spec.radial_jitter < 0.0) {
    throw std::invalid_argument("build_radial_city: jitter must be >= 0");
  }
}

void add_street_checked(graph::RoadNetwork& net, graph::NodeId a,
                        graph::NodeId b, double oneway_prob, util::Rng& rng) {
  if (a == b) return;
  const double length =
      euclidean_distance(net.position(a), net.position(b));
  if (!(length > 0.0)) return;  // coincident jittered nodes: skip the street
  if (rng.next_bool(oneway_prob)) {
    if (rng.next_bool(0.5)) {
      net.add_edge(a, b, length);
    } else {
      net.add_edge(b, a, length);
    }
  } else {
    net.add_two_way_edge(a, b, length);
  }
}

}  // namespace

graph::RoadNetwork build_radial_city(const RadialSpec& spec, util::Rng& rng) {
  validate(spec);
  graph::RoadNetwork scratch;
  const graph::NodeId center = scratch.add_node(spec.center);

  // Ring r (1-based) has nodes_on_first_ring + (r-1) * nodes_per_ring_step
  // intersections at radius ~ r * ring_spacing.
  std::vector<std::vector<graph::NodeId>> rings;
  rings.reserve(spec.rings);
  for (std::size_t r = 1; r <= spec.rings; ++r) {
    const std::size_t count =
        spec.nodes_on_first_ring + (r - 1) * spec.nodes_per_ring_step;
    std::vector<graph::NodeId> ring;
    ring.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const double base_angle = 2.0 * std::numbers::pi *
                                static_cast<double>(i) /
                                static_cast<double>(count);
      const double angle =
          base_angle + rng.next_gaussian(0.0, spec.angular_jitter);
      const double radius =
          static_cast<double>(r) * spec.ring_spacing *
          (1.0 + rng.next_gaussian(0.0, spec.radial_jitter));
      ring.push_back(scratch.add_node(
          {spec.center.x + radius * std::cos(angle),
           spec.center.y + radius * std::sin(angle)}));
    }
    rings.push_back(std::move(ring));
  }

  // Ring roads: each ring node to its angular successor.
  for (const auto& ring : rings) {
    for (std::size_t i = 0; i < ring.size(); ++i) {
      add_street_checked(scratch, ring[i], ring[(i + 1) % ring.size()],
                         spec.oneway_prob, rng);
    }
  }
  // Spokes: centre to every first-ring node; then each node to the closest
  // node (by angular index scaling) on the next inner ring.
  for (const graph::NodeId v : rings.front()) {
    add_street_checked(scratch, center, v, spec.oneway_prob, rng);
  }
  for (std::size_t r = 1; r < rings.size(); ++r) {
    const auto& outer = rings[r];
    const auto& inner = rings[r - 1];
    for (std::size_t i = 0; i < outer.size(); ++i) {
      const std::size_t j =
          (i * inner.size() + outer.size() / 2) / outer.size() % inner.size();
      add_street_checked(scratch, outer[i], inner[j], spec.oneway_prob, rng);
    }
  }
  // Extra chords: occasional shortcut streets between nearby rings.
  for (std::size_t r = 0; r < rings.size(); ++r) {
    for (std::size_t i = 0; i < rings[r].size(); ++i) {
      if (!rng.next_bool(spec.chord_prob)) continue;
      const std::size_t r2 = r + 1 < rings.size() ? r + 1 : r;
      const auto& other = rings[r2];
      add_street_checked(scratch, rings[r][i],
                         other[rng.next_below(other.size())],
                         spec.oneway_prob, rng);
    }
  }

  // Keep the largest strongly connected component.
  const std::vector<graph::NodeId> keep = scratch.largest_scc();
  graph::RoadNetwork out;
  std::vector<graph::NodeId> remap(scratch.num_nodes(), graph::kInvalidNode);
  for (const graph::NodeId old_id : keep) {
    remap[old_id] = out.add_node(scratch.position(old_id));
  }
  for (const graph::Edge& e : scratch.edges()) {
    if (remap[e.from] != graph::kInvalidNode &&
        remap[e.to] != graph::kInvalidNode) {
      out.add_edge(remap[e.from], remap[e.to], e.length);
    }
  }
  return out;
}

}  // namespace rap::citygen
