// "Seattle-like" city: a Manhattan grid with irregularities. Seattle's
// central-area street plan is only *partially* grid-based (Section V-A), so
// the generator starts from an ideal grid and then
//   * removes a fraction of street segments (waterfront/terrain gaps),
//   * removes a fraction of intersections (parks, superblocks),
//   * converts a fraction of streets to one-way (downtown couplets),
//   * jitters intersection positions slightly.
// The result is restricted to its largest strongly connected component so
// every surviving OD pair has a route.
#pragma once

#include <optional>
#include <vector>

#include "src/citygen/grid_city.h"
#include "src/graph/road_network.h"
#include "src/util/rng.h"

namespace rap::citygen {

struct PartialGridSpec {
  GridSpec grid;
  double edge_removal_prob = 0.08;  ///< fraction of street segments dropped
  double node_removal_prob = 0.03;  ///< fraction of intersections dropped
  double oneway_prob = 0.05;        ///< fraction of streets made one-way
  double position_jitter = 0.0;     ///< stddev of coordinate noise, in feet
};

class PartialGridCity {
 public:
  /// Builds deterministically from `rng`. Throws on invalid probabilities
  /// (outside [0, 1)) or an invalid base grid.
  PartialGridCity(const PartialGridSpec& spec, util::Rng& rng);

  [[nodiscard]] const graph::RoadNetwork& network() const noexcept {
    return network_;
  }
  [[nodiscard]] const PartialGridSpec& spec() const noexcept { return spec_; }

  /// Grid coordinate of a surviving node (all survivors keep one).
  [[nodiscard]] GridCoord coord_of(graph::NodeId node) const;

  /// Surviving node at a grid coordinate, if that intersection survived.
  [[nodiscard]] std::optional<graph::NodeId> node_at(GridCoord coord) const;

  /// Fraction of the ideal grid's street segments that survived (a measure
  /// of "how grid-like" the city is; 1.0 = perfect grid).
  [[nodiscard]] double grid_fidelity() const noexcept { return fidelity_; }

 private:
  PartialGridSpec spec_;
  graph::RoadNetwork network_;
  std::vector<GridCoord> coords_;                       // per surviving node
  std::vector<std::optional<graph::NodeId>> by_coord_;  // grid cell -> node
  double fidelity_ = 1.0;
};

}  // namespace rap::citygen
