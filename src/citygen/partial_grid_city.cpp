#include "src/citygen/partial_grid_city.h"

#include <algorithm>
#include <stdexcept>

namespace rap::citygen {
namespace {

void check_prob(double p, const char* what) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument(std::string("PartialGridCity: ") + what +
                                " must be in [0, 1)");
  }
}

struct CandidateEdge {
  GridCoord a;
  GridCoord b;
};

}  // namespace

PartialGridCity::PartialGridCity(const PartialGridSpec& spec, util::Rng& rng)
    : spec_(spec) {
  check_prob(spec.edge_removal_prob, "edge_removal_prob");
  check_prob(spec.node_removal_prob, "node_removal_prob");
  check_prob(spec.oneway_prob, "oneway_prob");
  if (spec.position_jitter < 0.0) {
    throw std::invalid_argument("PartialGridCity: position_jitter must be >= 0");
  }
  const GridSpec& g = spec.grid;
  if (g.cols < 2 || g.rows < 2 || !(g.spacing > 0.0)) {
    throw std::invalid_argument("PartialGridCity: invalid base grid");
  }

  // Stage 1: sample the surviving intersections and street segments on the
  // ideal grid, then assemble a scratch network.
  std::vector<bool> node_alive(g.cols * g.rows, true);
  for (auto&& alive : node_alive) {
    if (rng.next_bool(spec.node_removal_prob)) alive = false;
  }
  const auto cell = [&](GridCoord c) { return c.row * g.cols + c.col; };

  std::vector<CandidateEdge> segments;
  segments.reserve(2 * g.cols * g.rows);
  for (std::size_t row = 0; row < g.rows; ++row) {
    for (std::size_t col = 0; col < g.cols; ++col) {
      if (col + 1 < g.cols) segments.push_back({{col, row}, {col + 1, row}});
      if (row + 1 < g.rows) segments.push_back({{col, row}, {col, row + 1}});
    }
  }
  const std::size_t ideal_segments = segments.size();

  graph::RoadNetwork scratch;
  std::vector<graph::NodeId> scratch_id(node_alive.size(), graph::kInvalidNode);
  std::vector<GridCoord> scratch_coord;
  for (std::size_t row = 0; row < g.rows; ++row) {
    for (std::size_t col = 0; col < g.cols; ++col) {
      const GridCoord c{col, row};
      if (!node_alive[cell(c)]) continue;
      geo::Point pos{g.origin.x + static_cast<double>(col) * g.spacing,
                     g.origin.y + static_cast<double>(row) * g.spacing};
      if (spec.position_jitter > 0.0) {
        pos.x += rng.next_gaussian(0.0, spec.position_jitter);
        pos.y += rng.next_gaussian(0.0, spec.position_jitter);
      }
      scratch_id[cell(c)] = scratch.add_node(pos);
      scratch_coord.push_back(c);
    }
  }

  std::size_t surviving_segments = 0;
  for (const CandidateEdge& seg : segments) {
    const graph::NodeId a = scratch_id[cell(seg.a)];
    const graph::NodeId b = scratch_id[cell(seg.b)];
    if (a == graph::kInvalidNode || b == graph::kInvalidNode) continue;
    if (rng.next_bool(spec.edge_removal_prob)) continue;
    ++surviving_segments;
    if (rng.next_bool(spec.oneway_prob)) {
      // One-way street; direction chosen uniformly.
      if (rng.next_bool(0.5)) {
        scratch.add_edge(a, b, g.spacing);
      } else {
        scratch.add_edge(b, a, g.spacing);
      }
    } else {
      scratch.add_two_way_edge(a, b, g.spacing);
    }
  }
  fidelity_ = ideal_segments == 0
                  ? 1.0
                  : static_cast<double>(surviving_segments) /
                        static_cast<double>(ideal_segments);

  // Stage 2: keep only the largest strongly connected component so every
  // surviving OD pair is mutually reachable.
  const std::vector<graph::NodeId> keep = scratch.largest_scc();
  std::vector<graph::NodeId> remap(scratch.num_nodes(), graph::kInvalidNode);
  by_coord_.assign(g.cols * g.rows, std::nullopt);
  for (const graph::NodeId old_id : keep) {
    const graph::NodeId new_id = network_.add_node(scratch.position(old_id));
    remap[old_id] = new_id;
    coords_.push_back(scratch_coord[old_id]);
    by_coord_[cell(scratch_coord[old_id])] = new_id;
  }
  for (const graph::Edge& e : scratch.edges()) {
    if (remap[e.from] != graph::kInvalidNode &&
        remap[e.to] != graph::kInvalidNode) {
      network_.add_edge(remap[e.from], remap[e.to], e.length);
    }
  }
}

GridCoord PartialGridCity::coord_of(graph::NodeId node) const {
  network_.check_node(node);
  return coords_[node];
}

std::optional<graph::NodeId> PartialGridCity::node_at(GridCoord coord) const {
  if (coord.col >= spec_.grid.cols || coord.row >= spec_.grid.rows) {
    throw std::out_of_range("PartialGridCity::node_at: outside the grid");
  }
  return by_coord_[coord.row * spec_.grid.cols + coord.col];
}

}  // namespace rap::citygen
