// Ideal Manhattan grid city: cols x rows intersections joined by two-way
// streets at right angles (Section IV's street plan). Every vehicle can move
// in exactly four directions.
#pragma once

#include <array>
#include <cstddef>

#include "src/geo/point.h"
#include "src/graph/road_network.h"

namespace rap::citygen {

struct GridCoord {
  std::size_t col = 0;
  std::size_t row = 0;
  friend constexpr bool operator==(const GridCoord&, const GridCoord&) = default;
};

struct GridSpec {
  std::size_t cols = 2;
  std::size_t rows = 2;
  double spacing = 1.0;          ///< street-block edge length
  geo::Point origin = {0.0, 0.0};  ///< position of intersection (0, 0)
};

class GridCity {
 public:
  /// Throws std::invalid_argument when cols/rows < 2 or spacing <= 0.
  explicit GridCity(const GridSpec& spec);

  [[nodiscard]] const graph::RoadNetwork& network() const noexcept {
    return network_;
  }
  [[nodiscard]] const GridSpec& spec() const noexcept { return spec_; }

  [[nodiscard]] graph::NodeId node_at(GridCoord coord) const;
  [[nodiscard]] graph::NodeId node_at(std::size_t col, std::size_t row) const;
  [[nodiscard]] GridCoord coord_of(graph::NodeId node) const;

  /// Grid (L1) distance between two intersections, in feet.
  [[nodiscard]] double grid_distance(GridCoord a, GridCoord b) const noexcept;

  /// Node closest to the geometric centre (the paper puts the shop there).
  [[nodiscard]] graph::NodeId center_node() const;

  /// The four corner intersections (SW, SE, NW, NE).
  [[nodiscard]] std::array<graph::NodeId, 4> corner_nodes() const;

 private:
  GridSpec spec_;
  graph::RoadNetwork network_;
};

}  // namespace rap::citygen
