// "Dublin-like" city: an irregular ring-and-spoke street plan. Dublin's
// centre is not grid-based — streets radiate from the core (bridges over the
// Liffey, quays, circular roads), so the generator builds
//   * a centre node plus concentric rings of jittered intersections,
//   * ring roads joining angular neighbours,
//   * radial spokes joining consecutive rings,
//   * extra random chords (shortcut streets), and
//   * a fraction of one-way streets,
// then keeps the largest strongly connected component.
#pragma once

#include "src/graph/road_network.h"
#include "src/util/rng.h"

namespace rap::citygen {

struct RadialSpec {
  std::size_t rings = 8;            ///< number of concentric rings
  std::size_t nodes_on_first_ring = 6;
  std::size_t nodes_per_ring_step = 4;  ///< additional nodes per further ring
  double ring_spacing = 1.0;        ///< radial distance between rings, feet
  geo::Point center = {0.0, 0.0};
  double angular_jitter = 0.15;     ///< radians of noise on node angles
  double radial_jitter = 0.10;      ///< fraction-of-spacing noise on radii
  double chord_prob = 0.05;         ///< probability of an extra chord per node
  double oneway_prob = 0.05;        ///< fraction of streets made one-way
};

/// Builds deterministically from `rng`. Throws on invalid parameters.
[[nodiscard]] graph::RoadNetwork build_radial_city(const RadialSpec& spec,
                                                   util::Rng& rng);

}  // namespace rap::citygen
