// Algorithms 3 and 4 — the two-stage Manhattan placements.
//
// Algorithm 3 (threshold utility, ratio 1 - 4/k on straight+turned flows):
//   k <= 4 : exhaustive search;
//   k >  4 : one RAP at each corner of the region (every turned flow has a
//            shortest path through a corner and will reroute there for the
//            free advertisement), then greedily cover the straight flows
//            with the remaining k - 4 RAPs (an intersection covers at most
//            one horizontal- and one vertical-straight flow).
//
// Algorithm 4 (decreasing utility, ratio 1/2 - 2/k): identical except the
// four stage-1 RAPs go to the midpoints between each corner and the shop,
// halving the expected detour of the turned flows they capture.
//
// Both run on the ideal grid (GridCoverageModel) and on a real network with
// flexible routing (FlexibleProblem) for the partially-grid Seattle city:
// stage-1 points map to the nearest existing intersection, and straightness
// is judged by where the flow's route crosses the region box.
#pragma once

#include "src/core/problem.h"
#include "src/geo/bbox.h"
#include "src/manhattan/flexible_eval.h"
#include "src/manhattan/grid_model.h"

namespace rap::manhattan {

enum class TwoStageVariant {
  kCorners,    ///< Algorithm 3
  kMidpoints,  ///< Algorithm 4
};

struct TwoStageOptions {
  /// Combination budget for the k <= 4 exhaustive stage; beyond it the
  /// composite greedy is used instead (documented fallback).
  std::size_t exhaustive_cap = 200'000;
  /// Cross-axis tolerance when judging a real network flow "straight",
  /// as an absolute distance (e.g. half a block). Network variant only.
  double alignment_tol = 300.0;
  /// Implementation extension: once every straight flow is served, spend
  /// any leftover stage-2 budget with the composite greedy over ALL flows
  /// instead of wasting it (never worse than the faithful algorithm, which
  /// leaves the budget idle). Set false for the paper's literal Algorithm 3.
  bool spend_leftover_budget = true;
};

/// Two-stage placement on the ideal grid. Budget contract
/// (core/k_policy.h): k == 0 throws, k > num_nodes clamps and sets the
/// "placement.k_clamped" telemetry gauge.
[[nodiscard]] core::PlacementResult two_stage_grid_placement(
    const GridCoverageModel& model, std::size_t k, TwoStageVariant variant,
    const TwoStageOptions& options = {});

/// Two-stage placement on a real network under flexible routing. `region`
/// is the D x D square centred at the shop (the paper's Manhattan region).
/// Budget contract as above; throws when the region is empty.
[[nodiscard]] core::PlacementResult two_stage_network_placement(
    const FlexibleProblem& model, const geo::BBox& region, std::size_t k,
    TwoStageVariant variant, const TwoStageOptions& options = {});

}  // namespace rap::manhattan
