#include "src/manhattan/flow_class.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rap::manhattan {
namespace {

bool is_boundary(const GridScenario& s, citygen::GridCoord c) {
  const std::size_t last = s.n() - 1;
  return c.col == 0 || c.col == last || c.row == 0 || c.row == last;
}

// Slab (Liang-Barsky) clip: parameter range [t0, t1] of segment a+t(b-a)
// inside the box; empty when t0 > t1.
struct ClipResult {
  double t_in = 0.0;
  double t_out = 1.0;
  bool hit = false;
};

ClipResult clip_segment(const geo::Point& a, const geo::Point& b,
                        const geo::BBox& box) {
  double t0 = 0.0;
  double t1 = 1.0;
  const double d[2] = {b.x - a.x, b.y - a.y};
  const double lo[2] = {box.min().x, box.min().y};
  const double hi[2] = {box.max().x, box.max().y};
  const double p[2] = {a.x, a.y};
  for (int axis = 0; axis < 2; ++axis) {
    if (d[axis] == 0.0) {
      if (p[axis] < lo[axis] || p[axis] > hi[axis]) return {};
      continue;
    }
    double ta = (lo[axis] - p[axis]) / d[axis];
    double tb = (hi[axis] - p[axis]) / d[axis];
    if (ta > tb) std::swap(ta, tb);
    t0 = std::max(t0, ta);
    t1 = std::min(t1, tb);
    if (t0 > t1) return {};
  }
  return {t0, t1, true};
}

RegionEdge nearest_edge(const geo::Point& p, const geo::BBox& box) {
  const double d_west = std::abs(p.x - box.min().x);
  const double d_east = std::abs(p.x - box.max().x);
  const double d_south = std::abs(p.y - box.min().y);
  const double d_north = std::abs(p.y - box.max().y);
  const double best = std::min({d_west, d_east, d_south, d_north});
  if (best == d_west) return RegionEdge::kWest;
  if (best == d_east) return RegionEdge::kEast;
  if (best == d_south) return RegionEdge::kSouth;
  return RegionEdge::kNorth;
}

bool horizontal_entryway(RegionEdge e) noexcept {
  // Crossing the west/east edge means travelling along a horizontal street.
  return e == RegionEdge::kWest || e == RegionEdge::kEast;
}

}  // namespace

const char* to_string(GridFlowClass c) noexcept {
  switch (c) {
    case GridFlowClass::kStraight:
      return "straight";
    case GridFlowClass::kTurned:
      return "turned";
    case GridFlowClass::kOther:
      return "other";
  }
  return "unknown";
}

GridFlowClass classify_grid_flow(const GridScenario& scenario,
                                 const GridFlow& flow) {
  if (!is_boundary(scenario, flow.entry) || !is_boundary(scenario, flow.exit)) {
    throw std::invalid_argument(
        "classify_grid_flow: entry/exit must be boundary intersections");
  }
  const std::size_t last = scenario.n() - 1;
  const citygen::GridCoord entry = flow.entry;
  const citygen::GridCoord exit = flow.exit;

  const bool straight_horizontal =
      entry.row == exit.row &&
      ((entry.col == 0 && exit.col == last) || (entry.col == last && exit.col == 0));
  const bool straight_vertical =
      entry.col == exit.col &&
      ((entry.row == 0 && exit.row == last) || (entry.row == last && exit.row == 0));
  if (straight_horizontal || straight_vertical) return GridFlowClass::kStraight;

  // Orientation sets: west/east boundary -> horizontal street; south/north
  // boundary -> vertical street. Corners belong to both, which makes the
  // turned test lenient there (any corner flow can be read as turned).
  const auto on_we = [&](citygen::GridCoord c) {
    return c.col == 0 || c.col == last;
  };
  const auto on_sn = [&](citygen::GridCoord c) {
    return c.row == 0 || c.row == last;
  };
  const bool turned = (on_we(entry) && on_sn(exit)) || (on_sn(entry) && on_we(exit));
  return turned ? GridFlowClass::kTurned : GridFlowClass::kOther;
}

RegionTransit region_transit(const graph::RoadNetwork& net,
                             std::span<const graph::NodeId> path,
                             const geo::BBox& region) {
  RegionTransit out;
  if (path.size() < 2 || region.empty()) return out;
  if (region.contains(net.position(path.front())) ||
      region.contains(net.position(path.back()))) {
    return out;  // starts or ends inside: does not *cross* the region
  }

  bool entered = false;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const geo::Point a = net.position(path[i]);
    const geo::Point b = net.position(path[i + 1]);
    const ClipResult clip = clip_segment(a, b, region);
    if (!clip.hit) continue;
    const geo::Point in_point = lerp(a, b, clip.t_in);
    const geo::Point out_point = lerp(a, b, clip.t_out);
    if (!entered) {
      entered = true;
      out.entry = in_point;
      out.entry_edge = nearest_edge(in_point, region);
    }
    // Keep updating: the last segment that leaves the box wins.
    if (clip.t_out < 1.0 || !region.contains(b)) {
      out.exit = out_point;
      out.exit_edge = nearest_edge(out_point, region);
      out.crosses = true;
    }
  }
  if (!entered) return {};
  return out;
}

GridFlowClass classify_path_region(const graph::RoadNetwork& net,
                                   std::span<const graph::NodeId> path,
                                   const geo::BBox& region,
                                   double alignment_tol) {
  if (alignment_tol < 0.0) {
    throw std::invalid_argument("classify_path_region: alignment_tol < 0");
  }
  const RegionTransit transit = region_transit(net, path, region);
  if (!transit.crosses) return GridFlowClass::kOther;

  const bool entry_h = horizontal_entryway(transit.entry_edge);
  const bool exit_h = horizontal_entryway(transit.exit_edge);
  if (entry_h != exit_h) return GridFlowClass::kTurned;

  if (transit.entry_edge != transit.exit_edge) {
    // Opposite edges with the same orientation: straight when the crossing
    // stays on (nearly) one street.
    const double drift = entry_h ? std::abs(transit.entry.y - transit.exit.y)
                                 : std::abs(transit.entry.x - transit.exit.x);
    if (drift <= alignment_tol) return GridFlowClass::kStraight;
  }
  return GridFlowClass::kOther;
}

}  // namespace rap::manhattan
