#include "src/manhattan/grid_model.h"

#include <cmath>
#include <stdexcept>

namespace rap::manhattan {

GridCoverageModel::GridCoverageModel(const GridScenario& scenario,
                                     std::span<const GridFlow> flows,
                                     const traffic::UtilityFunction& utility)
    : scenario_(&scenario),
      flows_(flows),
      utility_(&utility),
      shop_node_(scenario.shop_node()) {
  const std::size_t n = network().num_nodes();
  struct Triple {
    graph::NodeId node;
    traffic::NodeIncidence incidence;
  };
  std::vector<Triple> triples;
  vehicles_at_node_.assign(n, 0.0);
  const citygen::GridCity& city = scenario.city();
  for (traffic::FlowIndex f = 0; f < flows_.size(); ++f) {
    const GridFlow& flow = flows_[f];
    const std::size_t col_lo = std::min(flow.entry.col, flow.exit.col);
    const std::size_t col_hi = std::max(flow.entry.col, flow.exit.col);
    const std::size_t row_lo = std::min(flow.entry.row, flow.exit.row);
    const std::size_t row_hi = std::max(flow.entry.row, flow.exit.row);
    for (std::size_t row = row_lo; row <= row_hi; ++row) {
      for (std::size_t col = col_lo; col <= col_hi; ++col) {
        const citygen::GridCoord coord{col, row};
        const graph::NodeId node = city.node_at(coord);
        triples.push_back(
            {node, {f, scenario.detour_at(coord, flow.exit)}});
        vehicles_at_node_[node] += flow.daily_vehicles;
      }
    }
  }
  node_start_.assign(n + 1, 0);
  for (const Triple& t : triples) ++node_start_[t.node + 1];
  for (std::size_t v = 1; v <= n; ++v) node_start_[v] += node_start_[v - 1];
  node_entries_.resize(triples.size());
  std::vector<std::uint32_t> cursor(node_start_.begin(), node_start_.end() - 1);
  for (const Triple& t : triples) {
    node_entries_[cursor[t.node]++] = t.incidence;
  }
}

std::span<const traffic::NodeIncidence> GridCoverageModel::reach_at(
    graph::NodeId node) const {
  network().check_node(node);
  return {node_entries_.data() + node_start_[node],
          node_entries_.data() + node_start_[node + 1]};
}

double GridCoverageModel::customers(traffic::FlowIndex flow,
                                    double detour) const {
  if (flow >= flows_.size()) {
    throw std::out_of_range("GridCoverageModel::customers: bad flow index");
  }
  if (std::isinf(detour)) return 0.0;
  const GridFlow& f = flows_[flow];
  return utility_->probability(detour, f.alpha) * f.population();
}

double GridCoverageModel::passing_vehicles(graph::NodeId node) const {
  network().check_node(node);
  return vehicles_at_node_[node];
}

std::size_t GridCoverageModel::passing_flow_count(graph::NodeId node) const {
  return reach_at(node).size();
}

}  // namespace rap::manhattan
