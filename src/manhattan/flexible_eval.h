// Flexible-route coverage for real (partially grid) networks — the Fig. 13
// evaluation model.
//
// Under the Manhattan scenario a flow is not pinned to one path: drivers
// take any shortest path from origin to destination and will pick one
// passing a RAP to collect the free advertisement. Hence a RAP at v reaches
// flow (i, j) iff
//     dist(i, v) + dist(v, j) == dist(i, j)
// and offers detour dist(v, shop) + dist(shop, j) - dist(v, j). On networks
// with many shortest-path ties (grids and near-grids) this covers far more
// flows per RAP than the fixed-path model — exactly why the paper measures
// more customers in Fig. 13 than in Fig. 12.
//
// FlexibleProblem implements core::CoverageModel, so Algorithms 1/2, the
// exhaustive optimum, and all baselines run unchanged against it.
#pragma once

#include <memory>
#include <vector>

#include "src/core/problem.h"

namespace rap::manhattan {

class FlexibleProblem final : public core::CoverageModel {
 public:
  /// Builds the flexible-route reach index: per flow, one Dijkstra from the
  /// origin and one reverse Dijkstra from the destination (cached across
  /// flows sharing endpoints), plus the two shop trees. Flows' stored paths
  /// are only used as a fallback identity (origin/destination); they are
  /// validated like everywhere else. Throws on bad input.
  FlexibleProblem(const graph::RoadNetwork& net,
                  std::vector<traffic::TrafficFlow> flows,
                  graph::NodeId shop,
                  const traffic::UtilityFunction& utility);

  FlexibleProblem(const FlexibleProblem&) = delete;
  FlexibleProblem& operator=(const FlexibleProblem&) = delete;
  FlexibleProblem(FlexibleProblem&&) = default;
  FlexibleProblem& operator=(FlexibleProblem&&) = default;

  [[nodiscard]] const graph::RoadNetwork& network() const noexcept override {
    return *net_;
  }
  [[nodiscard]] const traffic::UtilityFunction& utility() const noexcept override {
    return *utility_;
  }
  [[nodiscard]] graph::NodeId shop() const noexcept override { return shop_; }
  [[nodiscard]] std::size_t num_flows() const noexcept override {
    return flows_.size();
  }
  [[nodiscard]] std::span<const traffic::NodeIncidence> reach_at(
      graph::NodeId node) const override;
  [[nodiscard]] double customers(traffic::FlowIndex flow,
                                 double detour) const override;
  [[nodiscard]] double passing_vehicles(graph::NodeId node) const override;
  [[nodiscard]] std::size_t passing_flow_count(
      graph::NodeId node) const override;

  [[nodiscard]] const std::vector<traffic::TrafficFlow>& flows() const noexcept {
    return flows_;
  }

 private:
  const graph::RoadNetwork* net_;
  std::vector<traffic::TrafficFlow> flows_;
  graph::NodeId shop_;
  const traffic::UtilityFunction* utility_;

  // CSR: node -> (flow, detour) over shortest-path-DAG membership.
  std::vector<std::uint32_t> node_start_;
  std::vector<traffic::NodeIncidence> node_entries_;
  std::vector<double> vehicles_at_node_;
};

}  // namespace rap::manhattan
