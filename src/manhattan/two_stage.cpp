#include "src/manhattan/two_stage.h"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>

#include "src/core/composite_greedy.h"
#include "src/core/evaluator.h"
#include "src/core/exhaustive.h"
#include "src/core/filtered.h"
#include "src/core/k_policy.h"
#include "src/manhattan/flow_class.h"

namespace rap::manhattan {
namespace {

// Exhaustive optimum when affordable, composite greedy otherwise.
core::PlacementResult small_k_placement(const core::CoverageModel& model,
                                        std::size_t k,
                                        const TwoStageOptions& options) {
  if (core::exhaustive_combination_count(model, k) <= options.exhaustive_cap) {
    return core::exhaustive_optimal_placement(model, k,
                                              {options.exhaustive_cap});
  }
  return core::composite_greedy_placement(model, k);
}

// Greedily extends `state` by up to `budget` RAPs maximising the marginal
// gain on `model`; stops when nothing gains. Used with the straight-flow
// filter for stage 2 and with the full model for the leftover budget.
void greedy_extend(const core::CoverageModel& model,
                   core::PlacementState& state, std::size_t budget) {
  const auto n = static_cast<graph::NodeId>(model.num_nodes());
  for (std::size_t step = 0; step < budget; ++step) {
    graph::NodeId best = graph::kInvalidNode;
    double best_gain = 0.0;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (state.contains(v)) continue;
      const double gain = state.gain_if_added(v);
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    if (best == graph::kInvalidNode) break;
    state.add(best);
  }
}

// Mask of straight flows on the ideal grid.
std::vector<bool> straight_mask_grid(const GridCoverageModel& model) {
  std::vector<bool> mask(model.num_flows(), false);
  for (std::size_t f = 0; f < model.flows().size(); ++f) {
    mask[f] = classify_grid_flow(model.scenario(), model.flows()[f]) ==
              GridFlowClass::kStraight;
  }
  return mask;
}

// Mask of straight flows judged by region crossing on the real network.
std::vector<bool> straight_mask_network(const FlexibleProblem& model,
                                        const geo::BBox& region,
                                        double alignment_tol) {
  std::vector<bool> mask(model.num_flows(), false);
  for (std::size_t f = 0; f < model.flows().size(); ++f) {
    mask[f] = classify_path_region(model.network(), model.flows()[f].path,
                                   region, alignment_tol) ==
              GridFlowClass::kStraight;
  }
  return mask;
}

graph::NodeId nearest_node(const graph::RoadNetwork& net, geo::Point target) {
  graph::NodeId best = graph::kInvalidNode;
  double best_dist = std::numeric_limits<double>::infinity();
  for (graph::NodeId v = 0; v < net.num_nodes(); ++v) {
    const double d = geo::squared_distance(net.position(v), target);
    if (d < best_dist) {
      best_dist = d;
      best = v;
    }
  }
  return best;
}

// Re-values the straight-stage placement on the full model and optionally
// spends any leftover budget there.
core::PlacementResult finish(const core::CoverageModel& model,
                             const core::PlacementState& staged, std::size_t k,
                             const TwoStageOptions& options) {
  core::PlacementState full(model);
  for (const graph::NodeId v : staged.placement()) full.add(v);
  if (options.spend_leftover_budget && full.placement().size() < k) {
    greedy_extend(model, full, k - full.placement().size());
  }
  return {full.placement(), full.value()};
}

}  // namespace

core::PlacementResult two_stage_grid_placement(const GridCoverageModel& model,
                                               std::size_t k,
                                               TwoStageVariant variant,
                                               const TwoStageOptions& options) {
  k = core::checked_budget(model, k, "two_stage_grid_placement");
  if (k <= 4) return small_k_placement(model, k, options);

  const GridScenario& scenario = model.scenario();
  const citygen::GridCity& city = scenario.city();
  const std::size_t last = scenario.n() - 1;
  const std::size_t mid = scenario.shop_coord().col;  // == row (square grid)

  core::PlacementState state(model);
  const auto corner_stage_coord = [&](std::size_t col, std::size_t row) {
    if (variant == TwoStageVariant::kCorners) {
      return citygen::GridCoord{col, row};
    }
    // Midpoint between the corner and the shop, snapped to the grid.
    return citygen::GridCoord{(col + mid) / 2, (row + mid) / 2};
  };
  state.add(city.node_at(corner_stage_coord(0, 0)));
  state.add(city.node_at(corner_stage_coord(last, 0)));
  state.add(city.node_at(corner_stage_coord(0, last)));
  state.add(city.node_at(corner_stage_coord(last, last)));

  const core::FilteredCoverageModel straight(model, straight_mask_grid(model));
  core::PlacementState straight_state(straight);
  for (const graph::NodeId v : state.placement()) straight_state.add(v);
  greedy_extend(straight, straight_state, k - state.placement().size());
  return finish(model, straight_state, k, options);
}

core::PlacementResult two_stage_network_placement(
    const FlexibleProblem& model, const geo::BBox& region, std::size_t k,
    TwoStageVariant variant, const TwoStageOptions& options) {
  k = core::checked_budget(model, k, "two_stage_network_placement");
  if (region.empty()) {
    throw std::invalid_argument("two_stage_network_placement: empty region");
  }
  if (k <= 4) return small_k_placement(model, k, options);

  const graph::RoadNetwork& net = model.network();
  const geo::Point lo = region.min();
  const geo::Point hi = region.max();
  const geo::Point center = region.center();
  std::array<geo::Point, 4> anchors{geo::Point{lo.x, lo.y},
                                    geo::Point{hi.x, lo.y},
                                    geo::Point{lo.x, hi.y},
                                    geo::Point{hi.x, hi.y}};
  if (variant == TwoStageVariant::kMidpoints) {
    for (geo::Point& p : anchors) p = midpoint(p, center);
  }

  core::PlacementState state(model);
  for (const geo::Point& anchor : anchors) {
    const graph::NodeId node = nearest_node(net, anchor);
    if (node != graph::kInvalidNode) state.add(node);
  }

  const core::FilteredCoverageModel straight(
      model, straight_mask_network(model, region, options.alignment_tol));
  core::PlacementState straight_state(straight);
  for (const graph::NodeId v : state.placement()) straight_state.add(v);
  greedy_extend(straight, straight_state, k - state.placement().size());
  return finish(model, straight_state, k, options);
}

}  // namespace rap::manhattan
