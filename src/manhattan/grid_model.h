// CoverageModel over the ideal grid scenario: a RAP at node v reaches a
// flow iff v lies inside the flow's bounding rectangle (route-aware reach).
// Lets Algorithms 1/2, the exhaustive optimum and the baselines run on the
// Section IV world unchanged.
#pragma once

#include <span>
#include <vector>

#include "src/core/problem.h"
#include "src/manhattan/grid_scenario.h"

namespace rap::manhattan {

class GridCoverageModel final : public core::CoverageModel {
 public:
  /// `scenario`, `flows` and `utility` must outlive the model.
  GridCoverageModel(const GridScenario& scenario,
                    std::span<const GridFlow> flows,
                    const traffic::UtilityFunction& utility);

  [[nodiscard]] const graph::RoadNetwork& network() const noexcept override {
    return scenario_->city().network();
  }
  [[nodiscard]] const traffic::UtilityFunction& utility() const noexcept override {
    return *utility_;
  }
  [[nodiscard]] graph::NodeId shop() const noexcept override {
    return shop_node_;
  }
  [[nodiscard]] std::size_t num_flows() const noexcept override {
    return flows_.size();
  }
  [[nodiscard]] std::span<const traffic::NodeIncidence> reach_at(
      graph::NodeId node) const override;
  [[nodiscard]] double customers(traffic::FlowIndex flow,
                                 double detour) const override;
  [[nodiscard]] double passing_vehicles(graph::NodeId node) const override;
  [[nodiscard]] std::size_t passing_flow_count(
      graph::NodeId node) const override;

  [[nodiscard]] const GridScenario& scenario() const noexcept {
    return *scenario_;
  }
  [[nodiscard]] std::span<const GridFlow> flows() const noexcept {
    return flows_;
  }

 private:
  const GridScenario* scenario_;
  std::span<const GridFlow> flows_;
  const traffic::UtilityFunction* utility_;
  graph::NodeId shop_node_;

  std::vector<std::uint32_t> node_start_;
  std::vector<traffic::NodeIncidence> node_entries_;
  std::vector<double> vehicles_at_node_;
};

}  // namespace rap::manhattan
