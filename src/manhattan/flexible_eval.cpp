#include "src/manhattan/flexible_eval.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "src/graph/dijkstra.h"

namespace rap::manhattan {
namespace {

constexpr double kTol = 1e-9;

}  // namespace

FlexibleProblem::FlexibleProblem(const graph::RoadNetwork& net,
                                 std::vector<traffic::TrafficFlow> flows,
                                 graph::NodeId shop,
                                 const traffic::UtilityFunction& utility)
    : net_(&net), flows_(std::move(flows)), shop_(shop), utility_(&utility) {
  net.check_node(shop);
  for (const traffic::TrafficFlow& flow : flows_) {
    traffic::validate_flow(net, flow);
  }
  const std::size_t n = net.num_nodes();
  const graph::ShortestPathTree to_shop =
      graph::dijkstra(net, shop, graph::Direction::kReverse);
  const graph::ShortestPathTree from_shop =
      graph::dijkstra(net, shop, graph::Direction::kForward);

  // Dijkstra caches keyed by endpoint: many flows share origins/destinations.
  std::unordered_map<graph::NodeId, graph::ShortestPathTree> from_origin;
  std::unordered_map<graph::NodeId, graph::ShortestPathTree> to_destination;
  const auto forward_tree = [&](graph::NodeId origin)
      -> const graph::ShortestPathTree& {
    const auto it = from_origin.find(origin);
    if (it != from_origin.end()) return it->second;
    return from_origin
        .emplace(origin, graph::dijkstra(net, origin, graph::Direction::kForward))
        .first->second;
  };
  const auto reverse_tree = [&](graph::NodeId destination)
      -> const graph::ShortestPathTree& {
    const auto it = to_destination.find(destination);
    if (it != to_destination.end()) return it->second;
    return to_destination
        .emplace(destination,
                 graph::dijkstra(net, destination, graph::Direction::kReverse))
        .first->second;
  };

  // Collect (node, flow, detour) triples over shortest-path-DAG membership.
  struct Triple {
    graph::NodeId node;
    traffic::NodeIncidence incidence;
  };
  std::vector<Triple> triples;
  vehicles_at_node_.assign(n, 0.0);
  for (traffic::FlowIndex f = 0; f < flows_.size(); ++f) {
    const traffic::TrafficFlow& flow = flows_[f];
    const graph::ShortestPathTree& fwd = forward_tree(flow.origin);
    const graph::ShortestPathTree& rev = reverse_tree(flow.destination);
    const double total = fwd.distance(flow.destination);
    if (total == graph::kUnreachable) continue;  // isolated OD: unreachable
    const double shop_to_dest = from_shop.distance(flow.destination);
    for (graph::NodeId v = 0; v < n; ++v) {
      const double a = fwd.distance(v);
      const double b = rev.distance(v);
      if (a == graph::kUnreachable || b == graph::kUnreachable) continue;
      if (a + b > total + kTol * (1.0 + total)) continue;  // not on the DAG
      vehicles_at_node_[v] += flow.daily_vehicles;
      const double to_shop_dist = to_shop.distance(v);
      double detour = graph::kUnreachable;
      if (to_shop_dist != graph::kUnreachable &&
          shop_to_dest != graph::kUnreachable) {
        detour = std::max(0.0, to_shop_dist + shop_to_dest - b);
      }
      triples.push_back({v, {f, detour}});
    }
  }

  node_start_.assign(n + 1, 0);
  for (const Triple& t : triples) ++node_start_[t.node + 1];
  for (std::size_t v = 1; v <= n; ++v) node_start_[v] += node_start_[v - 1];
  node_entries_.resize(triples.size());
  std::vector<std::uint32_t> cursor(node_start_.begin(), node_start_.end() - 1);
  for (const Triple& t : triples) {
    node_entries_[cursor[t.node]++] = t.incidence;
  }
}

std::span<const traffic::NodeIncidence> FlexibleProblem::reach_at(
    graph::NodeId node) const {
  net_->check_node(node);
  return {node_entries_.data() + node_start_[node],
          node_entries_.data() + node_start_[node + 1]};
}

double FlexibleProblem::customers(traffic::FlowIndex flow,
                                  double detour) const {
  if (flow >= flows_.size()) {
    throw std::out_of_range("FlexibleProblem::customers: bad flow index");
  }
  if (std::isinf(detour)) return 0.0;
  const traffic::TrafficFlow& f = flows_[flow];
  return utility_->probability(detour, f.alpha) * f.population();
}

double FlexibleProblem::passing_vehicles(graph::NodeId node) const {
  net_->check_node(node);
  return vehicles_at_node_[node];
}

std::size_t FlexibleProblem::passing_flow_count(graph::NodeId node) const {
  net_->check_node(node);
  return node_start_[node + 1] - node_start_[node];
}

}  // namespace rap::manhattan
