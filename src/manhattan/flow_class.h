// Flow classification for the Manhattan scenario (Definition 3):
//   straight — travels along a single vertical or horizontal street across
//              the region;
//   turned   — enters and exits the region through different orientations
//              (e.g. in via a horizontal street, out via a vertical one);
//   other    — everything else (e.g. in and out via different horizontal
//              streets, or a path that starts/ends inside the region).
// Two variants: the ideal grid (GridFlow) and real network flows relative
// to a D x D region box (used for the partially-grid Seattle city).
#pragma once

#include <cstdint>
#include <span>

#include "src/geo/bbox.h"
#include "src/manhattan/grid_scenario.h"
#include "src/traffic/flow.h"

namespace rap::manhattan {

enum class GridFlowClass : std::uint8_t { kStraight, kTurned, kOther };

[[nodiscard]] const char* to_string(GridFlowClass c) noexcept;

/// Classifies an ideal-grid flow. Throws when entry/exit are not boundary
/// intersections.
[[nodiscard]] GridFlowClass classify_grid_flow(const GridScenario& scenario,
                                               const GridFlow& flow);

/// Region-boundary edges, for the network variant.
enum class RegionEdge : std::uint8_t { kWest, kEast, kSouth, kNorth, kNone };

/// Where a path crosses a region box.
struct RegionTransit {
  bool crosses = false;  ///< path both enters and leaves the region
  geo::Point entry;      ///< first boundary crossing point
  geo::Point exit;       ///< last boundary crossing point
  RegionEdge entry_edge = RegionEdge::kNone;
  RegionEdge exit_edge = RegionEdge::kNone;
};

/// Computes the first-entry and last-exit crossings of the polyline through
/// `path`'s node positions. crosses == false when the path never enters the
/// region or starts/ends inside it.
[[nodiscard]] RegionTransit region_transit(const graph::RoadNetwork& net,
                                           std::span<const graph::NodeId> path,
                                           const geo::BBox& region);

/// Classifies a network flow against a region box. `alignment_tol` is the
/// maximum cross-axis displacement for a crossing to count as straight
/// (e.g. half a block).
[[nodiscard]] GridFlowClass classify_path_region(
    const graph::RoadNetwork& net, std::span<const graph::NodeId> path,
    const geo::BBox& region, double alignment_tol);

}  // namespace rap::manhattan
