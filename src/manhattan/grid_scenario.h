// The Section IV world: a D x D Manhattan grid region with the shop at its
// centre. Traffic flows cross the region between boundary intersections
// along *any* of their shortest (staircase) paths, and will choose a path
// through a RAP to collect the free advertisement — so a RAP reaches a flow
// iff it lies inside the flow's bounding rectangle (the exact
// some-shortest-path test on a full grid).
#pragma once

#include <span>
#include <vector>

#include "src/citygen/grid_city.h"
#include "src/traffic/utility.h"
#include "src/util/rng.h"

namespace rap::manhattan {

/// A flow crossing the grid region: boundary entry and exit intersections.
struct GridFlow {
  citygen::GridCoord entry;
  citygen::GridCoord exit;
  double daily_vehicles = 0.0;
  double passengers_per_vehicle = 1.0;
  double alpha = 1.0;

  [[nodiscard]] double population() const noexcept {
    return daily_vehicles * passengers_per_vehicle;
  }
};

class GridScenario {
 public:
  /// An n x n grid with `spacing` between intersections; the shop sits at
  /// the centre intersection. n must be odd (so a centre exists) and >= 3.
  GridScenario(std::size_t n, double spacing);

  [[nodiscard]] const citygen::GridCity& city() const noexcept { return city_; }
  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] double spacing() const noexcept { return spacing_; }
  /// Side length of the region — the paper's D.
  [[nodiscard]] double side() const noexcept {
    return spacing_ * static_cast<double>(n_ - 1);
  }
  [[nodiscard]] citygen::GridCoord shop_coord() const noexcept { return shop_; }
  [[nodiscard]] graph::NodeId shop_node() const;

  /// True iff `v` lies on some shortest entry->exit staircase path
  /// (bounding-rectangle test).
  [[nodiscard]] static bool on_some_shortest_path(citygen::GridCoord entry,
                                                  citygen::GridCoord exit,
                                                  citygen::GridCoord v) noexcept;

  /// Detour distance for a flow exiting at `exit` if the advertisement is
  /// received at `v`: L1(v, shop) + L1(shop, exit) - L1(v, exit).
  [[nodiscard]] double detour_at(citygen::GridCoord v,
                                 citygen::GridCoord exit) const noexcept;

  /// Minimum detour the placement offers the flow over all reachable RAPs
  /// (kUnreachable when no RAP lies on any of the flow's shortest paths).
  [[nodiscard]] double best_detour(const GridFlow& flow,
                                   std::span<const graph::NodeId> placement) const;

  /// Expected attracted customers of a placement under route-aware
  /// evaluation.
  [[nodiscard]] double evaluate(std::span<const GridFlow> flows,
                                std::span<const graph::NodeId> placement,
                                const traffic::UtilityFunction& utility) const;

  /// All boundary intersections (the possible flow endpoints).
  [[nodiscard]] std::vector<citygen::GridCoord> boundary_coords() const;

 private:
  std::size_t n_;
  double spacing_;
  citygen::GridCity city_;
  citygen::GridCoord shop_;
};

struct GridFlowGenSpec {
  std::size_t count = 50;
  double mean_vehicles = 20.0;  ///< daily vehicles ~ 1 + Poisson(mean)
  double passengers_per_vehicle = 200.0;
  double alpha = 0.001;
  /// Fraction of flows forced to be straight (arterial through-traffic);
  /// the rest are uniform boundary-to-boundary pairs. Must be in [0, 1].
  double straight_fraction = 0.3;
};

/// Random boundary-to-boundary flows (entry != exit, not on the same
/// boundary point), deterministic from `rng`.
[[nodiscard]] std::vector<GridFlow> generate_grid_flows(
    const GridScenario& scenario, const GridFlowGenSpec& spec, util::Rng& rng);

}  // namespace rap::manhattan
