#include "src/manhattan/grid_scenario.h"

#include <algorithm>
#include <stdexcept>

#include "src/graph/dijkstra.h"

namespace rap::manhattan {
namespace {

double l1(citygen::GridCoord a, citygen::GridCoord b, double spacing) noexcept {
  const auto diff = [](std::size_t x, std::size_t y) {
    return static_cast<double>(x > y ? x - y : y - x);
  };
  return spacing * (diff(a.col, b.col) + diff(a.row, b.row));
}

bool within(std::size_t v, std::size_t a, std::size_t b) noexcept {
  return v >= std::min(a, b) && v <= std::max(a, b);
}

}  // namespace

GridScenario::GridScenario(std::size_t n, double spacing)
    : n_(n),
      spacing_(spacing),
      city_(citygen::GridSpec{n, n, spacing, {0.0, 0.0}}),
      shop_{n / 2, n / 2} {
  if (n < 3 || n % 2 == 0) {
    throw std::invalid_argument("GridScenario: n must be odd and >= 3");
  }
}

graph::NodeId GridScenario::shop_node() const { return city_.node_at(shop_); }

bool GridScenario::on_some_shortest_path(citygen::GridCoord entry,
                                         citygen::GridCoord exit,
                                         citygen::GridCoord v) noexcept {
  // On a full grid, every monotone staircase within the bounding rectangle
  // is a shortest path, and nothing outside the rectangle can be on one.
  return within(v.col, entry.col, exit.col) && within(v.row, entry.row, exit.row);
}

double GridScenario::detour_at(citygen::GridCoord v,
                               citygen::GridCoord exit) const noexcept {
  return l1(v, shop_, spacing_) + l1(shop_, exit, spacing_) -
         l1(v, exit, spacing_);
}

double GridScenario::best_detour(
    const GridFlow& flow, std::span<const graph::NodeId> placement) const {
  double best = graph::kUnreachable;
  for (const graph::NodeId node : placement) {
    const citygen::GridCoord coord = city_.coord_of(node);
    if (!on_some_shortest_path(flow.entry, flow.exit, coord)) continue;
    best = std::min(best, detour_at(coord, flow.exit));
  }
  return best;
}

double GridScenario::evaluate(std::span<const GridFlow> flows,
                              std::span<const graph::NodeId> placement,
                              const traffic::UtilityFunction& utility) const {
  double total = 0.0;
  for (const GridFlow& flow : flows) {
    const double detour = best_detour(flow, placement);
    if (detour == graph::kUnreachable) continue;
    total += utility.probability(detour, flow.alpha) * flow.population();
  }
  return total;
}

std::vector<citygen::GridCoord> GridScenario::boundary_coords() const {
  std::vector<citygen::GridCoord> out;
  for (std::size_t c = 0; c < n_; ++c) {
    out.push_back({c, 0});
    out.push_back({c, n_ - 1});
  }
  for (std::size_t r = 1; r + 1 < n_; ++r) {
    out.push_back({0, r});
    out.push_back({n_ - 1, r});
  }
  return out;
}

std::vector<GridFlow> generate_grid_flows(const GridScenario& scenario,
                                          const GridFlowGenSpec& spec,
                                          util::Rng& rng) {
  if (spec.count == 0) {
    throw std::invalid_argument("generate_grid_flows: count must be > 0");
  }
  if (spec.straight_fraction < 0.0 || spec.straight_fraction > 1.0) {
    throw std::invalid_argument(
        "generate_grid_flows: straight_fraction must be in [0, 1]");
  }
  const std::vector<citygen::GridCoord> boundary = scenario.boundary_coords();
  const std::size_t last = scenario.n() - 1;
  std::vector<GridFlow> flows;
  flows.reserve(spec.count);
  while (flows.size() < spec.count) {
    citygen::GridCoord entry;
    citygen::GridCoord exit;
    if (rng.next_bool(spec.straight_fraction)) {
      // Arterial through-traffic: straight across one street.
      const std::size_t lane = rng.next_below(scenario.n());
      const bool horizontal = rng.next_bool(0.5);
      const bool forward = rng.next_bool(0.5);
      entry = horizontal ? citygen::GridCoord{forward ? 0 : last, lane}
                         : citygen::GridCoord{lane, forward ? 0 : last};
      exit = horizontal ? citygen::GridCoord{forward ? last : 0, lane}
                        : citygen::GridCoord{lane, forward ? last : 0};
    } else {
      entry = boundary[rng.next_below(boundary.size())];
      exit = boundary[rng.next_below(boundary.size())];
    }
    if (entry == exit) continue;
    GridFlow flow;
    flow.entry = entry;
    flow.exit = exit;
    flow.daily_vehicles =
        static_cast<double>(1 + rng.next_poisson(spec.mean_vehicles));
    flow.passengers_per_vehicle = spec.passengers_per_vehicle;
    flow.alpha = spec.alpha;
    flows.push_back(flow);
  }
  return flows;
}

}  // namespace rap::manhattan
