// Quickstart: build a small road network by hand, describe its traffic
// flows, and place two RAPs for a shop — the paper's Fig. 4 scenario.
//
// Run: ./quickstart
#include <iostream>

#include "src/core/composite_greedy.h"
#include "src/core/evaluator.h"
#include "src/core/greedy.h"
#include "src/core/problem.h"
#include "src/traffic/utility.h"

int main() {
  using namespace rap;

  // 1. The street map: intersections with coordinates, two-way streets.
  //    (This is the 6-intersection example of the paper's Fig. 4.)
  graph::RoadNetwork net;
  const graph::NodeId v1 = net.add_node({0.0, 0.0});  // the shop's corner
  const graph::NodeId v2 = net.add_node({0.0, 1.0});
  const graph::NodeId v3 = net.add_node({1.0, 1.0});
  const graph::NodeId v4 = net.add_node({1.0, 0.0});
  const graph::NodeId v5 = net.add_node({2.0, 1.0});
  const graph::NodeId v6 = net.add_node({3.0, 1.0});
  for (const auto& [a, b] : {std::pair{v1, v2}, {v1, v4}, {v2, v3},
                             {v3, v4}, {v3, v5}, {v5, v6}}) {
    net.add_two_way_edge(a, b, 1.0);
  }

  // 2. The daily traffic flows T(i,j): who drives where, and how many.
  std::vector<traffic::TrafficFlow> flows;
  flows.push_back(traffic::make_shortest_path_flow(net, v2, v5, /*vehicles=*/6));
  flows.push_back(traffic::make_shortest_path_flow(net, v3, v5, /*vehicles=*/3));
  flows.push_back(traffic::make_shortest_path_flow(net, v4, v3, /*vehicles=*/6));
  flows.push_back(traffic::make_shortest_path_flow(net, v5, v6, /*vehicles=*/2));

  // 3. The driver model: detour probability as a function of the detour
  //    distance. Drivers give up beyond D = 6; willingness decays linearly.
  const traffic::LinearUtility utility(/*range D=*/6.0);

  // 4. The placement problem: network + flows + shop + utility.
  const core::PlacementProblem problem(net, flows, /*shop=*/v1, utility);

  // 5. Place k = 2 RAPs with Algorithm 2 (the composite greedy with the
  //    1 - 1/sqrt(e) guarantee) and inspect the result.
  const core::PlacementResult result = core::composite_greedy_placement(problem, 2);
  std::cout << "Algorithm 2 placed RAPs at intersections:";
  for (const graph::NodeId v : result.nodes) std::cout << " V" << v + 1;
  std::cout << "\nExpected customers attracted per day: " << result.customers
            << "\n";

  // Any placement can be valued directly, too:
  const core::Placement alternative{v2, v4};
  std::cout << "Alternative placement {V2, V4} is worth: "
            << core::evaluate_placement(problem, alternative) << "\n";
  return 0;
}
