// Budgeted multi-ad campaign: the advertiser has a *money* budget, not a
// RAP count — downtown intersections cost more to equip than suburban
// ones — and runs two ad creatives that appeal to different commuter
// groups. Demonstrates the budgeted solver (the Khuller-Moss-Naor setting
// the paper cites as [18]) and the multi-ad extension (Section VI's future
// work), side by side on the same workload.
//
// Run: ./campaign_budget [--seed N] [--budget DOLLARS]
#include <iostream>

#include "src/citygen/radial_city.h"
#include "src/core/ad_selection.h"
#include "src/core/budgeted.h"
#include "src/core/composite_greedy.h"
#include "src/trace/classify.h"
#include "src/trace/flow_extractor.h"
#include "src/trace/generator.h"
#include "src/util/cli.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  using namespace rap;
  const util::CliFlags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));
  const double budget = flags.get_double("budget", 25'000.0);

  // City + flows (an irregular radial city, ~40,000 ft across).
  util::Rng rng(seed);
  citygen::RadialSpec city_spec;
  city_spec.rings = 8;
  city_spec.ring_spacing = 2'500.0;
  const graph::RoadNetwork net = citygen::build_radial_city(city_spec, rng);
  trace::TraceGenSpec trace_spec;
  trace_spec.num_journeys = 70;
  trace_spec.mean_runs_per_journey = 30.0;
  trace_spec.sample_spacing = 700.0;
  trace_spec.gps_noise = 100.0;
  trace_spec.passengers_per_vehicle = 100.0;
  trace_spec.alpha = 0.001;
  const auto day = trace::generate_trace(net, trace_spec, rng);
  const trace::MapMatcher matcher(net, 350.0);
  trace::ExtractionOptions extract;
  extract.passengers_per_vehicle = 100.0;
  extract.alpha = 0.001;
  const auto flows = trace::extract_flows(matcher, day.records, extract);

  const auto classes = trace::classify_intersections(net, flows);
  const auto city_nodes =
      trace::nodes_in_class(classes, trace::LocationClass::kCity);
  const graph::NodeId shop = city_nodes[rng.next_below(city_nodes.size())];
  const traffic::LinearUtility utility(12'000.0);
  const core::PlacementProblem problem(net, flows, shop, utility);
  std::cout << "city: " << net.num_nodes() << " intersections, "
            << flows.size() << " flows; shop at " << shop << "\n\n";

  // --- Part 1: money budget. Installation costs scale with how central an
  // intersection is (centre real estate is pricey).
  std::vector<double> costs(net.num_nodes());
  for (graph::NodeId v = 0; v < net.num_nodes(); ++v) {
    switch (classes[v]) {
      case trace::LocationClass::kCityCenter:
        costs[v] = 9'000.0;
        break;
      case trace::LocationClass::kCity:
        costs[v] = 5'000.0;
        break;
      case trace::LocationClass::kSuburb:
        costs[v] = 2'000.0;
        break;
    }
  }
  const core::PlacementResult spent =
      core::budgeted_placement(problem, costs, budget);
  std::cout << "budget $" << util::format_fixed(budget, 0) << " buys "
            << spent.nodes.size() << " RAPs (cost $"
            << util::format_fixed(core::placement_cost(costs, spent.nodes), 0)
            << ") attracting " << util::format_fixed(spent.customers, 1)
            << " customers/day\n";
  const core::PlacementResult same_count =
      core::composite_greedy_placement(problem, spent.nodes.size());
  std::cout << "(cost-blind Algorithm 2 with the same RAP count: "
            << util::format_fixed(same_count.customers, 1)
            << " customers/day at cost $"
            << util::format_fixed(
                   core::placement_cost(costs, same_count.nodes), 0)
            << ")\n\n";

  // --- Part 2: two creatives. Even-indexed flows respond to ad A,
  // odd-indexed ones to ad B (a stand-in for, say, morning-coffee vs
  // after-work audiences known from loyalty data).
  std::vector<double> interests;
  interests.reserve(flows.size() * 2);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    interests.push_back(f % 2 == 0 ? 1.0 : 0.15);  // ad A
    interests.push_back(f % 2 == 0 ? 0.15 : 1.0);  // ad B
  }
  const core::InterestMatrix interest(flows.size(), 2, interests);
  const core::AdPlacementResult targeted =
      core::multi_ad_greedy_placement(problem, interest, 6);
  const core::InterestMatrix compromise(
      flows.size(), 1, std::vector<double>(flows.size(), 0.575));
  const core::AdPlacementResult untargeted =
      core::multi_ad_greedy_placement(problem, compromise, 6);

  std::cout << "6 RAPs, two targeted creatives: "
            << util::format_fixed(targeted.customers, 1)
            << " customers/day; ads chosen per RAP:";
  for (const core::AdAssignment& rap : targeted.raps) {
    std::cout << " " << rap.node << (rap.ad == 0 ? "/A" : "/B");
  }
  std::cout << "\n6 RAPs, one compromise creative: "
            << util::format_fixed(untargeted.customers, 1)
            << " customers/day\n";
  return 0;
}
