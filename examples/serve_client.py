#!/usr/bin/env python3
"""Example client for the rap_serve line-delimited JSON protocol.

Spawns the server as a child process, loads the Seattle-grid preset,
places RAPs for a few budgets, applies a traffic delta, and re-places —
the second placement reuses warm-start state inside the server.

Run from a build directory (or pass the binary path):

    python3 ../examples/serve_client.py [path/to/rap_serve]

Only the Python standard library is used.
"""

import json
import subprocess
import sys


class ServeClient:
    """Minimal driver: one JSON object per request line, one per response."""

    def __init__(self, binary):
        self.proc = subprocess.Popen(
            [binary],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
        )
        self.next_id = 0

    def request(self, op, **fields):
        self.next_id += 1
        fields["op"] = op
        fields["id"] = self.next_id
        self.proc.stdin.write(json.dumps(fields) + "\n")
        self.proc.stdin.flush()
        response = json.loads(self.proc.stdout.readline())
        if not response.get("ok"):
            error = response.get("error", {})
            raise RuntimeError(f"{op}: {error.get('code')}: {error.get('message')}")
        return response

    def close(self):
        try:
            self.request("shutdown")
        finally:
            self.proc.stdin.close()
            self.proc.wait(timeout=10)


def main():
    binary = sys.argv[1] if len(sys.argv) > 1 else "./tools/rap_serve"
    client = ServeClient(binary)

    loaded = client.request(
        "load", city="seattle", seed=7, journeys=100, d=2500
    )
    print(
        f"loaded {loaded['summary']} "
        f"(key {loaded['key']}, cached={loaded['cached']})"
    )

    # Sweep a few budgets in one batch (solved concurrently server-side).
    batch = client.request("place_batch", ks=[2, 4, 8])
    for result in batch["results"]:
        print(
            f"  k={result['k']:>2}: {result['customers']:10.1f} customers "
            f"at intersections {result['nodes']}"
        )

    # Traffic changed: one flow doubled. Re-place without a full re-run —
    # the server warm-starts from the previous optimization.
    client.request("delta", ops=[{"kind": "scale_flow", "index": 0, "factor": 2.0}])
    replaced = client.request("place", k=8)["result"]
    print(
        f"after delta: {replaced['customers']:.1f} customers, "
        f"warm_reused={replaced['warm_reused']}"
    )

    stats = client.request("stats")
    print(
        "server stats:",
        json.dumps(
            {"cache": stats["cache"], "session": stats["session"]}, indent=2
        ),
    )
    client.close()


if __name__ == "__main__":
    main()
