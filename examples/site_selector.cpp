// Site selection: before placing RAPs, pick where the shop itself should
// go. Ranks every intersection of a Seattle-like city by the customers its
// best k-RAP campaign would attract, prints the top sites, and exports the
// winner's scenario (streets, flows, shop, RAPs) as GeoJSON for inspection.
//
// Run: ./site_selector [--seed N] [--k N] [--top N] [--geojson PATH]
#include <iostream>

#include "src/citygen/partial_grid_city.h"
#include "src/eval/geojson.h"
#include "src/eval/shop_siting.h"
#include "src/trace/flow_extractor.h"
#include "src/trace/generator.h"
#include "src/util/cli.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  using namespace rap;
  const util::CliFlags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 21));
  const auto k = static_cast<std::size_t>(flags.get_int("k", 6));
  const auto top = static_cast<std::size_t>(flags.get_int("top", 8));
  const std::string geojson_path =
      flags.get_string("geojson", "site_selector.geojson");

  // City + one day of traces -> flows.
  util::Rng rng(seed);
  citygen::PartialGridSpec city_spec;
  city_spec.grid = {15, 15, 650.0, {0.0, 0.0}};
  city_spec.edge_removal_prob = 0.07;
  const citygen::PartialGridCity city(city_spec, rng);
  const graph::RoadNetwork& net = city.network();

  trace::TraceGenSpec trace_spec;
  trace_spec.num_journeys = 70;
  trace_spec.mean_runs_per_journey = 25.0;
  trace_spec.sample_spacing = 420.0;
  trace_spec.gps_noise = 70.0;
  trace_spec.passengers_per_vehicle = 200.0;
  trace_spec.alpha = 0.001;
  const auto day = trace::generate_trace(net, trace_spec, rng);
  const trace::MapMatcher matcher(net, 300.0);
  trace::ExtractionOptions extract;
  extract.passengers_per_vehicle = 200.0;
  extract.alpha = 0.001;
  const auto flows = trace::extract_flows(matcher, day.records, extract);
  std::cout << "city: " << net.num_nodes() << " intersections, "
            << flows.size() << " flows\n\n";

  // Rank every intersection as a potential shop site.
  const traffic::LinearUtility utility(4'500.0);
  eval::ShopSitingOptions options;
  options.k = k;
  options.top = top;
  const auto sites = eval::rank_shop_sites(net, flows, utility, options);

  std::cout << "top shop sites (k=" << k << " RAPs each, linear utility)\n";
  std::cout << util::pad("rank", 5) << util::pad("intersection", 14)
            << util::pad("customers/day", 15) << "   position (ft)\n";
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const geo::Point p = net.position(sites[i].shop);
    std::cout << util::pad(std::to_string(i + 1), 5)
              << util::pad(std::to_string(sites[i].shop), 14)
              << util::pad(util::format_fixed(sites[i].customers, 1), 15)
              << "   (" << util::format_fixed(p.x, 0) << ", "
              << util::format_fixed(p.y, 0) << ")\n";
  }

  // Export the winning scenario for a map viewer.
  const eval::SiteScore& best = sites.front();
  eval::GeoJsonOptions geo_options;
  geo_options.min_flow_vehicles = 10.0;
  eval::write_geojson(geojson_path, net, flows, best.shop, best.placement,
                      geo_options);
  std::cout << "\nwrote the winning scenario to " << geojson_path << "\n";
  return 0;
}
