// Dublin-style campaign planning, end to end:
//   synthesize an irregular (non-grid) city and a day of bus GPS traces ->
//   map-match the traces -> extract traffic flows -> classify intersections
//   -> pick a shop in the "city" band -> compare RAP placements.
//
// This is the full pipeline behind the Fig. 10/11 benches, driven as a
// library user would: one city, one shop, human-readable output.
//
// Run: ./dublin_campaign [--seed N] [--k N] [--d FEET]
#include <iostream>

#include "src/citygen/radial_city.h"
#include "src/core/baselines.h"
#include "src/core/composite_greedy.h"
#include "src/core/greedy.h"
#include "src/trace/classify.h"
#include "src/trace/flow_extractor.h"
#include "src/trace/generator.h"
#include "src/util/cli.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  using namespace rap;
  const util::CliFlags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto k = static_cast<std::size_t>(flags.get_int("k", 8));
  const double d = flags.get_double("d", 20'000.0);

  // A Dublin-like central area: radial/ring streets, ~80,000 ft across.
  util::Rng rng(seed);
  citygen::RadialSpec city_spec;
  city_spec.rings = 12;
  city_spec.nodes_on_first_ring = 8;
  city_spec.nodes_per_ring_step = 5;
  city_spec.ring_spacing = 3'300.0;
  const graph::RoadNetwork net = citygen::build_radial_city(city_spec, rng);
  std::cout << "city: " << net.num_nodes() << " intersections, "
            << net.num_edges() << " directed streets\n";

  // One day of bus traces (journey-pattern ids, 100 passengers per bus).
  trace::TraceGenSpec trace_spec;
  trace_spec.num_journeys = 100;
  trace_spec.mean_runs_per_journey = 40.0;
  trace_spec.sample_spacing = 900.0;
  trace_spec.gps_noise = 150.0;
  trace_spec.passengers_per_vehicle = 100.0;
  trace_spec.alpha = 0.001;
  const trace::SyntheticTrace day = trace::generate_trace(net, trace_spec, rng);
  std::cout << "trace: " << day.records.size() << " GPS records across "
            << day.planted_flows.size() << " journey patterns\n";

  // Map-match and extract the flows the advertiser can target.
  const trace::MapMatcher matcher(net, /*snap_radius=*/1'500.0);
  trace::ExtractionOptions extract;
  extract.passengers_per_vehicle = 100.0;
  extract.alpha = 0.001;
  const auto flows = trace::extract_flows(matcher, day.records, extract);
  std::cout << "extracted " << flows.size() << " traffic flows ("
            << traffic::total_population(flows) << " potential customers)\n";

  // Pick a shop location in the "city" band (not the congested centre).
  const auto classes = trace::classify_intersections(net, flows);
  const auto city_nodes =
      trace::nodes_in_class(classes, trace::LocationClass::kCity);
  const graph::NodeId shop = city_nodes[rng.next_below(city_nodes.size())];
  std::cout << "shop at intersection " << shop << " ("
            << net.position(shop).x << ", " << net.position(shop).y << ") ft\n\n";

  // Compare placements under the linear utility with threshold D.
  const traffic::LinearUtility utility(d);
  const core::PlacementProblem problem(net, flows, shop, utility);

  const auto report = [&](const char* name, const core::PlacementResult& r) {
    std::cout << util::pad(name, -18) << util::pad(util::format_fixed(r.customers, 1), 10)
              << "  RAPs at:";
    for (const graph::NodeId v : r.nodes) std::cout << " " << v;
    std::cout << "\n";
  };
  std::cout << "expected customers/day with k=" << k << ", D=" << d << " ft\n";
  report("Algorithm 2", core::composite_greedy_placement(problem, k));
  report("Algorithm 1", core::greedy_coverage_placement(problem, k));
  report("MaxCustomers", core::max_customers_placement(problem, k));
  report("MaxVehicles", core::max_vehicles_placement(problem, k));
  report("MaxCardinality", core::max_cardinality_placement(problem, k));
  util::Rng random_rng(seed + 1);
  report("Random", core::random_placement(problem, k, random_rng));
  return 0;
}
