// Multi-shop extension (Section III-A / future work): a chain with several
// branches advertises with one shared RAP budget. A driver who receives the
// ad detours to whichever branch is cheapest from where they are, so the
// effective detour is the minimum over branches.
//
// The example compares: one downtown branch vs the same brand with an
// added eastside branch, under the same RAP budget — showing both the
// coverage gain and how the optimal RAP placement shifts.
//
// Run: ./multishop_expansion [--seed N] [--k N]
#include <iostream>

#include "src/citygen/partial_grid_city.h"
#include "src/core/composite_greedy.h"
#include "src/core/multishop.h"
#include "src/trace/flow_extractor.h"
#include "src/trace/generator.h"
#include "src/util/cli.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  using namespace rap;
  const util::CliFlags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));
  const auto k = static_cast<std::size_t>(flags.get_int("k", 6));

  // A Seattle-like partial grid, 10,000 ft across.
  util::Rng rng(seed);
  citygen::PartialGridSpec city_spec;
  city_spec.grid = {17, 17, 600.0, {0.0, 0.0}};
  city_spec.edge_removal_prob = 0.06;
  const citygen::PartialGridCity city(city_spec, rng);
  const graph::RoadNetwork& net = city.network();

  // Traffic flows from a synthetic trace.
  trace::TraceGenSpec trace_spec;
  trace_spec.num_journeys = 80;
  trace_spec.mean_runs_per_journey = 25.0;
  trace_spec.sample_spacing = 400.0;
  trace_spec.gps_noise = 70.0;
  trace_spec.passengers_per_vehicle = 200.0;
  trace_spec.alpha = 0.001;
  const auto day = trace::generate_trace(net, trace_spec, rng);
  const trace::MapMatcher matcher(net, 280.0);
  trace::ExtractionOptions extract;
  extract.passengers_per_vehicle = 200.0;
  extract.alpha = 0.001;
  const auto flows = trace::extract_flows(matcher, day.records, extract);
  std::cout << "city: " << net.num_nodes() << " intersections; "
            << flows.size() << " flows, "
            << traffic::total_population(flows) << " potential customers\n\n";

  // Branch locations: downtown (near the centre) and eastside.
  const geo::BBox bounds = net.bounds();
  const auto nearest = [&](geo::Point p) {
    graph::NodeId best = 0;
    for (graph::NodeId v = 0; v < net.num_nodes(); ++v) {
      if (geo::squared_distance(net.position(v), p) <
          geo::squared_distance(net.position(best), p)) {
        best = v;
      }
    }
    return best;
  };
  const graph::NodeId downtown = nearest(bounds.center());
  const graph::NodeId eastside =
      nearest({bounds.max().x - 600.0, bounds.center().y});
  std::cout << "downtown branch at intersection " << downtown
            << ", eastside branch at " << eastside << "\n\n";

  const traffic::LinearUtility utility(4'000.0);
  const auto report = [&](const char* name,
                          const std::vector<graph::NodeId>& shops) {
    const core::PlacementProblem problem =
        core::make_multishop_problem(net, flows, shops, utility);
    const core::PlacementResult result =
        core::composite_greedy_placement(problem, k);
    std::cout << util::pad(name, -34)
              << util::pad(util::format_fixed(result.customers, 1), 10)
              << "  RAPs:";
    for (const graph::NodeId v : result.nodes) std::cout << " " << v;
    std::cout << "\n";
  };

  std::cout << "expected customers/day with k=" << k
            << " RAPs (Algorithm 2, linear utility, D=4000 ft)\n";
  report("downtown only", {downtown});
  report("downtown + eastside", {downtown, eastside});
  report("eastside only", {eastside});
  std::cout << "\nOpening the second branch lets the same advertising "
               "budget attract more\ncustomers: drivers detour to whichever "
               "branch is cheaper from where they\nreceive the ad.\n";
  return 0;
}
