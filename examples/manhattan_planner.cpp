// Manhattan-grid planning (Section IV): a shop in the middle of a D x D
// grid region, boundary-to-boundary traffic flows that choose among their
// many shortest paths — and will reroute through a RAP for the free
// advertisement. Compares the two-stage Algorithms 3/4 against the general
// algorithms running on the same route-aware model, and prints the flow
// classification (straight / turned / other) driving the two-stage design.
//
// Run: ./manhattan_planner [--seed N] [--n GRID] [--k N] [--flows N]
#include <array>
#include <iostream>

#include "src/core/baselines.h"
#include "src/core/composite_greedy.h"
#include "src/core/greedy.h"
#include "src/manhattan/flow_class.h"
#include "src/manhattan/grid_model.h"
#include "src/manhattan/two_stage.h"
#include "src/util/cli.h"
#include "src/util/strings.h"

int main(int argc, char** argv) {
  using namespace rap;
  const util::CliFlags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));
  const auto n = static_cast<std::size_t>(flags.get_int("n", 11));
  const auto k = static_cast<std::size_t>(flags.get_int("k", 8));
  const auto flow_count = static_cast<std::size_t>(flags.get_int("flows", 80));

  // An n x n grid with 500 ft blocks; the shop sits at the centre.
  const manhattan::GridScenario scenario(n, 500.0);
  std::cout << "grid: " << n << " x " << n << " intersections, region side "
            << scenario.side() << " ft, shop at the centre\n";

  manhattan::GridFlowGenSpec gen;
  gen.count = flow_count;
  gen.mean_vehicles = 25.0;
  gen.passengers_per_vehicle = 200.0;
  gen.alpha = 0.001;
  util::Rng rng(seed);
  const auto flows = manhattan::generate_grid_flows(scenario, gen, rng);

  std::array<std::size_t, 3> class_counts{};
  for (const manhattan::GridFlow& flow : flows) {
    ++class_counts[static_cast<std::size_t>(
        manhattan::classify_grid_flow(scenario, flow))];
  }
  std::cout << "flows: " << flows.size() << " total — "
            << class_counts[0] << " straight, " << class_counts[1]
            << " turned, " << class_counts[2] << " other\n\n";

  // Route-aware coverage model: a RAP reaches a flow anywhere inside the
  // flow's shortest-path rectangle.
  const traffic::LinearUtility utility(scenario.side());
  const manhattan::GridCoverageModel model(scenario, flows, utility);

  const auto report = [&](const char* name, const core::PlacementResult& r) {
    std::cout << util::pad(name, -26)
              << util::pad(util::format_fixed(r.customers, 2), 10) << "  RAPs:";
    for (const graph::NodeId v : r.nodes) {
      const citygen::GridCoord c = scenario.city().coord_of(v);
      std::cout << " (" << c.col << "," << c.row << ")";
    }
    std::cout << "\n";
  };

  std::cout << "expected customers/day with k=" << k << ", linear utility\n";
  report("Algorithm 3 (corners)",
         manhattan::two_stage_grid_placement(
             model, k, manhattan::TwoStageVariant::kCorners));
  report("Algorithm 4 (midpoints)",
         manhattan::two_stage_grid_placement(
             model, k, manhattan::TwoStageVariant::kMidpoints));
  report("Algorithm 2 (composite)",
         core::composite_greedy_placement(model, k));
  report("Algorithm 1 (coverage)", core::greedy_coverage_placement(model, k));
  report("MaxCustomers", core::max_customers_placement(model, k));
  util::Rng random_rng(seed + 1);
  report("Random", core::random_placement(model, k, random_rng));

  std::cout << "\nNote how Algorithm 4 pulls its four anchor RAPs halfway "
               "toward the shop:\nunder a decreasing utility the corner "
               "detours are worth half as much as\nmid-distance ones "
               "(Theorem 4's 1/2 - 2/k bound).\n";
  return 0;
}
