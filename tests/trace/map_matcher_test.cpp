#include "src/trace/map_matcher.h"

#include <gtest/gtest.h>

#include "src/citygen/grid_city.h"
#include "src/graph/path.h"
#include "tests/testing/builders.h"

namespace rap::trace {
namespace {

std::vector<TraceRecord> records_at(std::initializer_list<geo::Point> points) {
  std::vector<TraceRecord> out;
  double t = 0.0;
  for (const geo::Point& p : points) {
    TraceRecord r;
    r.position = p;
    r.timestamp = t++;
    out.push_back(r);
  }
  return out;
}

TEST(MapMatcher, SnapFindsNearestWithinRadius) {
  const auto net = testing::line_network(5);  // nodes at x = 0..4
  const MapMatcher matcher(net, 0.4);
  EXPECT_EQ(matcher.snap({2.1, 0.1}).value(), 2u);
  EXPECT_EQ(matcher.snap({0.0, 0.0}).value(), 0u);
  EXPECT_FALSE(matcher.snap({2.5, 3.0}).has_value());  // too far
}

TEST(MapMatcher, RejectsBadRadius) {
  const auto net = testing::line_network(3);
  EXPECT_THROW(MapMatcher(net, 0.0), std::invalid_argument);
  EXPECT_THROW(MapMatcher(net, -1.0), std::invalid_argument);
}

TEST(MapMatcher, MatchRunSimplePath) {
  const auto net = testing::line_network(5);
  const MapMatcher matcher(net, 0.4);
  const auto run = records_at({{0.05, 0.0}, {1.1, 0.05}, {2.0, -0.1}, {3.05, 0.0}});
  EXPECT_EQ(matcher.match_run(run), (std::vector<graph::NodeId>{0, 1, 2, 3}));
}

TEST(MapMatcher, CollapsesConsecutiveDuplicates) {
  const auto net = testing::line_network(5);
  const MapMatcher matcher(net, 0.4);
  const auto run = records_at({{1.0, 0.0}, {1.05, 0.0}, {0.95, 0.0}, {2.0, 0.0}});
  EXPECT_EQ(matcher.match_run(run), (std::vector<graph::NodeId>{1, 2}));
}

TEST(MapMatcher, StitchesGapsWithShortestPaths) {
  const auto net = testing::line_network(6);
  const MapMatcher matcher(net, 0.4);
  // Samples only at nodes 0 and 4: the matcher must insert 1, 2, 3.
  const auto run = records_at({{0.0, 0.0}, {4.0, 0.0}});
  EXPECT_EQ(matcher.match_run(run),
            (std::vector<graph::NodeId>{0, 1, 2, 3, 4}));
}

TEST(MapMatcher, SkipsOutliers) {
  const auto net = testing::line_network(5);
  const MapMatcher matcher(net, 0.4);
  // The middle sample is garbage (far off the map) and must be ignored.
  const auto run = records_at({{1.0, 0.0}, {2.5, 50.0}, {2.0, 0.0}});
  EXPECT_EQ(matcher.match_run(run), (std::vector<graph::NodeId>{1, 2}));
}

TEST(MapMatcher, EmptyWhenNothingSnaps) {
  const auto net = testing::line_network(3);
  const MapMatcher matcher(net, 0.2);
  const auto run = records_at({{10.0, 10.0}, {11.0, 10.0}});
  EXPECT_TRUE(matcher.match_run(run).empty());
}

TEST(MapMatcher, EmptyWhenDisconnected) {
  graph::RoadNetwork net;
  net.add_node({0.0, 0.0});
  net.add_node({10.0, 0.0});  // no edge between them
  const MapMatcher matcher(net, 0.5);
  const auto run = records_at({{0.0, 0.0}, {10.0, 0.0}});
  EXPECT_TRUE(matcher.match_run(run).empty());
}

TEST(MapMatcher, ResultIsAlwaysAWalk) {
  const citygen::GridCity city({6, 6, 100.0, {0.0, 0.0}});
  const MapMatcher matcher(city.network(), 45.0);
  util::Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<TraceRecord> run;
    double t = 0.0;
    for (int i = 0; i < 10; ++i) {
      TraceRecord r;
      r.position = {rng.next_double(0.0, 500.0), rng.next_double(0.0, 500.0)};
      r.timestamp = t++;
      run.push_back(r);
    }
    const auto walk = matcher.match_run(run);
    if (!walk.empty()) {
      EXPECT_TRUE(graph::is_walk(city.network(), walk));
    }
  }
}

TEST(MapMatcher, RespectsOneWayStreetsWhenStitching) {
  graph::RoadNetwork net;
  const auto a = net.add_node({0.0, 0.0});
  const auto b = net.add_node({1.0, 0.0});
  const auto c = net.add_node({0.5, 1.0});
  net.add_edge(a, b, 1.0);
  net.add_edge(b, c, 1.0);
  net.add_edge(c, a, 1.0);  // one-way triangle
  const MapMatcher matcher(net, 0.3);
  // From b back to a the only route is via c.
  const auto run = records_at({{1.0, 0.0}, {0.0, 0.0}});
  EXPECT_EQ(matcher.match_run(run), (std::vector<graph::NodeId>{b, c, a}));
}

TEST(MapMatcher, EmptyRunMatchesToNothing) {
  const graph::RoadNetwork net = testing::line_network(3);
  const MapMatcher matcher(net, 0.4);
  EXPECT_TRUE(matcher.match_run({}).empty());
}

TEST(MapMatcher, SinglePointRunSnapsToOneIntersection) {
  const graph::RoadNetwork net = testing::line_network(3);
  const MapMatcher matcher(net, 0.4);
  const auto records = records_at({{1.1, 0.05}});
  EXPECT_EQ(matcher.match_run(records),
            (std::vector<graph::NodeId>{1}));
}

TEST(MapMatcher, RunEntirelyOutsideNetworkMatchesToNothing) {
  const graph::RoadNetwork net = testing::line_network(3);
  const MapMatcher matcher(net, 0.4);
  const auto records = records_at({{50.0, 50.0}, {51.0, 50.0}, {52.0, 50.0}});
  EXPECT_TRUE(matcher.match_run(records).empty());
}

}  // namespace
}  // namespace rap::trace
