#include "src/trace/flow_extractor.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/citygen/grid_city.h"
#include "src/trace/generator.h"

namespace rap::trace {
namespace {

graph::RoadNetwork test_city() {
  return citygen::GridCity({8, 8, 500.0, {0.0, 0.0}}).network();
}

TraceGenSpec gen_spec() {
  TraceGenSpec spec;
  spec.num_journeys = 12;
  spec.mean_runs_per_journey = 6.0;
  spec.sample_spacing = 250.0;
  spec.gps_noise = 40.0;
  spec.drop_prob = 0.05;
  spec.passengers_per_vehicle = 100.0;
  spec.alpha = 0.001;
  return spec;
}

class ExtractionPipeline : public ::testing::Test {
 protected:
  ExtractionPipeline() : net_(test_city()), matcher_(net_, 220.0) {
    util::Rng rng(17);
    trace_ = generate_trace(net_, gen_spec(), rng);
  }

  graph::RoadNetwork net_;
  MapMatcher matcher_;
  SyntheticTrace trace_;
};

TEST_F(ExtractionPipeline, RecoversEveryPlantedJourney) {
  const auto flows = extract_flows(matcher_, trace_.records);
  EXPECT_EQ(flows.size(), trace_.planted_flows.size());
}

TEST_F(ExtractionPipeline, RecoversVehicleCounts) {
  const auto flows = extract_flows(matcher_, trace_.records);
  ASSERT_EQ(flows.size(), trace_.planted_flows.size());
  double planted_total = 0.0;
  double extracted_total = 0.0;
  for (const auto& f : trace_.planted_flows) planted_total += f.daily_vehicles;
  for (const auto& f : flows) extracted_total += f.daily_vehicles;
  // A handful of runs may fail to match; the totals must be close.
  EXPECT_GE(extracted_total, 0.9 * planted_total);
  EXPECT_LE(extracted_total, planted_total);
}

TEST_F(ExtractionPipeline, RecoversEndpointsApproximately) {
  const auto flows = extract_flows(matcher_, trace_.records);
  // Flows are emitted in journey-id order, matching planted order.
  ASSERT_EQ(flows.size(), trace_.planted_flows.size());
  std::size_t exact_endpoints = 0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    exact_endpoints += flows[i].origin == trace_.planted_flows[i].origin &&
                       flows[i].destination == trace_.planted_flows[i].destination;
  }
  // GPS noise can shift an endpoint to an adjacent intersection; most must
  // survive exactly.
  EXPECT_GE(exact_endpoints, flows.size() * 3 / 4);
}

TEST_F(ExtractionPipeline, ExtractedPathsAreValidFlows) {
  for (const auto& flow : extract_flows(matcher_, trace_.records)) {
    EXPECT_NO_THROW(traffic::validate_flow(net_, flow));
    EXPECT_GE(flow.path.size(), 2u);
  }
}

TEST_F(ExtractionPipeline, OptionsArePropagated) {
  ExtractionOptions options;
  options.passengers_per_vehicle = 200.0;
  options.alpha = 0.01;
  for (const auto& flow : extract_flows(matcher_, trace_.records, options)) {
    EXPECT_DOUBLE_EQ(flow.passengers_per_vehicle, 200.0);
    EXPECT_DOUBLE_EQ(flow.alpha, 0.01);
  }
}

TEST_F(ExtractionPipeline, MinRunsFiltersSparseJourneys) {
  ExtractionOptions strict;
  strict.min_runs = 1000;  // nothing has this many runs
  EXPECT_TRUE(extract_flows(matcher_, trace_.records, strict).empty());
}

TEST(ExtractFlows, EmptyRecords) {
  const auto net = test_city();
  const MapMatcher matcher(net, 200.0);
  EXPECT_TRUE(extract_flows(matcher, {}).empty());
}

TEST(ExtractFlows, RejectsBadOptions) {
  const auto net = test_city();
  const MapMatcher matcher(net, 200.0);
  ExtractionOptions bad;
  bad.passengers_per_vehicle = 0.0;
  EXPECT_THROW(extract_flows(matcher, {}, bad), std::invalid_argument);
  bad = {};
  bad.alpha = 2.0;
  EXPECT_THROW(extract_flows(matcher, {}, bad), std::invalid_argument);
}

TEST(ExtractFlows, RejectsUnsortedRecords) {
  const auto net = test_city();
  const MapMatcher matcher(net, 200.0);
  std::vector<TraceRecord> records(2);
  records[0].journey_id = 1;
  records[1].journey_id = 0;
  EXPECT_THROW(extract_flows(matcher, records), std::invalid_argument);
}

TEST(ExtractFlows, PicksMostFrequentWalk) {
  // Three runs of journey 0: two along the bottom row, one detouring.
  const citygen::GridCity city({3, 2, 1.0, {0.0, 0.0}});
  const MapMatcher matcher(city.network(), 0.3);
  std::vector<TraceRecord> records;
  const auto add_run = [&](std::uint32_t run, std::vector<geo::Point> pts) {
    double t = 0.0;
    for (const geo::Point& p : pts) {
      TraceRecord r;
      r.journey_id = 0;
      r.run_id = run;
      r.timestamp = t++;
      r.position = p;
      records.push_back(r);
    }
  };
  add_run(0, {{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}});
  add_run(1, {{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}});
  add_run(2, {{0.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}, {2.0, 1.0}, {2.0, 0.0}});
  sort_records(records);
  const auto flows = extract_flows(matcher, records);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].path,
            (std::vector<graph::NodeId>{city.node_at(0, 0), city.node_at(1, 0),
                                        city.node_at(2, 0)}));
  EXPECT_DOUBLE_EQ(flows[0].daily_vehicles, 3.0);  // all matched runs counted
}

}  // namespace
}  // namespace rap::trace
