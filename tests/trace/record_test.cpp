#include "src/trace/record.h"

#include <gtest/gtest.h>

namespace rap::trace {
namespace {

TraceRecord make(std::uint32_t journey, std::uint32_t run, double t) {
  TraceRecord r;
  r.journey_id = journey;
  r.run_id = run;
  r.timestamp = t;
  return r;
}

TEST(SortRecords, OrdersByJourneyRunTime) {
  std::vector<TraceRecord> records{
      make(1, 0, 5.0), make(0, 1, 0.0), make(0, 0, 3.0),
      make(0, 0, 1.0), make(1, 0, 2.0),
  };
  sort_records(records);
  EXPECT_EQ(records[0].journey_id, 0u);
  EXPECT_EQ(records[0].run_id, 0u);
  EXPECT_DOUBLE_EQ(records[0].timestamp, 1.0);
  EXPECT_DOUBLE_EQ(records[1].timestamp, 3.0);
  EXPECT_EQ(records[2].run_id, 1u);
  EXPECT_EQ(records[3].journey_id, 1u);
  EXPECT_DOUBLE_EQ(records[3].timestamp, 2.0);
}

TEST(SplitRuns, GroupsByJourneyAndRun) {
  std::vector<TraceRecord> records{
      make(0, 0, 0.0), make(0, 0, 1.0), make(0, 1, 0.0),
      make(1, 2, 0.0), make(1, 2, 1.0), make(1, 2, 2.0),
  };
  const auto runs = split_runs(records);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].journey_id, 0u);
  EXPECT_EQ(runs[0].run_id, 0u);
  EXPECT_EQ(runs[0].records.size(), 2u);
  EXPECT_EQ(runs[1].run_id, 1u);
  EXPECT_EQ(runs[1].records.size(), 1u);
  EXPECT_EQ(runs[2].journey_id, 1u);
  EXPECT_EQ(runs[2].records.size(), 3u);
}

TEST(SplitRuns, EmptyInput) {
  EXPECT_TRUE(split_runs({}).empty());
}

TEST(SplitRuns, SingleRecord) {
  const std::vector<TraceRecord> records{make(3, 7, 1.0)};
  const auto runs = split_runs(records);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].journey_id, 3u);
  EXPECT_EQ(runs[0].run_id, 7u);
}

TEST(SplitRuns, RejectsUnsortedInput) {
  const std::vector<TraceRecord> records{make(1, 0, 0.0), make(0, 0, 0.0)};
  EXPECT_THROW(split_runs(records), std::invalid_argument);
}

TEST(SplitRuns, SameRunIdDifferentJourneySplits) {
  const std::vector<TraceRecord> records{make(0, 5, 0.0), make(1, 5, 0.0)};
  const auto runs = split_runs(records);
  EXPECT_EQ(runs.size(), 2u);
}

TEST(SplitRuns, ViewsCoverAllRecords) {
  std::vector<TraceRecord> records;
  for (std::uint32_t j = 0; j < 4; ++j) {
    for (std::uint32_t r = 0; r < 3; ++r) {
      for (int t = 0; t < 5; ++t) {
        records.push_back(make(j, j * 3 + r, t));
      }
    }
  }
  sort_records(records);
  const auto runs = split_runs(records);
  std::size_t total = 0;
  for (const RunView& run : runs) total += run.records.size();
  EXPECT_EQ(total, records.size());
  EXPECT_EQ(runs.size(), 12u);
}

}  // namespace
}  // namespace rap::trace
