#include "src/trace/classify.h"

#include <gtest/gtest.h>

#include "tests/testing/builders.h"

namespace rap::trace {
namespace {

traffic::TrafficFlow line_flow(graph::NodeId from, graph::NodeId to,
                               double vehicles) {
  traffic::TrafficFlow flow;
  flow.origin = from;
  flow.destination = to;
  for (graph::NodeId v = from; v <= to; ++v) flow.path.push_back(v);
  flow.daily_vehicles = vehicles;
  return flow;
}

TEST(PassingVehicles, SumsFlowsPerNode) {
  const auto net = testing::line_network(5);
  const std::vector<traffic::TrafficFlow> flows{
      line_flow(0, 2, 10.0),
      line_flow(1, 4, 5.0),
  };
  const auto vehicles = passing_vehicles_per_node(net, flows);
  EXPECT_DOUBLE_EQ(vehicles[0], 10.0);
  EXPECT_DOUBLE_EQ(vehicles[1], 15.0);
  EXPECT_DOUBLE_EQ(vehicles[2], 15.0);
  EXPECT_DOUBLE_EQ(vehicles[3], 5.0);
  EXPECT_DOUBLE_EQ(vehicles[4], 5.0);
}

TEST(PassingVehicles, FlowCountedOncePerNodeEvenIfRevisited) {
  const auto net = testing::line_network(4);
  traffic::TrafficFlow flow;
  flow.origin = 0;
  flow.destination = 1;
  flow.path = {0, 1, 2, 1};
  flow.daily_vehicles = 7.0;
  const auto vehicles = passing_vehicles_per_node(net, {flow});
  EXPECT_DOUBLE_EQ(vehicles[1], 7.0);
}

TEST(Classify, PartitionsByTraffic) {
  const auto net = testing::line_network(10);
  // Node 4..5 carry the most traffic (both flows), ends carry least.
  const std::vector<traffic::TrafficFlow> flows{
      line_flow(0, 5, 10.0),
      line_flow(4, 9, 10.0),
      line_flow(3, 6, 5.0),
  };
  ClassifyOptions options;
  options.center_fraction = 0.2;
  options.city_fraction = 0.4;
  const auto classes = classify_intersections(net, flows, options);
  ASSERT_EQ(classes.size(), 10u);
  // Nodes 4, 5 have 25 vehicles each -> the top 20% of 10 ranked nodes.
  EXPECT_EQ(classes[4], LocationClass::kCityCenter);
  EXPECT_EQ(classes[5], LocationClass::kCityCenter);
  // City band (next 40%): nodes 3, 6 (15 vehicles), then the lowest-id
  // 10-vehicle nodes 0, 1.
  EXPECT_EQ(classes[3], LocationClass::kCity);
  EXPECT_EQ(classes[6], LocationClass::kCity);
  EXPECT_EQ(classes[0], LocationClass::kCity);
  // The remaining 10-vehicle nodes fall to suburb.
  EXPECT_EQ(classes[2], LocationClass::kSuburb);
  EXPECT_EQ(classes[9], LocationClass::kSuburb);
}

TEST(Classify, TrafficFreeNodesAreSuburb) {
  const auto net = testing::line_network(6);
  const std::vector<traffic::TrafficFlow> flows{line_flow(0, 2, 5.0)};
  const auto classes = classify_intersections(net, flows);
  EXPECT_EQ(classes[4], LocationClass::kSuburb);
  EXPECT_EQ(classes[5], LocationClass::kSuburb);
}

TEST(Classify, NoFlowsMakesEverythingSuburb) {
  const auto net = testing::line_network(4);
  const auto classes = classify_intersections(net, {});
  for (const LocationClass c : classes) {
    EXPECT_EQ(c, LocationClass::kSuburb);
  }
}

TEST(Classify, AllThreeClassesPresentOnRichWorkload) {
  util::Rng rng(21);
  const auto net = testing::random_network(6, 6, 8, rng);
  const auto flows = testing::random_flows(net, 40, rng);
  const auto classes = classify_intersections(net, flows);
  EXPECT_FALSE(nodes_in_class(classes, LocationClass::kCityCenter).empty());
  EXPECT_FALSE(nodes_in_class(classes, LocationClass::kCity).empty());
  EXPECT_FALSE(nodes_in_class(classes, LocationClass::kSuburb).empty());
}

TEST(Classify, CenterHasMoreTrafficThanSuburb) {
  util::Rng rng(23);
  const auto net = testing::random_network(6, 6, 8, rng);
  const auto flows = testing::random_flows(net, 40, rng);
  const auto vehicles = passing_vehicles_per_node(net, flows);
  const auto classes = classify_intersections(net, flows);
  double min_center = 1e18;
  double max_suburb = 0.0;
  for (graph::NodeId v = 0; v < net.num_nodes(); ++v) {
    if (classes[v] == LocationClass::kCityCenter) {
      min_center = std::min(min_center, vehicles[v]);
    } else if (classes[v] == LocationClass::kSuburb) {
      max_suburb = std::max(max_suburb, vehicles[v]);
    }
  }
  EXPECT_GE(min_center, max_suburb);
}

TEST(Classify, RejectsBadFractions) {
  const auto net = testing::line_network(3);
  ClassifyOptions bad;
  bad.center_fraction = -0.1;
  EXPECT_THROW(classify_intersections(net, {}, bad), std::invalid_argument);
  bad = {};
  bad.center_fraction = 0.7;
  bad.city_fraction = 0.7;
  EXPECT_THROW(classify_intersections(net, {}, bad), std::invalid_argument);
}

TEST(NodesInClass, FiltersCorrectly) {
  const std::vector<LocationClass> classes{
      LocationClass::kCity, LocationClass::kSuburb, LocationClass::kCity};
  EXPECT_EQ(nodes_in_class(classes, LocationClass::kCity),
            (std::vector<graph::NodeId>{0, 2}));
  EXPECT_EQ(nodes_in_class(classes, LocationClass::kCityCenter),
            std::vector<graph::NodeId>{});
}

TEST(ToString, CoversAllClasses) {
  EXPECT_STREQ(to_string(LocationClass::kCityCenter), "city-center");
  EXPECT_STREQ(to_string(LocationClass::kCity), "city");
  EXPECT_STREQ(to_string(LocationClass::kSuburb), "suburb");
}

}  // namespace
}  // namespace rap::trace
