#include "src/trace/io.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "src/trace/generator.h"
#include "tests/testing/builders.h"

namespace rap::trace {
namespace {

std::vector<TraceRecord> sample_records() {
  std::vector<TraceRecord> records(3);
  records[0] = {1, 10, 100, 0.5, {12.25, -3.5}};
  records[1] = {1, 10, 100, 1.5, {14.0, -2.0}};
  records[2] = {2, 11, 101, 0.0, {0.0, 0.0}};
  return records;
}

TEST(RecordsCsv, RoundTrip) {
  const auto records = sample_records();
  const auto parsed = records_from_csv(records_to_csv(records));
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(parsed[i].vehicle_id, records[i].vehicle_id);
    EXPECT_EQ(parsed[i].journey_id, records[i].journey_id);
    EXPECT_EQ(parsed[i].run_id, records[i].run_id);
    EXPECT_NEAR(parsed[i].timestamp, records[i].timestamp, 1e-3);
    EXPECT_NEAR(parsed[i].position.x, records[i].position.x, 1e-3);
    EXPECT_NEAR(parsed[i].position.y, records[i].position.y, 1e-3);
  }
}

TEST(RecordsCsv, HeaderOnly) {
  const auto parsed = records_from_csv(records_to_csv({}));
  EXPECT_TRUE(parsed.empty());
}

TEST(RecordsCsv, RejectsBadInput) {
  EXPECT_THROW(records_from_csv(""), std::invalid_argument);
  EXPECT_THROW(records_from_csv("wrong,header\n"), std::invalid_argument);
  const std::string good_header = "vehicle_id,journey_id,run_id,timestamp,x,y\n";
  EXPECT_THROW(records_from_csv(good_header + "1,2,3\n"),
               std::invalid_argument);
  EXPECT_THROW(records_from_csv(good_header + "a,2,3,0.0,1.0,2.0\n"),
               std::invalid_argument);
  EXPECT_THROW(records_from_csv(good_header + "1,2,3,zz,1.0,2.0\n"),
               std::invalid_argument);
}

TEST(RecordsCsv, FileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "rap_trace_io";
  std::filesystem::remove_all(dir);
  const auto path = dir / "records.csv";
  write_records_csv(path, sample_records());
  const auto parsed = read_records_csv(path);
  EXPECT_EQ(parsed.size(), 3u);
  std::filesystem::remove_all(dir);
}

TEST(RecordsCsv, MissingFileThrows) {
  EXPECT_THROW(read_records_csv("/nonexistent/rap/records.csv"),
               std::runtime_error);
}

TEST(FlowsCsv, RoundTripPreservesEverything) {
  const auto net = testing::line_network(6);
  std::vector<traffic::TrafficFlow> flows;
  flows.push_back(traffic::make_shortest_path_flow(net, 0, 4, 12.0, 100.0, 0.001));
  flows.push_back(traffic::make_shortest_path_flow(net, 5, 2, 3.0, 200.0, 0.01));
  const auto parsed = flows_from_csv(net, flows_to_csv(flows));
  ASSERT_EQ(parsed.size(), 2u);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ(parsed[i].origin, flows[i].origin);
    EXPECT_EQ(parsed[i].destination, flows[i].destination);
    EXPECT_EQ(parsed[i].path, flows[i].path);
    EXPECT_NEAR(parsed[i].daily_vehicles, flows[i].daily_vehicles, 1e-6);
    EXPECT_NEAR(parsed[i].passengers_per_vehicle,
                flows[i].passengers_per_vehicle, 1e-6);
    EXPECT_NEAR(parsed[i].alpha, flows[i].alpha, 1e-9);
  }
}

TEST(FlowsCsv, ValidatesAgainstNetwork) {
  const auto net = testing::line_network(3);
  const std::string header =
      "origin,destination,daily_vehicles,passengers_per_vehicle,alpha,path\n";
  // Path skips a node: not a walk on this network.
  EXPECT_THROW(flows_from_csv(net, header + "0,2,1,1,0.5,0|2\n"),
               std::invalid_argument);
  // Bad node id.
  EXPECT_THROW(flows_from_csv(net, header + "0,9,1,1,0.5,0|9\n"),
               std::invalid_argument);
}

TEST(FlowsCsv, ErrorsNameSourceAndLine) {
  const graph::RoadNetwork net = testing::line_network(3);
  const std::string header =
      "origin,destination,daily_vehicles,passengers_per_vehicle,alpha,path\n";
  // Truncated row (too few fields) on line 3.
  try {
    flows_from_csv(net, header + "0,2,1,1,0.5,0|1|2\n0,2,1\n", "flows.csv");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("flows.csv:3"), std::string::npos)
        << error.what();
  }
  // Garbage number on line 2.
  try {
    flows_from_csv(net, header + "0,2,x,1,0.5,0|1|2\n", "flows.csv");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("flows.csv:2"), std::string::npos)
        << error.what();
  }
}

TEST(FlowsCsv, FileRoundTrip) {
  const auto net = testing::line_network(5);
  std::vector<traffic::TrafficFlow> flows;
  flows.push_back(traffic::make_shortest_path_flow(net, 0, 4, 7.0));
  const auto dir = std::filesystem::temp_directory_path() / "rap_flow_io";
  std::filesystem::remove_all(dir);
  const auto path = dir / "flows.csv";
  write_flows_csv(path, flows);
  const auto parsed = read_flows_csv(net, path);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].path, flows[0].path);
  std::filesystem::remove_all(dir);
}

TEST(TraceIo, GeneratedTraceSurvivesRoundTrip) {
  // The full circle: generate -> serialize -> parse -> identical pipeline
  // inputs (sorted order preserved).
  util::Rng net_rng(1);
  const auto net = testing::random_network(6, 6, 6, net_rng);
  TraceGenSpec spec;
  spec.num_journeys = 5;
  spec.mean_runs_per_journey = 3.0;
  spec.sample_spacing = 0.8;
  spec.gps_noise = 0.05;
  util::Rng rng(2);
  const SyntheticTrace trace = generate_trace(net, spec, rng);
  const auto parsed = records_from_csv(records_to_csv(trace.records));
  ASSERT_EQ(parsed.size(), trace.records.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].journey_id, trace.records[i].journey_id);
    EXPECT_EQ(parsed[i].run_id, trace.records[i].run_id);
  }
}

}  // namespace
}  // namespace rap::trace
