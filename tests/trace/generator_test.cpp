#include "src/trace/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "src/citygen/grid_city.h"
#include "src/geo/bbox.h"
#include "src/graph/path.h"

namespace rap::trace {
namespace {

graph::RoadNetwork test_city() {
  return citygen::GridCity({10, 10, 500.0, {0.0, 0.0}}).network();
}

TraceGenSpec small_spec() {
  TraceGenSpec spec;
  spec.num_journeys = 10;
  spec.mean_runs_per_journey = 5.0;
  spec.sample_spacing = 300.0;
  spec.gps_noise = 30.0;
  spec.drop_prob = 0.05;
  return spec;
}

TEST(GenerateTrace, PlantsRequestedJourneys) {
  const auto net = test_city();
  util::Rng rng(1);
  const SyntheticTrace trace = generate_trace(net, small_spec(), rng);
  EXPECT_EQ(trace.planted_flows.size(), 10u);
  EXPECT_FALSE(trace.records.empty());
}

TEST(GenerateTrace, PlantedFlowsAreValidShortestPaths) {
  const auto net = test_city();
  util::Rng rng(2);
  const SyntheticTrace trace = generate_trace(net, small_spec(), rng);
  for (const auto& flow : trace.planted_flows) {
    EXPECT_NO_THROW(traffic::validate_flow(net, flow));
    EXPECT_TRUE(graph::is_shortest_path(net, flow.path));
    EXPECT_GE(flow.daily_vehicles, 1.0);
    EXPECT_DOUBLE_EQ(flow.passengers_per_vehicle, 100.0);
    EXPECT_DOUBLE_EQ(flow.alpha, 0.001);
  }
}

TEST(GenerateTrace, RecordsSortedAndRunCountsMatch) {
  const auto net = test_city();
  util::Rng rng(3);
  const SyntheticTrace trace = generate_trace(net, small_spec(), rng);
  const auto runs = split_runs(trace.records);  // throws if unsorted
  // Number of runs equals the sum of planted vehicle counts (no run loses
  // every sample at drop_prob = 0.05 with these path lengths).
  double planted = 0.0;
  for (const auto& flow : trace.planted_flows) planted += flow.daily_vehicles;
  EXPECT_EQ(static_cast<double>(runs.size()), planted);
}

TEST(GenerateTrace, RunIdsAreGloballyUnique) {
  const auto net = test_city();
  util::Rng rng(4);
  const SyntheticTrace trace = generate_trace(net, small_spec(), rng);
  std::set<std::uint32_t> run_ids;
  for (const auto& run : split_runs(trace.records)) {
    EXPECT_TRUE(run_ids.insert(run.run_id).second);
  }
}

TEST(GenerateTrace, SamplesNearThePath) {
  const auto net = test_city();
  TraceGenSpec spec = small_spec();
  spec.gps_noise = 20.0;
  util::Rng rng(5);
  const SyntheticTrace trace = generate_trace(net, spec, rng);
  // Every record should be within a few noise sigmas of its journey's path.
  for (const auto& run : split_runs(trace.records)) {
    const auto& path = trace.planted_flows[run.journey_id].path;
    for (const TraceRecord& record : run.records) {
      double best = 1e18;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        best = std::min(best, geo::project_onto_segment(
                                  record.position, net.position(path[i]),
                                  net.position(path[i + 1]))
                                  .distance);
      }
      EXPECT_LT(best, 6.0 * spec.gps_noise);
    }
  }
}

TEST(GenerateTrace, TimestampsIncreaseWithinRun) {
  const auto net = test_city();
  util::Rng rng(6);
  const SyntheticTrace trace = generate_trace(net, small_spec(), rng);
  for (const auto& run : split_runs(trace.records)) {
    for (std::size_t i = 1; i < run.records.size(); ++i) {
      EXPECT_GT(run.records[i].timestamp, run.records[i - 1].timestamp);
    }
  }
}

TEST(GenerateTrace, DropProbReducesRecordCount) {
  const auto net = test_city();
  TraceGenSpec keep = small_spec();
  keep.drop_prob = 0.0;
  TraceGenSpec lossy = small_spec();
  lossy.drop_prob = 0.5;
  util::Rng rng1(7);
  util::Rng rng2(7);
  const auto full = generate_trace(net, keep, rng1);
  const auto dropped = generate_trace(net, lossy, rng2);
  EXPECT_LT(dropped.records.size(), full.records.size());
}

TEST(GenerateTrace, DeterministicForSameSeed) {
  const auto net = test_city();
  util::Rng rng1(42);
  util::Rng rng2(42);
  const auto a = generate_trace(net, small_spec(), rng1);
  const auto b = generate_trace(net, small_spec(), rng2);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].position, b.records[i].position);
    EXPECT_EQ(a.records[i].run_id, b.records[i].run_id);
  }
}

TEST(GenerateTrace, MinTripFractionEnforced) {
  const auto net = test_city();
  TraceGenSpec spec = small_spec();
  spec.min_trip_fraction = 0.5;
  util::Rng rng(8);
  const auto trace = generate_trace(net, spec, rng);
  const geo::BBox box = net.bounds();
  const double min_sep = 0.5 * std::hypot(box.width(), box.height());
  for (const auto& flow : trace.planted_flows) {
    EXPECT_GE(euclidean_distance(net.position(flow.origin),
                                 net.position(flow.destination)),
              min_sep);
  }
}

TEST(GenerateTrace, ValidatesSpec) {
  const auto net = test_city();
  util::Rng rng(1);
  TraceGenSpec bad = small_spec();
  bad.num_journeys = 0;
  EXPECT_THROW(generate_trace(net, bad, rng), std::invalid_argument);
  bad = small_spec();
  bad.sample_spacing = 0.0;
  EXPECT_THROW(generate_trace(net, bad, rng), std::invalid_argument);
  bad = small_spec();
  bad.drop_prob = 1.0;
  EXPECT_THROW(generate_trace(net, bad, rng), std::invalid_argument);
  bad = small_spec();
  bad.speed = 0.0;
  EXPECT_THROW(generate_trace(net, bad, rng), std::invalid_argument);
  bad = small_spec();
  bad.gps_noise = -1.0;
  EXPECT_THROW(generate_trace(net, bad, rng), std::invalid_argument);
}

TEST(GenerateTrace, TinyNetworkRejected) {
  graph::RoadNetwork net;
  net.add_node({0.0, 0.0});
  util::Rng rng(1);
  EXPECT_THROW(generate_trace(net, small_spec(), rng), std::invalid_argument);
}

}  // namespace
}  // namespace rap::trace
