#include "src/core/filtered.h"

#include <gtest/gtest.h>

#include "src/core/evaluator.h"
#include "src/core/greedy.h"
#include "tests/testing/builders.h"

namespace rap::core {
namespace {

using testing::Fig4;

class FilteredFig4 : public ::testing::Test {
 protected:
  FilteredFig4()
      : utility_(Fig4::threshold),
        problem_(fig_.net, fig_.flows, Fig4::shop, utility_) {}

  Fig4 fig_;
  traffic::ThresholdUtility utility_;
  PlacementProblem problem_;
};

TEST_F(FilteredFig4, AllActiveEqualsBase) {
  const FilteredCoverageModel filtered(problem_, std::vector<bool>(4, true));
  for (graph::NodeId v = 0; v < 6; ++v) {
    EXPECT_EQ(filtered.reach_at(v).size(), problem_.reach_at(v).size());
    EXPECT_EQ(filtered.passing_flow_count(v), problem_.passing_flow_count(v));
  }
  const Placement nodes{Fig4::V3, Fig4::V5};
  EXPECT_DOUBLE_EQ(evaluate_placement(filtered, nodes),
                   evaluate_placement(problem_, nodes));
}

TEST_F(FilteredFig4, NoneActiveIsZero) {
  const FilteredCoverageModel filtered(problem_, std::vector<bool>(4, false));
  const Placement nodes{Fig4::V3, Fig4::V5};
  EXPECT_DOUBLE_EQ(evaluate_placement(filtered, nodes), 0.0);
  for (graph::NodeId v = 0; v < 6; ++v) {
    EXPECT_TRUE(filtered.reach_at(v).empty());
  }
}

TEST_F(FilteredFig4, SubsetCountsOnlyActiveFlows) {
  // Keep only T(2,5) (index 0).
  std::vector<bool> mask(4, false);
  mask[0] = true;
  const FilteredCoverageModel filtered(problem_, mask);
  const Placement nodes{Fig4::V3, Fig4::V5};
  EXPECT_DOUBLE_EQ(evaluate_placement(filtered, nodes), 6.0);
  EXPECT_EQ(filtered.passing_flow_count(Fig4::V3), 1u);
  EXPECT_DOUBLE_EQ(filtered.customers(1, 0.0), 0.0);  // masked flow
  EXPECT_DOUBLE_EQ(filtered.customers(0, 0.0), 6.0);
}

TEST_F(FilteredFig4, FlowIndicesPreserved) {
  std::vector<bool> mask(4, false);
  mask[2] = true;  // T(4,3)
  const FilteredCoverageModel filtered(problem_, mask);
  EXPECT_EQ(filtered.num_flows(), 4u);
  const auto at_v3 = filtered.reach_at(Fig4::V3);
  ASSERT_EQ(at_v3.size(), 1u);
  EXPECT_EQ(at_v3[0].flow, 2u);
}

TEST_F(FilteredFig4, MetadataForwarded) {
  const FilteredCoverageModel filtered(problem_, std::vector<bool>(4, true));
  EXPECT_EQ(&filtered.network(), &problem_.network());
  EXPECT_EQ(&filtered.utility(), &problem_.utility());
  EXPECT_EQ(filtered.shop(), problem_.shop());
  EXPECT_DOUBLE_EQ(filtered.passing_vehicles(Fig4::V3), 15.0);
}

TEST_F(FilteredFig4, SizeMismatchThrows) {
  EXPECT_THROW(FilteredCoverageModel(problem_, std::vector<bool>(3, true)),
               std::invalid_argument);
}

TEST_F(FilteredFig4, CustomersBoundsChecked) {
  const FilteredCoverageModel filtered(problem_, std::vector<bool>(4, true));
  EXPECT_THROW(filtered.customers(4, 0.0), std::out_of_range);
}

TEST_F(FilteredFig4, GreedyOnFilteredModelIgnoresMaskedFlows) {
  // Mask out everything except T(5,6): the greedy must place at V5 (the
  // only node covering it within D).
  std::vector<bool> mask(4, false);
  mask[3] = true;
  const FilteredCoverageModel filtered(problem_, mask);
  const PlacementResult result = greedy_coverage_placement(filtered, 2);
  EXPECT_EQ(result.nodes, Placement{Fig4::V5});
  EXPECT_DOUBLE_EQ(result.customers, 2.0);
}

}  // namespace
}  // namespace rap::core
