// End-to-end reproduction of the paper's Fig. 4 worked example and the
// Section III-C discussion built on it. These are the paper's own numbers:
//   * threshold utility, k = 2, D = 6: Algorithm 1 places V3 then V5;
//   * linear utility: {V3, V5} attracts 5 drivers, {V2, V4} attracts 8
//     (the optimum), and the naive marginal greedy gets stuck at 7;
//   * Algorithm 2 also reaches 7 here — within its 1 - 1/sqrt(e) bound —
//     and reduces to Algorithm 1 under the threshold utility.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/core/baselines.h"
#include "src/core/composite_greedy.h"
#include "src/core/evaluator.h"
#include "src/core/exhaustive.h"
#include "src/core/greedy.h"
#include "tests/testing/builders.h"

namespace rap::core {
namespace {

using testing::Fig4;

class Fig4Example : public ::testing::Test {
 protected:
  Fig4Example()
      : threshold_(Fig4::threshold),
        linear_(Fig4::threshold),
        threshold_problem_(fig_.net, fig_.flows, Fig4::shop, threshold_),
        linear_problem_(fig_.net, fig_.flows, Fig4::shop, linear_) {}

  Fig4 fig_;
  traffic::ThresholdUtility threshold_;
  traffic::LinearUtility linear_;
  PlacementProblem threshold_problem_;
  PlacementProblem linear_problem_;
};

TEST_F(Fig4Example, Algorithm1PlacesV3ThenV5) {
  const PlacementResult result = greedy_coverage_placement(threshold_problem_, 2);
  EXPECT_EQ(result.nodes, (Placement{Fig4::V3, Fig4::V5}));
  EXPECT_DOUBLE_EQ(result.customers, 17.0);
}

TEST_F(Fig4Example, Algorithm1TerminatesWhenAllCovered) {
  // The paper: "The algorithm terminates for this example, since all the
  // traffic flows are covered." With k = 4, still only two RAPs are placed.
  const PlacementResult result = greedy_coverage_placement(threshold_problem_, 4);
  EXPECT_EQ(result.nodes.size(), 2u);
}

TEST_F(Fig4Example, NaiveMarginalGreedyGetsSeven) {
  const PlacementResult result =
      naive_marginal_greedy_placement(linear_problem_, 2);
  EXPECT_EQ(result.nodes[0], Fig4::V3);  // first step: gain 5
  EXPECT_NEAR(result.customers, 7.0, 1e-12);
}

TEST_F(Fig4Example, CompositeGreedyGetsSeven) {
  const PlacementResult result = composite_greedy_placement(linear_problem_, 2);
  EXPECT_EQ(result.nodes[0], Fig4::V3);
  EXPECT_NEAR(result.customers, 7.0, 1e-12);
}

TEST_F(Fig4Example, OptimumIsV2V4WithEight) {
  const PlacementResult opt = exhaustive_optimal_placement(linear_problem_, 2);
  Placement sorted = opt.nodes;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (Placement{Fig4::V2, Fig4::V4}));
  EXPECT_NEAR(opt.customers, 8.0, 1e-12);
}

TEST_F(Fig4Example, CompositeGreedyMeetsItsBound) {
  const double greedy = composite_greedy_placement(linear_problem_, 2).customers;
  const double opt = exhaustive_optimal_placement(linear_problem_, 2).customers;
  EXPECT_GE(greedy, (1.0 - 1.0 / std::sqrt(std::numbers::e)) * opt);
}

TEST_F(Fig4Example, Algorithm1MeetsItsBoundOnThreshold) {
  const double greedy = greedy_coverage_placement(threshold_problem_, 2).customers;
  const double opt = exhaustive_optimal_placement(threshold_problem_, 2).customers;
  EXPECT_GE(greedy, (1.0 - 1.0 / std::numbers::e) * opt);
}

TEST_F(Fig4Example, CompositeReducesToAlgorithm1UnderThreshold) {
  // The paper: "Algorithm 2 would reduce to Algorithm 1, if we use the
  // threshold utility function."
  const PlacementResult alg1 = greedy_coverage_placement(threshold_problem_, 2);
  const PlacementResult alg2 = composite_greedy_placement(threshold_problem_, 2);
  EXPECT_EQ(alg1.nodes, alg2.nodes);
  EXPECT_DOUBLE_EQ(alg1.customers, alg2.customers);
}

TEST_F(Fig4Example, V6NeverCoversT56) {
  // The paper: V6 does not include T(5,6) — its detour is 8 > D = 6.
  PlacementState state(threshold_problem_);
  EXPECT_DOUBLE_EQ(state.uncovered_gain(Fig4::V6), 0.0);
}

TEST_F(Fig4Example, MaxCustomersEqualsOptimumAtKOne) {
  // Section V-B: "MaxCustomers ... is equivalent to the optimal algorithm,
  // when k = 1."
  for (const PlacementProblem* problem :
       {&threshold_problem_, &linear_problem_}) {
    const double ranked = max_customers_placement(*problem, 1).customers;
    const double opt = exhaustive_optimal_placement(*problem, 1).customers;
    EXPECT_DOUBLE_EQ(ranked, opt);
  }
}

TEST_F(Fig4Example, MaxCardinalityPrefersBusyIntersections) {
  // V3 and V5 both see 3 flows; MaxCardinality picks them first (ids
  // break the tie).
  const PlacementResult result = max_cardinality_placement(threshold_problem_, 2);
  Placement sorted = result.nodes;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (Placement{Fig4::V3, Fig4::V5}));
}

TEST_F(Fig4Example, MaxVehiclesPicksV3First) {
  // V3 passes 15 vehicles/day — the busiest intersection.
  const PlacementResult result = max_vehicles_placement(threshold_problem_, 1);
  EXPECT_EQ(result.nodes, Placement{Fig4::V3});
}

}  // namespace
}  // namespace rap::core
