#include "src/core/coverage_adapter.h"

#include <gtest/gtest.h>

#include "src/core/greedy.h"
#include "tests/testing/builders.h"

namespace rap::core {
namespace {

using testing::Fig4;

TEST(CoverageAdapter, Fig4InstanceShape) {
  Fig4 fig;
  const traffic::ThresholdUtility utility(Fig4::threshold);
  const PlacementProblem problem(fig.net, fig.flows, Fig4::shop, utility);
  const cover::CoverageInstance instance = to_coverage_instance(problem);
  EXPECT_EQ(instance.num_elements(), 4u);  // four flows
  EXPECT_EQ(instance.num_sets(), 6u);      // six intersections
  // Element weights = alpha * population = vehicle counts here.
  EXPECT_DOUBLE_EQ(instance.weight(0), 6.0);
  EXPECT_DOUBLE_EQ(instance.weight(1), 3.0);
  EXPECT_DOUBLE_EQ(instance.weight(3), 2.0);
  // V3 covers flows 0, 1, 2; V6 covers nothing (detour 8 > D).
  EXPECT_EQ(instance.set(Fig4::V3).size(), 3u);
  EXPECT_TRUE(instance.set(Fig4::V6).empty());
  EXPECT_TRUE(instance.set(Fig4::V1).empty());
}

TEST(CoverageAdapter, RejectsDecreasingUtilities) {
  Fig4 fig;
  const traffic::LinearUtility utility(Fig4::threshold);
  const PlacementProblem problem(fig.net, fig.flows, Fig4::shop, utility);
  EXPECT_THROW(to_coverage_instance(problem), std::invalid_argument);
}

TEST(CoverageAdapter, ReductionGreedyMatchesAlgorithm1) {
  // Section III-B's equivalence, executed: the generic coverage greedy and
  // Algorithm 1 select the same intersections and value.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    util::Rng rng(seed * 11 + 3);
    const auto net = testing::random_network(4, 4, 5, rng);
    const auto flows = testing::random_flows(net, 15, rng);
    const traffic::ThresholdUtility utility(6.0);
    const PlacementProblem problem(
        net, flows, static_cast<graph::NodeId>(rng.next_below(net.num_nodes())),
        utility);
    for (const std::size_t k : {1u, 3u, 5u}) {
      const PlacementResult direct = greedy_coverage_placement(problem, k);
      const PlacementResult reduced = coverage_greedy_via_reduction(problem, k);
      EXPECT_EQ(direct.nodes, reduced.nodes) << "seed " << seed << " k=" << k;
      EXPECT_DOUBLE_EQ(direct.customers, reduced.customers);
    }
  }
}

TEST(CoverageAdapter, PerFlowAlphaVariationIsFine) {
  // Different alphas across flows are fine (weights differ per element);
  // only per-node variation within one flow breaks the reduction.
  const auto net = testing::line_network(5);
  std::vector<traffic::TrafficFlow> flows;
  flows.push_back(traffic::make_shortest_path_flow(net, 0, 2, 10.0, 1.0, 0.5));
  flows.push_back(traffic::make_shortest_path_flow(net, 2, 4, 10.0, 1.0, 0.9));
  const traffic::ThresholdUtility utility(100.0);
  const PlacementProblem problem(net, flows, 1, utility);
  const cover::CoverageInstance instance = to_coverage_instance(problem);
  EXPECT_DOUBLE_EQ(instance.weight(0), 5.0);
  EXPECT_DOUBLE_EQ(instance.weight(1), 9.0);
}

}  // namespace
}  // namespace rap::core
