// Independent oracle for the placement objective: recompute "expected
// attracted customers" from first principles — per flow, scan the placed
// RAPs on its path, take the minimum detour (paper Section III-A), apply
// the utility — with no reuse of PlacementState, IncidenceIndex or the
// evaluator under test. Random placements on random instances must agree
// exactly.
#include <gtest/gtest.h>

#include <limits>

#include "src/core/evaluator.h"
#include "src/core/problem.h"
#include "src/traffic/detour.h"
#include "tests/testing/builders.h"

namespace rap::core {
namespace {

// Ground-truth objective, written deliberately naively.
double oracle_value(const graph::RoadNetwork& net,
                    const std::vector<traffic::TrafficFlow>& flows,
                    graph::NodeId shop,
                    const traffic::UtilityFunction& utility,
                    std::span<const graph::NodeId> placement) {
  const traffic::DetourCalculator detours(net, shop);
  double total = 0.0;
  for (const traffic::TrafficFlow& flow : flows) {
    const std::vector<double> along = detours.detours_along_path(flow);
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < flow.path.size(); ++i) {
      for (const graph::NodeId rap : placement) {
        if (flow.path[i] == rap) best = std::min(best, along[i]);
      }
    }
    if (best == std::numeric_limits<double>::infinity()) continue;
    total += utility.probability(best, flow.alpha) * flow.population();
  }
  return total;
}

class ObjectiveOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ObjectiveOracle, EvaluatorMatchesFirstPrinciples) {
  util::Rng rng(GetParam() * 37 + 11);
  const auto net = testing::random_network(4 + rng.next_below(3),
                                           4 + rng.next_below(3),
                                           rng.next_below(8), rng);
  const auto flows = testing::random_flows(net, 5 + rng.next_below(15), rng);
  const auto shop = static_cast<graph::NodeId>(rng.next_below(net.num_nodes()));
  for (const auto kind :
       {traffic::UtilityKind::kThreshold, traffic::UtilityKind::kLinear,
        traffic::UtilityKind::kSqrt}) {
    const auto utility = traffic::make_utility(kind, rng.next_double(2.0, 8.0));
    const PlacementProblem problem(net, flows, shop, *utility);
    for (int trial = 0; trial < 8; ++trial) {
      Placement placement;
      const std::size_t size = 1 + rng.next_below(6);
      for (std::size_t i = 0; i < size; ++i) {
        placement.push_back(
            static_cast<graph::NodeId>(rng.next_below(net.num_nodes())));
      }
      EXPECT_NEAR(evaluate_placement(problem, placement),
                  oracle_value(net, flows, shop, *utility, placement), 1e-9)
          << utility->name();
    }
  }
}

TEST_P(ObjectiveOracle, IncrementalStateMatchesFirstPrinciplesAtEveryStep) {
  util::Rng rng(GetParam() * 41 + 13);
  const auto net = testing::random_network(4, 5, 5, rng);
  const auto flows = testing::random_flows(net, 12, rng);
  const auto shop = static_cast<graph::NodeId>(rng.next_below(net.num_nodes()));
  const traffic::LinearUtility utility(6.0);
  const PlacementProblem problem(net, flows, shop, utility);
  PlacementState state(problem);
  Placement so_far;
  for (int step = 0; step < 8; ++step) {
    const auto v = static_cast<graph::NodeId>(rng.next_below(net.num_nodes()));
    state.add(v);
    so_far.push_back(v);
    EXPECT_NEAR(state.value(), oracle_value(net, flows, shop, utility, so_far),
                1e-9)
        << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ObjectiveOracle,
                         ::testing::Range<std::uint64_t>(0, 15));

}  // namespace
}  // namespace rap::core
