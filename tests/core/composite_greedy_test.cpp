#include "src/core/composite_greedy.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/evaluator.h"
#include "src/core/greedy.h"
#include "tests/testing/builders.h"

namespace rap::core {
namespace {

TEST(CompositeGreedy, RejectsZeroK) {
  testing::Fig4 fig;
  const traffic::LinearUtility utility(6.0);
  const PlacementProblem problem(fig.net, fig.flows, 0, utility);
  EXPECT_THROW(composite_greedy_placement(problem, 0), std::invalid_argument);
  EXPECT_THROW(naive_marginal_greedy_placement(problem, 0),
               std::invalid_argument);
}

TEST(CompositeGreedy, ImprovementStepBeatsCoverageOnlyGreedy) {
  // On Fig. 4 with the linear utility, the coverage-only greedy (factor (i)
  // alone) stops at {V3} worth 5: the only uncovered flow T(5,6) cannot be
  // attracted anywhere. The composite greedy's factor (ii) places V2 to
  // shorten T(2,5)'s detour and reaches 7.
  testing::Fig4 fig;
  const traffic::LinearUtility utility(testing::Fig4::threshold);
  const PlacementProblem problem(fig.net, fig.flows, testing::Fig4::shop,
                                 utility);
  const double composite = composite_greedy_placement(problem, 2).customers;
  const double coverage_only = greedy_coverage_placement(problem, 2).customers;
  EXPECT_NEAR(coverage_only, 5.0, 1e-12);
  EXPECT_NEAR(composite, 7.0, 1e-12);
}

TEST(CompositeGreedy, ValueMatchesEvaluator) {
  util::Rng rng(13);
  const auto net = testing::random_network(5, 5, 5, rng);
  const auto flows = testing::random_flows(net, 18, rng);
  const traffic::LinearUtility utility(7.0);
  const PlacementProblem problem(net, flows, 6, utility);
  for (std::size_t k = 1; k <= 5; ++k) {
    const PlacementResult result = composite_greedy_placement(problem, k);
    EXPECT_NEAR(result.customers, evaluate_placement(problem, result.nodes),
                1e-9);
  }
}

TEST(CompositeGreedy, MonotoneInK) {
  util::Rng rng(17);
  const auto net = testing::random_network(5, 5, 5, rng);
  const auto flows = testing::random_flows(net, 18, rng);
  const traffic::LinearUtility utility(7.0);
  const PlacementProblem problem(net, flows, 6, utility);
  double prev = 0.0;
  for (std::size_t k = 1; k <= 8; ++k) {
    const double value = composite_greedy_placement(problem, k).customers;
    EXPECT_GE(value, prev - 1e-12);
    prev = value;
  }
}

TEST(CompositeGreedy, PlacementsAreNested) {
  util::Rng rng(19);
  const auto net = testing::random_network(5, 5, 5, rng);
  const auto flows = testing::random_flows(net, 18, rng);
  const traffic::LinearUtility utility(7.0);
  const PlacementProblem problem(net, flows, 6, utility);
  const Placement big = composite_greedy_placement(problem, 6).nodes;
  for (std::size_t k = 1; k < big.size(); ++k) {
    const Placement small = composite_greedy_placement(problem, k).nodes;
    for (std::size_t i = 0; i < small.size(); ++i) {
      EXPECT_EQ(small[i], big[i]);
    }
  }
}

TEST(CompositeGreedy, EqualsCoverageGreedyUnderThreshold) {
  // Algorithm 2 reduces to Algorithm 1 with the threshold utility — on
  // random instances, not just Fig. 4.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    util::Rng rng(seed * 3 + 1);
    const auto net = testing::random_network(4, 4, 5, rng);
    const auto flows = testing::random_flows(net, 12, rng);
    const traffic::ThresholdUtility utility(6.0);
    const PlacementProblem problem(net, flows, 0, utility);
    const PlacementResult alg1 = greedy_coverage_placement(problem, 4);
    const PlacementResult alg2 = composite_greedy_placement(problem, 4);
    EXPECT_DOUBLE_EQ(alg1.customers, alg2.customers) << "seed " << seed;
    EXPECT_EQ(alg1.nodes, alg2.nodes) << "seed " << seed;
  }
}

TEST(CompositeGreedy, AtLeastAsGoodAsCoverageOnlyGreedy) {
  // The composite objective dominates factor (i) alone on every instance.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    util::Rng rng(seed + 100);
    const auto net = testing::random_network(4, 5, 6, rng);
    const auto flows = testing::random_flows(net, 15, rng);
    const traffic::LinearUtility utility(6.0);
    const PlacementProblem problem(net, flows, 1, utility);
    const double composite = composite_greedy_placement(problem, 3).customers;
    const double coverage = greedy_coverage_placement(problem, 3).customers;
    EXPECT_GE(composite, coverage - 1e-9) << "seed " << seed;
  }
}

TEST(NaiveGreedy, ValueMatchesEvaluator) {
  util::Rng rng(23);
  const auto net = testing::random_network(5, 5, 5, rng);
  const auto flows = testing::random_flows(net, 18, rng);
  const traffic::LinearUtility utility(7.0);
  const PlacementProblem problem(net, flows, 6, utility);
  const PlacementResult result = naive_marginal_greedy_placement(problem, 4);
  EXPECT_NEAR(result.customers, evaluate_placement(problem, result.nodes), 1e-9);
}

TEST(CompositeGreedy, StopsWhenNothingGains) {
  const auto net = testing::line_network(4);
  std::vector<traffic::TrafficFlow> flows;
  flows.push_back(traffic::make_shortest_path_flow(net, 0, 1, 5.0));
  const traffic::ThresholdUtility utility(100.0);
  const PlacementProblem problem(net, flows, 0, utility);
  const PlacementResult result = composite_greedy_placement(problem, 3);
  EXPECT_EQ(result.nodes.size(), 1u);  // one RAP covers everything
}

TEST(CompositeGreedy, PlacesAllKWhenAskedTo) {
  const auto net = testing::line_network(4);
  std::vector<traffic::TrafficFlow> flows;
  flows.push_back(traffic::make_shortest_path_flow(net, 0, 1, 5.0));
  const traffic::ThresholdUtility utility(100.0);
  const PlacementProblem problem(net, flows, 0, utility);
  CompositeGreedyOptions options;
  options.stop_when_no_gain = false;
  EXPECT_EQ(composite_greedy_placement(problem, 3, options).nodes.size(), 3u);
}

}  // namespace
}  // namespace rap::core
