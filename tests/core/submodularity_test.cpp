// Mathematical structure checks on the placement objective: it is a
// monotone submodular (facility-location) function of the placed set. These
// properties are exactly what the lazy greedy and the approximation bounds
// rely on, so they get their own property sweep.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/evaluator.h"
#include "src/core/problem.h"
#include "tests/testing/builders.h"

namespace rap::core {
namespace {

struct Instance {
  graph::RoadNetwork net;
  std::vector<traffic::TrafficFlow> flows;
  graph::NodeId shop = 0;
};

Instance make_instance(std::uint64_t seed) {
  util::Rng rng(seed * 53 + 17);
  Instance inst;
  inst.net = testing::random_network(4, 4, 5, rng);
  inst.flows = testing::random_flows(inst.net, 12, rng);
  inst.shop = static_cast<graph::NodeId>(rng.next_below(inst.net.num_nodes()));
  return inst;
}

class Submodularity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Submodularity, DiminishingReturns) {
  // f(S + v) - f(S) >= f(T + v) - f(T) for S subset-of T, v outside T.
  const Instance inst = make_instance(GetParam());
  util::Rng rng(GetParam() * 59 + 1);
  for (const auto kind :
       {traffic::UtilityKind::kThreshold, traffic::UtilityKind::kLinear,
        traffic::UtilityKind::kSqrt}) {
    const auto utility = traffic::make_utility(kind, 5.0);
    const PlacementProblem problem(inst.net, inst.flows, inst.shop, *utility);
    for (int trial = 0; trial < 10; ++trial) {
      // Random S subset T subset V, and v outside T.
      std::vector<graph::NodeId> nodes(inst.net.num_nodes());
      for (graph::NodeId i = 0; i < nodes.size(); ++i) nodes[i] = i;
      rng.shuffle(nodes);
      const std::size_t s_size = rng.next_below(4);
      const std::size_t t_size = s_size + rng.next_below(4);
      if (t_size + 1 > nodes.size()) continue;
      const std::span<const graph::NodeId> s_set(nodes.data(), s_size);
      const std::span<const graph::NodeId> t_set(nodes.data(), t_size);
      const graph::NodeId v = nodes[t_size];

      PlacementState small(problem);
      for (const graph::NodeId u : s_set) small.add(u);
      PlacementState big(problem);
      for (const graph::NodeId u : t_set) big.add(u);
      EXPECT_GE(small.gain_if_added(v), big.gain_if_added(v) - 1e-9)
          << utility->name();
    }
  }
}

TEST_P(Submodularity, Monotonicity) {
  // f(S) <= f(T) for S subset-of T.
  const Instance inst = make_instance(GetParam() + 500);
  util::Rng rng(GetParam() * 61 + 2);
  const traffic::LinearUtility utility(5.0);
  const PlacementProblem problem(inst.net, inst.flows, inst.shop, utility);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<graph::NodeId> nodes(inst.net.num_nodes());
    for (graph::NodeId i = 0; i < nodes.size(); ++i) nodes[i] = i;
    rng.shuffle(nodes);
    const std::size_t s_size = rng.next_below(5);
    const std::size_t t_size =
        std::min(nodes.size(), s_size + rng.next_below(5));
    const std::span<const graph::NodeId> s_set(nodes.data(), s_size);
    const std::span<const graph::NodeId> t_set(nodes.data(), t_size);
    EXPECT_LE(evaluate_placement(problem, s_set),
              evaluate_placement(problem, t_set) + 1e-12);
  }
}

TEST_P(Submodularity, GainsShrinkAlongAnyAddSequence) {
  // The lazy-greedy invariant: any node's marginal gain is non-increasing
  // as other nodes are added in any order.
  const Instance inst = make_instance(GetParam() + 900);
  util::Rng rng(GetParam() * 67 + 3);
  const traffic::SqrtUtility utility(5.0);
  const PlacementProblem problem(inst.net, inst.flows, inst.shop, utility);
  const auto watch =
      static_cast<graph::NodeId>(rng.next_below(inst.net.num_nodes()));
  PlacementState state(problem);
  double prev_gain = state.gain_if_added(watch);
  for (int step = 0; step < 8; ++step) {
    const auto v =
        static_cast<graph::NodeId>(rng.next_below(inst.net.num_nodes()));
    if (v == watch) continue;
    state.add(v);
    const double gain = state.gain_if_added(watch);
    EXPECT_LE(gain, prev_gain + 1e-9);
    prev_gain = gain;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, Submodularity,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace rap::core
