#include "src/core/multishop.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/composite_greedy.h"
#include "src/core/evaluator.h"
#include "tests/testing/builders.h"

namespace rap::core {
namespace {

using testing::Fig4;

TEST(MultiShopDetour, RejectsEmptyShopList) {
  Fig4 fig;
  EXPECT_THROW(MultiShopDetour(fig.net, {}), std::invalid_argument);
}

TEST(MultiShopDetour, RejectsBadShopId) {
  Fig4 fig;
  EXPECT_THROW(MultiShopDetour(fig.net, {99}), std::out_of_range);
}

TEST(MultiShopDetour, SingleShopMatchesCalculator) {
  Fig4 fig;
  const MultiShopDetour multi(fig.net, {Fig4::shop});
  const traffic::DetourCalculator single(fig.net, Fig4::shop);
  for (const auto& flow : fig.flows) {
    EXPECT_EQ(multi.detours_along_path(flow), single.detours_along_path(flow));
  }
}

TEST(MultiShopDetour, TakesMinimumOverShops) {
  Fig4 fig;
  const MultiShopDetour multi(fig.net, {Fig4::V1, Fig4::V6});
  const traffic::DetourCalculator at_v1(fig.net, Fig4::V1);
  const traffic::DetourCalculator at_v6(fig.net, Fig4::V6);
  for (const auto& flow : fig.flows) {
    const auto combined = multi.detours_along_path(flow);
    const auto a = at_v1.detours_along_path(flow);
    const auto b = at_v6.detours_along_path(flow);
    for (std::size_t i = 0; i < combined.size(); ++i) {
      EXPECT_DOUBLE_EQ(combined[i], std::min(a[i], b[i]));
    }
  }
}

TEST(MultiShop, MoreShopsNeverReduceCustomers) {
  util::Rng rng(41);
  const auto net = testing::random_network(5, 5, 6, rng);
  const auto flows = testing::random_flows(net, 15, rng);
  const traffic::LinearUtility utility(8.0);

  const auto one = make_multishop_problem(net, flows, {3}, utility);
  const auto two = make_multishop_problem(net, flows, {3, 20}, utility);
  for (std::size_t k = 1; k <= 4; ++k) {
    const double v1 = composite_greedy_placement(one, k).customers;
    const double v2 = composite_greedy_placement(two, k).customers;
    EXPECT_GE(v2, v1 - 1e-9) << "k=" << k;
  }
}

TEST(MultiShop, FixedPlacementImprovesWithExtraShop) {
  util::Rng rng(43);
  const auto net = testing::random_network(5, 5, 6, rng);
  const auto flows = testing::random_flows(net, 15, rng);
  const traffic::LinearUtility utility(8.0);
  const auto one = make_multishop_problem(net, flows, {0}, utility);
  const auto two = make_multishop_problem(net, flows, {0, 24}, utility);
  const Placement nodes{5, 12, 18};
  EXPECT_GE(evaluate_placement(two, nodes),
            evaluate_placement(one, nodes) - 1e-9);
}

TEST(MultiShop, ProblemReportsNoSingleShop) {
  Fig4 fig;
  const traffic::LinearUtility utility(6.0);
  const auto problem =
      make_multishop_problem(fig.net, fig.flows, {Fig4::V1, Fig4::V6}, utility);
  EXPECT_EQ(problem.shop(), graph::kInvalidNode);
  EXPECT_EQ(problem.num_flows(), 4u);
}

TEST(MultiShop, EquivalentToSingleWhenShopsCoincide) {
  Fig4 fig;
  const traffic::LinearUtility utility(6.0);
  const PlacementProblem single(fig.net, fig.flows, Fig4::shop, utility);
  const auto multi = make_multishop_problem(fig.net, fig.flows,
                                            {Fig4::shop, Fig4::shop}, utility);
  const Placement nodes{Fig4::V2, Fig4::V4};
  EXPECT_DOUBLE_EQ(evaluate_placement(single, nodes),
                   evaluate_placement(multi, nodes));
}

TEST(MultiShop, ShopAtEveryFlowOriginAttractsEverything) {
  // With a shop at each flow's origin, every flow has a zero-detour option
  // at its first intersection: placing RAPs there attracts alpha * everyone.
  Fig4 fig;
  const traffic::LinearUtility utility(6.0);
  std::vector<graph::NodeId> shops;
  Placement raps;
  for (const auto& flow : fig.flows) {
    shops.push_back(flow.origin);
    raps.push_back(flow.origin);
  }
  const auto problem =
      make_multishop_problem(fig.net, fig.flows, shops, utility);
  EXPECT_DOUBLE_EQ(evaluate_placement(problem, raps),
                   traffic::total_population(fig.flows));
}

}  // namespace
}  // namespace rap::core
