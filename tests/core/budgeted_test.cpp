#include "src/core/budgeted.h"

#include <gtest/gtest.h>

#include "src/core/composite_greedy.h"
#include "src/core/evaluator.h"
#include "src/core/exhaustive.h"
#include "tests/testing/builders.h"

namespace rap::core {
namespace {

using testing::Fig4;

std::vector<double> unit_costs(const CoverageModel& model) {
  return std::vector<double>(model.num_nodes(), 1.0);
}

TEST(Budgeted, Validation) {
  Fig4 fig;
  const traffic::LinearUtility utility(6.0);
  const PlacementProblem problem(fig.net, fig.flows, Fig4::shop, utility);
  const std::vector<double> costs = unit_costs(problem);
  const std::vector<double> short_costs(3, 1.0);
  std::vector<double> bad = costs;
  bad[2] = 0.0;
  EXPECT_THROW(budgeted_placement(problem, short_costs, 2.0),
               std::invalid_argument);
  EXPECT_THROW(budgeted_placement(problem, bad, 2.0), std::invalid_argument);
  EXPECT_THROW(budgeted_placement(problem, costs, 0.0), std::invalid_argument);
  EXPECT_THROW(budgeted_placement(problem, costs, -1.0), std::invalid_argument);
}

TEST(Budgeted, PlacementCostSums) {
  const std::vector<double> costs{1.0, 2.0, 4.0};
  const Placement nodes{0, 2};
  EXPECT_DOUBLE_EQ(placement_cost(costs, nodes), 5.0);
  const Placement bad{7};
  EXPECT_THROW(placement_cost(costs, bad), std::out_of_range);
}

TEST(Budgeted, RespectsBudget) {
  util::Rng rng(5);
  const auto net = testing::random_network(5, 5, 6, rng);
  const auto flows = testing::random_flows(net, 20, rng);
  const traffic::LinearUtility utility(7.0);
  const PlacementProblem problem(net, flows, 8, utility);
  std::vector<double> costs(net.num_nodes());
  for (double& c : costs) c = rng.next_double(0.5, 3.0);
  for (const double budget : {1.0, 3.0, 8.0}) {
    const PlacementResult result = budgeted_placement(problem, costs, budget);
    EXPECT_LE(placement_cost(costs, result.nodes), budget + 1e-12);
    EXPECT_NEAR(result.customers, evaluate_placement(problem, result.nodes),
                1e-9);
  }
}

TEST(Budgeted, UnitCostsAtLeastAsGoodAsNaiveGreedyAtK) {
  // With unit costs and budget k the ratio greedy IS the naive marginal
  // greedy; the singleton max can only improve the result.
  util::Rng rng(9);
  const auto net = testing::random_network(5, 5, 6, rng);
  const auto flows = testing::random_flows(net, 20, rng);
  const traffic::LinearUtility utility(7.0);
  const PlacementProblem problem(net, flows, 8, utility);
  const std::vector<double> costs = unit_costs(problem);
  for (const std::size_t k : {1u, 3u, 5u}) {
    const double budgeted =
        budgeted_placement(problem, costs, static_cast<double>(k)).customers;
    const double naive =
        naive_marginal_greedy_placement(problem, k).customers;
    EXPECT_GE(budgeted, naive - 1e-9) << "k=" << k;
  }
}

TEST(Budgeted, PrefersCheapEquivalentIntersections) {
  // Two intersections cover the same flow; only the cheap one fits the
  // budget.
  const auto net = testing::line_network(4);
  std::vector<traffic::TrafficFlow> flows;
  flows.push_back(traffic::make_shortest_path_flow(net, 1, 3, 10.0));
  const traffic::ThresholdUtility utility(100.0);
  const PlacementProblem problem(net, flows, 0, utility);
  std::vector<double> costs{1.0, 5.0, 1.0, 5.0};
  const PlacementResult result = budgeted_placement(problem, costs, 1.0);
  EXPECT_EQ(result.nodes, Placement{2});  // node 2 covers the flow at cost 1
  EXPECT_DOUBLE_EQ(result.customers, 10.0);
}

TEST(Budgeted, SingletonFallbackBeatsRatioTrap) {
  // Classic budgeted-coverage trap: a cheap set with the best ratio eats
  // just enough budget that the single most valuable set no longer fits.
  const auto net = testing::line_network(6);
  std::vector<traffic::TrafficFlow> flows;
  flows.push_back(traffic::make_shortest_path_flow(net, 0, 1, 3.0));    // small
  flows.push_back(traffic::make_shortest_path_flow(net, 5, 4, 100.0));  // big
  const traffic::ThresholdUtility utility(1000.0);
  const PlacementProblem problem(net, flows, 2, utility);
  // Node 0: gain 3 at cost 0.5 (ratio 6). Nodes 4/5: gain 100 at cost 20
  // (ratio 5). Budget 20: the ratio greedy takes node 0 first, after which
  // the big intersection no longer fits — greedy alone nets only 3.
  const std::vector<double> costs{0.5, 20.0, 20.0, 20.0, 20.0, 20.0};
  const PlacementResult result = budgeted_placement(problem, costs, 20.0);
  // The best-affordable-singleton fallback rescues the solution.
  EXPECT_DOUBLE_EQ(result.customers, 100.0);
  EXPECT_EQ(result.nodes, Placement{4});  // ties to the lowest node id
}

TEST(Budgeted, HugeBudgetMatchesUnconstrainedGreedy) {
  Fig4 fig;
  const traffic::LinearUtility utility(6.0);
  const PlacementProblem problem(fig.net, fig.flows, Fig4::shop, utility);
  const std::vector<double> costs = unit_costs(problem);
  const PlacementResult budgeted = budgeted_placement(problem, costs, 1e6);
  const PlacementResult greedy = naive_marginal_greedy_placement(problem, 6);
  EXPECT_DOUBLE_EQ(budgeted.customers, greedy.customers);
}

TEST(Budgeted, CoverageObjectiveOption) {
  Fig4 fig;
  const traffic::ThresholdUtility utility(6.0);
  const PlacementProblem problem(fig.net, fig.flows, Fig4::shop, utility);
  const std::vector<double> costs = unit_costs(problem);
  BudgetedOptions options;
  options.use_marginal_gain = false;
  const PlacementResult result =
      budgeted_placement(problem, costs, 2.0, options);
  // Under threshold utility with unit costs this mirrors Algorithm 1.
  EXPECT_DOUBLE_EQ(result.customers, 17.0);
}

}  // namespace
}  // namespace rap::core
