// PlacementState under adversarial (non-monotone) customers functions: the
// guarded branches in improvement_gain / gain_if_added / add() that the
// paper's non-increasing utilities never reach.
#include <gtest/gtest.h>

#include "src/check/audit.h"
#include "src/check/scenario.h"
#include "src/core/evaluator.h"
#include "src/core/greedy.h"
#include "tests/testing/nonmonotone.h"

namespace rap::core {
namespace {

using rap::check::AdversarialUtility;
using rap::testing::NonMonotoneModel;

TEST(EvaluatorAdversarial, ImprovementGainCanBeNegative) {
  const NonMonotoneModel model;
  PlacementState state(model);
  state.add(0);  // detour 2, customers 9
  // Node 1 offers a smaller detour worth fewer customers: the raw
  // improvement term goes negative...
  EXPECT_DOUBLE_EQ(state.improvement_gain(1), 3.0 - 9.0);
  // ...while the guarded total gain refuses the losing swap.
  EXPECT_DOUBLE_EQ(state.gain_if_added(1), 0.0);
  EXPECT_DOUBLE_EQ(state.uncovered_gain(1), 0.0);
}

TEST(EvaluatorAdversarial, AddKeepsTheLargerContribution) {
  const NonMonotoneModel model;
  PlacementState state(model);
  state.add(0);
  state.add(1);
  // best_detour tracks the minimum, contribution keeps the earlier larger
  // value — the order-dependent semantics the (A4) audit invariant replays.
  EXPECT_DOUBLE_EQ(state.best_detours()[0], 1.0);
  EXPECT_DOUBLE_EQ(state.contributions()[0], 9.0);
  EXPECT_DOUBLE_EQ(state.value(), 9.0);
}

TEST(EvaluatorAdversarial, InsertionOrderChangesTheValue) {
  const NonMonotoneModel model;
  const graph::NodeId far_first[] = {0, 1};
  const graph::NodeId near_first[] = {1, 0};
  EXPECT_DOUBLE_EQ(evaluate_placement(model, far_first), 9.0);
  EXPECT_DOUBLE_EQ(evaluate_placement(model, near_first), 3.0);
}

TEST(EvaluatorAdversarial, GainMatchesAddDeltaEvenWhenGuarded) {
  const NonMonotoneModel model;
  PlacementState state(model);
  state.add(0);
  const double gain = state.gain_if_added(1);
  const double before = state.value();
  state.add(1);
  EXPECT_DOUBLE_EQ(state.value() - before, gain);
}

TEST(EvaluatorAdversarial, FuzzFamilyDrivesTheGuardedBranch) {
  // A generated adversarial scenario (seed % 5 == 4) must reach the guarded
  // branch somewhere: some state has a node whose improvement term is
  // negative while the guarded gain stays non-negative.
  bool guarded_seen = false;
  for (std::uint64_t seed = 4; seed < 64 && !guarded_seen; seed += 5) {
    const auto scenario = rap::check::generate_scenario(seed);
    ASSERT_EQ(scenario->utility_kind, rap::check::FuzzUtility::kAdversarial);
    const CoverageModel& model = *scenario->problem;
    PlacementState state(model);
    const PlacementResult greedy = greedy_coverage_placement(model, scenario->k);
    for (const graph::NodeId node : greedy.nodes) state.add(node);
    for (graph::NodeId v = 0; v < model.num_nodes(); ++v) {
      if (state.contains(v)) continue;
      const double improvement = state.improvement_gain(v);
      const double total = state.gain_if_added(v);
      EXPECT_GE(total + 1e-12, state.uncovered_gain(v) + improvement);
      if (improvement < 0.0) guarded_seen = true;
    }
    // Whatever the utility does, states must satisfy the order-aware audit.
    EXPECT_TRUE(
        rap::check::audit_state(state, {.monotone_utility = false}).ok());
  }
  EXPECT_TRUE(guarded_seen)
      << "no adversarial scenario exercised the guarded branch";
}

TEST(EvaluatorAdversarial, AdversarialUtilityFeedsRealProblems) {
  const auto scenario = rap::check::generate_scenario(9);  // adversarial
  const AdversarialUtility& utility =
      dynamic_cast<const AdversarialUtility&>(scenario->problem->utility());
  EXPECT_EQ(utility.name(), "adversarial");
  const PlacementResult result =
      greedy_coverage_placement(*scenario->problem, scenario->k);
  EXPECT_GE(result.customers, 0.0);
  EXPECT_DOUBLE_EQ(evaluate_placement(*scenario->problem, result.nodes),
                   result.customers);
}

}  // namespace
}  // namespace rap::core
