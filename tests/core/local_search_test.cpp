#include "src/core/local_search.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/composite_greedy.h"
#include "src/core/evaluator.h"
#include "src/core/exhaustive.h"
#include "tests/testing/builders.h"

namespace rap::core {
namespace {

using testing::Fig4;

TEST(LocalSearch, EscapesTheFig4GreedyTrap) {
  // Every greedy reaches 7 on Fig. 4 (linear utility); one swap
  // (V3 -> V4) reaches the optimum {V2, V4} = 8.
  Fig4 fig;
  const traffic::LinearUtility utility(Fig4::threshold);
  const PlacementProblem problem(fig.net, fig.flows, Fig4::shop, utility);
  const LocalSearchResult result = greedy_with_local_search(problem, 2);
  EXPECT_NEAR(result.placement.customers, 8.0, 1e-12);
  Placement sorted = result.placement.nodes;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (Placement{Fig4::V2, Fig4::V4}));
  EXPECT_TRUE(result.converged);
  EXPECT_GE(result.swaps_performed, 1u);
}

TEST(LocalSearch, LocalOptimumIsFixedPoint) {
  Fig4 fig;
  const traffic::LinearUtility utility(Fig4::threshold);
  const PlacementProblem problem(fig.net, fig.flows, Fig4::shop, utility);
  const Placement optimum{Fig4::V2, Fig4::V4};
  const LocalSearchResult result = local_search_improve(problem, optimum);
  EXPECT_EQ(result.swaps_performed, 0u);
  Placement sorted = result.placement.nodes;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, optimum);
}

TEST(LocalSearch, NeverWorseThanInput) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    util::Rng rng(seed * 19 + 3);
    const auto net = testing::random_network(4, 4, 6, rng);
    const auto flows = testing::random_flows(net, 12, rng);
    const traffic::LinearUtility utility(5.0);
    const PlacementProblem problem(
        net, flows, static_cast<graph::NodeId>(rng.next_below(net.num_nodes())),
        utility);
    Placement start;
    for (int i = 0; i < 3; ++i) {
      start.push_back(
          static_cast<graph::NodeId>(rng.next_below(net.num_nodes())));
    }
    const double before = evaluate_placement(problem, start);
    const LocalSearchResult result = local_search_improve(problem, start);
    EXPECT_GE(result.placement.customers, before - 1e-12) << "seed " << seed;
    EXPECT_NEAR(result.placement.customers,
                evaluate_placement(problem, result.placement.nodes), 1e-9);
  }
}

TEST(LocalSearch, GreedyPlusSearchNearOptimalOnSmallInstances) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    util::Rng rng(seed * 7 + 1);
    const auto net = testing::random_network(4, 4, 4, rng);
    const auto flows = testing::random_flows(net, 10, rng);
    const traffic::LinearUtility utility(5.0);
    const PlacementProblem problem(
        net, flows, static_cast<graph::NodeId>(rng.next_below(net.num_nodes())),
        utility);
    const double refined = greedy_with_local_search(problem, 3).placement.customers;
    const double opt =
        exhaustive_optimal_placement(problem, 3, {5'000'000}).customers;
    EXPECT_LE(refined, opt + 1e-9);
    // Swap-local optima of submodular maximisation are >= OPT/2; empirically
    // greedy + 1-swap should do far better. Assert the factor-2 bound.
    EXPECT_GE(refined, 0.5 * opt - 1e-9) << "seed " << seed;
  }
}

TEST(LocalSearch, KeepsPlacementSize) {
  util::Rng rng(11);
  const auto net = testing::random_network(4, 4, 5, rng);
  const auto flows = testing::random_flows(net, 10, rng);
  const traffic::LinearUtility utility(5.0);
  const PlacementProblem problem(net, flows, 3, utility);
  const LocalSearchResult result = greedy_with_local_search(problem, 4);
  EXPECT_LE(result.placement.nodes.size(), 4u);
  // No duplicates.
  Placement sorted = result.placement.nodes;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(LocalSearch, DeduplicatesInitialPlacement) {
  Fig4 fig;
  const traffic::LinearUtility utility(Fig4::threshold);
  const PlacementProblem problem(fig.net, fig.flows, Fig4::shop, utility);
  const Placement dup{Fig4::V3, Fig4::V3};
  const LocalSearchResult result = local_search_improve(problem, dup);
  EXPECT_LE(result.placement.nodes.size(), 1u);
}

TEST(LocalSearch, MaxSwapsCapRespected) {
  Fig4 fig;
  const traffic::LinearUtility utility(Fig4::threshold);
  const PlacementProblem problem(fig.net, fig.flows, Fig4::shop, utility);
  LocalSearchOptions options;
  options.max_swaps = 0;
  const Placement start{Fig4::V3, Fig4::V5};
  const LocalSearchResult result = local_search_improve(problem, start, options);
  EXPECT_EQ(result.swaps_performed, 0u);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.placement.nodes, start);
}

TEST(LocalSearch, BadNodeThrows) {
  Fig4 fig;
  const traffic::LinearUtility utility(Fig4::threshold);
  const PlacementProblem problem(fig.net, fig.flows, Fig4::shop, utility);
  const Placement bad{99};
  EXPECT_THROW(local_search_improve(problem, bad), std::out_of_range);
}

}  // namespace
}  // namespace rap::core
