#include "src/core/ad_selection.h"

#include <gtest/gtest.h>

#include "src/core/composite_greedy.h"
#include "tests/testing/builders.h"

namespace rap::core {
namespace {

using testing::Fig4;

TEST(InterestMatrix, Validation) {
  EXPECT_THROW(InterestMatrix(2, 2, {1.0, 1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(InterestMatrix(1, 1, {1.5}), std::invalid_argument);
  EXPECT_THROW(InterestMatrix(1, 1, {-0.1}), std::invalid_argument);
  const InterestMatrix m(2, 3, {0.1, 0.2, 0.3, 0.4, 0.5, 0.6});
  EXPECT_DOUBLE_EQ(m(1, 2), 0.6);
  EXPECT_THROW(m(2, 0), std::out_of_range);
  EXPECT_THROW(m(0, 3), std::out_of_range);
}

TEST(InterestMatrix, UniformIsAllOnes) {
  const InterestMatrix m = InterestMatrix::uniform(3, 2);
  for (traffic::FlowIndex f = 0; f < 3; ++f) {
    for (AdKind a = 0; a < 2; ++a) {
      EXPECT_DOUBLE_EQ(m(f, a), 1.0);
    }
  }
}

class AdSelectionFig4 : public ::testing::Test {
 protected:
  AdSelectionFig4()
      : utility_(6.0), problem_(fig_.net, fig_.flows, Fig4::shop, utility_) {}

  Fig4 fig_;
  traffic::LinearUtility utility_;
  PlacementProblem problem_;
};

TEST_F(AdSelectionFig4, SingleUniformAdMatchesNaiveGreedy) {
  const InterestMatrix interest = InterestMatrix::uniform(4, 1);
  const AdPlacementResult multi = multi_ad_greedy_placement(problem_, interest, 2);
  const PlacementResult single = naive_marginal_greedy_placement(problem_, 2);
  ASSERT_EQ(multi.raps.size(), single.nodes.size());
  for (std::size_t i = 0; i < multi.raps.size(); ++i) {
    EXPECT_EQ(multi.raps[i].node, single.nodes[i]);
    EXPECT_EQ(multi.raps[i].ad, 0u);
  }
  EXPECT_DOUBLE_EQ(multi.customers, single.customers);
}

TEST_F(AdSelectionFig4, PicksTheAdEachFlowPrefers) {
  // Ad 0 interests only T(2,5) and T(4,3); ad 1 only T(3,5) and T(5,6).
  const InterestMatrix interest(4, 2,
                                {1.0, 0.0,    // T(2,5)
                                 0.0, 1.0,    // T(3,5)
                                 1.0, 0.0,    // T(4,3)
                                 0.0, 1.0});  // T(5,6)
  const AdPlacementResult result = multi_ad_greedy_placement(problem_, interest, 2);
  ASSERT_EQ(result.raps.size(), 2u);
  // Best single (node, ad): V3 with ad 0 reaches T(2,5)+T(4,3) at detour 4:
  // 12 * (1/3) = 4; V2 ad 0: 6 * 2/3 = 4 (V3 wins ties? node order: V2=1 <
  // V3=2, so V2 first). Just assert the value is the optimum of this tiny
  // instance computed by hand: place V2/ad0 (4) then V4/ad0 (+4) = 8, or
  // involve ad 1: V3/ad1 covers T(3,5) at 1/3 = 1. Optimal greedy run:
  // step1 V2/ad0 (4), step2 V4/ad0 (4) -> 8.
  EXPECT_NEAR(result.customers, 8.0, 1e-12);
  EXPECT_EQ(result.raps[0].ad, 0u);
  EXPECT_EQ(result.raps[1].ad, 0u);
}

TEST_F(AdSelectionFig4, MoreAdKindsNeverHurt) {
  // Duplicate the single ad into two identical kinds: value unchanged.
  const InterestMatrix one = InterestMatrix::uniform(4, 1);
  const InterestMatrix two = InterestMatrix::uniform(4, 2);
  EXPECT_DOUBLE_EQ(multi_ad_greedy_placement(problem_, one, 2).customers,
                   multi_ad_greedy_placement(problem_, two, 2).customers);
}

TEST_F(AdSelectionFig4, SpecializedAdsBeatOneCompromiseAd) {
  // Each flow only cares about "its" ad; a single ad kind halves interest.
  const InterestMatrix split(4, 2,
                             {1.0, 0.0,  //
                              1.0, 0.0,  //
                              0.0, 1.0,  //
                              0.0, 1.0});
  const InterestMatrix compromise(4, 1, {0.5, 0.5, 0.5, 0.5});
  const double specialised =
      multi_ad_greedy_placement(problem_, split, 3).customers;
  const double single = multi_ad_greedy_placement(problem_, compromise, 3).customers;
  EXPECT_GT(specialised, single);
}

TEST_F(AdSelectionFig4, EvaluateMatchesGreedyValue) {
  const InterestMatrix interest(4, 2,
                                {1.0, 0.5, 0.3, 1.0, 0.8, 0.1, 0.0, 0.9});
  const AdPlacementResult result = multi_ad_greedy_placement(problem_, interest, 3);
  EXPECT_NEAR(result.customers,
              evaluate_ad_placement(problem_, interest, result.raps), 1e-12);
}

TEST_F(AdSelectionFig4, EvaluateIgnoresDuplicateNodes) {
  const InterestMatrix interest = InterestMatrix::uniform(4, 2);
  const std::vector<AdAssignment> raps{{Fig4::V3, 0}, {Fig4::V3, 1}};
  // Second RAP on the same intersection is ignored (one RAP per node).
  EXPECT_DOUBLE_EQ(evaluate_ad_placement(problem_, interest, raps),
                   evaluate_ad_placement(problem_, interest,
                                         std::vector<AdAssignment>{{Fig4::V3, 0}}));
}

TEST_F(AdSelectionFig4, Validation) {
  const InterestMatrix wrong_flows = InterestMatrix::uniform(3, 1);
  const InterestMatrix ok = InterestMatrix::uniform(4, 1);
  EXPECT_THROW(multi_ad_greedy_placement(problem_, wrong_flows, 2),
               std::invalid_argument);
  EXPECT_THROW(multi_ad_greedy_placement(problem_, ok, 0),
               std::invalid_argument);
  const std::vector<AdAssignment> bad_ad{{Fig4::V3, 7}};
  EXPECT_THROW(evaluate_ad_placement(problem_, ok, bad_ad), std::out_of_range);
  const std::vector<AdAssignment> bad_node{{99, 0}};
  EXPECT_THROW(evaluate_ad_placement(problem_, ok, bad_node), std::out_of_range);
}

TEST(AdSelection, MonotoneInK) {
  util::Rng rng(3);
  const auto net = testing::random_network(4, 4, 5, rng);
  const auto flows = testing::random_flows(net, 12, rng);
  const traffic::LinearUtility utility(6.0);
  const PlacementProblem problem(net, flows, 5, utility);
  std::vector<double> interest_values;
  for (std::size_t i = 0; i < flows.size() * 3; ++i) {
    interest_values.push_back(rng.next_double());
  }
  const InterestMatrix interest(flows.size(), 3, interest_values);
  double prev = 0.0;
  for (std::size_t k = 1; k <= 6; ++k) {
    const double value =
        multi_ad_greedy_placement(problem, interest, k).customers;
    EXPECT_GE(value, prev - 1e-12);
    prev = value;
  }
}

}  // namespace
}  // namespace rap::core
