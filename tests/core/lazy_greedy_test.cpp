#include "src/core/lazy_greedy.h"

#include <gtest/gtest.h>

#include "src/core/composite_greedy.h"
#include "src/core/greedy.h"
#include "tests/testing/builders.h"

namespace rap::core {
namespace {

using testing::Fig4;

TEST(LazyGreedy, RejectsZeroK) {
  Fig4 fig;
  const traffic::LinearUtility utility(6.0);
  const PlacementProblem problem(fig.net, fig.flows, Fig4::shop, utility);
  EXPECT_THROW(lazy_marginal_greedy_placement(problem, 0),
               std::invalid_argument);
  EXPECT_THROW(lazy_coverage_placement(problem, 0), std::invalid_argument);
}

TEST(LazyGreedy, MatchesNaiveOnFig4) {
  Fig4 fig;
  const traffic::LinearUtility utility(6.0);
  const PlacementProblem problem(fig.net, fig.flows, Fig4::shop, utility);
  const PlacementResult eager = naive_marginal_greedy_placement(problem, 2);
  const PlacementResult lazy = lazy_marginal_greedy_placement(problem, 2);
  EXPECT_EQ(eager.nodes, lazy.nodes);
  EXPECT_DOUBLE_EQ(eager.customers, lazy.customers);
}

TEST(LazyGreedy, MatchesAlgorithm1OnFig4Threshold) {
  Fig4 fig;
  const traffic::ThresholdUtility utility(6.0);
  const PlacementProblem problem(fig.net, fig.flows, Fig4::shop, utility);
  const PlacementResult eager = greedy_coverage_placement(problem, 3);
  const PlacementResult lazy = lazy_coverage_placement(problem, 3);
  EXPECT_EQ(eager.nodes, lazy.nodes);
  EXPECT_DOUBLE_EQ(eager.customers, lazy.customers);
}

class LazyEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LazyEquivalence, MarginalIdenticalToEager) {
  util::Rng rng(GetParam() * 23 + 5);
  const auto net = testing::random_network(5, 5, 6, rng);
  const auto flows = testing::random_flows(net, 20, rng);
  const auto shop = static_cast<graph::NodeId>(rng.next_below(net.num_nodes()));
  for (const auto kind :
       {traffic::UtilityKind::kThreshold, traffic::UtilityKind::kLinear,
        traffic::UtilityKind::kSqrt}) {
    const auto utility = traffic::make_utility(kind, 6.0);
    const PlacementProblem problem(net, flows, shop, *utility);
    for (const std::size_t k : {1u, 4u, 9u}) {
      const PlacementResult eager = naive_marginal_greedy_placement(problem, k);
      const PlacementResult lazy = lazy_marginal_greedy_placement(problem, k);
      EXPECT_EQ(eager.nodes, lazy.nodes) << utility->name() << " k=" << k;
      EXPECT_DOUBLE_EQ(eager.customers, lazy.customers);
    }
  }
}

TEST_P(LazyEquivalence, CoverageIdenticalToEager) {
  util::Rng rng(GetParam() * 29 + 7);
  const auto net = testing::random_network(5, 5, 6, rng);
  const auto flows = testing::random_flows(net, 20, rng);
  const traffic::ThresholdUtility utility(5.0);
  const PlacementProblem problem(
      net, flows, static_cast<graph::NodeId>(rng.next_below(net.num_nodes())),
      utility);
  for (const std::size_t k : {1u, 4u, 9u}) {
    const PlacementResult eager = greedy_coverage_placement(problem, k);
    const PlacementResult lazy = lazy_coverage_placement(problem, k);
    EXPECT_EQ(eager.nodes, lazy.nodes) << "k=" << k;
    EXPECT_DOUBLE_EQ(eager.customers, lazy.customers);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, LazyEquivalence,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(LazyGreedy, EvaluatesFewerGainsThanEager) {
  util::Rng rng(71);
  const auto net = testing::random_network(8, 8, 10, rng);
  const auto flows = testing::random_flows(net, 60, rng);
  const traffic::LinearUtility utility(8.0);
  const PlacementProblem problem(net, flows, 10, utility);
  LazyGreedyStats stats;
  const std::size_t k = 10;
  (void)lazy_marginal_greedy_placement(problem, k, &stats);
  // Eager evaluates |V| gains per step; lazy must beat that clearly.
  EXPECT_LT(stats.gain_evaluations, k * net.num_nodes() / 2);
  // It always pays the initial full sweep.
  EXPECT_GE(stats.gain_evaluations, net.num_nodes());
}

TEST(LazyGreedy, StatsOptional) {
  Fig4 fig;
  const traffic::LinearUtility utility(6.0);
  const PlacementProblem problem(fig.net, fig.flows, Fig4::shop, utility);
  EXPECT_NO_THROW(lazy_marginal_greedy_placement(problem, 2, nullptr));
}

}  // namespace
}  // namespace rap::core
