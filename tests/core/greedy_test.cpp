#include "src/core/greedy.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/evaluator.h"
#include "tests/testing/builders.h"

namespace rap::core {
namespace {

using testing::Fig4;

TEST(GreedyCoverage, RejectsZeroK) {
  Fig4 fig;
  const traffic::ThresholdUtility utility(Fig4::threshold);
  const PlacementProblem problem(fig.net, fig.flows, Fig4::shop, utility);
  EXPECT_THROW(greedy_coverage_placement(problem, 0), std::invalid_argument);
}

TEST(GreedyCoverage, KOnePicksBestSingleton) {
  Fig4 fig;
  const traffic::ThresholdUtility utility(Fig4::threshold);
  const PlacementProblem problem(fig.net, fig.flows, Fig4::shop, utility);
  const PlacementResult result = greedy_coverage_placement(problem, 1);
  EXPECT_EQ(result.nodes, Placement{Fig4::V3});
  EXPECT_DOUBLE_EQ(result.customers, 15.0);
}

TEST(GreedyCoverage, PlaceAllKWhenRequested) {
  Fig4 fig;
  const traffic::ThresholdUtility utility(Fig4::threshold);
  const PlacementProblem problem(fig.net, fig.flows, Fig4::shop, utility);
  GreedyOptions options;
  options.stop_when_no_gain = false;
  const PlacementResult result = greedy_coverage_placement(problem, 5, options);
  EXPECT_EQ(result.nodes.size(), 5u);
  EXPECT_DOUBLE_EQ(result.customers, 17.0);  // padding adds nothing
}

TEST(GreedyCoverage, NeverPlacesMoreThanNodes) {
  Fig4 fig;
  const traffic::ThresholdUtility utility(Fig4::threshold);
  const PlacementProblem problem(fig.net, fig.flows, Fig4::shop, utility);
  GreedyOptions options;
  options.stop_when_no_gain = false;
  const PlacementResult result = greedy_coverage_placement(problem, 100, options);
  EXPECT_LE(result.nodes.size(), fig.net.num_nodes());
}

TEST(GreedyCoverage, ValueMatchesEvaluator) {
  util::Rng rng(5);
  const auto net = testing::random_network(5, 5, 6, rng);
  const auto flows = testing::random_flows(net, 20, rng);
  const traffic::ThresholdUtility utility(8.0);
  const PlacementProblem problem(net, flows, 12, utility);
  const PlacementResult result = greedy_coverage_placement(problem, 4);
  EXPECT_NEAR(result.customers, evaluate_placement(problem, result.nodes), 1e-9);
}

TEST(GreedyCoverage, ValueMonotoneInK) {
  util::Rng rng(7);
  const auto net = testing::random_network(5, 5, 6, rng);
  const auto flows = testing::random_flows(net, 20, rng);
  const traffic::ThresholdUtility utility(8.0);
  const PlacementProblem problem(net, flows, 12, utility);
  double prev = 0.0;
  for (std::size_t k = 1; k <= 8; ++k) {
    const double value = greedy_coverage_placement(problem, k).customers;
    EXPECT_GE(value, prev - 1e-12);
    prev = value;
  }
}

TEST(GreedyCoverage, PlacementsAreNested) {
  // Greedy placements are prefixes of each other across k.
  util::Rng rng(9);
  const auto net = testing::random_network(5, 5, 6, rng);
  const auto flows = testing::random_flows(net, 20, rng);
  const traffic::ThresholdUtility utility(8.0);
  const PlacementProblem problem(net, flows, 12, utility);
  const Placement big = greedy_coverage_placement(problem, 6).nodes;
  for (std::size_t k = 1; k < big.size(); ++k) {
    const Placement small = greedy_coverage_placement(problem, k).nodes;
    ASSERT_EQ(small.size(), k);
    for (std::size_t i = 0; i < k; ++i) EXPECT_EQ(small[i], big[i]);
  }
}

TEST(GreedyCoverage, NoDuplicateNodes) {
  util::Rng rng(11);
  const auto net = testing::random_network(4, 4, 5, rng);
  const auto flows = testing::random_flows(net, 15, rng);
  const traffic::ThresholdUtility utility(6.0);
  const PlacementProblem problem(net, flows, 0, utility);
  const Placement nodes = greedy_coverage_placement(problem, 8).nodes;
  Placement sorted = nodes;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(GreedyCoverage, CoversDisjointFlowsOnLine) {
  // Two disjoint flows on a line: greedy must cover both with k = 2.
  const auto net = testing::line_network(8);
  std::vector<traffic::TrafficFlow> flows;
  flows.push_back(traffic::make_shortest_path_flow(net, 0, 2, 10.0));
  flows.push_back(traffic::make_shortest_path_flow(net, 5, 7, 4.0));
  const traffic::ThresholdUtility utility(100.0);
  const PlacementProblem problem(net, flows, 3, utility);
  const PlacementResult result = greedy_coverage_placement(problem, 2);
  EXPECT_DOUBLE_EQ(result.customers, 14.0);
}

TEST(GreedyCoverage, ZeroRangeUtilityCoversOnlyOnRouteFlows) {
  // Tiny D: only flows passing the shop itself (detour 0) can be covered.
  const auto net = testing::line_network(6);
  std::vector<traffic::TrafficFlow> flows;
  flows.push_back(traffic::make_shortest_path_flow(net, 0, 4, 5.0));  // via shop 2
  flows.push_back(traffic::make_shortest_path_flow(net, 3, 5, 7.0));  // away
  const traffic::ThresholdUtility utility(1e-9);
  const PlacementProblem problem(net, flows, 2, utility);
  const PlacementResult result = greedy_coverage_placement(problem, 2);
  EXPECT_DOUBLE_EQ(result.customers, 5.0);
}

}  // namespace
}  // namespace rap::core
