#include "src/core/stochastic.h"

#include <gtest/gtest.h>

#include "src/core/composite_greedy.h"
#include "src/core/evaluator.h"
#include "tests/testing/builders.h"

namespace rap::core {
namespace {

std::vector<const CoverageModel*> as_pointers(
    const std::vector<std::unique_ptr<PlacementProblem>>& owned) {
  std::vector<const CoverageModel*> out;
  for (const auto& problem : owned) out.push_back(problem.get());
  return out;
}

struct Instance {
  graph::RoadNetwork net;
  std::vector<traffic::TrafficFlow> flows;
};

Instance make_instance(std::uint64_t seed) {
  util::Rng rng(seed);
  Instance inst;
  inst.net = testing::random_network(5, 5, 6, rng);
  inst.flows = testing::random_flows(inst.net, 15, rng, 0.5);
  return inst;
}

TEST(Stochastic, Validation) {
  const Instance inst = make_instance(1);
  const traffic::LinearUtility utility(6.0);
  const auto scenarios =
      make_demand_scenarios(inst.net, inst.flows, 0, utility, 3, 0.2, 1);
  const auto pointers = as_pointers(scenarios);
  EXPECT_THROW(stochastic_greedy_placement(pointers, 0), std::invalid_argument);
  const std::vector<const CoverageModel*> empty;
  EXPECT_THROW(stochastic_greedy_placement(empty, 2), std::invalid_argument);
  std::vector<const CoverageModel*> with_null = pointers;
  with_null.push_back(nullptr);
  EXPECT_THROW(stochastic_greedy_placement(with_null, 2),
               std::invalid_argument);
  EXPECT_THROW(make_demand_scenarios(inst.net, inst.flows, 0, utility, 0, 0.2, 1),
               std::invalid_argument);
}

TEST(Stochastic, RejectsMixedNetworks) {
  const Instance a = make_instance(2);
  const Instance b = make_instance(3);
  const traffic::LinearUtility utility(6.0);
  const PlacementProblem pa(a.net, a.flows, 0, utility);
  const PlacementProblem pb(b.net, b.flows, 0, utility);
  const std::vector<const CoverageModel*> mixed{&pa, &pb};
  EXPECT_THROW(stochastic_greedy_placement(mixed, 2), std::invalid_argument);
}

TEST(Stochastic, SingleScenarioEqualsNaiveGreedy) {
  const Instance inst = make_instance(4);
  const traffic::LinearUtility utility(6.0);
  const PlacementProblem problem(inst.net, inst.flows, 3, utility);
  const std::vector<const CoverageModel*> one{&problem};
  const PlacementResult stochastic = stochastic_greedy_placement(one, 4);
  const PlacementResult plain = naive_marginal_greedy_placement(problem, 4);
  EXPECT_EQ(stochastic.nodes, plain.nodes);
  EXPECT_NEAR(stochastic.customers, plain.customers, 1e-12);
}

TEST(Stochastic, ZeroNoiseScenariosEqualNominal) {
  const Instance inst = make_instance(5);
  const traffic::LinearUtility utility(6.0);
  const auto scenarios =
      make_demand_scenarios(inst.net, inst.flows, 2, utility, 4, 0.0, 7);
  const auto pointers = as_pointers(scenarios);
  const PlacementProblem nominal(inst.net, inst.flows, 2, utility);
  const PlacementResult saa = stochastic_greedy_placement(pointers, 3);
  const PlacementResult plain = naive_marginal_greedy_placement(nominal, 3);
  EXPECT_EQ(saa.nodes, plain.nodes);
  EXPECT_NEAR(saa.customers, plain.customers, 1e-9);
}

TEST(Stochastic, ReportedValueIsScenarioAverage) {
  const Instance inst = make_instance(6);
  const traffic::LinearUtility utility(6.0);
  const auto scenarios =
      make_demand_scenarios(inst.net, inst.flows, 1, utility, 5, 0.3, 9);
  const auto pointers = as_pointers(scenarios);
  const PlacementResult saa = stochastic_greedy_placement(pointers, 3);
  EXPECT_NEAR(saa.customers,
              evaluate_scenario_average(pointers, saa.nodes), 1e-9);
}

TEST(Stochastic, BeatsNominalPlanOnTheSampledAverage) {
  // The SAA greedy optimises the sampled average directly, so it should
  // (weakly) beat the nominal-demand greedy's placement on that average —
  // aggregated across seeds since the greedy is not exactly optimal.
  double saa_total = 0.0;
  double nominal_total = 0.0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Instance inst = make_instance(seed + 20);
    const traffic::LinearUtility utility(6.0);
    const auto scenarios =
        make_demand_scenarios(inst.net, inst.flows, 4, utility, 6, 0.5, seed);
    const auto pointers = as_pointers(scenarios);
    const PlacementProblem nominal(inst.net, inst.flows, 4, utility);
    const Placement nominal_nodes =
        naive_marginal_greedy_placement(nominal, 3).nodes;
    saa_total += stochastic_greedy_placement(pointers, 3).customers;
    nominal_total += evaluate_scenario_average(pointers, nominal_nodes);
  }
  EXPECT_GE(saa_total, nominal_total - 1e-9);
}

TEST(Stochastic, MonotoneInK) {
  const Instance inst = make_instance(8);
  const traffic::LinearUtility utility(6.0);
  const auto scenarios =
      make_demand_scenarios(inst.net, inst.flows, 5, utility, 4, 0.25, 3);
  const auto pointers = as_pointers(scenarios);
  double prev = 0.0;
  for (std::size_t k = 1; k <= 5; ++k) {
    const double value = stochastic_greedy_placement(pointers, k).customers;
    EXPECT_GE(value, prev - 1e-12);
    prev = value;
  }
}

TEST(Stochastic, DeterministicScenarios) {
  const Instance inst = make_instance(9);
  const traffic::LinearUtility utility(6.0);
  const auto a =
      make_demand_scenarios(inst.net, inst.flows, 1, utility, 3, 0.2, 11);
  const auto b =
      make_demand_scenarios(inst.net, inst.flows, 1, utility, 3, 0.2, 11);
  for (std::size_t s = 0; s < a.size(); ++s) {
    for (std::size_t f = 0; f < inst.flows.size(); ++f) {
      EXPECT_DOUBLE_EQ(a[s]->flows()[f].daily_vehicles,
                       b[s]->flows()[f].daily_vehicles);
    }
  }
}

}  // namespace
}  // namespace rap::core
