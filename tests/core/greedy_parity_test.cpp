// Regression suite for the lazy/eager parity fix and the unified budget
// contract (core/k_policy.h).
//
// Pre-fix, the lazy variants took no options struct: they always stopped at
// zero gain, so any caller padding to exactly k RAPs (stop_when_no_gain =
// false) diverged from the eager greedy it documents itself against. These
// tests pin the fixed behaviour: bit-identical placements AND values under
// both option settings, zero-gain padding included.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/core/composite_greedy.h"
#include "src/core/exhaustive.h"
#include "src/core/greedy.h"
#include "src/core/lazy_greedy.h"
#include "src/obs/telemetry.h"
#include "src/traffic/utility.h"
#include "tests/testing/builders.h"

namespace rap::core {
namespace {

using rap::testing::Fig4;

class GreedyParity : public ::testing::Test {
 protected:
  GreedyParity()
      : threshold_(Fig4::threshold),
        linear_(Fig4::threshold),
        threshold_problem_(fig_.net, fig_.flows, Fig4::shop, threshold_),
        linear_problem_(fig_.net, fig_.flows, Fig4::shop, linear_) {}

  Fig4 fig_;
  traffic::ThresholdUtility threshold_;
  traffic::LinearUtility linear_;
  PlacementProblem threshold_problem_;
  PlacementProblem linear_problem_;
};

void expect_bitwise_equal(const PlacementResult& a, const PlacementResult& b) {
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.customers, b.customers);  // bitwise, not NEAR
}

TEST_F(GreedyParity, LazyCoveragePadsExactlyLikeEager) {
  // Fig. 4 covers every flow with two RAPs, so k = 5 forces three zero-gain
  // padding picks — the divergence the fix closes.
  const GreedyOptions pad{.stop_when_no_gain = false};
  const PlacementResult eager =
      greedy_coverage_placement(threshold_problem_, 5, pad);
  const PlacementResult lazy =
      lazy_coverage_placement(threshold_problem_, 5, nullptr, pad);
  ASSERT_EQ(eager.nodes.size(), 5u);
  expect_bitwise_equal(eager, lazy);
  // Padding picks are the zero-gain nodes in ascending id order, appended
  // after the productive prefix.
  const PlacementResult stopped = greedy_coverage_placement(threshold_problem_, 5);
  ASSERT_EQ(stopped.nodes.size(), 2u);
  EXPECT_EQ(Placement(eager.nodes.begin(), eager.nodes.begin() + 2),
            stopped.nodes);
  EXPECT_EQ(eager.customers, stopped.customers);
}

TEST_F(GreedyParity, LazyMarginalPadsExactlyLikeEager) {
  const CompositeGreedyOptions pad{.stop_when_no_gain = false};
  for (std::size_t k = 1; k <= 6; ++k) {
    expect_bitwise_equal(
        naive_marginal_greedy_placement(linear_problem_, k, pad),
        lazy_marginal_greedy_placement(linear_problem_, k, nullptr, pad));
  }
}

TEST_F(GreedyParity, DefaultOptionsStillAgree) {
  for (std::size_t k = 1; k <= 6; ++k) {
    expect_bitwise_equal(greedy_coverage_placement(threshold_problem_, k),
                         lazy_coverage_placement(threshold_problem_, k));
    expect_bitwise_equal(
        naive_marginal_greedy_placement(linear_problem_, k),
        lazy_marginal_greedy_placement(linear_problem_, k));
  }
}

TEST_F(GreedyParity, StatsStillReportedWithOptions) {
  LazyGreedyStats stats;
  const CompositeGreedyOptions pad{.stop_when_no_gain = false};
  (void)lazy_marginal_greedy_placement(linear_problem_, 6, &stats, pad);
  EXPECT_GT(stats.gain_evaluations, 0u);
  EXPECT_GT(stats.heap_pops, 0u);
}

TEST_F(GreedyParity, ZeroBudgetThrowsEverywhere) {
  EXPECT_THROW(greedy_coverage_placement(threshold_problem_, 0),
               std::invalid_argument);
  EXPECT_THROW(lazy_coverage_placement(threshold_problem_, 0),
               std::invalid_argument);
  EXPECT_THROW(composite_greedy_placement(linear_problem_, 0),
               std::invalid_argument);
  EXPECT_THROW(naive_marginal_greedy_placement(linear_problem_, 0),
               std::invalid_argument);
  EXPECT_THROW(lazy_marginal_greedy_placement(linear_problem_, 0),
               std::invalid_argument);
  EXPECT_THROW(exhaustive_optimal_placement(threshold_problem_, 0),
               std::invalid_argument);
}

TEST_F(GreedyParity, OverBudgetClampsAndSetsTheGauge) {
  const std::size_t n = threshold_problem_.num_nodes();
  obs::Telemetry telemetry;
  {
    const obs::TelemetryScope scope(telemetry);
    const GreedyOptions pad{.stop_when_no_gain = false};
    const PlacementResult padded =
        greedy_coverage_placement(threshold_problem_, n + 5, pad);
    EXPECT_EQ(padded.nodes.size(), n);  // clamped to every node
  }
  EXPECT_DOUBLE_EQ(telemetry.metrics.gauge("placement.k_clamped").value(),
                   5.0);
}

TEST_F(GreedyParity, OverBudgetClampsForTheWholeFamily) {
  const std::size_t n = threshold_problem_.num_nodes();
  // No throw, never more than n RAPs, for every entry point.
  EXPECT_LE(greedy_coverage_placement(threshold_problem_, n + 1).nodes.size(), n);
  EXPECT_LE(lazy_coverage_placement(threshold_problem_, n + 1).nodes.size(), n);
  EXPECT_LE(composite_greedy_placement(linear_problem_, n + 1).nodes.size(), n);
  EXPECT_LE(naive_marginal_greedy_placement(linear_problem_, n + 1).nodes.size(),
            n);
  EXPECT_LE(lazy_marginal_greedy_placement(linear_problem_, n + 1).nodes.size(),
            n);
  EXPECT_LE(exhaustive_optimal_placement(threshold_problem_, n + 1).nodes.size(),
            n);
  // Clamped and unclamped budgets agree: k caps at n either way.
  expect_bitwise_equal(exhaustive_optimal_placement(threshold_problem_, n + 1),
                       exhaustive_optimal_placement(threshold_problem_, n));
}

}  // namespace
}  // namespace rap::core
