// Approximation-ratio property sweeps: on exhaustively-solvable random
// instances, Algorithm 1 must stay within 1 - 1/e of the optimum under the
// threshold utility (Section III-B), and Algorithm 2 within 1 - 1/sqrt(e)
// under any non-increasing utility (Theorem 2). The naive marginal greedy
// carries no bound; we record only that it can fall below the composite's
// guarantee structure (Fig. 4 proves it can tie or lose).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/core/composite_greedy.h"
#include "src/core/exhaustive.h"
#include "src/core/greedy.h"
#include "tests/testing/builders.h"

namespace rap::core {
namespace {

constexpr double kRatioAlg1 = 1.0 - 1.0 / std::numbers::e;        // ~0.632
const double kRatioAlg2 = 1.0 - 1.0 / std::sqrt(std::numbers::e);  // ~0.393

struct Instance {
  graph::RoadNetwork net;
  std::vector<traffic::TrafficFlow> flows;
  graph::NodeId shop;
};

Instance make_instance(std::uint64_t seed) {
  util::Rng rng(seed * 101 + 7);
  Instance inst;
  inst.net = testing::random_network(3 + rng.next_below(2),
                                     3 + rng.next_below(2),
                                     rng.next_below(5), rng);
  inst.flows = testing::random_flows(inst.net, 6 + rng.next_below(6), rng);
  inst.shop = static_cast<graph::NodeId>(rng.next_below(inst.net.num_nodes()));
  return inst;
}

class ApproximationRatios : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApproximationRatios, Algorithm1MeetsOneMinusOneOverE) {
  const Instance inst = make_instance(GetParam());
  const traffic::ThresholdUtility utility(4.0);
  const PlacementProblem problem(inst.net, inst.flows, inst.shop, utility);
  for (const std::size_t k : {1u, 2u, 3u}) {
    const double opt =
        exhaustive_optimal_placement(problem, k, {5'000'000}).customers;
    const double greedy = greedy_coverage_placement(problem, k).customers;
    EXPECT_GE(greedy, kRatioAlg1 * opt - 1e-9)
        << "k=" << k << " opt=" << opt << " greedy=" << greedy;
  }
}

TEST_P(ApproximationRatios, Algorithm2MeetsOneMinusOneOverSqrtE) {
  const Instance inst = make_instance(GetParam());
  for (const traffic::UtilityKind kind :
       {traffic::UtilityKind::kLinear, traffic::UtilityKind::kSqrt}) {
    const auto utility = traffic::make_utility(kind, 5.0);
    const PlacementProblem problem(inst.net, inst.flows, inst.shop, *utility);
    for (const std::size_t k : {1u, 2u, 3u}) {
      const double opt =
          exhaustive_optimal_placement(problem, k, {5'000'000}).customers;
      const double greedy = composite_greedy_placement(problem, k).customers;
      EXPECT_GE(greedy, kRatioAlg2 * opt - 1e-9)
          << utility->name() << " k=" << k << " opt=" << opt;
    }
  }
}

TEST_P(ApproximationRatios, KEqualsOneGreedyIsOptimal) {
  const Instance inst = make_instance(GetParam() + 1000);
  const traffic::LinearUtility utility(5.0);
  const PlacementProblem problem(inst.net, inst.flows, inst.shop, utility);
  const double opt = exhaustive_optimal_placement(problem, 1).customers;
  EXPECT_NEAR(composite_greedy_placement(problem, 1).customers, opt, 1e-9);
}

TEST_P(ApproximationRatios, GreedyNeverExceedsOptimum) {
  const Instance inst = make_instance(GetParam() + 2000);
  const traffic::LinearUtility utility(5.0);
  const PlacementProblem problem(inst.net, inst.flows, inst.shop, utility);
  for (const std::size_t k : {1u, 2u, 3u}) {
    const double opt =
        exhaustive_optimal_placement(problem, k, {5'000'000}).customers;
    EXPECT_LE(composite_greedy_placement(problem, k).customers, opt + 1e-9);
    EXPECT_LE(greedy_coverage_placement(problem, k).customers, opt + 1e-9);
    EXPECT_LE(naive_marginal_greedy_placement(problem, k).customers, opt + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ApproximationRatios,
                         ::testing::Range<std::uint64_t>(0, 15));

// In practice Algorithm 1 is far better than its worst-case bound on
// threshold instances; sanity-check it is near-optimal on small ones.
TEST(ApproximationAggregate, Algorithm1NearOptimalOnAverage) {
  double greedy_total = 0.0;
  double opt_total = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Instance inst = make_instance(seed + 3000);
    const traffic::ThresholdUtility utility(4.0);
    const PlacementProblem problem(inst.net, inst.flows, inst.shop, utility);
    greedy_total += greedy_coverage_placement(problem, 2).customers;
    opt_total += exhaustive_optimal_placement(problem, 2).customers;
  }
  EXPECT_GE(greedy_total, 0.95 * opt_total);
}

}  // namespace
}  // namespace rap::core
