#include "src/core/evaluator.h"

#include <gtest/gtest.h>

#include "tests/testing/builders.h"

namespace rap::core {
namespace {

using testing::Fig4;

class EvaluatorFig4 : public ::testing::Test {
 protected:
  EvaluatorFig4()
      : threshold_(Fig4::threshold),
        linear_(Fig4::threshold),
        threshold_problem_(fig_.net, fig_.flows, Fig4::shop, threshold_),
        linear_problem_(fig_.net, fig_.flows, Fig4::shop, linear_) {}

  Fig4 fig_;
  traffic::ThresholdUtility threshold_;
  traffic::LinearUtility linear_;
  PlacementProblem threshold_problem_;
  PlacementProblem linear_problem_;
};

TEST_F(EvaluatorFig4, EmptyPlacementIsZero) {
  const PlacementState state(linear_problem_);
  EXPECT_DOUBLE_EQ(state.value(), 0.0);
  EXPECT_TRUE(state.placement().empty());
}

TEST_F(EvaluatorFig4, SingletonGainsThreshold) {
  const PlacementState state(threshold_problem_);
  EXPECT_DOUBLE_EQ(state.uncovered_gain(Fig4::V3), 15.0);  // 6 + 3 + 6
  EXPECT_DOUBLE_EQ(state.uncovered_gain(Fig4::V5), 11.0);  // 6 + 3 + 2
  EXPECT_DOUBLE_EQ(state.uncovered_gain(Fig4::V2), 6.0);
  EXPECT_DOUBLE_EQ(state.uncovered_gain(Fig4::V6), 0.0);  // detour 8 > D
  EXPECT_DOUBLE_EQ(state.uncovered_gain(Fig4::V1), 0.0);  // no flows
}

TEST_F(EvaluatorFig4, SingletonGainsLinear) {
  const PlacementState state(linear_problem_);
  EXPECT_DOUBLE_EQ(state.uncovered_gain(Fig4::V3), 5.0);        // 15 * (1/3)
  EXPECT_NEAR(state.uncovered_gain(Fig4::V2), 4.0, 1e-12);      // 6 * (2/3)
  EXPECT_NEAR(state.uncovered_gain(Fig4::V4), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(state.uncovered_gain(Fig4::V5), 0.0);        // all detour 6
}

TEST_F(EvaluatorFig4, PaperPlacementValues) {
  // Section III-C: {V3, V5} attracts 5 customers under the linear utility;
  // {V2, V4} attracts 8.
  const Placement v3v5{Fig4::V3, Fig4::V5};
  const Placement v2v4{Fig4::V2, Fig4::V4};
  EXPECT_NEAR(evaluate_placement(linear_problem_, v3v5), 5.0, 1e-12);
  EXPECT_NEAR(evaluate_placement(linear_problem_, v2v4), 8.0, 1e-12);
  // Threshold: {V3, V5} covers all four flows.
  EXPECT_DOUBLE_EQ(evaluate_placement(threshold_problem_, v3v5), 17.0);
}

TEST_F(EvaluatorFig4, ImprovementGainTracksOverlap) {
  PlacementState state(linear_problem_);
  state.add(Fig4::V3);
  EXPECT_DOUBLE_EQ(state.value(), 5.0);
  // V2 improves T(2,5) from probability 1/3 to 2/3: +2 customers.
  EXPECT_NEAR(state.improvement_gain(Fig4::V2), 2.0, 1e-12);
  EXPECT_NEAR(state.improvement_gain(Fig4::V4), 2.0, 1e-12);
  // V5 offers larger detours: no improvement.
  EXPECT_DOUBLE_EQ(state.improvement_gain(Fig4::V5), 0.0);
  // T(5,6) stays uncovered; V5's uncovered gain is 0 (probability 0 at 6).
  EXPECT_DOUBLE_EQ(state.uncovered_gain(Fig4::V5), 0.0);
}

TEST_F(EvaluatorFig4, GainDecompositionAddsUp) {
  PlacementState state(linear_problem_);
  state.add(Fig4::V3);
  for (graph::NodeId v = 0; v < 6; ++v) {
    EXPECT_NEAR(state.gain_if_added(v),
                state.uncovered_gain(v) + state.improvement_gain(v), 1e-12);
  }
}

TEST_F(EvaluatorFig4, AddIsIdempotent) {
  PlacementState state(linear_problem_);
  state.add(Fig4::V3);
  const double value = state.value();
  state.add(Fig4::V3);
  EXPECT_DOUBLE_EQ(state.value(), value);
  EXPECT_EQ(state.placement().size(), 1u);
}

TEST_F(EvaluatorFig4, GainMatchesValueDelta) {
  PlacementState state(linear_problem_);
  for (const graph::NodeId v : {Fig4::V3, Fig4::V2, Fig4::V5, Fig4::V4}) {
    const double predicted = state.gain_if_added(v);
    const double before = state.value();
    state.add(v);
    EXPECT_NEAR(state.value() - before, predicted, 1e-12);
  }
}

TEST_F(EvaluatorFig4, BestDetoursTracked) {
  PlacementState state(linear_problem_);
  state.add(Fig4::V5);
  EXPECT_DOUBLE_EQ(state.best_detours()[0], 6.0);  // T(2,5) via V5
  state.add(Fig4::V3);
  EXPECT_DOUBLE_EQ(state.best_detours()[0], 4.0);  // improved via V3
  EXPECT_EQ(state.best_detours()[3], 6.0);         // T(5,6) via V5
}

TEST_F(EvaluatorFig4, ContainsAndValidation) {
  PlacementState state(linear_problem_);
  EXPECT_FALSE(state.contains(Fig4::V3));
  state.add(Fig4::V3);
  EXPECT_TRUE(state.contains(Fig4::V3));
  EXPECT_THROW(state.add(99), std::out_of_range);
  EXPECT_THROW(state.contains(99), std::out_of_range);
}

TEST_F(EvaluatorFig4, EvaluateToleratesDuplicates) {
  const Placement dup{Fig4::V3, Fig4::V3, Fig4::V5};
  EXPECT_DOUBLE_EQ(evaluate_placement(threshold_problem_, dup), 17.0);
}

// Monotonicity: adding RAPs never decreases the value (order-independent).
class EvaluatorMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EvaluatorMonotone, ValueNonDecreasingUnderAdds) {
  util::Rng rng(GetParam() + 40);
  const auto net = testing::random_network(4, 4, 5, rng);
  const auto flows = testing::random_flows(net, 12, rng);
  const traffic::LinearUtility utility(6.0);
  const PlacementProblem problem(net, flows, 3, utility);
  PlacementState state(problem);
  double prev = 0.0;
  std::vector<graph::NodeId> nodes(net.num_nodes());
  for (graph::NodeId v = 0; v < nodes.size(); ++v) nodes[v] = v;
  rng.shuffle(nodes);
  for (const graph::NodeId v : nodes) {
    state.add(v);
    EXPECT_GE(state.value(), prev - 1e-12);
    prev = state.value();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, EvaluatorMonotone,
                         ::testing::Range<std::uint64_t>(0, 8));

// Order independence: final value is the same for any insertion order.
TEST(Evaluator, OrderIndependentFinalValue) {
  util::Rng rng(99);
  const auto net = testing::random_network(4, 4, 4, rng);
  const auto flows = testing::random_flows(net, 10, rng);
  const traffic::LinearUtility utility(5.0);
  const PlacementProblem problem(net, flows, 0, utility);
  Placement nodes{1, 5, 9, 13};
  const double reference = evaluate_placement(problem, nodes);
  for (int trial = 0; trial < 10; ++trial) {
    rng.shuffle(nodes);
    EXPECT_NEAR(evaluate_placement(problem, nodes), reference, 1e-12);
  }
}

}  // namespace
}  // namespace rap::core
