#include "src/core/baselines.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/core/evaluator.h"
#include "src/core/exhaustive.h"
#include "src/geo/bbox.h"
#include "tests/testing/builders.h"

namespace rap::core {
namespace {

using testing::Fig4;

class BaselinesFig4 : public ::testing::Test {
 protected:
  BaselinesFig4()
      : utility_(Fig4::threshold),
        problem_(fig_.net, fig_.flows, Fig4::shop, utility_) {}

  Fig4 fig_;
  traffic::ThresholdUtility utility_;
  PlacementProblem problem_;
};

TEST_F(BaselinesFig4, AllRejectZeroK) {
  util::Rng rng(1);
  EXPECT_THROW(max_cardinality_placement(problem_, 0), std::invalid_argument);
  EXPECT_THROW(max_vehicles_placement(problem_, 0), std::invalid_argument);
  EXPECT_THROW(max_customers_placement(problem_, 0), std::invalid_argument);
  EXPECT_THROW(random_placement(problem_, 0, rng), std::invalid_argument);
}

TEST_F(BaselinesFig4, MaxCardinalityRanking) {
  // Flow counts: V3 and V5 see 3 flows, V2/V4/V6 one, V1 none.
  const PlacementResult result = max_cardinality_placement(problem_, 3);
  EXPECT_EQ(result.nodes[0], Fig4::V3);  // tie with V5 broken by id
  EXPECT_EQ(result.nodes[1], Fig4::V5);
}

TEST_F(BaselinesFig4, MaxVehiclesRanking) {
  // Vehicles: V3 = 15, V5 = 11, V2 = 6, V4 = 6, V6 = 2, V1 = 0.
  const PlacementResult result = max_vehicles_placement(problem_, 4);
  EXPECT_EQ(result.nodes,
            (Placement{Fig4::V3, Fig4::V5, Fig4::V2, Fig4::V4}));
}

TEST_F(BaselinesFig4, MaxCustomersRanking) {
  // Threshold singleton customers: V3 = 15, V5 = 11, V2 = V4 = 6.
  const PlacementResult result = max_customers_placement(problem_, 2);
  EXPECT_EQ(result.nodes, (Placement{Fig4::V3, Fig4::V5}));
  EXPECT_DOUBLE_EQ(result.customers, 17.0);
}

TEST_F(BaselinesFig4, MaxCustomersOptimalAtKOne) {
  const double ranked = max_customers_placement(problem_, 1).customers;
  const double opt = exhaustive_optimal_placement(problem_, 1).customers;
  EXPECT_DOUBLE_EQ(ranked, opt);
}

TEST_F(BaselinesFig4, ValueIsEvaluatedJointly) {
  // MaxCustomers ranks nodes independently; the reported value must still
  // deduplicate overlapping coverage via the evaluator.
  const PlacementResult result = max_customers_placement(problem_, 2);
  EXPECT_NEAR(result.customers, evaluate_placement(problem_, result.nodes),
              1e-12);
  EXPECT_LT(result.customers, 15.0 + 11.0);  // naive sum double-counts
}

TEST_F(BaselinesFig4, KLargerThanNetworkIsClamped) {
  util::Rng rng(2);
  EXPECT_EQ(max_cardinality_placement(problem_, 100).nodes.size(), 6u);
  EXPECT_EQ(random_placement(problem_, 100, rng).nodes.size(), 6u);
}

TEST_F(BaselinesFig4, RandomPlacementStaysInSquare) {
  // D = 6 around V1 covers the whole tiny network; shrink the utility range
  // via a different problem to test the square restriction.
  const traffic::ThresholdUtility tight(2.0);
  const PlacementProblem problem(fig_.net, fig_.flows, Fig4::shop, tight);
  const geo::BBox square =
      geo::BBox::centered_square(fig_.net.position(Fig4::shop), 2.0);
  util::Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const PlacementResult result = random_placement(problem, 2, rng);
    for (const graph::NodeId v : result.nodes) {
      EXPECT_TRUE(square.contains(fig_.net.position(v)));
    }
  }
}

TEST_F(BaselinesFig4, RandomPlacementDistinctNodes) {
  util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const PlacementResult result = random_placement(problem_, 4, rng);
    const std::set<graph::NodeId> unique(result.nodes.begin(),
                                         result.nodes.end());
    EXPECT_EQ(unique.size(), result.nodes.size());
  }
}

TEST_F(BaselinesFig4, RandomPlacementIsSeedDeterministic) {
  util::Rng rng1(7);
  util::Rng rng2(7);
  EXPECT_EQ(random_placement(problem_, 3, rng1).nodes,
            random_placement(problem_, 3, rng2).nodes);
}

TEST_F(BaselinesFig4, RandomCoversAllEligibleNodesEventually) {
  util::Rng rng(9);
  std::set<graph::NodeId> seen;
  for (int trial = 0; trial < 100; ++trial) {
    for (const graph::NodeId v : random_placement(problem_, 1, rng).nodes) {
      seen.insert(v);
    }
  }
  EXPECT_EQ(seen.size(), 6u);  // D = 6 square covers the whole network
}

TEST(Baselines, RandomRequiresSingleShop) {
  testing::Fig4 fig;
  const traffic::ThresholdUtility utility(6.0);
  const PlacementProblem problem(
      fig.net, fig.flows, graph::kInvalidNode, utility,
      std::make_unique<traffic::DetourCalculator>(fig.net, Fig4::shop));
  util::Rng rng(1);
  EXPECT_THROW(random_placement(problem, 1, rng), std::invalid_argument);
}

TEST(Baselines, GreedyDominatesBaselinesOnAverage) {
  // Not guaranteed per-instance, but on average over random instances the
  // paper's Algorithm 1 should beat every baseline under the threshold
  // utility. Aggregate over seeds with a small slack.
  double greedy_total = 0.0;
  double best_baseline_total = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    util::Rng rng(seed * 17 + 5);
    const auto net = testing::random_network(5, 5, 6, rng);
    const auto flows = testing::random_flows(net, 20, rng);
    const traffic::ThresholdUtility utility(6.0);
    const PlacementProblem problem(net, flows, 12, utility);
    greedy_total +=
        exhaustive_optimal_placement(problem, 2, {1'000'000}).customers;
    const double card = max_cardinality_placement(problem, 2).customers;
    const double veh = max_vehicles_placement(problem, 2).customers;
    const double cust = max_customers_placement(problem, 2).customers;
    best_baseline_total += std::max({card, veh, cust});
  }
  EXPECT_GE(greedy_total, best_baseline_total - 1e-9);
}

}  // namespace
}  // namespace rap::core
