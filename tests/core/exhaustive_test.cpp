#include "src/core/exhaustive.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/evaluator.h"
#include "tests/testing/builders.h"

namespace rap::core {
namespace {

using testing::Fig4;

TEST(Exhaustive, RejectsZeroK) {
  Fig4 fig;
  const traffic::LinearUtility utility(6.0);
  const PlacementProblem problem(fig.net, fig.flows, Fig4::shop, utility);
  EXPECT_THROW(exhaustive_optimal_placement(problem, 0), std::invalid_argument);
}

TEST(Exhaustive, MatchesBruteForceOnFig4) {
  Fig4 fig;
  const traffic::LinearUtility utility(6.0);
  const PlacementProblem problem(fig.net, fig.flows, Fig4::shop, utility);
  // Brute force over every pair of nodes.
  double best = 0.0;
  for (graph::NodeId a = 0; a < 6; ++a) {
    for (graph::NodeId b = a + 1; b < 6; ++b) {
      const Placement pair{a, b};
      best = std::max(best, evaluate_placement(problem, pair));
    }
  }
  EXPECT_NEAR(exhaustive_optimal_placement(problem, 2).customers, best, 1e-12);
}

TEST(Exhaustive, HandlesKLargerThanUsefulCandidates) {
  const auto net = testing::line_network(4);
  std::vector<traffic::TrafficFlow> flows;
  flows.push_back(traffic::make_shortest_path_flow(net, 0, 1, 5.0));
  const traffic::ThresholdUtility utility(100.0);
  const PlacementProblem problem(net, flows, 2, utility);
  const PlacementResult result = exhaustive_optimal_placement(problem, 10);
  EXPECT_DOUBLE_EQ(result.customers, 5.0);
  EXPECT_LE(result.nodes.size(), 2u);  // only nodes 0, 1 are useful
}

TEST(Exhaustive, EmptyWhenNothingUseful) {
  const auto net = testing::line_network(4);
  std::vector<traffic::TrafficFlow> flows;
  flows.push_back(traffic::make_shortest_path_flow(net, 2, 3, 5.0));
  const traffic::ThresholdUtility utility(1e-9);  // covers nothing off-route
  // Shop at 0: flow 2->3 has detour 4 at node 2 — far beyond D.
  const PlacementProblem problem(net, flows, 0, utility);
  const PlacementResult result = exhaustive_optimal_placement(problem, 2);
  EXPECT_TRUE(result.nodes.empty());
  EXPECT_DOUBLE_EQ(result.customers, 0.0);
}

TEST(Exhaustive, CombinationBudgetEnforced) {
  util::Rng rng(3);
  const auto net = testing::random_network(5, 5, 5, rng);
  const auto flows = testing::random_flows(net, 20, rng);
  const traffic::LinearUtility utility(8.0);
  const PlacementProblem problem(net, flows, 0, utility);
  ExhaustiveOptions tiny;
  tiny.max_combinations = 2;
  EXPECT_THROW(exhaustive_optimal_placement(problem, 3, tiny),
               std::invalid_argument);
  // The message names the count and the cap: a complete bug report.
  try {
    (void)exhaustive_optimal_placement(problem, 3, tiny);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("combinations"), std::string::npos) << what;
    EXPECT_NE(what.find("max_combinations = 2"), std::string::npos) << what;
  }
}

TEST(Exhaustive, CombinationBudgetBoundaryIsInclusive) {
  Fig4 fig;
  const traffic::LinearUtility utility(6.0);
  const PlacementProblem problem(fig.net, fig.flows, Fig4::shop, utility);
  const std::size_t count = exhaustive_combination_count(problem, 2);
  ASSERT_GT(count, 1u);
  // count == cap enumerates; cap == count - 1 refuses up front.
  ExhaustiveOptions at_cap;
  at_cap.max_combinations = count;
  EXPECT_NO_THROW((void)exhaustive_optimal_placement(problem, 2, at_cap));
  ExhaustiveOptions below_cap;
  below_cap.max_combinations = count - 1;
  EXPECT_THROW(exhaustive_optimal_placement(problem, 2, below_cap),
               std::invalid_argument);
}

TEST(Exhaustive, CombinationCountReasonable) {
  Fig4 fig;
  const traffic::LinearUtility utility(6.0);
  const PlacementProblem problem(fig.net, fig.flows, Fig4::shop, utility);
  // Useful candidates on Fig 4 linear: V2, V3, V4 (others gain 0): C(3,2)=3.
  EXPECT_EQ(exhaustive_combination_count(problem, 2), 3u);
}

TEST(Exhaustive, DominatesGreedyEverywhere) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    util::Rng rng(seed + 11);
    const auto net = testing::random_network(3, 4, 3, rng);
    const auto flows = testing::random_flows(net, 8, rng);
    const traffic::LinearUtility utility(5.0);
    const PlacementProblem problem(net, flows, 0, utility);
    const double opt = exhaustive_optimal_placement(problem, 3).customers;
    // Optimum dominates any specific placement.
    for (int trial = 0; trial < 10; ++trial) {
      Placement random_nodes;
      for (int i = 0; i < 3; ++i) {
        random_nodes.push_back(
            static_cast<graph::NodeId>(rng.next_below(net.num_nodes())));
      }
      EXPECT_GE(opt + 1e-9, evaluate_placement(problem, random_nodes));
    }
  }
}

TEST(Exhaustive, MonotoneInK) {
  util::Rng rng(31);
  const auto net = testing::random_network(3, 3, 3, rng);
  const auto flows = testing::random_flows(net, 8, rng);
  const traffic::LinearUtility utility(4.0);
  const PlacementProblem problem(net, flows, 4, utility);
  double prev = 0.0;
  for (std::size_t k = 1; k <= 4; ++k) {
    const double value = exhaustive_optimal_placement(problem, k).customers;
    EXPECT_GE(value, prev - 1e-12);
    prev = value;
  }
}

}  // namespace
}  // namespace rap::core
