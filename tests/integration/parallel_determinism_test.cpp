// Differential determinism suite for the parallel execution engine
// (DESIGN.md §8): every parallel code path — APSP row sweeps, the greedy
// family's candidate scans, and the experiment runner's repetition loop —
// must produce *bit-identical* output at threads=1 and threads=4, across
// three city topologies and three seeds. Failures here mean a reduction
// reassociated floats, a tie broke by timing, or an RNG stream moved.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/citygen/grid_city.h"
#include "src/citygen/partial_grid_city.h"
#include "src/citygen/radial_city.h"
#include "src/core/composite_greedy.h"
#include "src/core/greedy.h"
#include "src/core/lazy_greedy.h"
#include "src/core/local_search.h"
#include "src/core/problem.h"
#include "src/eval/runner.h"
#include "src/graph/apsp.h"
#include "src/traffic/utility.h"
#include "src/util/thread_pool.h"
#include "tests/testing/builders.h"

namespace rap {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 17, 4242};

class ConfigGuard {
 public:
  ConfigGuard() : saved_(util::parallel_config()) {}
  ~ConfigGuard() { util::set_parallel_config(saved_); }

 private:
  util::ParallelConfig saved_;
};

struct City {
  std::string name;
  graph::RoadNetwork net;
};

std::vector<City> make_cities(std::uint64_t seed) {
  std::vector<City> cities;
  cities.push_back({"grid", citygen::GridCity({7, 7, 1.0, {0.0, 0.0}}).network()});
  {
    util::Rng rng(seed * 31 + 1);
    citygen::PartialGridSpec spec;
    spec.grid = {8, 8, 1.0, {0.0, 0.0}};
    cities.push_back(
        {"partial-grid", citygen::PartialGridCity(spec, rng).network()});
  }
  {
    util::Rng rng(seed * 31 + 2);
    citygen::RadialSpec spec;
    spec.rings = 4;
    spec.ring_spacing = 1.0;
    cities.push_back({"radial", citygen::build_radial_city(spec, rng)});
  }
  return cities;
}

// Exact double equality (EXPECT_EQ on doubles is bitwise up to -0.0/NaN,
// which these pipelines never produce).
#define EXPECT_BITEQ(a, b) EXPECT_EQ(a, b)

template <typename RunFn>
void expect_identical_placements(const std::string& label, RunFn&& run) {
  util::set_parallel_config({1});
  const core::PlacementResult serial = run();
  util::set_parallel_config({4});
  const core::PlacementResult parallel = run();
  EXPECT_EQ(serial.nodes, parallel.nodes) << label;
  EXPECT_BITEQ(serial.customers, parallel.customers) << label;
}

TEST(ParallelDeterminism, PlacementAlgorithmsAreThreadCountInvariant) {
  const ConfigGuard guard;
  for (const std::uint64_t seed : kSeeds) {
    for (const City& city : make_cities(seed)) {
      util::Rng rng(seed);
      auto flows = testing::random_flows(city.net, 35, rng, 0.5);
      const traffic::LinearUtility utility(8.0);
      const core::PlacementProblem problem(city.net, flows, 0, utility);
      const std::string tag = city.name + " seed=" + std::to_string(seed);
      constexpr std::size_t kK = 5;

      expect_identical_placements(tag + " alg1", [&] {
        return core::greedy_coverage_placement(problem, kK);
      });
      expect_identical_placements(tag + " alg2", [&] {
        return core::composite_greedy_placement(problem, kK);
      });
      expect_identical_placements(tag + " naive", [&] {
        return core::naive_marginal_greedy_placement(problem, kK);
      });
      expect_identical_placements(tag + " lazy-marginal", [&] {
        return core::lazy_marginal_greedy_placement(problem, kK);
      });
      expect_identical_placements(tag + " lazy-coverage", [&] {
        return core::lazy_coverage_placement(problem, kK);
      });
      expect_identical_placements(tag + " local-search", [&] {
        return core::greedy_with_local_search(problem, kK).placement;
      });
    }
  }
}

TEST(ParallelDeterminism, ApspMatrixIsThreadCountInvariant) {
  const ConfigGuard guard;
  for (const std::uint64_t seed : kSeeds) {
    for (const City& city : make_cities(seed)) {
      util::set_parallel_config({1});
      const graph::DistanceMatrix serial =
          graph::all_pairs_shortest_paths(city.net);
      util::set_parallel_config({4});
      const graph::DistanceMatrix parallel =
          graph::all_pairs_shortest_paths(city.net);
      ASSERT_EQ(serial.size(), parallel.size());
      for (graph::NodeId i = 0; i < serial.size(); ++i) {
        const auto a = serial.row(i);
        const auto b = parallel.row(i);
        ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)))
            << city.name << " seed=" << seed << " row " << i;
      }
    }
  }
}

TEST(ParallelDeterminism, RunnerSummariesAreThreadCountInvariant) {
  const ConfigGuard guard;
  util::set_parallel_config({0});
  for (const std::uint64_t seed : kSeeds) {
    for (const City& city : make_cities(seed)) {
      util::Rng rng(seed + 99);
      auto flows = testing::random_flows(city.net, 30, rng, 0.5);
      const eval::Workload workload =
          eval::make_workload(city.net, std::move(flows), city.name);

      eval::ExperimentConfig config;
      config.name = "determinism";
      config.ks = {1, 3, 5};
      config.utility = traffic::UtilityKind::kLinear;
      config.range = 8.0;
      config.repetitions = 6;
      config.seed = seed;
      config.algorithms = {
          eval::AlgorithmId::kGreedyCoverage, eval::AlgorithmId::kCompositeGreedy,
          eval::AlgorithmId::kNaiveGreedy,    eval::AlgorithmId::kMaxCustomers,
          eval::AlgorithmId::kRandom,
      };

      config.threads = 1;
      const eval::ExperimentResult serial = eval::run_experiment(workload, config);
      config.threads = 4;
      const eval::ExperimentResult parallel =
          eval::run_experiment(workload, config);

      ASSERT_EQ(serial.series.size(), parallel.series.size());
      for (std::size_t s = 0; s < serial.series.size(); ++s) {
        for (std::size_t ki = 0; ki < serial.series[s].by_k.size(); ++ki) {
          const util::Summary& a = serial.series[s].by_k[ki];
          const util::Summary& b = parallel.series[s].by_k[ki];
          const std::string tag = city.name + " seed=" + std::to_string(seed) +
                                  " " + to_string(serial.series[s].algorithm) +
                                  " k=" + std::to_string(config.ks[ki]);
          EXPECT_EQ(a.count, b.count) << tag;
          EXPECT_BITEQ(a.mean, b.mean) << tag;
          EXPECT_BITEQ(a.stddev, b.stddev) << tag;
          EXPECT_BITEQ(a.stderr_mean, b.stderr_mean) << tag;
          EXPECT_BITEQ(a.min, b.min) << tag;
          EXPECT_BITEQ(a.max, b.max) << tag;
        }
      }
    }
  }
}

}  // namespace
}  // namespace rap
