// Proof that the audit hook is structurally free when RAP_AUDIT is OFF: the
// call site in PlacementState::add() does not exist in that configuration,
// so even an *installed* hook never fires — zero overhead is a property of
// the binary, not a measurement. (BENCH_audit.json quantifies the ON cost.)
#include <gtest/gtest.h>

#include <atomic>

#include "src/check/audit.h"
#include "src/core/evaluator.h"
#include "src/core/greedy.h"
#include "src/traffic/utility.h"
#include "tests/testing/builders.h"

namespace rap::core {
namespace {

std::atomic<std::uint64_t> g_hook_calls{0};

void counting_hook(const PlacementState&) {
  g_hook_calls.fetch_add(1, std::memory_order_relaxed);
}

class AuditOverhead : public ::testing::Test {
 protected:
  AuditOverhead()
      : utility_(rap::testing::Fig4::threshold),
        problem_(fig_.net, fig_.flows, rap::testing::Fig4::shop, utility_) {}

  rap::testing::Fig4 fig_;
  traffic::ThresholdUtility utility_;
  PlacementProblem problem_;
};

TEST_F(AuditOverhead, RegistryWorksInEveryBuild) {
  EXPECT_EQ(placement_audit_hook(), nullptr);
  EXPECT_EQ(set_placement_audit_hook(&counting_hook), nullptr);
  EXPECT_EQ(placement_audit_hook(), &counting_hook);
  EXPECT_EQ(set_placement_audit_hook(nullptr), &counting_hook);
}

TEST_F(AuditOverhead, InstalledHookFiresOnlyInAuditBuilds) {
  g_hook_calls.store(0);
  set_placement_audit_hook(&counting_hook);
  PlacementState state(problem_);
  state.add(0);
  state.add(1);
  state.add(1);  // duplicate: early-returns before the hook call site
  const PlacementResult greedy = greedy_coverage_placement(problem_, 2);
  set_placement_audit_hook(nullptr);

  if (kAuditCompiledIn) {
    // Two mutating direct adds + the greedy's internal adds.
    EXPECT_EQ(g_hook_calls.load(), 2u + greedy.nodes.size());
  } else {
    // RAP_AUDIT=OFF: no call site exists anywhere in the binary. This is
    // the zero-overhead guarantee — nothing to branch on, nothing to pay.
    EXPECT_EQ(g_hook_calls.load(), 0u);
  }
}

TEST_F(AuditOverhead, ScopedAuditorIsHarmlessWhenOff) {
  rap::check::reset_hook_counters();
  {
    const rap::check::ScopedAuditor auditor;
    (void)greedy_coverage_placement(problem_, 3);
  }
  if (kAuditCompiledIn) {
    EXPECT_GT(rap::check::hook_audits_run(), 0u);
  } else {
    EXPECT_EQ(rap::check::hook_audits_run(), 0u);
  }
  EXPECT_EQ(rap::check::hook_violations_seen(), 0u);
}

}  // namespace
}  // namespace rap::core
