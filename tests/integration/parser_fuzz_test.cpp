// Deterministic fuzz of every text parser in the library: random byte
// soup, random near-valid mutations, and truncated valid documents must
// never crash, hang, or corrupt state — only parse or throw.
#include <gtest/gtest.h>

#include <string>

#include "src/graph/io.h"
#include "src/trace/io.h"
#include "src/util/csv.h"
#include "src/util/rng.h"
#include "tests/testing/builders.h"

namespace rap {
namespace {

std::string random_bytes(util::Rng& rng, std::size_t length) {
  // Printable-ish plus structural characters the parsers care about.
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789,\"\n\r.|-+eE ";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[rng.next_below(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

template <typename Fn>
void expect_parse_or_throw(Fn&& parse) {
  try {
    parse();
  } catch (const std::invalid_argument&) {
    // fine: malformed input reported
  } catch (const std::out_of_range&) {
    // fine: e.g. numeric overflow routed through stod
  }
  // Anything else (crash, uncaught type) fails the test by terminating.
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, CsvParserNeverCrashes) {
  util::Rng rng(GetParam() * 71 + 5);
  for (int trial = 0; trial < 50; ++trial) {
    const std::string soup = random_bytes(rng, rng.next_below(200));
    expect_parse_or_throw([&] { (void)util::parse_csv(soup); });
  }
}

TEST_P(ParserFuzz, NetworkParserNeverCrashes) {
  util::Rng rng(GetParam() * 73 + 7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::string soup =
        "node," + random_bytes(rng, rng.next_below(100));
    expect_parse_or_throw([&] { (void)graph::network_from_csv(soup); });
  }
}

TEST_P(ParserFuzz, TraceRecordParserNeverCrashes) {
  util::Rng rng(GetParam() * 79 + 9);
  const std::string header = "vehicle_id,journey_id,run_id,timestamp,x,y\n";
  for (int trial = 0; trial < 50; ++trial) {
    const std::string soup = header + random_bytes(rng, rng.next_below(150));
    expect_parse_or_throw([&] { (void)trace::records_from_csv(soup); });
  }
}

TEST_P(ParserFuzz, TruncatedValidDocumentsHandled) {
  // Take a valid serialised network and chop it at every prefix length:
  // each prefix must parse or throw, never crash.
  util::Rng rng(GetParam() * 83 + 11);
  const auto net = testing::random_network(3, 3, 2, rng);
  const std::string full = graph::network_to_csv(net);
  for (std::size_t cut = 0; cut <= full.size(); cut += 7) {
    expect_parse_or_throw(
        [&] { (void)graph::network_from_csv(full.substr(0, cut)); });
  }
}

TEST_P(ParserFuzz, MutatedValidDocumentsHandled) {
  // Flip single characters in a valid flow CSV.
  util::Rng rng(GetParam() * 89 + 13);
  const auto net = testing::line_network(5);
  std::vector<traffic::TrafficFlow> flows;
  flows.push_back(traffic::make_shortest_path_flow(net, 0, 4, 3.0));
  const std::string valid = trace::flows_to_csv(flows);
  for (int trial = 0; trial < 60; ++trial) {
    std::string mutated = valid;
    mutated[rng.next_below(mutated.size())] =
        static_cast<char>('0' + rng.next_below(80));
    expect_parse_or_throw(
        [&] { (void)trace::flows_from_csv(net, mutated); });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace rap
