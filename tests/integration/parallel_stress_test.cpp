// Stress test for the parallel execution engine (ctest label: stress).
// Hammers the experiment runner with 200 repetitions on a mid-size grid at
// threads = hardware concurrency and checks that the merged telemetry —
// every counter total — and the statistical summaries are identical to a
// fully serial run. This is the load test behind the determinism contract:
// under real contention, work must neither be dropped, duplicated, nor
// merged out of order.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/citygen/grid_city.h"
#include "src/eval/runner.h"
#include "src/obs/telemetry.h"
#include "src/traffic/utility.h"
#include "src/util/thread_pool.h"
#include "tests/testing/builders.h"

namespace rap::eval {
namespace {

struct StressRun {
  ExperimentResult result;
  std::map<std::string, std::uint64_t> counters;
};

StressRun run_at(const Workload& workload, std::size_t threads) {
  ExperimentConfig config;
  config.name = "stress";
  config.ks = {1, 3, 5};
  config.utility = traffic::UtilityKind::kLinear;
  config.range = 9.0;
  config.repetitions = 200;
  config.seed = 20150707;  // ICDCS'15 vintage
  config.threads = threads;
  config.algorithms = {
      AlgorithmId::kGreedyCoverage,
      AlgorithmId::kCompositeGreedy,
      AlgorithmId::kMaxCustomers,
      AlgorithmId::kRandom,
  };

  obs::Telemetry telemetry;
  StressRun run;
  {
    const obs::TelemetryScope scope(telemetry);
    run.result = run_experiment(workload, config);
  }
  for (const auto& [name, counter] : telemetry.metrics.counters()) {
    run.counters[name] = counter.value();
  }
  // The thread-count gauge intentionally differs between the two runs; the
  // counters must not.
  return run;
}

TEST(ParallelStress, TwoHundredRepetitionsMatchSerialExactly) {
  const citygen::GridCity city({12, 12, 1.0, {0.0, 0.0}});
  util::Rng rng(99);
  auto flows = testing::random_flows(city.network(), 60, rng, 0.5);
  const Workload workload =
      make_workload(city.network(), std::move(flows), "stress-grid");

  // threads=0 resolves to the ambient config (hardware concurrency unless
  // RAP_THREADS overrides it); threads=4 forces cross-thread execution even
  // on single-core machines (the shared pool always has >= 3 workers); the
  // reference run is forced serial.
  const StressRun parallel = run_at(workload, 0);
  const StressRun four = run_at(workload, 4);
  const StressRun serial = run_at(workload, 1);

  // Every merged counter total matches the serial run, bit for bit.
  ASSERT_FALSE(serial.counters.empty());
  EXPECT_EQ(serial.counters, parallel.counters);
  EXPECT_EQ(serial.counters, four.counters);

  // And the statistics themselves are bit-identical.
  ASSERT_EQ(serial.result.series.size(), parallel.result.series.size());
  for (std::size_t s = 0; s < serial.result.series.size(); ++s) {
    ASSERT_EQ(serial.result.series[s].by_k.size(),
              parallel.result.series[s].by_k.size());
    for (std::size_t ki = 0; ki < serial.result.series[s].by_k.size(); ++ki) {
      const util::Summary& a = serial.result.series[s].by_k[ki];
      const util::Summary& b = parallel.result.series[s].by_k[ki];
      const std::string tag =
          std::string(to_string(serial.result.series[s].algorithm)) +
          " k-index " + std::to_string(ki);
      EXPECT_EQ(a.count, 200u) << tag;
      EXPECT_EQ(a.count, b.count) << tag;
      EXPECT_EQ(a.mean, b.mean) << tag;
      EXPECT_EQ(a.stddev, b.stddev) << tag;
      EXPECT_EQ(a.min, b.min) << tag;
      EXPECT_EQ(a.max, b.max) << tag;
    }
  }
}

}  // namespace
}  // namespace rap::eval
