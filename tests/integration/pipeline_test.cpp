// End-to-end integration: synthetic city -> GPS trace -> map matching ->
// flow extraction -> classification -> experiment runner, for both the
// Dublin-like (radial) and Seattle-like (partial grid) substrates — the
// full path the figure benches exercise, at miniature scale.
#include <gtest/gtest.h>

#include "src/citygen/partial_grid_city.h"
#include "src/citygen/radial_city.h"
#include "src/eval/report.h"
#include "src/eval/runner.h"
#include "src/trace/flow_extractor.h"
#include "src/trace/generator.h"

namespace rap {
namespace {

struct Pipeline {
  graph::RoadNetwork net;
  std::vector<traffic::TrafficFlow> flows;
};

Pipeline build_pipeline(const graph::RoadNetwork& net, double snap_radius,
                        std::uint64_t seed) {
  trace::TraceGenSpec spec;
  spec.num_journeys = 15;
  spec.mean_runs_per_journey = 5.0;
  spec.sample_spacing = snap_radius * 1.2;
  spec.gps_noise = snap_radius * 0.15;
  spec.drop_prob = 0.05;
  util::Rng rng(seed);
  const trace::SyntheticTrace trace = trace::generate_trace(net, spec, rng);
  const trace::MapMatcher matcher(net, snap_radius);
  Pipeline out;
  out.flows = trace::extract_flows(matcher, trace.records);
  return out;
}

TEST(Pipeline, DublinLikeEndToEnd) {
  citygen::RadialSpec city_spec;
  city_spec.rings = 5;
  city_spec.ring_spacing = 2000.0;
  util::Rng city_rng(1);
  const auto net = citygen::build_radial_city(city_spec, city_rng);

  Pipeline p = build_pipeline(net, 900.0, 2);
  ASSERT_GE(p.flows.size(), 10u);

  eval::Workload workload =
      eval::make_workload(net, std::move(p.flows), "mini-dublin");
  eval::ExperimentConfig config;
  config.name = "mini-fig10";
  config.ks = {1, 3, 5};
  config.utility = traffic::UtilityKind::kLinear;
  config.range = 5000.0;
  config.repetitions = 4;
  config.seed = 3;
  const eval::ExperimentResult result = eval::run_experiment(workload, config);

  // Structure and basic sanity: positive means for the greedy algorithms at
  // k = 5, monotone in k.
  for (const eval::SeriesResult& series : result.series) {
    for (std::size_t ki = 1; ki < series.by_k.size(); ++ki) {
      EXPECT_GE(series.by_k[ki].mean + 1e-9, series.by_k[ki - 1].mean);
    }
  }
  EXPECT_GT(result.series[1].by_k[2].mean, 0.0);  // Algorithm 2 attracts someone

  // The report renders without throwing and mentions every algorithm.
  const std::string table = eval::format_table(result);
  for (const eval::SeriesResult& series : result.series) {
    EXPECT_NE(table.find(eval::to_string(series.algorithm)), std::string::npos);
  }
}

TEST(Pipeline, SeattleLikeEndToEndWithManhattanScenario) {
  citygen::PartialGridSpec city_spec;
  city_spec.grid = {11, 11, 500.0, {0.0, 0.0}};
  city_spec.edge_removal_prob = 0.08;
  city_spec.node_removal_prob = 0.03;
  util::Rng city_rng(5);
  const citygen::PartialGridCity city(city_spec, city_rng);

  Pipeline p = build_pipeline(city.network(), 230.0, 6);
  ASSERT_GE(p.flows.size(), 10u);

  eval::Workload workload =
      eval::make_workload(city.network(), std::move(p.flows), "mini-seattle");
  eval::ExperimentConfig config;
  config.name = "mini-fig13";
  config.ks = {2, 5, 6};
  config.utility = traffic::UtilityKind::kThreshold;
  config.range = 2500.0;
  config.repetitions = 3;
  config.seed = 11;
  config.manhattan_scenario = true;
  config.algorithms = {
      eval::AlgorithmId::kCompositeGreedy, eval::AlgorithmId::kTwoStageCorners,
      eval::AlgorithmId::kTwoStageMidpoints, eval::AlgorithmId::kRandom};
  const eval::ExperimentResult result = eval::run_experiment(workload, config);
  ASSERT_EQ(result.series.size(), 4u);
  // Algorithm 2 under flexible routing attracts someone at k = 6.
  EXPECT_GT(result.series[0].by_k[2].mean, 0.0);
  // Two-stage results are valid (non-negative, finite).
  for (const eval::SeriesResult& series : result.series) {
    for (const util::Summary& s : series.by_k) {
      EXPECT_GE(s.mean, 0.0);
      EXPECT_TRUE(std::isfinite(s.mean));
    }
  }
}

TEST(Pipeline, ExtractedWorkloadKeepsPaperScaleParameters) {
  citygen::PartialGridSpec city_spec;
  city_spec.grid = {8, 8, 500.0, {0.0, 0.0}};
  util::Rng city_rng(7);
  const citygen::PartialGridCity city(city_spec, city_rng);

  trace::TraceGenSpec spec;
  spec.num_journeys = 8;
  spec.mean_runs_per_journey = 4.0;
  spec.sample_spacing = 260.0;
  spec.gps_noise = 35.0;
  spec.passengers_per_vehicle = 200.0;  // Seattle: 200 passengers per bus
  spec.alpha = 0.001;                   // paper's detour probability scale
  util::Rng rng(8);
  const auto trace = trace::generate_trace(city.network(), spec, rng);
  const trace::MapMatcher matcher(city.network(), 230.0);
  trace::ExtractionOptions options;
  options.passengers_per_vehicle = 200.0;
  options.alpha = 0.001;
  const auto flows = trace::extract_flows(matcher, trace.records, options);
  ASSERT_FALSE(flows.empty());
  for (const auto& flow : flows) {
    EXPECT_DOUBLE_EQ(flow.passengers_per_vehicle, 200.0);
    EXPECT_DOUBLE_EQ(flow.alpha, 0.001);
  }
}

}  // namespace
}  // namespace rap
