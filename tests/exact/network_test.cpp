#include "src/exact/network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/core/problem.h"
#include "src/traffic/utility.h"
#include "tests/testing/builders.h"

namespace rap::exact {
namespace {

using testing::Fig4;

core::PlacementProblem fig4_problem(const Fig4& fig,
                                    const traffic::UtilityFunction& utility) {
  return {fig.net, fig.flows, Fig4::shop, utility};
}

TEST(AssignmentNetwork, CsrViewsAreConsistent) {
  Fig4 fig;
  const traffic::LinearUtility utility(6.0);
  const auto problem = fig4_problem(fig, utility);
  const AssignmentNetwork net = build_assignment_network(problem, 2);

  ASSERT_EQ(net.num_flows, problem.num_flows());
  ASSERT_EQ(net.flow_start.size(), net.num_flows + 1);
  EXPECT_EQ(net.flow_start.back(), net.num_options());
  EXPECT_EQ(net.node_start.back(), net.num_options());
  EXPECT_TRUE(std::is_sorted(net.useful_nodes.begin(), net.useful_nodes.end()));

  // Forward CSR: option i belongs to the flow whose slice covers i.
  for (std::size_t f = 0; f < net.num_flows; ++f) {
    for (std::uint32_t i = net.flow_start[f]; i < net.flow_start[f + 1]; ++i) {
      EXPECT_EQ(net.option_flow[i], f);
      EXPECT_GE(net.option_weight[i], 1);  // zero-profit options are dropped
    }
  }
  // Transpose CSR covers every option exactly once, at the right node.
  std::vector<int> seen(net.num_options(), 0);
  for (std::size_t j = 0; j < net.num_useful_nodes(); ++j) {
    for (std::uint32_t at = net.node_start[j]; at < net.node_start[j + 1];
         ++at) {
      const std::uint32_t i = net.node_option[at];
      EXPECT_EQ(net.option_node[i], net.useful_nodes[j]);
      ++seen[i];
    }
  }
  EXPECT_EQ(std::count(seen.begin(), seen.end(), 1),
            static_cast<std::ptrdiff_t>(net.num_options()));
}

TEST(AssignmentNetwork, CeilScalingNeverUnderestimates) {
  Fig4 fig;
  const traffic::SqrtUtility utility(6.0);  // irrational profits
  const auto problem = fig4_problem(fig, utility);
  const AssignmentNetwork net = build_assignment_network(problem, 2);
  for (graph::NodeId v = 0; v < problem.num_nodes(); ++v) {
    for (const traffic::NodeIncidence& inc : problem.reach_at(v)) {
      const double w = problem.customers(inc.flow, inc.detour);
      if (w <= 0.0) continue;
      // Find the option for (flow, v) and check w~ / scale >= w.
      bool found = false;
      for (std::uint32_t i = net.flow_start[inc.flow];
           i < net.flow_start[inc.flow + 1]; ++i) {
        if (net.option_node[i] != v) continue;
        found = true;
        EXPECT_GE(net.to_customers(net.option_weight[i]), w);
        EXPECT_LT(net.to_customers(net.option_weight[i]) - w,
                  2.0 / static_cast<double>(net.scale));
      }
      EXPECT_TRUE(found) << "flow " << inc.flow << " node " << v;
    }
  }
}

TEST(AssignmentNetwork, RejectsBadScales) {
  Fig4 fig;
  const traffic::LinearUtility utility(6.0);
  const auto problem = fig4_problem(fig, utility);
  EXPECT_THROW(build_assignment_network(problem, 2, 0), std::invalid_argument);
  EXPECT_THROW(build_assignment_network(problem, 2, -8), std::invalid_argument);
  // Profits of a few customers times 2^52 overflow the safe scaled range.
  EXPECT_THROW(build_assignment_network(problem, 2, std::int64_t{1} << 52),
               std::invalid_argument);
}

TEST(AssignmentNetwork, OpenAssignmentEqualsSumOfPerFlowMaxima) {
  Fig4 fig;
  const traffic::LinearUtility utility(6.0);
  const auto problem = fig4_problem(fig, utility);
  const AssignmentNetwork net = build_assignment_network(problem, 2);

  std::int64_t want = 0;
  for (std::size_t f = 0; f < net.num_flows; ++f) {
    std::int64_t best = 0;
    for (std::uint32_t i = net.flow_start[f]; i < net.flow_start[f + 1]; ++i) {
      best = std::max(best, net.option_weight[i]);
    }
    want += best;
  }
  const AssignmentSolution solution = solve_open_assignment(net);
  EXPECT_EQ(solution.profit, want);
  EXPECT_TRUE(std::is_sorted(solution.nodes_used.begin(),
                             solution.nodes_used.end()));
  for (const graph::NodeId v : solution.nodes_used) {
    EXPECT_TRUE(std::binary_search(net.useful_nodes.begin(),
                                   net.useful_nodes.end(), v));
  }
}

TEST(AssignmentNetwork, OpenSelectionPicksTopKStrictlyProfitable) {
  Fig4 fig;
  const traffic::LinearUtility utility(6.0);
  const auto problem = fig4_problem(fig, utility);
  AssignmentNetwork net = build_assignment_network(problem, 2);
  ASSERT_GE(net.num_useful_nodes(), 3u);

  std::vector<std::int64_t> scores(net.num_useful_nodes(), 0);
  scores[0] = 5;
  scores[1] = 9;
  scores[2] = 7;
  const std::vector<std::uint32_t> top2 = solve_open_selection(net, scores);
  EXPECT_EQ(top2, (std::vector<std::uint32_t>{1, 2}));

  // Zero-score nodes are never opened, even with budget to spare.
  net.k = net.num_useful_nodes();
  std::vector<std::int64_t> one_hot(net.num_useful_nodes(), 0);
  one_hot[2] = 3;
  EXPECT_EQ(solve_open_selection(net, one_hot),
            (std::vector<std::uint32_t>{2}));
}

TEST(AssignmentNetwork, OpenSelectionValidatesScores) {
  Fig4 fig;
  const traffic::LinearUtility utility(6.0);
  const auto problem = fig4_problem(fig, utility);
  const AssignmentNetwork net = build_assignment_network(problem, 2);
  EXPECT_THROW(solve_open_selection(net, {}), std::invalid_argument);
  std::vector<std::int64_t> negative(net.num_useful_nodes(), -1);
  EXPECT_THROW(solve_open_selection(net, negative), std::invalid_argument);
}

TEST(AssignmentNetwork, QuantumIsTheClaimedResolution) {
  Fig4 fig;
  const traffic::LinearUtility utility(6.0);
  const auto problem = fig4_problem(fig, utility);
  const AssignmentNetwork net = build_assignment_network(problem, 2);
  EXPECT_DOUBLE_EQ(net.quantum(),
                   static_cast<double>(net.num_flows + 1) /
                       static_cast<double>(net.scale));
  EXPECT_DOUBLE_EQ(net.to_customers(net.scale), 1.0);
}

}  // namespace
}  // namespace rap::exact
