#include "src/exact/min_cost_flow.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace rap::exact {
namespace {

// 2x2 assignment: worker 1 is cheap on job A, worker 2 on job B; the
// min-cost perfect matching takes the diagonal.
TEST(MinCostFlow, SolvesTextbookAssignment) {
  MinCostFlow net(6);  // 0 source, 1-2 workers, 3-4 jobs, 5 sink
  net.add_arc(0, 1, 1, 0);
  net.add_arc(0, 2, 1, 0);
  const std::size_t w1_a = net.add_arc(1, 3, 1, 1);
  const std::size_t w1_b = net.add_arc(1, 4, 1, 9);
  const std::size_t w2_a = net.add_arc(2, 3, 1, 9);
  const std::size_t w2_b = net.add_arc(2, 4, 1, 2);
  net.add_arc(3, 5, 1, 0);
  net.add_arc(4, 5, 1, 0);

  const MinCostFlow::Result result = net.solve(0, 5, 2);
  EXPECT_EQ(result.flow, 2);
  EXPECT_EQ(result.cost, 3);
  EXPECT_EQ(net.flow_on(w1_a), 1);
  EXPECT_EQ(net.flow_on(w2_b), 1);
  EXPECT_EQ(net.flow_on(w1_b), 0);
  EXPECT_EQ(net.flow_on(w2_a), 0);
}

TEST(MinCostFlow, HandlesNegativeArcCosts) {
  // Negative costs are the normal case for the bound tier (negated
  // profits); Bellman-Ford potentials make Dijkstra admissible.
  MinCostFlow net(4);
  const std::size_t cheap = net.add_arc(0, 1, 1, -10);
  net.add_arc(1, 3, 1, 0);
  const std::size_t dear = net.add_arc(0, 2, 1, -3);
  net.add_arc(2, 3, 1, 0);
  const MinCostFlow::Result result = net.solve(0, 3, 1);
  EXPECT_EQ(result.flow, 1);
  EXPECT_EQ(result.cost, -10);
  EXPECT_EQ(net.flow_on(cheap), 1);
  EXPECT_EQ(net.flow_on(dear), 0);
}

TEST(MinCostFlow, StopWhenNonnegativeTakesOnlyProfitablePaths) {
  MinCostFlow net(4);
  net.add_arc(0, 1, 1, -5);  // profitable
  net.add_arc(1, 3, 1, 0);
  net.add_arc(0, 2, 1, 4);  // would lose value
  net.add_arc(2, 3, 1, 0);
  const MinCostFlow::Result result =
      net.solve(0, 3, 2, /*stop_when_nonnegative=*/true);
  EXPECT_EQ(result.flow, 1);
  EXPECT_EQ(result.cost, -5);
  EXPECT_EQ(result.augmentations, 1u);
}

TEST(MinCostFlow, RespectsFlowLimit) {
  MinCostFlow net(2);
  net.add_arc(0, 1, 10, 1);
  const MinCostFlow::Result result = net.solve(0, 1, 3);
  EXPECT_EQ(result.flow, 3);
  EXPECT_EQ(result.cost, 3);
}

TEST(MinCostFlow, PicksBottleneckAcrossThePath) {
  MinCostFlow net(3);
  net.add_arc(0, 1, 5, 0);
  net.add_arc(1, 2, 2, 0);  // the bottleneck
  const MinCostFlow::Result result = net.solve(0, 2, 10);
  EXPECT_EQ(result.flow, 2);
  EXPECT_EQ(result.augmentations, 1u);
}

TEST(MinCostFlow, IsDeterministicAcrossIdenticalRuns) {
  const auto build_and_solve = [] {
    MinCostFlow net(8);
    std::vector<std::size_t> arcs;
    for (std::size_t f = 1; f <= 3; ++f) net.add_arc(0, f, 1, 0);
    for (std::size_t f = 1; f <= 3; ++f) {
      for (std::size_t v = 4; v <= 6; ++v) {
        arcs.push_back(net.add_arc(f, v, 1, -static_cast<std::int64_t>(f * v)));
      }
    }
    for (std::size_t v = 4; v <= 6; ++v) net.add_arc(v, 7, 1, 0);
    const MinCostFlow::Result result = net.solve(0, 7, 3, true);
    std::vector<std::int64_t> flows;
    for (const std::size_t arc : arcs) flows.push_back(net.flow_on(arc));
    return std::make_pair(result, flows);
  };
  const auto [first, first_flows] = build_and_solve();
  const auto [second, second_flows] = build_and_solve();
  EXPECT_EQ(first.flow, second.flow);
  EXPECT_EQ(first.cost, second.cost);
  EXPECT_EQ(first.augmentations, second.augmentations);
  EXPECT_EQ(first_flows, second_flows);
}

TEST(MinCostFlow, EqualCostTiesResolveToTheFirstAddedArc) {
  MinCostFlow net(4);
  const std::size_t first = net.add_arc(0, 1, 1, 1);
  net.add_arc(1, 3, 1, 0);
  const std::size_t second = net.add_arc(0, 2, 1, 1);
  net.add_arc(2, 3, 1, 0);
  (void)net.solve(0, 3, 1);
  // Both routes cost 1; strict-less relaxation keeps the first label.
  EXPECT_EQ(net.flow_on(first), 1);
  EXPECT_EQ(net.flow_on(second), 0);
}

TEST(MinCostFlow, ValidatesInputs) {
  MinCostFlow net(2);
  EXPECT_THROW(net.add_arc(0, 2, 1, 0), std::invalid_argument);
  EXPECT_THROW(net.add_arc(2, 0, 1, 0), std::invalid_argument);
  EXPECT_THROW(net.add_arc(0, 1, -1, 0), std::invalid_argument);
  EXPECT_THROW(net.solve(0, 5, 1), std::invalid_argument);
  EXPECT_THROW(net.flow_on(99), std::invalid_argument);
}

TEST(MinCostFlow, ZeroLimitAndSelfSolveAreNoOps) {
  MinCostFlow net(2);
  net.add_arc(0, 1, 1, -1);
  EXPECT_EQ(net.solve(0, 1, 0).flow, 0);
  EXPECT_EQ(net.solve(0, 0, 5).flow, 0);
}

TEST(MinCostFlow, NegativeCycleThrowsInsteadOfLooping) {
  MinCostFlow net(2);
  net.add_arc(0, 1, 1, -2);
  net.add_arc(1, 0, 1, 1);
  EXPECT_THROW(net.solve(0, 1, 1), std::logic_error);
}

}  // namespace
}  // namespace rap::exact
